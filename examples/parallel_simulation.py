"""The full distributed GreeM pipeline on the SPMD runtime.

Runs the complete per-step machinery of the paper — dynamic domain
decomposition with the sampling method, ghost exchange, local trees,
the relay-mesh PM — on 8 in-process ranks, then prints the Table I-style
cost breakdown, the traversal statistics (<Ni>, <Nj>) and the
communication traffic the network model sees.

Run:  python examples/parallel_simulation.py
"""

from __future__ import annotations

import numpy as np

from repro.config import (
    DomainConfig,
    PMConfig,
    RelayMeshConfig,
    SimulationConfig,
    TreeConfig,
    TreePMConfig,
)
from repro.perf.report import format_table1
from repro.sim.parallel import run_parallel_simulation
from repro.utils.timer import TimingLedger


def main() -> None:
    rng = np.random.default_rng(2012)
    n = 3000
    blob = np.mod(0.5 + 0.05 * rng.standard_normal((n // 2, 3)), 1.0)
    pos = np.vstack([blob, rng.random((n - n // 2, 3))])
    mom = np.zeros_like(pos)
    mass = np.full(n, 1.0 / n)

    config = SimulationConfig(
        treepm=TreePMConfig(
            tree=TreeConfig(opening_angle=0.5, group_size=64),
            pm=PMConfig(mesh_size=16),
            rcut_mesh_units=3.0,
            softening=5e-3,
        ),
        domain=DomainConfig(divisions=(2, 2, 2), sample_rate=0.1),
        relay=RelayMeshConfig(n_groups=2),
        pp_subcycles=2,
    )
    print(
        f"{n} particles on {config.domain.n_domains} SPMD ranks, "
        f"relay mesh with {config.relay.n_groups} groups"
    )

    pos_f, mom_f, mass_f, sims, runtime = run_parallel_simulation(
        config, pos, mom, mass, 0.0, 0.02, n_steps=2,
        torus_shape=(2, 2, 2),
    )

    merged = TimingLedger()
    for s in sims:
        for k, v in s.table1_rows().items():
            merged.add(k, v)
    per_step = {k: v / (len(sims) * 2) for k, v in merged.as_dict().items()}
    print()
    print(
        format_table1(
            {"measured (s/step/rank)": per_step},
            footer={
                "measured (s/step/rank)": {
                    "<Ni>": np.mean([s.stats.mean_group_size for s in sims]),
                    "<Nj>": np.mean([s.stats.mean_list_length for s in sims]),
                    "interactions (M)": sum(
                        s.stats.interactions for s in sims
                    ) / 1e6,
                }
            },
            title="Per-step cost breakdown (Table I rows)",
        )
    )

    print("\ncommunication traffic (network-model view):")
    for name in ("pp:ghosts", "pm:mesh_to_slab", "pm:slab_to_mesh"):
        ph = runtime.traffic.merged([name])
        t = runtime.network.phase_time(ph)
        print(
            f"  {name:>16}: {ph.total_bytes/1e6:8.2f} MB, "
            f"{ph.n_messages:5d} messages, modeled {1e3*t.seconds:7.3f} ms"
        )

    assert len(pos_f) == n
    print(f"\nmass conservation: {mass_f.sum():.6f} (exact: {mass.sum():.6f})")


if __name__ == "__main__":
    main()
