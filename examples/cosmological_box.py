"""Cosmological microhalo formation: the paper's science case, scaled.

Generates Zel'dovich initial conditions at z = 400 from a WMAP7 CDM
power spectrum with a neutralino free-streaming cutoff (Green et al.
2004), integrates to z = 31 with the comoving TreePM driver — the
paper's exact pipeline at laptop size — and reports structure growth:
clumping factor, measured P(k) vs linear theory, and the microhalo
catalog (Figure 6's content).

Run:  python examples/cosmological_box.py
"""

from __future__ import annotations

import numpy as np

from repro import PMConfig, SimulationConfig, TreeConfig, TreePMConfig
from repro.analysis.fof import halo_catalog
from repro.analysis.power import particle_power_spectrum
from repro.analysis.profiles import clumping_factor
from repro.cosmology.params import WMAP7
from repro.cosmology.power_spectrum import PowerSpectrum
from repro.ic.zeldovich import ZeldovichIC
from repro.integrate.stepper import CosmoStepper
from repro.sim.serial import SerialSimulation

N_PER_DIM = 12
MESH = 24
K_FS = 1.0e6           # neutralino cutoff, h/Mpc
BOX_MPC_H = 40.0 / K_FS  # cutoff at ~6 box modes (resolved)
BOOST = 3.0            # overdense patch (rare-peak statistics of a tiny box)
REDSHIFTS = [400.0, 70.0, 40.0, 31.0]


def main() -> None:
    ps = PowerSpectrum(WMAP7, k_fs=K_FS)
    base = ps.in_box_units(BOX_MPC_H)
    ic = ZeldovichIC(
        WMAP7,
        lambda k, z=0.0: BOOST**2 * base(k, z),
        n_per_dim=N_PER_DIM,
        mesh_n=MESH,
        seed=7,
    )
    a0 = 1.0 / (1.0 + REDSHIFTS[0])
    pos, mom, mass = ic.generate(a_start=a0)
    print(
        f"{N_PER_DIM}^3 particles in a {BOX_MPC_H*1e6:.0f} pc/h box, "
        f"rms IC displacement {ic.rms_displacement(a0):.4f} "
        f"(interparticle spacing {1/N_PER_DIM:.4f})"
    )

    config = SimulationConfig(
        treepm=TreePMConfig(
            tree=TreeConfig(opening_angle=0.5, group_size=64),
            pm=PMConfig(mesh_size=MESH),
            rcut_mesh_units=3.0,
            softening=0.02 / N_PER_DIM,
        ),
        pp_subcycles=2,
    )
    sim = SerialSimulation(config, pos, mom, mass, stepper=CosmoStepper(WMAP7))

    print(f"\n{'z':>6} {'clumping':>9} {'halos':>6}  (FoF b = 0.2)")
    for z_from, z_to in zip(REDSHIFTS[:-1], REDSHIFTS[1:]):
        a1, a2 = 1 / (1 + z_from), 1 / (1 + z_to)
        edges = np.geomspace(a1, a2, 9)
        for e1, e2 in zip(edges[:-1], edges[1:]):
            sim.step(float(e1), float(e2))
        halos = halo_catalog(
            sim.pos, sim.mass, linking_length=0.2 / N_PER_DIM, min_members=16
        )
        c = clumping_factor(sim.pos, sim.mass, n_mesh=12)
        print(f"{z_to:>6.0f} {c:>9.3f} {len(halos):>6}")

    halos = halo_catalog(
        sim.pos, sim.mass, linking_length=0.2 / N_PER_DIM, min_members=16
    )
    if halos:
        h = halos[0]
        print(
            f"\nlargest microhalo: {h.n_particles} particles "
            f"({h.n_particles/N_PER_DIM**3*100:.1f}% of the box mass) at "
            f"({h.center[0]:.2f}, {h.center[1]:.2f}, {h.center[2]:.2f})"
        )

    k, pk, counts = particle_power_spectrum(
        sim.pos, sim.mass, n_mesh=12, n_bins=5, subtract_shot_noise=False
    )
    print("\nmeasured P(k) at z=31 (box units):")
    for ki, pi, ci in zip(k, pk, counts):
        print(f"  k = {ki:7.1f}   P = {pi:.3e}   ({ci:.0f} modes)")


if __name__ == "__main__":
    main()
