"""Quickstart: a small self-gravitating TreePM simulation.

Runs 64^3-scale-free cold collapse in a periodic box with the serial
TreePM driver and prints the per-phase timing ledger (the same rows as
the paper's Table I) plus the traversal statistics <Ni> and <Nj>.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import PMConfig, SimulationConfig, TreeConfig, TreePMConfig
from repro.sim.serial import SerialSimulation


def main() -> None:
    rng = np.random.default_rng(42)
    n = 1000
    pos = rng.random((n, 3))
    mom = np.zeros((n, 3))
    mass = np.full(n, 1.0 / n)

    config = SimulationConfig(
        treepm=TreePMConfig(
            tree=TreeConfig(opening_angle=0.5, group_size=64),
            pm=PMConfig(mesh_size=16),
            rcut_mesh_units=3.0,   # the paper's rcut = 3 mesh cells
            softening=5e-3,
        ),
        pp_subcycles=2,            # the paper's step structure
    )
    sim = SerialSimulation(config, pos, mom, mass)

    e0 = sim.total_energy()
    print(f"initial energy: {e0:+.5f}")

    sim.run(0.0, 0.4, n_steps=20)

    e1 = sim.total_energy()
    print(f"final energy:   {e1:+.5f}  (drift {abs(e1-e0):.2e})")
    print(f"kinetic energy: {sim.kinetic_energy():.5f} (collapse under way)")
    stats = sim.last_stats
    print(
        f"tree statistics: <Ni> = {stats.mean_group_size:.1f}, "
        f"<Nj> = {stats.mean_list_length:.1f}, "
        f"{stats.interactions} interactions in the last PP cycle"
    )
    print()
    print(sim.timing.report("accumulated phase timings (Table I rows)"))


if __name__ == "__main__":
    main()
