"""The relay mesh method, demonstrated end to end.

Runs the distributed PM solver on an in-process SPMD runtime twice —
with the straightforward global conversion and with the relay mesh
method — over a clustered particle set, then shows:

* the conversion traffic recorded by the runtime (senders per FFT
  process: the congestion diagnostic the paper optimizes),
* the network-model times on the simulated torus,
* the paper-scale congestion model (4096^3 mesh on 12288 nodes)
  reproducing the 10 s / 3 s -> 3 s / 0.3 s measurement,
* and that both methods produce *identical* forces.

Run:  python examples/relay_mesh_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.forces.cutoff import S2ForceSplit
from repro.meshcomm.parallel_pm import ParallelPM
from repro.mpi.runtime import MPIRuntime
from repro.perf.relaymodel import PAPER_RELAY_CASE, MeshExchangeModel

N_RANKS = 12
N_MESH = 16
N_FFT = 2


def run_pm(n_groups: int):
    rng = np.random.default_rng(3)
    pos = rng.random((2000, 3))
    mass = np.full(2000, 1.0 / 2000)
    rt = MPIRuntime(N_RANKS, torus_shape=(3, 2, 2))
    split = S2ForceSplit(3.0 / N_MESH)

    def fn(comm):
        lo = np.array([comm.rank / comm.size, 0.0, 0.0])
        hi = np.array([(comm.rank + 1) / comm.size, 1.0, 1.0])
        sel = (pos[:, 0] >= lo[0]) & (pos[:, 0] < hi[0])
        ppm = ParallelPM(comm, N_MESH, split=split, n_fft=N_FFT, n_groups=n_groups)
        return sel, ppm.forces(pos[sel], mass[sel], lo, hi)

    results = rt.run(fn)
    acc = np.zeros_like(pos)
    for sel, a in results:
        acc[sel] = a
    fwd = rt.traffic.phase("pm:mesh_to_slab")
    bwd = rt.traffic.phase("pm:slab_to_mesh")
    return acc, fwd, bwd, rt.network


def main() -> None:
    print(f"distributed PM on {N_RANKS} SPMD ranks, {N_MESH}^3 mesh, "
          f"{N_FFT} FFT processes\n")

    acc_direct, fwd_d, bwd_d, net = run_pm(n_groups=1)
    acc_relay, fwd_r, bwd_r, _ = run_pm(n_groups=4)

    print("conversion traffic (mesh -> slab / slab -> mesh):")
    for name, fwd, bwd in (
        ("direct", fwd_d, bwd_d),
        ("relay x4", fwd_r, bwd_r),
    ):
        print(
            f"  {name:>9}: senders/receiver {fwd.max_senders_per_receiver():>3} "
            f"/ {bwd.max_senders_per_receiver():>3},  "
            f"modeled {1e3*net.phase_time(fwd).seconds:.2f} ms / "
            f"{1e3*net.phase_time(bwd).seconds:.2f} ms"
        )

    diff = np.abs(acc_direct - acc_relay).max()
    print(f"\nmax force difference direct vs relay: {diff:.2e} "
          "(the method is physics-neutral)")

    print("\npaper-scale congestion model (4096^3 mesh, 12288 nodes; "
          "calibrated on the direct method only):")
    model = MeshExchangeModel.calibrated_to_paper()
    print(f"  {'groups':>7} {'forward s':>10} {'backward s':>11}")
    for g in (1, 2, 3, 4):
        print(
            f"  {g:>7} {model.forward_seconds(g):>10.2f} "
            f"{model.backward_seconds(g):>11.2f}"
        )
    print(
        f"  paper measured: direct 10.0 / 3.0 s, relay(3) 3.0 / 0.3 s, "
        f"FFT itself {PAPER_RELAY_CASE['fft']} s"
    )


if __name__ == "__main__":
    main()
