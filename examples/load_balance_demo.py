"""Dynamic domain decomposition with the sampling method (paper Fig. 3).

Builds the paper's 8x8 two-dimensional multisection over a strongly
clustered particle distribution and compares it against a static
decomposition, then demonstrates the cost-feedback loop: a rank
reporting a higher force-calculation time receives a smaller domain on
the next update.

Run:  python examples/load_balance_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.decomp.multisection import MultisectionDecomposition
from repro.decomp.sampling import SamplingDecomposer
from repro.mpi.runtime import run_spmd


def clustered_particles(n_total=40000, seed=9):
    rng = np.random.default_rng(seed)
    blob1 = 0.45 + 0.05 * rng.standard_normal((n_total // 2, 3))
    blob2 = np.array([0.8, 0.25, 0.5]) + 0.02 * rng.standard_normal(
        (n_total // 4, 3)
    )
    bg = rng.random((n_total // 4, 3))
    return np.clip(np.vstack([blob1, blob2, bg]), 0, 1 - 1e-9)


def ascii_map(decomp, width=48):
    """Draw the x/y domain boundaries of an (8, 8, 1) decomposition."""
    rows = []
    xb = decomp.x_bounds
    for i in range(len(xb) - 1):
        yb = decomp.y_bounds[i]
        cells = []
        for j in range(len(yb) - 1):
            w = max(1, int(round((yb[j + 1] - yb[j]) * width)) - 1)
            cells.append("·" * w)
        rows.append("|" + "|".join(cells) + "|")
    return "\n".join(rows)


def main() -> None:
    pos = clustered_particles()
    print(f"{len(pos)} particles, two dense clusters + background\n")

    dynamic = MultisectionDecomposition.from_samples(pos, (8, 8, 1))
    static = MultisectionDecomposition.uniform((8, 8, 1))
    for name, d in (("static", static), ("dynamic (sampling method)", dynamic)):
        counts = np.bincount(d.owner_of(pos), minlength=64)
        print(
            f"{name:>26}: particles per domain "
            f"min {counts.min():>5}, max {counts.max():>5}, "
            f"imbalance {counts.max()/counts.mean():.2f}x"
        )

    print("\ndynamic y-boundaries per x-slab (narrow cells wrap the clusters):")
    print(ascii_map(dynamic))

    # the cost feedback loop on an SPMD runtime: every rank holds the
    # particles of its own quadrant; rank 0 claims 10x force time, so
    # its quadrant is oversampled and its domain shrinks
    print("\ncost feedback: rank 0 reports 10x force time ->")
    quadrants = MultisectionDecomposition.uniform((2, 2, 1))

    def fn(comm):
        rng = np.random.default_rng(comm.rank)
        lo, hi = quadrants.domain_bounds(comm.rank)
        mine = lo + (hi - lo) * rng.random((2000, 3))
        dec = SamplingDecomposer((2, 2, 1), sample_rate=0.4, window=1)
        cost = 10.0 if comm.rank == 0 else 1.0
        out = None
        for _ in range(3):
            out = dec.update(comm, mine, cost)
        return out.domain_volumes()[comm.rank]

    volumes = run_spmd(4, fn)
    for r, v in enumerate(volumes):
        print(f"  rank {r}: domain volume {v:.4f}"
              + ("   <- expensive rank, shrunk" if r == 0 else ""))


if __name__ == "__main__":
    main()
