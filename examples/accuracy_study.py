"""Force-accuracy study: TreePM against exact Ewald summation.

Quantifies the error budget of the method for a clustered box — the
error distribution over particles, the split between short- and
long-range contributions, and the effect of the paper's main accuracy
knobs (opening angle, cutoff radius, fast reciprocal square root).

Run:  python examples/accuracy_study.py
"""

from __future__ import annotations

import numpy as np

from repro.config import PMConfig, TreeConfig, TreePMConfig
from repro.forces.ewald import EwaldSummation
from repro.treepm.solver import TreePMSolver


def make_config(theta=0.5, rcut_cells=3.0, mesh=16, eps=1e-4):
    return TreePMConfig(
        tree=TreeConfig(opening_angle=theta, group_size=32),
        pm=PMConfig(mesh_size=mesh),
        rcut_mesh_units=rcut_cells,
        softening=eps,
    )


def error_stats(acc, ref):
    err = np.linalg.norm(acc - ref, axis=1) / np.linalg.norm(ref, axis=1)
    return {
        "rms": float(np.sqrt((err**2).mean())),
        "median": float(np.median(err)),
        "p95": float(np.percentile(err, 95)),
        "max": float(err.max()),
    }


def main() -> None:
    rng = np.random.default_rng(12)
    n = 1500
    pos = np.mod(
        np.vstack(
            [0.5 + 0.06 * rng.standard_normal((n // 2, 3)), rng.random((n // 2, 3))]
        ),
        1.0,
    )
    mass = np.full(n, 1.0 / n)
    eps = 1e-4
    probe = rng.choice(n, 128, replace=False)

    print(f"computing the Ewald reference at 128 probes of {n} particles ...")
    ref = EwaldSummation().forces(pos, mass, eps=eps, targets=probe)

    print("\nopening-angle sweep (mesh 16, rcut = 3 cells):")
    print(f"{'theta':>6} {'rms':>9} {'median':>9} {'95%':>9} {'max':>9} "
          f"{'interactions':>13}")
    for theta in (0.2, 0.4, 0.6, 0.8, 1.0):
        res = TreePMSolver(make_config(theta=theta)).forces(pos, mass)
        s = error_stats(res.total[probe], ref)
        print(
            f"{theta:>6.1f} {s['rms']:>9.4f} {s['median']:>9.4f} "
            f"{s['p95']:>9.4f} {s['max']:>9.4f} {res.stats.interactions:>13}"
        )

    print("\ncutoff-radius sweep (theta 0.5):")
    print(f"{'cells':>6} {'rms':>9} {'interactions':>13}")
    for cells in (2.0, 3.0, 4.0, 5.0):
        res = TreePMSolver(make_config(rcut_cells=cells)).forces(pos, mass)
        s = error_stats(res.total[probe], ref)
        print(f"{cells:>6.1f} {s['rms']:>9.4f} {res.stats.interactions:>13}")

    print("\nfast reciprocal square root (the paper's 24-bit path):")
    exact = TreePMSolver(make_config()).forces(pos, mass).total
    fast = TreePMSolver(make_config(), use_fast_rsqrt=True).forces(pos, mass).total
    print(
        f"  method rms error      : {error_stats(exact[probe], ref)['rms']:.2e}\n"
        f"  rsqrt-induced change  : "
        f"{np.abs(fast - exact).max() / np.abs(exact).max():.2e} "
        "(invisible below the method error, as the paper argues)"
    )


if __name__ == "__main__":
    main()
