"""Overhead of the runtime invariant guardrails (docs/validation.md).

The ``warn`` policy is only worth leaving on if it is nearly free: the
checkers are vectorised array sweeps and O(ranks²) count matrices, so
the budget is < 10% wall-clock on the smoke simulation.  This harness
times the serial smoke sim with validation off and with every
per-step checker armed at ``warn`` (the energy monitor is excluded —
its O(N²) potential evaluation is a diagnostic you *opt into*, not
part of the steady-state overhead), and writes the measured ratio.
"""

from __future__ import annotations

import time

import numpy as np

from repro.config import (
    PMConfig,
    SimulationConfig,
    TreeConfig,
    TreePMConfig,
    ValidationConfig,
)
from repro.sim.serial import SerialSimulation

N_PER_DIM = 12
N_STEPS = 6
REPEATS = 3
OVERHEAD_BUDGET = 0.10


def _config(policy: str) -> SimulationConfig:
    return SimulationConfig(
        treepm=TreePMConfig(
            tree=TreeConfig(opening_angle=0.5, group_size=64),
            pm=PMConfig(mesh_size=16),
            softening=0.02 / N_PER_DIM,
        ),
        validation=ValidationConfig(policy=policy),
    )


def _run_once(policy: str) -> float:
    rng = np.random.default_rng(42)
    n = N_PER_DIM**3
    pos = rng.random((n, 3))
    mom = 0.01 * rng.standard_normal((n, 3))
    mass = np.full(n, 1.0 / n)
    sim = SerialSimulation(_config(policy), pos, mom, mass)
    t0 = time.perf_counter()
    sim.run(0.0, 0.05, n_steps=N_STEPS)
    return time.perf_counter() - t0


def _best_of(policy: str) -> float:
    return min(_run_once(policy) for _ in range(REPEATS))


class TestValidationOverhead:
    def test_warn_overhead_within_budget(self, save_result):
        base = _best_of("off")
        guarded = _best_of("warn")
        overhead = guarded / base - 1.0
        lines = [
            f"smoke sim: {N_PER_DIM}^3 particles, {N_STEPS} steps, "
            f"best of {REPEATS}",
            f"validation off : {base * 1e3:8.1f} ms",
            f"validation warn: {guarded * 1e3:8.1f} ms",
            f"overhead       : {overhead:+8.1%}  (budget {OVERHEAD_BUDGET:.0%})",
        ]
        save_result("validation_overhead", "\n".join(lines))
        assert overhead < OVERHEAD_BUDGET
