"""Interaction-plan engine vs the legacy per-group short-range path.

The plan engine restructures the short-range solver into two phases —
one vectorized traversal emitting a flat CSR plan, then one batched (or
compiled) sweep over it — while staying bitwise-identical to the legacy
interleaved path in float64 mode.  This harness times both paths on the
``bench_group_size`` tuning configuration (the clustered 6k-particle
box) at the medium group size of that sweep and records the speedup,
alongside the pure-numpy executor (the portable fallback) and the
float32 mode (the paper's single-precision kernel analogue).

Timings are min-of-N full force evaluations (tree build + traversal +
kernel) to suppress machine noise.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.forces.cutoff import S2ForceSplit
from repro.pp import native
from repro.tree.traversal import TreeSolver

#: middle of the bench_group_size sweep [16, 32, 64, 128, 256, 512]
MEDIUM_GROUP_SIZE = 64
GROUP_SIZES = [32, 64, 128]
REPEATS = 7


@pytest.fixture(scope="module")
def tuning_particles():
    rng = np.random.default_rng(0)
    blob = 0.5 + 0.04 * rng.standard_normal((4000, 3))
    bg = rng.random((2000, 3))
    pos = np.mod(np.vstack([blob, bg]), 1.0)
    return pos, np.full(len(pos), 1.0 / len(pos))


def _time_forces(solver, pos, mass, repeats=REPEATS):
    best = np.inf
    acc = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        acc, _ = solver.forces(pos, mass)
        best = min(best, time.perf_counter() - t0)
    return acc, best


def _solver(group_size, **kw):
    return TreeSolver(
        theta=0.5,
        split=S2ForceSplit(3.0 / 32),
        periodic=True,
        group_size=group_size,
        **kw,
    )


def test_plan_speedup(tuning_particles, save_result):
    pos, mass = tuning_particles
    lines = [
        "interaction-plan engine vs legacy per-group path",
        f"config: 6000 clustered particles, theta=0.5, S2 rcut=3/32, "
        f"periodic; min of {REPEATS} full force evaluations",
        f"native kernel available: {native.available()}",
        "",
        f"{'group':>5s} {'legacy':>9s} {'plan':>9s} {'plan/np':>9s} "
        f"{'plan/f32':>9s} {'speedup':>8s} {'bitwise':>8s}",
    ]
    speedups = {}
    for gs in GROUP_SIZES:
        a_leg, t_leg = _time_forces(_solver(gs, use_plan=False), pos, mass)
        a_plan, t_plan = _time_forces(_solver(gs), pos, mass)
        _, t_numpy = _time_forces(_solver(gs, plan_native=False), pos, mass)
        _, t_f32 = _time_forces(_solver(gs, plan_float32=True), pos, mass)
        bitwise = np.array_equal(a_plan, a_leg)
        speedups[gs] = t_leg / t_plan
        lines.append(
            f"{gs:5d} {t_leg * 1e3:7.1f}ms {t_plan * 1e3:7.1f}ms "
            f"{t_numpy * 1e3:7.1f}ms {t_f32 * 1e3:7.1f}ms "
            f"{speedups[gs]:7.2f}x {str(bitwise):>8s}"
        )
        assert bitwise, f"plan/legacy bitwise mismatch at group_size={gs}"
    lines.append("")
    lines.append(
        f"medium configuration (group_size={MEDIUM_GROUP_SIZE}): "
        f"{speedups[MEDIUM_GROUP_SIZE]:.2f}x"
    )
    save_result("interaction_plan", "\n".join(lines))
    if native.available():
        assert speedups[MEDIUM_GROUP_SIZE] >= 2.0
    else:  # pure-numpy fallback: batching + culling alone
        assert speedups[MEDIUM_GROUP_SIZE] >= 1.2


def test_masked_targets_not_slower_than_full(tuning_particles, save_result):
    """The distributed driver's targets-mask sweep must scale down with
    the masked fraction, not pay full-evaluation cost."""
    pos, mass = tuning_particles
    # a spatially coherent target slab, so whole groups drop out (an
    # index-prefix mask would touch nearly every Morton-sorted group)
    mask = pos[:, 0] < 0.25
    s_full = _solver(MEDIUM_GROUP_SIZE)
    s_mask = _solver(MEDIUM_GROUP_SIZE)
    _, t_full = _time_forces(s_full, pos, mass, repeats=5)
    best = np.inf
    for _ in range(5):
        t0 = time.perf_counter()
        s_mask.forces(pos, mass, targets_mask=mask)
        best = min(best, time.perf_counter() - t0)
    save_result(
        "interaction_plan_masked",
        f"full sweep: {t_full * 1e3:.1f}ms\n"
        f"quarter-masked sweep: {best * 1e3:.1f}ms",
    )
    assert best < t_full
