"""Shared benchmark helpers.

Every benchmark regenerates one of the paper's tables or figures and
writes its rendered output to ``benchmarks/results/<name>.txt`` so the
reproduction artifacts survive the run (pytest-benchmark captures only
timings).
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """``save_result(name, text)`` -> writes and echoes an artifact."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n[{name}]\n{text}")

    return _save


@pytest.fixture(scope="session")
def clustered_box():
    """A moderately clustered particle set reused across benchmarks:
    three halos of different sizes plus a uniform background."""
    rng = np.random.default_rng(20121110)
    halos = [
        (np.array([0.3, 0.3, 0.3]), 0.015, 2500),
        (np.array([0.7, 0.6, 0.4]), 0.03, 1500),
        (np.array([0.2, 0.8, 0.7]), 0.01, 1000),
    ]
    parts = [c + s * rng.standard_normal((n, 3)) for c, s, n in halos]
    parts.append(rng.random((3000, 3)))
    pos = np.mod(np.vstack(parts), 1.0)
    mass = np.full(len(pos), 1.0 / len(pos))
    return pos, mass
