"""Overhead of the gray-failure health layer (docs/fault_tolerance.md §9).

The health tick runs every step on every rank: one small allgather of
``(rank, work, wall)`` triples, a median, and O(ranks) scalar updates.
It is only worth leaving on in production if it is nearly free — the
budget is < 2% wall-clock on the medium configuration with the full
``evict`` policy armed (detection, scoring, adaptive deadline; a
healthy fleet never reaches the drain).

This harness times a fault-free elastic run with the health layer off
and with ``policy="evict"`` fully armed, and writes the measured ratio
to ``benchmarks/results/health_overhead.txt``.  CI runs it report-only
(shared-runner timings are too noisy to gate on); the budget assert
documents the acceptance threshold.
"""

from __future__ import annotations

import time

import numpy as np

from repro.config import (
    DomainConfig,
    HealthConfig,
    PMConfig,
    SimulationConfig,
    TreePMConfig,
)
from repro.sim.elastic import run_elastic_simulation

N = 8000
N_RANKS = 2
N_STEPS = 6
T_END = 0.06
REPEATS = 3
OVERHEAD_BUDGET = 0.02


def _config(policy: str) -> SimulationConfig:
    return SimulationConfig(
        domain=DomainConfig(
            divisions=(N_RANKS, 1, 1), sample_rate=0.3, cost_balance=False
        ),
        treepm=TreePMConfig(pm=PMConfig(mesh_size=16)),
        health=HealthConfig(policy=policy),
    )


def _system(seed: int = 29):
    rng = np.random.default_rng(seed)
    return (
        rng.random((N, 3)),
        rng.normal(scale=0.01, size=(N, 3)),
        np.full(N, 1.0 / N),
    )


def _run_once(policy: str) -> float:
    pos, mom, mass = _system()
    t0 = time.perf_counter()
    p, m, w, runners, runtime = run_elastic_simulation(
        _config(policy), pos, mom, mass, 0.0, T_END, N_STEPS,
        buddy_every=1, backend="thread",
    )
    elapsed = time.perf_counter() - t0
    assert len(p) == N
    assert runtime.dead_ranks == []
    if policy == "evict":
        # a healthy fleet must stay whole: no verdicts, no drains
        for r in runners:
            kinds = {ev["kind"] for ev in r.health_events()}
            assert not kinds & {"straggler_confirmed", "drain", "evict"}
    return elapsed


def _best_of(policy: str) -> float:
    return min(_run_once(policy) for _ in range(REPEATS))


class TestHealthOverhead:
    def test_health_tick_overhead_within_budget(self, save_result):
        base = _best_of("off")
        armed = _best_of("evict")
        overhead = armed / base - 1.0
        lines = [
            f"elastic smoke sim: {N} particles, {N_RANKS} ranks, "
            f"{N_STEPS} steps, best of {REPEATS}",
            "health layer: per-step work/wait allgather, straggler "
            "scoring, adaptive deadline, eviction armed",
            f"health off  : {base * 1e3:8.1f} ms",
            f"health evict: {armed * 1e3:8.1f} ms",
            f"overhead    : {overhead:+8.1%}  (budget {OVERHEAD_BUDGET:.0%})",
        ]
        save_result("health_overhead", "\n".join(lines))
        assert overhead < OVERHEAD_BUDGET
