"""Strong scaling: 1.53 Pflops at 24576 nodes -> 4.45 Pflops at 82944.

Two layers:

* **measured** — the full distributed step on 1/2/4/8 thread ranks;
  the PP section must scale ~1/p while the FFT does not (the paper's
  scaling signature);
* **projected** — our per-interaction work projected through the K
  computer model reproduces the paper's Pflops pair, and the total-time
  model reproduces the 2.89x speedup at 3.375x nodes.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.config import (
    DomainConfig,
    PMConfig,
    SimulationConfig,
    TreeConfig,
    TreePMConfig,
)
from repro.perf.flops import efficiency, measured_performance
from repro.perf.kcomputer import K_FULL, K_PARTIAL
from repro.perf.model import PAPER_TOTALS, PAPER_TABLE1, TableOneModel
from repro.sim.parallel import run_parallel_simulation
from repro.utils.timer import TimingLedger

DIVISIONS = {1: (1, 1, 1), 2: (2, 1, 1), 4: (2, 2, 1), 8: (2, 2, 2)}


def _run(clustered_box, p):
    pos, mass = clustered_box
    cfg = SimulationConfig(
        treepm=TreePMConfig(
            tree=TreeConfig(opening_angle=0.5, group_size=64),
            pm=PMConfig(mesh_size=16),
            rcut_mesh_units=3.0,
            softening=5e-3,
        ),
        domain=DomainConfig(divisions=DIVISIONS[p], sample_rate=0.1),
        pp_subcycles=2,
    )
    _, _, _, sims, _ = run_parallel_simulation(
        cfg, pos, np.zeros_like(pos), mass, 0.0, 0.004, n_steps=1
    )
    merged = TimingLedger()
    for s in sims:
        for k, v in s.table1_rows().items():
            merged.add(k, v)
    per_rank = merged.scaled(1.0 / len(sims))
    return {
        "PP": per_rank.total("PP"),
        "PM": per_rank.total("PM"),
        "FFT": per_rank.get("PM/FFT"),
        "total": per_rank.total(),
        # deterministic work metrics (immune to GIL time-sharing)
        "interactions_per_rank": sum(s.stats.interactions for s in sims)
        / len(sims),
        "fft_work": 16**3 * np.log2(16**3),  # fixed mesh: constant
    }


class TestMeasuredScaling:
    def test_strong_scaling_shape(self, benchmark, clustered_box, save_result):
        results = {}
        for p in (1, 2, 4):
            results[p] = _run(clustered_box, p)

        def work():
            return _run(clustered_box, 8)

        results[8] = benchmark.pedantic(work, rounds=1, iterations=1)

        lines = [
            "Measured strong scaling (thread runtime; wall clock is "
            "GIL-time-shared on one CPU, work metrics are exact)",
            f"{'ranks':>6} {'PP wall':>8} {'PM wall':>8} {'FFT':>8} "
            f"{'PP interactions/rank':>21}",
        ]
        for p, r in results.items():
            lines.append(
                f"{p:>6} {r['PP']:>8.3f} {r['PM']:>8.3f} {r['FFT']:>8.3f} "
                f"{r['interactions_per_rank']:>21.3g}"
            )
        work_speedup = (
            results[1]["interactions_per_rank"]
            / results[8]["interactions_per_rank"]
        )
        lines.append(
            f"PP work-per-rank reduction 1 -> 8 ranks: {work_speedup:.2f}x "
            "(ideal 8x; ghost-zone overlap costs the difference)"
        )
        save_result("scaling_measured", "\n".join(lines))

        # the paper's signature: PP work scales down with ranks while
        # the FFT work (fixed mesh, capped FFT processes) does not
        assert (
            results[8]["interactions_per_rank"]
            < 0.35 * results[1]["interactions_per_rank"]
        )
        assert results[8]["fft_work"] == results[1]["fft_work"]


class TestBackendScaling:
    """Per-backend steps/sec: the thread backend time-shares one GIL,
    so only the multiprocess backend can convert ranks into wall-clock
    speedup — and only where the machine has the cores to run them."""

    N_STEPS = 2
    RANK_COUNTS = (1, 2, 4)

    def _run_backend(self, clustered_box, backend, p):
        pos, mass = clustered_box
        cfg = SimulationConfig(
            treepm=TreePMConfig(
                tree=TreeConfig(opening_angle=0.5, group_size=64),
                pm=PMConfig(mesh_size=16),
                rcut_mesh_units=3.0,
                softening=5e-3,
            ),
            domain=DomainConfig(divisions=DIVISIONS[p], sample_rate=0.1),
            pp_subcycles=2,
        )
        t0 = time.perf_counter()
        _, _, _, sims, _ = run_parallel_simulation(
            cfg, pos, np.zeros_like(pos), mass, 0.0, 0.004,
            n_steps=self.N_STEPS, backend=backend,
        )
        wall = time.perf_counter() - t0
        merged = TimingLedger()
        for s in sims:
            for k, v in s.table1_rows().items():
                merged.add(k, v)
        per_rank = merged.scaled(1.0 / len(sims))
        return {
            "wall": wall,
            "steps_per_sec": self.N_STEPS / wall,
            "PP": per_rank.total("PP"),
            "interactions_per_rank": sum(s.stats.interactions for s in sims)
            / len(sims),
        }

    def test_backend_step_rates(self, benchmark, clustered_box, save_result):
        cores = len(os.sched_getaffinity(0))
        results = {}
        for backend in ("thread", "multiprocess"):
            for p in self.RANK_COUNTS:
                results[backend, p] = self._run_backend(
                    clustered_box, backend, p
                )

        def work():
            return self._run_backend(clustered_box, "multiprocess", 4)

        benchmark.pedantic(work, rounds=1, iterations=1)

        lines = [
            f"Per-backend scaling ({cores} core(s) available; "
            f"{self.N_STEPS} steps, 8000 particles)",
            f"{'backend':>12} {'ranks':>6} {'wall s':>8} {'steps/s':>8} "
            f"{'PP wall/rank':>13}",
        ]
        for (backend, p), r in results.items():
            lines.append(
                f"{backend:>12} {p:>6} {r['wall']:>8.2f} "
                f"{r['steps_per_sec']:>8.3f} {r['PP']:>13.3f}"
            )
        mp_curve = [results["multiprocess", p]["wall"] for p in self.RANK_COUNTS]
        if cores >= 2:
            verdict = (
                "PASS: multiprocess wall clock decreases 1 -> 4 ranks"
                if mp_curve == sorted(mp_curve, reverse=True)
                else "shape only (noisy run)"
            )
        else:
            verdict = (
                "single-core host: speedup assertion skipped; process "
                "ranks time-share the CPU like threads do"
            )
        lines.append(f"multiprocess PP wall 1/2/4 ranks: "
                     f"{' '.join(f'{w:.2f}' for w in mp_curve)} ({verdict})")
        save_result("scaling_backends", "\n".join(lines))

        # the strict speedup claim only holds where parallel hardware
        # exists; on a single core it is *expected* to fail, so gate it
        if cores >= 2:
            assert mp_curve[-1] < mp_curve[0], (
                f"multiprocess backend showed no wall-clock speedup on "
                f"{cores} cores: {mp_curve}"
            )
        # work metrics must scale regardless of the host: per-rank PP
        # interaction count shrinks with rank count on every backend
        # (wall clock only shrinks where real cores exist)
        for backend in ("thread", "multiprocess"):
            assert (
                results[backend, 4]["interactions_per_rank"]
                < 0.6 * results[backend, 1]["interactions_per_rank"]
            ), f"{backend}: per-rank PP work did not shrink with ranks"
        # both backends start from the same decomposition; timing-driven
        # cost balancing lets boundaries drift slightly after step 1
        for p in self.RANK_COUNTS:
            assert results["thread", p]["interactions_per_rank"] == (
                pytest.approx(
                    results["multiprocess", p]["interactions_per_rank"],
                    rel=0.02,
                )
            )


class TestProjectedScaling:
    def test_paper_pflops_pair(self, benchmark, save_result):
        """Project the paper's interaction counts through the machine
        model and the Table I scaling model."""

        def work():
            model = TableOneModel()
            model.calibrate(PAPER_TABLE1[24576], 24576)
            t82 = model.predict_total(82944)
            # account for the overhead gap between listed rows and the
            # reported totals (constant fraction)
            overhead = PAPER_TOTALS[24576]["total_seconds"] / sum(
                PAPER_TABLE1[24576].values()
            )
            return t82 * overhead

        t82 = benchmark(work)
        perf24 = measured_performance(
            PAPER_TOTALS[24576]["interactions_per_step"],
            PAPER_TOTALS[24576]["total_seconds"],
        )
        perf82_pred = measured_performance(
            PAPER_TOTALS[82944]["interactions_per_step"], t82
        )
        perf82_meas = measured_performance(
            PAPER_TOTALS[82944]["interactions_per_step"],
            PAPER_TOTALS[82944]["total_seconds"],
        )
        lines = [
            "Strong-scaling projection 24576 -> 82944 nodes",
            f"  predicted step time: {t82:.1f} s (paper measured 60.2 s)",
            f"  predicted performance: {perf82_pred/1e15:.2f} Pflops "
            f"(paper 4.45)",
            f"  anchored measurement: {perf24/1e15:.2f} Pflops at 24576 "
            f"(paper 1.53)",
            f"  predicted efficiency: "
            f"{100*efficiency(perf82_pred, K_FULL.machine):.1f}% (paper 42.0%)",
        ]
        save_result("scaling_projected", "\n".join(lines))
        assert perf82_pred / 1e15 == pytest.approx(4.45, rel=0.1)
        assert t82 == pytest.approx(60.2, rel=0.1)
        assert perf82_meas / 1e15 == pytest.approx(4.45, rel=0.03)
