"""Initial-condition transients: Zel'dovich vs 2LPT (extension ablation).

Zel'dovich starts carry decaying transients: a run started late (where
nonlinearities already matter at second order) underestimates the
clustering a run started early (reference) develops.  2LPT removes the
leading transient, so a late 2LPT start tracks the early reference more
closely — the standard justification for second-order initial
conditions in production codes.

Protocol: evolve the same realization to a common final epoch three
ways — reference (early Zel'dovich start), late Zel'dovich start, late
2LPT start — and compare the small-scale power at the end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.power import particle_power_spectrum
from repro.config import PMConfig, SimulationConfig, TreeConfig, TreePMConfig
from repro.cosmology.params import EINSTEIN_DE_SITTER
from repro.ic.lpt2 import Lpt2IC
from repro.ic.zeldovich import ZeldovichIC
from repro.integrate.stepper import CosmoStepper
from repro.sim.serial import SerialSimulation

N_PER_DIM = 12
MESH = 24
A_EARLY = 0.01
A_LATE = 0.05
A_FINAL = 0.12


def _pk_box(amp=2.0):
    # steep-ish spectrum: nonlinear by a ~ 0.1 at the box scale
    return lambda k, z=0.0: amp / (1.0 + (k / 15.0) ** 4)


def _simulate(ic_cls, a_start, seed=13, steps_per_efold=6):
    ic = ic_cls(
        EINSTEIN_DE_SITTER, _pk_box(), n_per_dim=N_PER_DIM, mesh_n=MESH,
        seed=seed,
    )
    pos, mom, mass = ic.generate(a_start=a_start)
    cfg = SimulationConfig(
        treepm=TreePMConfig(
            tree=TreeConfig(opening_angle=0.5, group_size=64),
            pm=PMConfig(mesh_size=MESH),
            softening=0.02 / N_PER_DIM,
        ),
        pp_subcycles=2,
    )
    sim = SerialSimulation(
        cfg, pos, mom, mass, stepper=CosmoStepper(EINSTEIN_DE_SITTER)
    )
    n = max(4, int(np.ceil(steps_per_efold * np.log(A_FINAL / a_start))))
    edges = np.geomspace(a_start, A_FINAL, n + 1)
    for e1, e2 in zip(edges[:-1], edges[1:]):
        sim.step(float(e1), float(e2))
    return sim


def _small_scale_power(sim):
    k, pk, counts = particle_power_spectrum(
        sim.pos, sim.mass, n_mesh=12, n_bins=5, subtract_shot_noise=False
    )
    good = counts > 50
    return float(np.sum((pk * counts)[good][-2:]))  # high-k band power


class TestIcTransients:
    def test_2lpt_tracks_early_reference(self, benchmark, save_result):
        def work():
            ref = _simulate(ZeldovichIC, A_EARLY)
            za = _simulate(ZeldovichIC, A_LATE)
            lpt2 = _simulate(Lpt2IC, A_LATE)
            return (
                _small_scale_power(ref),
                _small_scale_power(za),
                _small_scale_power(lpt2),
            )

        p_ref, p_za, p_2lpt = benchmark.pedantic(work, rounds=1, iterations=1)
        err_za = abs(p_za / p_ref - 1.0)
        err_2lpt = abs(p_2lpt / p_ref - 1.0)
        save_result(
            "ic_transients",
            "\n".join(
                [
                    "IC transients: small-scale band power at a = "
                    f"{A_FINAL} (reference: Zel'dovich start at a = {A_EARLY})",
                    f"  late (a={A_LATE}) Zel'dovich: "
                    f"{p_za/p_ref:.3f} of reference ({100*err_za:.1f}% off)",
                    f"  late (a={A_LATE}) 2LPT:       "
                    f"{p_2lpt/p_ref:.3f} of reference ({100*err_2lpt:.1f}% off)",
                ]
            ),
        )
        # the point of 2LPT: smaller transient error from a late start
        assert err_2lpt < err_za
