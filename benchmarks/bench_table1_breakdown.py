"""Table I: per-step cost breakdown and the headline Pflops numbers.

Three reproductions in one harness:

1. the analytic cross-validation — calibrate the per-row scaling model
   on the paper's 24576-node column and predict the 82944-node column;
2. the aggregate metrics (1.53 / 4.45 Pflops, 48.7% / 42.0% efficiency)
   recomputed from the paper's inputs through our machine model;
3. a measured breakdown of our own distributed step on the thread
   runtime, showing the same qualitative shape (PP force dominates,
   FFT does not shrink with rank count).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    DomainConfig,
    PMConfig,
    SimulationConfig,
    TreeConfig,
    TreePMConfig,
)
from repro.perf.flops import efficiency, measured_performance
from repro.perf.kcomputer import K_FULL, K_PARTIAL
from repro.perf.model import PAPER_TABLE1, PAPER_TOTALS, TableOneModel
from repro.perf.report import format_table1
from repro.sim.parallel import run_parallel_simulation
from repro.utils.timer import TimingLedger


def _sim_config(divisions, mesh=16):
    return SimulationConfig(
        treepm=TreePMConfig(
            tree=TreeConfig(opening_angle=0.5, group_size=64),
            pm=PMConfig(mesh_size=mesh),
            rcut_mesh_units=3.0,
            softening=5e-3,
        ),
        domain=DomainConfig(divisions=divisions, sample_rate=0.1),
        pp_subcycles=2,
    )


def _run_measured(clustered_box, divisions):
    pos, mass = clustered_box
    mom = np.zeros_like(pos)
    cfg = _sim_config(divisions)
    _, _, _, sims, _ = run_parallel_simulation(
        cfg, pos, mom, mass, 0.0, 0.004, n_steps=1
    )
    merged = TimingLedger()
    for s in sims:
        for k, v in s.table1_rows().items():
            merged.add(k, v)
    per_step = {k: v / len(sims) for k, v in merged.as_dict().items()}
    stats = {
        "interactions": sum(s.stats.interactions for s in sims),
        "interactions_per_rank": sum(s.stats.interactions for s in sims)
        / len(sims),
        "ni": float(np.mean([s.stats.mean_group_size for s in sims])),
        "nj": float(np.mean([s.stats.mean_list_length for s in sims])),
    }
    return per_step, stats


class TestTable1:
    def test_cross_validated_prediction(self, benchmark, save_result):
        """Calibrate at 24576 nodes -> predict 82944; render Table I."""

        def work():
            model = TableOneModel()
            model.calibrate(PAPER_TABLE1[24576], 24576)
            return model.predict(82944)

        pred = benchmark(work)

        footer = {}
        for label, p, machine in (
            ("paper p=24576", 24576, K_PARTIAL.machine),
            ("paper p=82944", 82944, K_FULL.machine),
        ):
            tot = PAPER_TOTALS[p]
            perf = measured_performance(
                tot["interactions_per_step"], tot["total_seconds"]
            )
            footer[label] = {
                "<Ni>": tot["ni"],
                "<Nj>": tot["nj"],
                "interactions/step (P)": tot["interactions_per_step"] / 1e15,
                "measured Pflops": perf / 1e15,
                "efficiency %": 100 * efficiency(perf, machine),
            }
        txt = format_table1(
            {
                "paper p=24576": PAPER_TABLE1[24576],
                "paper p=82944": PAPER_TABLE1[82944],
                "model->82944": pred,
            },
            footer=footer,
            title="TABLE I — paper measurements vs strong-scaling model "
            "(calibrated at p=24576)",
        )
        save_result("table1_breakdown", txt)

        meas = PAPER_TABLE1[82944]
        for row, value in meas.items():
            assert pred[row] == pytest.approx(value, rel=0.4), row

    def test_headline_pflops(self, benchmark, save_result):
        """1.53 and 4.45 Pflops, 48.7% and 42.0% efficiency."""

        def work():
            out = {}
            for p, machine in ((24576, K_PARTIAL.machine), (82944, K_FULL.machine)):
                tot = PAPER_TOTALS[p]
                perf = measured_performance(
                    tot["interactions_per_step"], tot["total_seconds"]
                )
                out[p] = (perf / 1e15, efficiency(perf, machine))
            return out

        out = benchmark(work)
        lines = ["headline reproduction (from interactions x 51 / step time):"]
        for p, (pf, eff) in out.items():
            paper = PAPER_TOTALS[p]
            lines.append(
                f"  p={p}: {pf:.2f} Pflops (paper {paper['pflops']}), "
                f"efficiency {100*eff:.1f}% (paper {100*paper['efficiency']:.1f}%)"
            )
        save_result("table1_headline", "\n".join(lines))
        assert out[24576][0] == pytest.approx(1.53, rel=0.03)
        assert out[82944][0] == pytest.approx(4.45, rel=0.03)
        assert out[24576][1] == pytest.approx(0.487, rel=0.03)
        assert out[82944][1] == pytest.approx(0.420, rel=0.03)

    def test_measured_breakdown_shape(self, benchmark, clustered_box, save_result):
        """Our own distributed step: the same structural facts as the
        paper's table — PP dominates the step, and the PP section
        shrinks when ranks double while FFT does not."""
        per_step_2, stats2 = _run_measured(clustered_box, (2, 1, 1))

        def work():
            return _run_measured(clustered_box, (2, 2, 1))

        per_step_4, stats4 = benchmark.pedantic(work, rounds=1, iterations=1)

        model = TableOneModel
        s2 = model.section_totals(per_step_2)
        s4 = model.section_totals(per_step_4)
        txt = format_table1(
            {"measured p=2": per_step_2, "measured p=4": per_step_4},
            footer={
                "measured p=2": {"<Ni>": stats2["ni"], "<Nj>": stats2["nj"]},
                "measured p=4": {"<Ni>": stats4["ni"], "<Nj>": stats4["nj"]},
            },
            title="Measured thread-runtime breakdown (seconds/step/rank)",
        )
        save_result("table1_measured", txt)

        # structural assertions (the paper's shape).  Wall clock on the
        # 1-CPU thread runtime is GIL-shared, so the rank-scaling check
        # uses the exact work metric.
        assert s2["PP"] > s2["PM"]  # PP dominates
        assert (
            stats4["interactions_per_rank"]
            < 0.75 * stats2["interactions_per_rank"]
        )  # PP work shrinks with ranks
        assert stats4["nj"] > 0 and stats4["ni"] > 0
