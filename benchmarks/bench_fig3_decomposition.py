"""Figure 3: the dynamic domain decomposition under clustering.

The paper's figure shows an 8x8 (2-D) multisection division where
"high density structures are divided into small domains so that the
calculation costs of all processes are the same".  This harness builds
exactly that configuration from the sampling method and quantifies the
load balance, including the static-decomposition ablation and the
boundary-smoothing behaviour.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.decomp.multisection import MultisectionDecomposition
from repro.decomp.sampling import BoundaryHistory


@pytest.fixture(scope="module")
def clustered_2d():
    """The figure's situation: strong central clustering + background."""
    rng = np.random.default_rng(33)
    blob1 = 0.45 + 0.04 * rng.standard_normal((30000, 3))
    blob2 = np.array([0.75, 0.3, 0.5]) + 0.02 * rng.standard_normal((12000, 3))
    bg = rng.random((8000, 3))
    return np.clip(np.vstack([blob1, blob2, bg]), 0, 1 - 1e-9)


class TestFig3Decomposition:
    def test_8x8_division(self, benchmark, clustered_2d, save_result):
        pos = clustered_2d

        def work():
            return MultisectionDecomposition.from_samples(pos, (8, 8, 1))

        decomp = benchmark.pedantic(work, rounds=1, iterations=1)
        counts = np.bincount(decomp.owner_of(pos), minlength=64)
        vols = decomp.domain_volumes()

        static = MultisectionDecomposition.uniform((8, 8, 1))
        static_counts = np.bincount(static.owner_of(pos), minlength=64)

        lines = [
            "Fig. 3 reproduction: 8x8 multisection of a clustered box "
            f"({len(pos)} particles)",
            f"  dynamic: counts max/min = {counts.max()}/{counts.min()} "
            f"(imbalance {counts.max()/counts.mean():.2f}x mean)",
            f"  static : counts max/min = {static_counts.max()}/"
            f"{max(static_counts.min(),1)} "
            f"(imbalance {static_counts.max()/static_counts.mean():.2f}x mean)",
            f"  domain volume ratio max/min = {vols.max()/vols.min():.1f} "
            "(small domains wrap the clusters)",
            "  x boundaries: "
            + " ".join(f"{b:.3f}" for b in decomp.x_bounds),
        ]
        save_result("fig3_decomposition", "\n".join(lines))

        # the paper's claim: equal costs per domain
        assert counts.max() / counts.mean() < 1.5
        # and the ablation: static decomposition is badly imbalanced
        assert static_counts.max() / static_counts.mean() > 5.0
        # clustered regions get much smaller domains
        assert vols.max() / vols.min() > 20.0

    def test_boundary_smoothing_ablation(self, benchmark, save_result):
        """The 5-step moving average suppresses sampling-noise jumps
        ("we suppress sudden increment of the amount of transfer of
        particles across boundaries")."""
        rng = np.random.default_rng(7)
        pos = np.clip(
            np.vstack(
                [0.5 + 0.1 * rng.standard_normal((5000, 3)), rng.random((2000, 3))]
            ),
            0,
            1 - 1e-9,
        )

        def boundary_track(window):
            hist = BoundaryHistory(window)
            track = []
            for step in range(12):
                sub = pos[rng.choice(len(pos), 400, replace=False)]
                d = MultisectionDecomposition.from_samples(sub, (4, 4, 1))
                smoothed = hist.push(d.flatten())
                track.append(smoothed)
            return np.array(track)

        def work():
            return boundary_track(5), boundary_track(1)

        smooth, raw = benchmark.pedantic(work, rounds=1, iterations=1)
        jumps_smooth = np.abs(np.diff(smooth, axis=0)).max(axis=1)
        jumps_raw = np.abs(np.diff(raw, axis=0)).max(axis=1)
        # ignore the warm-up steps of the moving average
        ratio = jumps_smooth[5:].mean() / jumps_raw[5:].mean()
        save_result(
            "fig3_boundary_smoothing",
            f"max boundary jump per step: raw {jumps_raw[5:].mean():.4f} "
            f"-> smoothed {jumps_smooth[5:].mean():.4f} "
            f"({ratio:.2f}x, 5-step linear weighted moving average)",
        )
        assert ratio < 0.6
