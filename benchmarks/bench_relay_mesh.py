"""Section II-B: the relay mesh method timing experiment.

Reproduces the paper's 4096^3-FFT-on-12288-nodes measurement two ways:

1. **Model at paper scale** — the congestion model calibrated on the
   *direct-method* timings (10 s forward, 3 s backward) predicts the
   relay-method timings; the paper measured ~3 s and ~0.3 s with 3
   groups.
2. **Measured at thread-runtime scale** — the real implementation runs
   both conversion methods over the simulated torus and the network
   model converts the recorded traffic into modeled time, showing the
   senders-per-FFT-process collapse and the conversion-time improvement.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.forces.cutoff import S2ForceSplit
from repro.meshcomm.parallel_pm import ParallelPM
from repro.mpi.runtime import MPIRuntime
from repro.perf.relaymodel import PAPER_RELAY_CASE, MeshExchangeModel

N_MESH = 16
N_RANKS = 12
N_FFT = 2


def _run_conversion(n_groups: int):
    """One full PM force cycle on 12 ranks; returns traffic metrics."""
    rng = np.random.default_rng(5)
    pos = rng.random((1200, 3))
    mass = np.full(1200, 1.0 / 1200)
    rt = MPIRuntime(N_RANKS, torus_shape=(3, 2, 2))
    split = S2ForceSplit(3.0 / N_MESH)

    def fn(comm):
        lo = np.array([comm.rank / comm.size, 0.0, 0.0])
        hi = np.array([(comm.rank + 1) / comm.size, 1.0, 1.0])
        sel = (pos[:, 0] >= lo[0]) & (pos[:, 0] < hi[0])
        ppm = ParallelPM(
            comm, N_MESH, split=split, n_fft=N_FFT, n_groups=n_groups
        )
        ppm.forces(pos[sel], mass[sel], lo, hi)

    rt.run(fn)
    fwd = rt.traffic.phase("pm:mesh_to_slab")
    bwd = rt.traffic.phase("pm:slab_to_mesh")
    return {
        "fwd_senders": fwd.max_senders_per_receiver(),
        "bwd_senders": bwd.max_senders_per_receiver(),
        "fwd_modeled_s": rt.network.phase_time(fwd).seconds,
        "bwd_modeled_s": rt.network.phase_time(bwd).seconds,
        "fwd_bytes": fwd.total_bytes,
        "bwd_bytes": bwd.total_bytes,
    }


class TestRelayMeshPaperScale:
    def test_model_predicts_relay_timings(self, benchmark, save_result):
        """Calibrated-on-direct model vs the paper's relay numbers."""

        def work():
            m = MeshExchangeModel.calibrated_to_paper()
            return {g: m.summary(g) for g in (1, 2, 3, 4, 6)}

        out = benchmark(work)
        lines = [
            "Relay mesh model @ 4096^3 mesh, 12288 nodes "
            "(calibrated on the DIRECT method only)",
            f"{'groups':>7} {'fwd s':>8} {'bwd s':>8} {'senders/slab':>13}",
        ]
        for g, s in out.items():
            lines.append(
                f"{g:>7} {s['forward_seconds']:>8.2f} "
                f"{s['backward_seconds']:>8.2f} {s['senders_per_slab']:>13.0f}"
            )
        lines.append(
            f"paper:  direct 10.0 / 3.0 s   relay(3 groups) 3.0 / 0.3 s   "
            f"FFT {PAPER_RELAY_CASE['fft']} s"
        )
        save_result("relay_mesh_model", "\n".join(lines))

        assert out[1]["forward_seconds"] == pytest.approx(10.0)
        assert out[1]["backward_seconds"] == pytest.approx(3.0)
        assert out[3]["forward_seconds"] == pytest.approx(3.0, rel=0.25)
        assert out[3]["backward_seconds"] == pytest.approx(0.3, rel=0.6)

    def test_speedup_more_than_factor_four(self, benchmark):
        """"we achieve speed up more than a factor of four for the
        communication" (paper: 13 s -> 3.3 s)."""

        def work():
            m = MeshExchangeModel.calibrated_to_paper()
            direct = m.forward_seconds(1) + m.backward_seconds(1)
            relay = m.forward_seconds(3) + m.backward_seconds(3)
            return direct / relay

        assert benchmark(work) > 3.0


class TestRelayMeshMeasured:
    def test_direct_method(self, benchmark):
        out = benchmark.pedantic(
            lambda: _run_conversion(1), rounds=1, iterations=1
        )
        assert out["fwd_senders"] > 0

    def test_relay_method(self, benchmark, save_result):
        out_relay = benchmark.pedantic(
            lambda: _run_conversion(4), rounds=1, iterations=1
        )
        out_direct = _run_conversion(1)

        lines = [
            f"Measured conversions on {N_RANKS} thread ranks, mesh {N_MESH}^3, "
            f"{N_FFT} FFT processes (network-model seconds on a 3x2x2 torus)",
            f"{'method':>12} {'fwd senders':>12} {'bwd senders':>12} "
            f"{'fwd model s':>12} {'bwd model s':>12}",
            f"{'direct':>12} {out_direct['fwd_senders']:>12} "
            f"{out_direct['bwd_senders']:>12} {out_direct['fwd_modeled_s']:>12.3e} "
            f"{out_direct['bwd_modeled_s']:>12.3e}",
            f"{'relay x4':>12} {out_relay['fwd_senders']:>12} "
            f"{out_relay['bwd_senders']:>12} {out_relay['fwd_modeled_s']:>12.3e} "
            f"{out_relay['bwd_modeled_s']:>12.3e}",
        ]
        save_result("relay_mesh_measured", "\n".join(lines))

        # the defining property: fewer concurrent senders per FFT process
        assert out_relay["fwd_senders"] < out_direct["fwd_senders"]
