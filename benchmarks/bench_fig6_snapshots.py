"""Figure 6: snapshots of the early-universe microhalo simulation.

The paper's figure shows the dark matter distribution at z = 400
(initial), 70, 40 and 31 in a 600-comoving-parsec box whose power
spectrum carries the free-streaming cutoff of a 100 GeV neutralino,
plus two zoom-ins; the smallest structures condense out of the smooth
initial state by z ~ 31.

This harness runs the same physical setup scaled to laptop size: the
box is chosen so the free-streaming cutoff stays *resolved* (the
paper's design constraint), the particles start from Zel'dovich initial
conditions at z = 400 and integrate to z = 31 through the serial TreePM
driver.  It writes the four projection arrays and checks the figure's
qualitative content: structure grows monotonically and microhalos exist
by the final epoch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.fof import halo_catalog
from repro.analysis.power import particle_power_spectrum
from repro.analysis.profiles import clumping_factor
from repro.analysis.projection import density_projection, zoom_projection
from repro.config import PMConfig, SimulationConfig, TreeConfig, TreePMConfig
from repro.cosmology.params import WMAP7
from repro.cosmology.power_spectrum import PowerSpectrum
from repro.ic.zeldovich import ZeldovichIC
from repro.integrate.stepper import CosmoStepper
from repro.sim.serial import SerialSimulation

#: neutralino free-streaming cutoff (Green et al. 2004 scale)
K_FS_PHYS = 1.0e6  # h/Mpc
#: box chosen so the cutoff sits at ~6 box modes: resolved by the mesh
BOX_MPC_H = 40.0 / K_FS_PHYS
#: amplitude boost compensating the missing rare-peak statistics of a
#: 16^3 box (the paper's trillion-particle volume collapses its >4-sigma
#: peaks by z=31; our box holds ~32^3 modes and none reach that, so we
#: simulate an overdense patch instead: sigma(z=31) ~ 1)
AMPLITUDE_BOOST = 3.0

SNAPSHOT_REDSHIFTS = [400.0, 70.0, 40.0, 31.0]
N_PER_DIM = 16
MESH = 32


def _setup():
    ps = PowerSpectrum(WMAP7, k_fs=K_FS_PHYS)
    base = ps.in_box_units(BOX_MPC_H)

    def pk_box(k, z=0.0):
        return AMPLITUDE_BOOST**2 * base(k, z)
    ic = ZeldovichIC(WMAP7, pk_box, n_per_dim=N_PER_DIM, mesh_n=MESH, seed=2012)
    a0 = 1.0 / (1.0 + SNAPSHOT_REDSHIFTS[0])
    pos, mom, mass = ic.generate(a_start=a0)
    cfg = SimulationConfig(
        treepm=TreePMConfig(
            tree=TreeConfig(opening_angle=0.5, group_size=64),
            pm=PMConfig(mesh_size=MESH),
            rcut_mesh_units=3.0,
            softening=0.02 / N_PER_DIM,
        ),
        pp_subcycles=2,
    )
    sim = SerialSimulation(cfg, pos, mom, mass, stepper=CosmoStepper(WMAP7))
    return sim, ic


def _run_to_snapshots(sim):
    """Integrate with log-spaced steps, stopping at each snapshot a."""
    snaps = {}
    a_values = [1.0 / (1.0 + z) for z in SNAPSHOT_REDSHIFTS]
    snaps[SNAPSHOT_REDSHIFTS[0]] = (sim.pos.copy(), sim.mom.copy())
    for z_from, z_to in zip(SNAPSHOT_REDSHIFTS[:-1], SNAPSHOT_REDSHIFTS[1:]):
        a1, a2 = 1.0 / (1.0 + z_from), 1.0 / (1.0 + z_to)
        n = max(4, int(np.ceil(12 * np.log(a2 / a1) / np.log(12.9))))
        edges = np.geomspace(a1, a2, n + 1)
        for e1, e2 in zip(edges[:-1], edges[1:]):
            sim.step(float(e1), float(e2))
        snaps[z_to] = (sim.pos.copy(), sim.mom.copy())
    return snaps


class TestFig6Snapshots:
    def test_microhalo_formation_run(self, benchmark, save_result, results_dir):
        sim, ic = _setup()
        rms0 = ic.rms_displacement(1.0 / 401.0)
        assert rms0 < 0.5 / N_PER_DIM  # ICs well within linear regime

        snaps = benchmark.pedantic(
            lambda: _run_to_snapshots(sim), rounds=1, iterations=1
        )

        mass = sim.mass
        lines = [
            "Fig. 6 reproduction: microhalo formation from z=400 to z=31",
            f"(box = {BOX_MPC_H*1e6:.0f} pc/h, {N_PER_DIM}^3 particles, "
            f"k_fs x box = 40)",
            f"{'z':>6} {'clumping':>9} {'max/mean Sigma':>15} {'halos':>6}",
        ]
        clump = {}
        for z in SNAPSHOT_REDSHIFTS:
            pos, _ = snaps[z]
            img = density_projection(pos, mass, n_pixels=64)
            np.save(results_dir / f"fig6_projection_z{int(z)}.npy", img)
            clump[z] = clumping_factor(pos, mass, n_mesh=16)
            halos = halo_catalog(
                pos, mass, linking_length=0.2 / N_PER_DIM, min_members=20
            )
            lines.append(
                f"{z:>6.0f} {clump[z]:>9.3f} {img.max()/img.mean():>15.1f} "
                f"{len(halos):>6}"
            )

        # the paper's zoom panels at the final epoch
        pos31, _ = snaps[31.0]
        halos = halo_catalog(pos31, mass, 0.2 / N_PER_DIM, min_members=20)
        if halos:
            c = halos[0].center
            for frac, tag in ((1.0 / 16.0, "37.5pc"), (1.0 / 4.0, "150pc")):
                img = zoom_projection(
                    pos31, mass, (c[0], c[1]), width=frac, n_pixels=64
                )
                np.save(results_dir / f"fig6_zoom_{tag}.npy", img)
            lines.append(
                f"largest microhalo: {halos[0].n_particles} particles at "
                f"({c[0]:.2f}, {c[1]:.2f}, {c[2]:.2f})"
            )
        save_result("fig6_snapshots", "\n".join(lines))

        # Figure 6's content: monotone structure growth, halos by z=31
        cs = [clump[z] for z in SNAPSHOT_REDSHIFTS]
        assert cs[0] == pytest.approx(1.0, abs=0.05)  # smooth ICs
        assert cs[0] < cs[1] < cs[2] < cs[3]
        assert cs[3] > 1.5  # visible structure by z=31
        assert len(halos) >= 1  # microhalos have condensed

    def test_linear_growth_of_large_modes(self, benchmark, save_result):
        """Cross-check: with the unboosted (fully linear) spectrum, the
        power grows by the squared growth-factor ratio from z=400 to
        z=200."""
        ps = PowerSpectrum(WMAP7, k_fs=K_FS_PHYS)
        pk_box = ps.in_box_units(BOX_MPC_H)
        ic = ZeldovichIC(
            WMAP7, pk_box, n_per_dim=N_PER_DIM, mesh_n=MESH, seed=2012
        )
        a0, a1 = 1.0 / 401.0, 1.0 / 201.0
        pos0, mom0, mass = ic.generate(a_start=a0)
        cfg = SimulationConfig(
            treepm=TreePMConfig(
                tree=TreeConfig(opening_angle=0.5, group_size=64),
                pm=PMConfig(mesh_size=MESH),
                rcut_mesh_units=3.0,
                softening=0.02 / N_PER_DIM,
            ),
            pp_subcycles=2,
        )
        sim = SerialSimulation(cfg, pos0, mom0, mass, stepper=CosmoStepper(WMAP7))

        def work():
            edges = np.geomspace(a0, a1, 9)
            for e1, e2 in zip(edges[:-1], edges[1:]):
                sim.step(float(e1), float(e2))
            return sim.pos.copy()

        pos1 = benchmark.pedantic(work, rounds=1, iterations=1)
        # displaced lattices carry no Poisson shot noise: don't subtract
        k0, p0, c0 = particle_power_spectrum(
            pos0, mass, n_mesh=16, n_bins=6, subtract_shot_noise=False
        )
        k1, p1, c1 = particle_power_spectrum(
            pos1, mass, n_mesh=16, n_bins=6, subtract_shot_noise=False
        )
        growth = ic.growth.D_ratio(a0, a1) ** 2
        good = (c0 > 5) & (p0 > 0)
        measured = (p1[good] / p0[good])[0]  # largest-scale usable bin
        save_result(
            "fig6_linear_growth",
            f"P(k) growth z=400 -> z=200 at the largest resolved scale: "
            f"measured x{measured:.2f}, linear theory x{growth:.2f}",
        )
        assert measured == pytest.approx(growth, rel=0.25)
