"""Figures 1-2: the tree interaction structure and the force split.

Figure 2 is a schematic of the P3M/TreePM decomposition: a short-range
part that "decreases rapidly at large distance, and drops [to] zero at
a finite distance", and a long-range part carried by the PM mesh.
This harness renders the quantitative content of the schematic —
``g_P3M(xi)``, the complementary PM fraction, and the cutoff radius —
and Figure 1's particle-particle / particle-multipole interaction mix
measured from a real traversal.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.forces.cutoff import S2ForceSplit, gp3m_cutoff
from repro.forces.ewald import EwaldSummation
from repro.tree.traversal import TreeSolver


class TestForceSplitCurves:
    def test_gp3m_profile(self, benchmark, save_result):
        """The short/long-range force shares as a function of xi."""
        xi = np.linspace(0.0, 2.2, 12)

        def work():
            return gp3m_cutoff(xi)

        g = benchmark(work)
        lines = [
            "Force split (eq. 3): short-range share g(xi), xi = 2r/rcut",
            f"{'xi':>6} {'g (PP share)':>13} {'PM share':>9}",
        ]
        for x, v in zip(xi, g):
            lines.append(f"{x:>6.2f} {v:>13.5f} {1.0 - v:>9.5f}")
        save_result("fig2_force_split", "\n".join(lines))
        assert g[0] == pytest.approx(1.0)
        assert np.all(g[xi >= 2.0] == 0.0)

    def test_split_sum_is_total_force(self, benchmark, save_result):
        """PP + PM reconstructs the exact periodic pair force across
        the cutoff transition (Fig. 2's central claim)."""
        from repro.mesh.poisson import PMSolver

        n = 32
        split = S2ForceSplit(4.0 / n)
        solver = PMSolver(n, split=split)
        ewald = EwaldSummation()
        src = np.array([[0.5, 0.5, 0.5]])
        mass = np.array([1.0])
        radii = np.array([0.03, 0.06, 0.0625, 0.1, 0.125, 0.2, 0.3])

        def work():
            rows = []
            for r in radii:
                tgt = np.array([[0.5 + r, 0.5, 0.5]])
                pp = -split.short_range_factor(np.array([r]))[0] / r**2
                pm = solver.forces(src, mass, targets=tgt)[0, 0]
                exact = ewald.pair_acceleration(tgt[0] - src[0])[0]
                rows.append((r, pp, pm, exact))
            return rows

        rows = benchmark.pedantic(work, rounds=1, iterations=1)
        lines = [
            f"Pair force decomposition (rcut = {split.rcut:.4f})",
            f"{'r':>7} {'PP':>12} {'PM':>12} {'PP+PM':>12} {'Ewald':>12}",
        ]
        for r, pp, pm, exact in rows:
            lines.append(
                f"{r:>7.4f} {pp:>12.4f} {pm:>12.4f} {pp+pm:>12.4f} {exact:>12.4f}"
            )
        save_result("fig2_pair_decomposition", "\n".join(lines))
        for r, pp, pm, exact in rows:
            assert pp + pm == pytest.approx(exact, rel=0.08, abs=0.3)
        # beyond the cutoff PP vanishes and PM carries everything
        assert rows[-1][1] == 0.0


class TestFig1InteractionMix:
    def test_particle_vs_multipole_interactions(
        self, benchmark, clustered_box, save_result
    ):
        """Figure 1's red (particle-particle) vs blue (particle-
        multipole) arrows: count both list populations per theta."""
        pos, mass = clustered_box
        split = S2ForceSplit(3.0 / 16)

        def mix(theta):
            solver = TreeSolver(
                theta=theta, split=split, periodic=True, group_size=64
            )
            _, stats = solver.forces(pos, mass)
            return stats.pp_from_particles, stats.pp_from_nodes

        def work():
            return {th: mix(th) for th in (0.3, 0.5, 0.8)}

        out = benchmark.pedantic(work, rounds=1, iterations=1)
        lines = [
            "Interaction mix (particles vs multipoles in the lists)",
            f"{'theta':>6} {'p-p':>12} {'p-multipole':>12} {'multipole %':>12}",
        ]
        for th, (pp, pn) in out.items():
            lines.append(
                f"{th:>6.2f} {pp:>12} {pn:>12} {100*pn/(pp+pn):>12.1f}"
            )
        save_result("fig1_interaction_mix", "\n".join(lines))
        # opening the tree less (larger theta) shifts work to multipoles
        assert out[0.8][1] / max(out[0.8][0], 1) > out[0.3][1] / max(out[0.3][0], 1)
