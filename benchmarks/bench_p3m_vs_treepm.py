"""The "why TreePM, not P3M" claim of the introduction.

"It is not practical to use the P3M algorithm since the computational
cost of the short-range part increases rapidly as the formation
proceeds.  The calculation cost of a cell within the cutoff radius with
n particles is O(n^2).  Thus, for a cell with 1000 times more particles
than average, the cost is 10^6 times more expensive.  The TreePM
algorithm can solve this problem, since the calculation cost of such
[a] cell is O(n log n)."

This harness evolves the degree of clustering of a particle set from
uniform to heavily concentrated and measures the short-range work of
both methods — P3M's cell-list pair count blows up quadratically while
the tree's interaction count grows only mildly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.forces.cutoff import S2ForceSplit
from repro.pp.celllist import CellList, p3m_short_range_forces
from repro.pp.kernel import InteractionCounter
from repro.tree.traversal import tree_forces

N = 4000
RCUT = 0.08


def _particles(cluster_fraction: float, sigma: float, rng):
    """A fraction of particles concentrated in a blob of width sigma."""
    n_blob = int(N * cluster_fraction)
    blob = np.mod(0.5 + sigma * rng.standard_normal((n_blob, 3)), 1.0)
    bg = rng.random((N - n_blob, 3))
    return np.vstack([blob, bg])


class TestP3MCostBlowup:
    def test_cost_growth_under_clustering(self, benchmark, save_result):
        rng = np.random.default_rng(4)
        mass = np.full(N, 1.0 / N)
        split = S2ForceSplit(RCUT)
        stages = [
            ("uniform", 0.0, 1.0),
            ("mild", 0.5, 0.05),
            ("strong", 0.8, 0.02),
            ("extreme", 0.9, 0.008),
        ]

        def work():
            rows = []
            for name, frac, sigma in stages:
                pos = _particles(frac, sigma, rng)
                p3m_pairs = CellList(pos, RCUT).cost_estimate()
                _, stats = tree_forces(
                    pos, mass, theta=0.5, split=split, periodic=True,
                    group_size=64,
                )
                max_occ = CellList(pos, RCUT).occupancy().max()
                rows.append((name, max_occ, p3m_pairs, stats.interactions))
            return rows

        rows = benchmark.pedantic(work, rounds=1, iterations=1)

        lines = [
            f"P3M vs TreePM short-range cost under clustering "
            f"(N={N}, rcut={RCUT})",
            f"{'stage':>8} {'max cell occ.':>14} {'P3M pairs':>12} "
            f"{'tree interactions':>18} {'P3M/tree':>9}",
        ]
        for name, occ, p3m, tree in rows:
            lines.append(
                f"{name:>8} {occ:>14} {p3m:>12} {tree:>18} {p3m/tree:>9.1f}"
            )
        u, e = rows[0], rows[-1]
        lines.append(
            f"P3M cost growth uniform -> extreme: {e[2]/u[2]:.0f}x; "
            f"tree: {e[3]/u[3]:.1f}x (the paper's O(n^2) vs O(n log n))"
        )
        save_result("p3m_vs_treepm", "\n".join(lines))

        # the claim: P3M cost explodes, tree cost stays tame
        assert e[2] / u[2] > 10.0
        assert e[3] / u[3] < 0.3 * e[2] / u[2]

    def test_both_methods_same_physics(self, benchmark):
        """Sanity: the two short-range solvers agree (tree opened
        exactly) on a clustered set."""
        rng = np.random.default_rng(5)
        pos = _particles(0.5, 0.05, rng)[:600]
        mass = np.full(600, 1.0 / 600)
        split = S2ForceSplit(RCUT)

        def work():
            a = p3m_short_range_forces(pos, mass, split, eps=1e-4)
            b, _ = tree_forces(
                pos, mass, theta=1e-6, split=split, eps=1e-4, periodic=True
            )
            return float(np.abs(a - b).max())

        diff = benchmark.pedantic(work, rounds=1, iterations=1)
        assert diff < 1e-9
