"""Overhead of the SDC audit battery (docs/fault_tolerance.md §8).

The audit layer is only worth leaving on in production if it is nearly
free: the fingerprint is one vectorised pass over ids/mass, the
snapshot audit hashes the frozen buddy copies (not the live arrays on
the hot path), and the ABFT spot-check re-sweeps a *fixed* number of
plan groups — so the relative cost shrinks as the problem grows.  The
budget is < 5% wall-clock at the default cadence (``audit_every=1``,
``spot_check_groups=4``).

This harness times a fault-free elastic run with the battery off and
with ``policy="heal"`` fully armed, and writes the measured ratio to
``benchmarks/results/sdc_overhead.txt``.  CI runs it report-only
(shared-runner timings are too noisy to gate on); the budget assert
documents the acceptance threshold.
"""

from __future__ import annotations

import time

import numpy as np

from repro.config import (
    DomainConfig,
    PMConfig,
    SdcConfig,
    SimulationConfig,
    TreePMConfig,
)
from repro.sim.elastic import run_elastic_simulation

N = 8000
N_RANKS = 2
N_STEPS = 6
T_END = 0.06
REPEATS = 3
OVERHEAD_BUDGET = 0.05


def _config(policy: str) -> SimulationConfig:
    return SimulationConfig(
        domain=DomainConfig(
            divisions=(N_RANKS, 1, 1), sample_rate=0.3, cost_balance=False
        ),
        treepm=TreePMConfig(pm=PMConfig(mesh_size=16)),
        # default cadence: audit every step, 4-group spot-check
        sdc=SdcConfig(policy=policy),
    )


def _system(seed: int = 23):
    rng = np.random.default_rng(seed)
    return (
        rng.random((N, 3)),
        rng.normal(scale=0.01, size=(N, 3)),
        np.full(N, 1.0 / N),
    )


def _run_once(policy: str) -> float:
    pos, mom, mass = _system()
    t0 = time.perf_counter()
    p, m, w, runners, _ = run_elastic_simulation(
        _config(policy), pos, mom, mass, 0.0, T_END, N_STEPS,
        buddy_every=1, backend="thread",
    )
    elapsed = time.perf_counter() - t0
    assert len(p) == N
    if policy == "heal":
        # a clean run must stay clean: the battery ran and found nothing
        assert all(not r.sdc.events for r in runners)
    return elapsed


def _best_of(policy: str) -> float:
    return min(_run_once(policy) for _ in range(REPEATS))


class TestSdcOverhead:
    def test_audit_battery_overhead_within_budget(self, save_result):
        base = _best_of("off")
        audited = _best_of("heal")
        overhead = audited / base - 1.0
        lines = [
            f"elastic smoke sim: {N} particles, {N_RANKS} ranks, "
            f"{N_STEPS} steps, best of {REPEATS}",
            "audit battery: fingerprint + 4-group ABFT spot-check + "
            "snapshot digest cross-check, every step",
            f"audits off : {base * 1e3:8.1f} ms",
            f"audits heal: {audited * 1e3:8.1f} ms",
            f"overhead   : {overhead:+8.1%}  (budget {OVERHEAD_BUDGET:.0%})",
        ]
        save_result("sdc_overhead", "\n".join(lines))
        assert overhead < OVERHEAD_BUDGET
