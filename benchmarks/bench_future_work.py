"""The paper's conclusion: lifting the FFT bottleneck.

"The current bottleneck is FFT.  We believe that the combination of our
novel relay mesh method and a 3-D parallel FFT library will
significantly improve the performance and the scalability.  We aim to
achieve peak performance higher than 5 Pflops on the full system."

Two parts:

1. **measured** — the pencil FFT runs with more processes than the mesh
   side length (impossible for the 1-D slab FFT, whose cap froze the
   paper's FFT row at ~4.1 s on both node counts) and matches numpy's
   FFT exactly;
2. **projected** — replaying Table I with the FFT row scaling ~1/p
   beyond the old 4096-process cap quantifies how far the fix goes
   toward the 5 Pflops aim: FFT alone gives ~4.8, FFT + the mesh
   conversions ~5.0 — "higher than 5 Pflops" needs exactly this plus a
   margin, consistent with the paper's aim.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import FLOPS_PER_INTERACTION
from repro.mesh.greens import build_greens_function
from repro.meshcomm.parallel_fft import SlabFFT
from repro.meshcomm.pencil_fft import PencilFFT
from repro.mpi.runtime import run_spmd
from repro.perf.model import PAPER_TABLE1, PAPER_TOTALS

N = 8


class TestPencilBeyondSlabCap:
    def test_slab_fft_capped_at_n(self, benchmark):
        """The constraint that froze the paper's FFT row."""
        from repro.meshcomm.slab import SlabDecomposition

        def work():
            with pytest.raises(ValueError, match="1-D slab"):
                SlabDecomposition(N, N + 1)
            return True

        assert benchmark(work)

    def test_pencil_fft_uses_n_squared_processes(self, benchmark, save_result):
        """4x the slab cap, bit-exact against numpy."""
        rng = np.random.default_rng(8)
        glob = rng.random((N, N, N))
        grid = (8, 4)  # 32 processes > N = 8

        def run():
            def fn(comm):
                fft = PencilFFT(comm, N, grid)
                (xa, xb), (ya, yb), (za, zb) = fft.real_ranges()
                kp = fft.forward(glob[xa:xb, ya:yb, za:zb].astype(complex))
                return fft.kspace_ranges(), kp

            return run_spmd(grid[0] * grid[1], fn)

        out = benchmark.pedantic(run, rounds=1, iterations=1)
        ref = np.fft.fftn(glob)
        err = 0.0
        for (xr, yr, _), kp in out:
            err = max(err, float(np.abs(kp - ref[xr[0]:xr[1], yr[0]:yr[1], :]).max()))
        save_result(
            "future_work_pencil",
            f"pencil FFT on {grid[0] * grid[1]} processes for an {N}^3 mesh "
            f"(slab cap: {N}); max |error| vs numpy fftn = {err:.2e}",
        )
        assert err < 1e-10


class TestFivePflopsProjection:
    def test_projection_table(self, benchmark, save_result):
        def work():
            p = 82944
            tot = PAPER_TOTALS[p]
            rows = dict(PAPER_TABLE1[p])
            # overhead between the listed rows and the reported total
            overhead = tot["total_seconds"] / sum(rows.values())

            def pflops(total_seconds):
                return (
                    tot["interactions_per_step"]
                    * FLOPS_PER_INTERACTION
                    / total_seconds
                    / 1e15
                )

            scenarios = {}
            scenarios["paper (measured)"] = tot["total_seconds"]
            # pencil FFT: the 4096-process cap becomes p processes
            fft_fixed = rows["PM/FFT"] * 4096.0 / p
            t = (sum(rows.values()) - rows["PM/FFT"] + fft_fixed) * overhead
            scenarios["+ pencil FFT"] = t
            # plus relay-mesh conversions shrink with the 2-D layout
            # (senders per pencil ~ 1/sqrt(p_fft) of the slab case)
            comm_fixed = rows["PM/communication"] * 0.5
            t2 = (
                sum(rows.values())
                - rows["PM/FFT"]
                - rows["PM/communication"]
                + fft_fixed
                + comm_fixed
            ) * overhead
            scenarios["+ pencil FFT + 2-D conversion"] = t2
            return {k: (v, pflops(v)) for k, v in scenarios.items()}

        out = benchmark(work)
        lines = [
            "Projection: the paper's 'higher than 5 Pflops' aim at 82944 nodes",
            f"{'scenario':>32} {'step s':>8} {'Pflops':>8}",
        ]
        for k, (t, pf) in out.items():
            lines.append(f"{k:>32} {t:>8.1f} {pf:>8.2f}")
        save_result("future_work_projection", "\n".join(lines))

        assert out["paper (measured)"][1] == pytest.approx(4.49, abs=0.05)
        # the FFT fix alone recovers most of the gap toward 5 Pflops;
        # the remaining margin must come from PP-side tuning (the
        # paper: "We will further continue the optimization")
        assert out["+ pencil FFT"][1] > 4.7
        assert out["+ pencil FFT + 2-D conversion"][1] > 4.85
