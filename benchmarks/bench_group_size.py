"""The <Ni> trade-off of Barnes' modified algorithm (paper section II).

Larger traversal groups mean fewer tree walks but longer interaction
lists (<Nj> grows), so the optimum group size depends on the ratio of
the host's per-node traversal cost to the kernel's per-interaction
cost: "It is around 100 for K computer, and 500 for a GPU cluster."

This harness measures <Nj>(Ni) and traversal counts on a clustered box
with our tree, then evaluates the machine cost model for a K-like and a
GPU-like kernel rate, reproducing the two optima's separation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import FLOPS_PER_INTERACTION
from repro.forces.cutoff import S2ForceSplit
from repro.tree.traversal import tree_forces

GROUP_SIZES = [16, 32, 64, 128, 256, 512]

#: host cost per visited tree node during traversal (seconds, K-core class)
TRAVERSAL_NODE_COST = 40.0e-9
#: per-interaction kernel times: K at 11.65 Gflops, GPU ~15x faster
T_INTERACTION_K = FLOPS_PER_INTERACTION / 11.65e9
T_INTERACTION_GPU = T_INTERACTION_K / 15.0


@pytest.fixture(scope="module")
def tuning_particles():
    rng = np.random.default_rng(0)
    blob = 0.5 + 0.04 * rng.standard_normal((4000, 3))
    bg = rng.random((2000, 3))
    pos = np.mod(np.vstack([blob, bg]), 1.0)
    return pos, np.full(len(pos), 1.0 / len(pos))


def _sweep(pos, mass):
    split = S2ForceSplit(3.0 / 32)
    rows = []
    for ni in GROUP_SIZES:
        _, stats = tree_forces(
            pos, mass, theta=0.5, split=split, periodic=True, group_size=ni
        )
        rows.append(
            {
                "target": ni,
                "ni": stats.mean_group_size,
                "nj": stats.mean_list_length,
                "visits": stats.nodes_visited,
                "interactions": stats.interactions,
            }
        )
    return rows


def _model_time(row, t_interaction):
    return (
        row["visits"] * TRAVERSAL_NODE_COST
        + row["interactions"] * t_interaction
    )


class TestGroupSizeTradeoff:
    def test_sweep_and_machine_optima(self, benchmark, tuning_particles, save_result):
        pos, mass = tuning_particles
        rows = benchmark.pedantic(
            lambda: _sweep(pos, mass), rounds=1, iterations=1
        )

        lines = [
            "Group-size (<Ni>) tuning sweep (clustered box, rcut = 3 cells/32)",
            f"{'target':>7} {'<Ni>':>7} {'<Nj>':>8} {'visits':>9} "
            f"{'interactions':>13} {'t_K (ms)':>9} {'t_GPU (ms)':>10}",
        ]
        tk, tg = [], []
        for row in rows:
            t_k = _model_time(row, T_INTERACTION_K)
            t_g = _model_time(row, T_INTERACTION_GPU)
            tk.append(t_k)
            tg.append(t_g)
            lines.append(
                f"{row['target']:>7} {row['ni']:>7.1f} {row['nj']:>8.1f} "
                f"{row['visits']:>9} {row['interactions']:>13} "
                f"{1e3*t_k:>9.1f} {1e3*t_g:>10.1f}"
            )
        best_k = GROUP_SIZES[int(np.argmin(tk))]
        best_g = GROUP_SIZES[int(np.argmin(tg))]
        lines.append(
            f"model optima: K-like {best_k} (paper ~100), "
            f"GPU-like {best_g} (paper ~500)"
        )
        save_result("group_size", "\n".join(lines))

        # monotone trade-off facts
        njs = [r["nj"] for r in rows]
        visits = [r["visits"] for r in rows]
        assert njs[-1] > njs[0]  # lists grow with group size
        assert visits[-1] < visits[0]  # traversals shrink
        # machine-dependent optimum: GPU optimum at larger groups
        assert best_g >= best_k
        assert best_g >= 256  # "~500 for a GPU cluster"
        assert 32 <= best_k <= 256  # "~100 for K computer"
