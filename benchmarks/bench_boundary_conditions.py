"""Section I: periodic vs open boundary conditions.

"With open boundary, only the structures near the center of the sphere
are reliable.  Structures near the boundary are affected by the
presence of the boundary to the vacuum.  Thus, only a small fraction of
the total computational volume is useful ... with the periodic
boundary, everywhere is equally reliable."

This harness evolves the *same* statistically uniform initial state two
ways — a periodic cube with the TreePM solver, and an open-boundary
sphere with the pure tree (the 1990s Gordon Bell setup) — and measures
how the usable volume differs: the open sphere develops a radial
density gradient (global collapse toward the center, evacuation at the
edge) while the periodic box stays statistically homogeneous.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PMConfig, SimulationConfig, TreeConfig, TreePMConfig
from repro.integrate.leapfrog import LeapfrogIntegrator
from repro.integrate.stepper import StaticStepper
from repro.sim.serial import SerialSimulation
from repro.tree.traversal import TreeSolver

N = 1500
T_END = 0.35
N_STEPS = 14


def _uniform_sphere(n, rng):
    """Uniform density sphere of radius 0.5 centered at 0.5."""
    u = rng.standard_normal((n, 3))
    u /= np.linalg.norm(u, axis=1, keepdims=True)
    r = 0.5 * rng.random(n) ** (1.0 / 3.0)
    return 0.5 + u * r[:, None]


def _radial_density_ratio(pos, center=0.5):
    """Density in the outer radial third over the inner third
    (volume-weighted, within the initial sphere radius 0.5)."""
    r = np.linalg.norm(pos - center, axis=1)
    r_in, r_out = 0.5 * (1 / 3) ** (1 / 3), 0.5 * (2 / 3) ** (1 / 3)
    inner = (r < r_in).sum()
    outer = ((r >= r_out) & (r < 0.5)).sum()
    # equal-volume shells by construction
    return outer / max(inner, 1)


class TestBoundaryConditions:
    def test_open_sphere_develops_edge_artifacts(self, benchmark, save_result):
        rng = np.random.default_rng(6)
        pos0 = _uniform_sphere(N, rng)
        mass = np.full(N, 1.0 / N)

        # open boundary: pure tree (the 1990s Gordon-Bell configuration)
        tree = TreeSolver(theta=0.5, eps=5e-3, periodic=False, group_size=64)

        def open_force(p):
            acc, _ = tree.forces(p, mass)
            return acc

        def run_open():
            integ = LeapfrogIntegrator(open_force, StaticStepper(), box=1e9)
            p, m = pos0.copy(), np.zeros_like(pos0)
            for i in range(N_STEPS):
                p, m = integ.step(
                    p, m, i * T_END / N_STEPS, (i + 1) * T_END / N_STEPS
                )
            return p

        pos_open = benchmark.pedantic(run_open, rounds=1, iterations=1)

        # periodic: the TreePM driver on a uniform cube of the same
        # mean density (cold start, same duration)
        cfg = SimulationConfig(
            treepm=TreePMConfig(
                tree=TreeConfig(opening_angle=0.5, group_size=64),
                pm=PMConfig(mesh_size=16),
                softening=5e-3,
            ),
        )
        pos_box = rng.random((N, 3))
        sim = SerialSimulation(cfg, pos_box, np.zeros((N, 3)), mass)
        sim.run(0.0, T_END, n_steps=N_STEPS)

        ratio0 = _radial_density_ratio(pos0)
        ratio_open = _radial_density_ratio(pos_open)
        # periodic homogeneity: compare octant counts of the cube
        oct_counts = np.histogramdd(
            sim.pos, bins=(2, 2, 2), range=[(0, 1)] * 3
        )[0].ravel()
        periodic_imbalance = oct_counts.max() / oct_counts.mean()

        lines = [
            "Open vs periodic boundary (same duration, cold uniform start)",
            f"  open sphere outer/inner density ratio: {ratio0:.2f} initial "
            f"-> {ratio_open:.2f} evolved (global collapse: edge evacuates)",
            f"  periodic box octant imbalance after evolution: "
            f"{periodic_imbalance:.2f}x mean (statistically homogeneous)",
            "  paper: 'only a small fraction of the total computational "
            "volume is useful' with open boundaries",
        ]
        save_result("boundary_conditions", "\n".join(lines))

        # the sphere's edge empties toward the center...
        assert ratio_open < 0.6 * ratio0
        # ...while no octant of the periodic box runs away
        assert periodic_imbalance < 1.5
