"""Section II-A: the optimized particle-particle force loop.

The paper's kernel reaches 11.65 Gflops/core on a simple O(N^2)
benchmark — 97% of its 12 Gflops theoretical limit (51 flops per
interaction, 17 FMA + 17 non-FMA per SIMD pair).  This harness:

* runs the same O(N^2) sweep through our numpy kernel and reports
  throughput in interactions/s and paper-convention flops;
* reproduces the 12 Gflops limit and the 75% ceiling from the machine
  model;
* quantifies the fast-rsqrt path's accuracy (the 24-bit trade-off).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import FLOPS_PER_INTERACTION
from repro.forces.cutoff import S2ForceSplit
from repro.perf.kcomputer import K_FULL, KComputerModel
from repro.pp.kernel import InteractionCounter, pp_forces
from repro.pp.rsqrt import rsqrt_relative_error

N = 2048


@pytest.fixture(scope="module")
def kernel_particles():
    rng = np.random.default_rng(11)
    pos = rng.random((N, 3))
    mass = np.full(N, 1.0 / N)
    return pos, mass


class TestKernelThroughput:
    def test_o_n2_sweep(self, benchmark, kernel_particles, save_result):
        """The paper's kernel microbenchmark shape: all-pairs forces."""
        pos, mass = kernel_particles
        split = S2ForceSplit(0.6)  # most pairs inside the cutoff
        counter = InteractionCounter()

        def work():
            counter.reset()
            return pp_forces(
                pos, mass, split=split, eps=1e-4, counter=counter, chunk=256
            )

        benchmark(work)
        seconds = benchmark.stats["mean"]
        inter_per_s = counter.interactions / seconds
        flops = inter_per_s * FLOPS_PER_INTERACTION
        model = K_FULL
        lines = [
            "PP kernel O(N^2) microbenchmark "
            f"(N={N}, {counter.interactions:.3g} interactions/sweep)",
            f"  numpy kernel:     {inter_per_s:.3e} interactions/s "
            f"= {flops/1e9:.2f} paper-convention Gflops",
            f"  K computer core:  limit {model.kernel_peak_per_core/1e9:.1f} "
            f"Gflops (17 FMA + 17 non-FMA per 2 interactions)",
            f"  K measured:       {model.kernel_sustained_per_core/1e9:.2f} "
            f"Gflops at 97% of the limit (paper: 11.65)",
            f"  kernel/LINPACK:   {100*model.kernel_max_efficiency:.0f}% ceiling "
            "(paper: 75%)",
        ]
        save_result("pp_kernel", "\n".join(lines))
        assert counter.interactions == N * N

    def test_fast_rsqrt_same_speed_class(self, benchmark, kernel_particles):
        """The emulated fast-rsqrt path must not be catastrophically
        slower (it is the paper's *fast* path; in numpy both are
        vectorized)."""
        pos, mass = kernel_particles
        benchmark(
            lambda: pp_forces(pos, mass, eps=1e-4, use_fast_rsqrt=True, chunk=256)
        )


class TestKernelModel:
    def test_limit_derivation(self, benchmark, save_result):
        """12 Gflops = 102 flops / 17 cycles * 2 GHz."""

        def work():
            m = KComputerModel()
            return (
                m.kernel_cycles_per_simd_iteration,
                m.kernel_flops_per_cycle,
                m.kernel_peak_per_core,
            )

        cycles, fpc, peak = benchmark(work)
        save_result(
            "pp_kernel_limit",
            f"SIMD iteration: {cycles} cycles, {fpc:.1f} flops/cycle "
            f"-> {peak/1e9:.1f} Gflops/core (paper: 12)",
        )
        assert cycles == 17
        assert peak == pytest.approx(12e9)

    def test_rsqrt_24bit_accuracy(self, benchmark, save_result):
        """The third-order refinement's accuracy profile."""

        def work():
            x = np.geomspace(1e-12, 1e12, 100000)
            return float(rsqrt_relative_error(x).max())

        err = benchmark(work)
        save_result(
            "pp_kernel_rsqrt",
            f"fast rsqrt max relative error: {err:.3e} "
            f"(~2^{np.log2(err):.1f}; paper targets 24-bit accuracy)",
        )
        assert err < 2.0**-22
