"""Elastic-recovery latency: how fast does shrink-and-continue heal?

At the paper's scale (82944 nodes, multi-day runs) the interesting
fault-tolerance number is not whether the job survives a rank death but
*how much wall-clock a death costs*: detection, the survivor consensus
round, state restoration (buddy copy vs disk checkpoint), the
re-decomposition over the survivor set and the re-executed steps.

This harness runs a small elastic job, kills ranks at chosen steps, and
reports the per-recovery latency split by mode:

* ``buddy``  — in-memory restore from the ring-replicated block;
* ``disk``   — owner *and* buddy died: restore the newest complete
  distributed checkpoint (includes filesystem I/O and the
  different-rank-count merge/scatter).

Usage::

    python benchmarks/bench_recovery.py                 # full matrix + report
    python benchmarks/bench_recovery.py --smoke \
        --kill-step 2 [--buddy-dead]                    # one CI scenario

Smoke mode exits 0 only if the run completes all steps on the
survivors, the in-run post-recovery validation sweep passed (the runner
raises otherwise), and the final gathered state conserves particle
count, total mass and momentum against the initial state.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time

import numpy as np

from repro.config import DomainConfig, PMConfig, SimulationConfig, TreePMConfig
from repro.mpi.faults import FaultPlan
from repro.sim.elastic import run_elastic_simulation

N = 96
N_RANKS = 4
N_STEPS = 6
T_END = 0.06


def _system(seed: int = 23):
    rng = np.random.default_rng(seed)
    pos = rng.random((N, 3))
    mom = rng.normal(scale=0.01, size=(N, 3))
    mass = np.full(N, 1.0 / N)
    return pos, mom, mass


def _config() -> SimulationConfig:
    return SimulationConfig(
        domain=DomainConfig(
            divisions=(N_RANKS, 1, 1), sample_rate=0.3, cost_balance=False
        ),
        treepm=TreePMConfig(pm=PMConfig(mesh_size=16)),
    )


def run_scenario(kill_step: int, buddy_dead: bool, recv_timeout: float = 3.0):
    """Kill rank 1 (and, for ``buddy_dead``, its ring buddy rank 2) at
    ``kill_step``; return a result dict with the recovery events."""
    pos, mom, mass = _system()
    p0 = (mass[:, None] * mom).sum(axis=0)
    plan = FaultPlan().kill_rank(1, kill_step)
    if buddy_dead:
        plan = plan.kill_rank(2, kill_step)
    t0 = time.perf_counter()
    with tempfile.TemporaryDirectory() as ckpt_dir:
        p, m, w, runners, runtime = run_elastic_simulation(
            _config(),
            pos,
            mom,
            mass,
            0.0,
            T_END,
            N_STEPS,
            fault_plan=plan,
            recv_timeout=recv_timeout,
            buddy_every=1,
            checkpoint_dir=ckpt_dir,
            checkpoint_every=2,
        )
    elapsed = time.perf_counter() - t0
    live = [r for r in runners if r is not None]
    if not live:
        raise RuntimeError("no surviving runner")
    events = live[0].events
    if not events:
        raise RuntimeError("no recovery happened — kill step outside the run?")
    steps = sorted({r.sim.steps_taken for r in live})
    if steps != [N_STEPS]:
        raise RuntimeError(f"survivors did not complete the schedule: {steps}")
    # final-state conservation vs the initial state (count and mass are
    # exact; momentum moves only by integration-order noise, the PM+PP
    # forces being antisymmetric pair sums)
    if len(p) != N:
        raise RuntimeError(f"particle count changed: {len(p)} != {N}")
    if abs(w.sum() - mass.sum()) > 1e-12:
        raise RuntimeError(f"total mass changed: {w.sum()} != {mass.sum()}")
    p1 = (w[:, None] * m).sum(axis=0)
    if np.max(np.abs(p1 - p0)) > 1e-6:
        raise RuntimeError(f"momentum drifted: {p0} -> {p1}")
    return {
        "kill_step": kill_step,
        "buddy_dead": buddy_dead,
        "dead_ranks": runtime.dead_ranks,
        "survivors": live[0].comm.size,
        "wall_s": elapsed,
        "events": [
            {
                "mode": e.mode,
                "epoch": e.epoch,
                "dead_ranks": list(e.dead_ranks),
                "failed_step": e.failed_step,
                "resumed_step": e.resumed_step,
                "replayed_steps": e.failed_step - e.resumed_step,
                "latency_s": e.duration,
            }
            for e in events
        ],
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--smoke", action="store_true",
        help="run one scenario and exit 0/1 (CI fault-injection matrix)",
    )
    ap.add_argument(
        "--kill-step", type=int, default=2,
        help="step at which the fault plan kills rank 1 (smoke mode)",
    )
    ap.add_argument(
        "--buddy-dead", action="store_true",
        help="also kill the victim's ring buddy -> forces the disk path",
    )
    ap.add_argument("--json", type=argparse.FileType("w"), default=None,
                    help="write results as JSON")
    args = ap.parse_args(argv)

    if args.smoke:
        try:
            res = run_scenario(args.kill_step, args.buddy_dead)
        except Exception as exc:  # noqa: BLE001 - CI wants exit 1 + message
            print(f"FAIL: {type(exc).__name__}: {exc}", file=sys.stderr)
            return 1
        ev = res["events"][0]
        print(
            f"ok: killed rank(s) {res['dead_ranks']} at step "
            f"{res['kill_step']}, recovered via '{ev['mode']}' in "
            f"{ev['latency_s'] * 1e3:.1f} ms, replayed "
            f"{ev['replayed_steps']} step(s), finished on "
            f"{res['survivors']} rank(s)"
        )
        if args.json:
            json.dump(res, args.json, indent=2)
        return 0

    results = []
    print(f"{'scenario':<28} {'mode':<6} {'latency':>10} {'replayed':>9} {'total':>8}")
    for kill_step in (0, N_STEPS // 2, N_STEPS - 1):
        for buddy_dead in (False, True):
            res = run_scenario(kill_step, buddy_dead)
            results.append(res)
            ev = res["events"][0]
            name = f"kill@{kill_step}" + ("+buddy" if buddy_dead else "")
            print(
                f"{name:<28} {ev['mode']:<6} {ev['latency_s'] * 1e3:>8.1f}ms "
                f"{ev['replayed_steps']:>9} {res['wall_s']:>7.2f}s"
            )
    if args.json:
        json.dump(results, args.json, indent=2)
    return 0


if __name__ == "__main__":
    sys.exit(main())
