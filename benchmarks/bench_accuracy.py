"""The accuracy claim: TreePM matches the pure tree at lower cost.

Paper, introduction: "for the same level of accuracy, the TreePM
algorithm requires significantly less operations.  With the tree
algorithm, the contributions of distant (large) cells dominate the
error ... with the TreePM algorithm [they] are calculated using FFT.
Thus, we can allow relatively moderate accuracy parameter for the tree
part."

This harness measures force-error distributions against the Ewald
reference for

* TreePM at several opening angles,
* the pure tree (with periodic minimum-image forces) at the same
  angles,

and compares interaction counts at matched accuracy.  It also runs the
design-choice ablations DESIGN.md calls out: rcut in mesh cells,
S2 vs Gaussian split, assignment order and the fast-rsqrt path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PMConfig, TreeConfig, TreePMConfig
from repro.forces.ewald import EwaldSummation
from repro.treepm.solver import TreePMSolver
from repro.tree.traversal import tree_forces

N = 96
MESH = 16
EPS = 1e-4

#: larger system for the cost comparison; the Ewald reference is
#: evaluated on a probe subset to stay tractable
N_BIG = 2000
N_PROBE = 96


@pytest.fixture(scope="module")
def accuracy_set():
    rng = np.random.default_rng(17)
    blob = 0.5 + 0.05 * rng.standard_normal((N // 2, 3))
    bg = rng.random((N - N // 2, 3))
    pos = np.mod(np.vstack([blob, bg]), 1.0)
    mass = np.full(N, 1.0 / N)
    ref = EwaldSummation().forces(pos, mass, eps=EPS)
    return pos, mass, ref


@pytest.fixture(scope="module")
def big_accuracy_set():
    rng = np.random.default_rng(18)
    blob = 0.5 + 0.05 * rng.standard_normal((N_BIG // 2, 3))
    bg = rng.random((N_BIG - N_BIG // 2, 3))
    pos = np.mod(np.vstack([blob, bg]), 1.0)
    mass = np.full(N_BIG, 1.0 / N_BIG)
    probe = rng.choice(N_BIG, N_PROBE, replace=False)
    ref = EwaldSummation().forces(pos, mass, eps=EPS, targets=probe)
    return pos, mass, probe, ref


def _rms_rel(acc, ref):
    err = np.linalg.norm(acc - ref, axis=1)
    return float(np.sqrt((err**2).mean()) / np.linalg.norm(ref, axis=1).mean())


def _treepm_config(theta, rcut_cells=4.0, split="s2", assignment="tsc"):
    return TreePMConfig(
        tree=TreeConfig(opening_angle=theta, group_size=32),
        pm=PMConfig(mesh_size=MESH, assignment=assignment),
        rcut_mesh_units=rcut_cells,
        softening=EPS,
        split=split,
    )


class TestTreePMvsPureTree:
    def test_error_and_cost_comparison(
        self, benchmark, big_accuracy_set, save_result
    ):
        pos, mass, probe, ref = big_accuracy_set

        def run_all():
            rows = []
            for theta in (0.3, 0.5, 0.8):
                solver = TreePMSolver(_treepm_config(theta))
                res = solver.forces(pos, mass)
                rows.append(
                    (
                        "TreePM",
                        theta,
                        _rms_rel(res.total[probe], ref),
                        res.stats.interactions,
                    )
                )
                acc_t, stats_t = tree_forces(
                    pos, mass, theta=theta, eps=EPS, periodic=True, group_size=32
                )
                rows.append(
                    (
                        "pure tree",
                        theta,
                        _rms_rel(acc_t[probe], ref),
                        stats_t.interactions,
                    )
                )
                # the 1990s configuration done exactly: tree + tabulated
                # Ewald corrections (GADGET-style)
                acc_e, stats_e = tree_forces(
                    pos, mass, theta=theta, eps=EPS, periodic=True,
                    group_size=32, ewald_correction=True,
                )
                rows.append(
                    (
                        "tree+Ewald",
                        theta,
                        _rms_rel(acc_e[probe], ref),
                        stats_e.interactions,
                    )
                )
            return rows

        rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
        lines = [
            f"Force accuracy vs Ewald (N={N_BIG}, mesh={MESH}, rcut=4 cells, "
            f"{N_PROBE} probe targets)",
            f"{'method':>10} {'theta':>6} {'rms rel err':>12} {'interactions':>13}",
        ]
        for m, th, err, inter in rows:
            lines.append(f"{m:>10} {th:>6.2f} {err:>12.4f} {inter:>13}")
        save_result("accuracy_treepm_vs_tree", "\n".join(lines))

        by = {(m, th): (err, inter) for m, th, err, inter in rows}
        # the minimum-image pure tree has an O(1) periodicity floor it
        # can never beat; TreePM resolves the periodic force properly
        assert by[("TreePM", 0.5)][0] < by[("pure tree", 0.5)][0]
        # the paper's cost claim at matched accuracy: TreePM with the
        # *loose* theta=0.8 still beats the pure tree at its *tightest*
        # theta=0.3, using a fraction of the interactions ("we can
        # allow relatively moderate accuracy parameter for the tree
        # part, resulting in considerable reduction in the
        # computational cost")
        assert by[("TreePM", 0.8)][0] < by[("pure tree", 0.3)][0]
        assert by[("TreePM", 0.8)][1] < 0.5 * by[("pure tree", 0.3)][1]
        # TreePM accuracy is theta-insensitive at moderate theta (the
        # distant contributions that dominate tree errors went to FFT)
        assert by[("TreePM", 0.8)][0] < 2.5 * by[("TreePM", 0.3)][0]


class TestAblations:
    def test_rcut_sweep(self, benchmark, accuracy_set, save_result):
        """The paper's rcut = 3/N_PM^(1/3) choice: error vs PP cost."""
        pos, mass, ref = accuracy_set

        def work():
            rows = []
            for cells in (2.0, 3.0, 4.0, 5.0):
                solver = TreePMSolver(_treepm_config(0.5, rcut_cells=cells))
                res = solver.forces(pos, mass)
                rows.append((cells, _rms_rel(res.total, ref), res.stats.interactions))
            return rows

        rows = benchmark.pedantic(work, rounds=1, iterations=1)
        lines = [
            "rcut ablation (mesh cells): error vs short-range cost",
            f"{'cells':>6} {'rms rel err':>12} {'interactions':>13}",
        ]
        for cells, err, inter in rows:
            lines.append(f"{cells:>6.1f} {err:>12.4f} {inter:>13}")
        save_result("accuracy_rcut_sweep", "\n".join(lines))
        errs = [r[1] for r in rows]
        inters = [r[2] for r in rows]
        assert errs[0] > errs[-1]  # larger cutoff -> smaller PM error
        assert inters[0] < inters[-1]  # ... but more PP work

    def test_split_shape_ablation(self, benchmark, accuracy_set, save_result):
        """S2 (paper) vs Gaussian (GADGET) split at the same mesh."""
        pos, mass, ref = accuracy_set

        def work():
            out = {}
            for split in ("s2", "gaussian"):
                solver = TreePMSolver(_treepm_config(0.5, split=split))
                res = solver.forces(pos, mass)
                out[split] = (_rms_rel(res.total, ref), res.stats.interactions)
            return out

        out = benchmark.pedantic(work, rounds=1, iterations=1)
        save_result(
            "accuracy_split_ablation",
            "\n".join(
                f"{k}: rms rel err {v[0]:.4f}, interactions {v[1]}"
                for k, v in out.items()
            ),
        )
        assert out["s2"][0] < 0.05
        assert out["gaussian"][0] < 0.08

    def test_assignment_order_ablation(self, benchmark, accuracy_set, save_result):
        """NGP/CIC/TSC mass assignment (the paper uses TSC)."""
        pos, mass, ref = accuracy_set

        def work():
            out = {}
            for scheme in ("ngp", "cic", "tsc"):
                solver = TreePMSolver(_treepm_config(0.5, assignment=scheme))
                out[scheme] = _rms_rel(solver.forces(pos, mass).total, ref)
            return out

        out = benchmark.pedantic(work, rounds=1, iterations=1)
        save_result(
            "accuracy_assignment_ablation",
            "\n".join(f"{k}: rms rel err {v:.4f}" for k, v in out.items()),
        )
        assert out["tsc"] < out["ngp"]

    def test_pm_refinement_ablation(self, benchmark, accuracy_set, save_result):
        """Beyond-the-paper PM refinements: interlacing and the
        Hockney-Eastwood optimal influence function, alone and
        combined, against the paper's plain TSC + deconvolution."""
        from repro.forces.direct import direct_forces_cutoff
        from repro.forces.cutoff import S2ForceSplit
        from repro.mesh.poisson import PMSolver

        pos, mass, ref = accuracy_set
        split = S2ForceSplit(3.0 / MESH)
        a_short = direct_forces_cutoff(pos, mass, split, box=1.0, eps=EPS)

        def work():
            out = {}
            for label, kw in (
                ("paper (TSC + deconv)", {}),
                ("+ interlacing", {"interlace": True}),
                ("+ optimal greens", {"greens_mode": "optimal"}),
                ("+ both", {"interlace": True, "greens_mode": "optimal"}),
            ):
                solver = PMSolver(MESH, split=split, **kw)
                out[label] = _rms_rel(solver.forces(pos, mass) + a_short, ref)
            return out

        out = benchmark.pedantic(work, rounds=1, iterations=1)
        lines = ["PM refinement ablation (rms rel error vs Ewald, rcut=3 cells):"]
        for label, err in out.items():
            lines.append(f"  {label:>22}: {err:.4f}")
        save_result("accuracy_pm_refinements", "\n".join(lines))
        assert out["+ both"] <= out["paper (TSC + deconv)"]

    def test_fast_rsqrt_ablation(self, benchmark, accuracy_set, save_result):
        """The 24-bit rsqrt "will not improve the accuracy of
        scientific results": its error is buried under the method
        error."""
        pos, mass, ref = accuracy_set

        def work():
            exact = TreePMSolver(_treepm_config(0.5)).forces(pos, mass).total
            fast = (
                TreePMSolver(_treepm_config(0.5), use_fast_rsqrt=True)
                .forces(pos, mass)
                .total
            )
            return _rms_rel(exact, ref), float(
                np.abs(fast - exact).max() / np.abs(exact).max()
            )

        method_err, rsqrt_err = benchmark.pedantic(work, rounds=1, iterations=1)
        save_result(
            "accuracy_fast_rsqrt",
            f"method error {method_err:.2e} vs fast-rsqrt-induced "
            f"difference {rsqrt_err:.2e} "
            f"({method_err / max(rsqrt_err, 1e-30):.0f}x smaller)",
        )
        assert rsqrt_err < 1e-3 * method_err
