"""End-to-end step throughput: the native whole-step hot path.

Times full :class:`repro.sim.serial.SerialSimulation` steps — tree
build, plan traversal, plan sweep, PM mesh assignment/interpolation,
FFT, and the fused kick-drift-wrap update — with the compiled kernels
enabled versus the all-python numpy path (``REPRO_NO_NATIVE=1``), and
records steps/sec for a small and a medium configuration.

The native path must be a pure speedup: positions and momenta after the
timed steps are asserted bitwise identical between the two runs.
Timings are min-of-N over multi-step runs (after a warmup run that
absorbs compile + self-test cost) to suppress machine noise.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.pp import native as _pp_native
from repro.sim.serial import SerialSimulation

#: (clustered particles, background particles, PM mesh size)
CONFIGS = [
    ("small", 1200, 800, 16),
    ("medium", 4000, 2000, 32),
]
STEPS = 2
REPEATS = 3


@contextmanager
def _env(**kv):
    old = {k: os.environ.get(k) for k in kv}
    os.environ.update(kv)
    try:
        yield
    finally:
        for k, v in old.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


def _particles(n_halo: int, n_bg: int):
    rng = np.random.default_rng(20120416)
    blob = 0.5 + 0.04 * rng.standard_normal((n_halo, 3))
    bg = rng.random((n_bg, 3))
    pos = np.mod(np.vstack([blob, bg]), 1.0)
    mom = 0.01 * rng.standard_normal(pos.shape)
    mass = np.full(len(pos), 1.0 / len(pos))
    return pos, mom, mass


def _config(mesh: int) -> SimulationConfig:
    return SimulationConfig.from_dict(
        {"treepm": {"pm": {"mesh_size": mesh}}, "pp_subcycles": 2}
    )


def _run_steps(cfg, pos, mom, mass):
    """One fresh simulation advanced STEPS steps; returns (sim, seconds)."""
    sim = SerialSimulation(cfg, pos, mom, mass)
    t0 = time.perf_counter()
    sim.run(0.0, 0.01 * STEPS, STEPS)
    return sim, time.perf_counter() - t0


def _best_rate(cfg, pos, mom, mass):
    """Best steps/sec over REPEATS fresh runs; returns (rate, sim)."""
    best = np.inf
    sim = None
    for _ in range(REPEATS):
        s, dt = _run_steps(cfg, pos, mom, mass)
        if dt < best:
            best, sim = dt, s
    return STEPS / best, sim


def test_step_throughput(save_result):
    native_ok = _pp_native.available()
    lines = [
        "end-to-end step throughput: native kernels vs all-python path",
        f"{STEPS} full PM steps (2 PP subcycles each) per run, best of "
        f"{REPEATS} runs; native warmup excluded",
        f"native kernels available: {native_ok}",
        "",
        f"{'config':>8s} {'N':>6s} {'mesh':>5s} {'python':>12s} "
        f"{'native':>12s} {'speedup':>8s} {'bitwise':>8s}",
    ]
    speedups = {}
    for name, n_halo, n_bg, mesh in CONFIGS:
        pos, mom, mass = _particles(n_halo, n_bg)
        cfg = _config(mesh)
        _run_steps(cfg, pos, mom, mass)  # warmup: compile + self-tests
        rate_nat, sim_nat = _best_rate(cfg, pos, mom, mass)
        with _env(REPRO_NO_NATIVE="1"):
            rate_py, sim_py = _best_rate(cfg, pos, mom, mass)
        bitwise = np.array_equal(sim_nat.pos, sim_py.pos) and np.array_equal(
            sim_nat.mom, sim_py.mom
        )
        speedups[name] = rate_nat / rate_py
        lines.append(
            f"{name:>8s} {n_halo + n_bg:6d} {mesh:5d} "
            f"{rate_py:8.2f} st/s {rate_nat:8.2f} st/s "
            f"{speedups[name]:7.2f}x {str(bitwise):>8s}"
        )
        assert bitwise, f"native/python state mismatch on config {name!r}"
    lines.append("")
    lines.append(f"medium configuration speedup: {speedups['medium']:.2f}x")
    save_result("step_throughput", "\n".join(lines))
    if native_ok:
        assert speedups["medium"] >= 3.0
    else:  # no compiler: both runs take the numpy path
        assert speedups["medium"] >= 0.8


def test_certify_throughput(save_result):
    """Before/after number for the no-wrap certification stage alone.

    Builds one periodic interaction plan at the medium scale and times
    the numpy reference sweep against the native kernel; verdicts must
    stay bitwise identical.
    """
    from repro.native import certify as _native_certify
    from repro.pp.plan import InteractionPlan
    from repro.tree.octree import Octree
    from repro.tree.traversal import (
        TraversalStats,
        certify_no_wrap_numpy,
        traverse_all_numpy,
    )

    _, n_halo, n_bg, _ = CONFIGS[1]
    pos, _, mass = _particles(n_halo, n_bg)
    tree = Octree(pos, mass, leaf_size=8)
    groups = np.array(tree.group_nodes(32), dtype=np.int64)
    groups = groups[np.argsort(tree.node_lo[groups], kind="stable")]
    stats = TraversalStats()
    (part_ptr, part_idx, node_ptr, node_idx,
     part_shift, node_shift) = traverse_all_numpy(
        tree, groups, 3.0 / 16, 0.5, True, 1.0, stats
    )
    plan = InteractionPlan(
        group_nodes=groups,
        group_lo=tree.node_lo[groups],
        group_hi=tree.node_hi[groups],
        part_ptr=part_ptr,
        part_idx=part_idx,
        node_ptr=node_ptr,
        node_idx=node_idx,
        part_shift=part_shift,
        node_shift=node_shift,
    )

    def _best(fn):
        best = np.inf
        out = None
        for _ in range(5):
            t0 = time.perf_counter()
            out = fn()
            best = min(best, time.perf_counter() - t0)
        return out, best

    ref, t_py = _best(lambda: certify_no_wrap_numpy(tree, plan, 1.0))
    native_ok = _native_certify.available()  # warmup: compile + self-test
    if native_ok:
        got, t_nat = _best(lambda: _native_certify.certify(tree, plan, 1.0))
        assert np.array_equal(got, ref), "native/python certification mismatch"
    else:
        got, t_nat = ref, t_py
    save_result(
        "certify_no_wrap",
        "\n".join(
            [
                "no-wrap certification: numpy sweep vs native kernel",
                f"{plan.n_groups} groups, {len(part_idx)} list particles, "
                f"{len(node_idx)} list nodes; best of 5",
                f"native kernel available: {native_ok}",
                "",
                f"numpy  {1e3 * t_py:10.3f} ms",
                f"native {1e3 * t_nat:10.3f} ms",
                f"speedup {t_py / t_nat:8.2f}x",
            ]
        ),
    )
    if native_ok:
        assert t_nat <= t_py * 1.5  # report-only beyond this sanity floor


def test_step_ledger_breakdown(save_result):
    """Record the per-phase timing ledger of a native-path run (the
    whole-step analogue of the paper's Table 1 breakdown)."""
    name, n_halo, n_bg, mesh = CONFIGS[1]
    pos, mom, mass = _particles(n_halo, n_bg)
    cfg = _config(mesh)
    _run_steps(cfg, pos, mom, mass)  # warmup
    sim, dt = _run_steps(cfg, pos, mom, mass)
    report = sim.timing.report()
    save_result(
        "step_throughput_phases",
        f"native-path per-phase breakdown ({name}, {STEPS} steps, "
        f"{dt:.3f}s wall)\n" + report,
    )
    assert "kick-drift" in report
