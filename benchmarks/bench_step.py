"""End-to-end step throughput: the native whole-step hot path.

Times full :class:`repro.sim.serial.SerialSimulation` steps — tree
build, plan traversal, plan sweep, PM mesh assignment/interpolation,
FFT, and the fused kick-drift-wrap update — with the compiled kernels
enabled versus the all-python numpy path (``REPRO_NO_NATIVE=1``), and
records steps/sec for a small and a medium configuration.

The native path must be a pure speedup: positions and momenta after the
timed steps are asserted bitwise identical between the two runs.
Timings are min-of-N over multi-step runs (after a warmup run that
absorbs compile + self-test cost) to suppress machine noise.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.pp import native as _pp_native
from repro.sim.serial import SerialSimulation

#: (clustered particles, background particles, PM mesh size)
CONFIGS = [
    ("small", 1200, 800, 16),
    ("medium", 4000, 2000, 32),
]
STEPS = 2
REPEATS = 3


@contextmanager
def _env(**kv):
    old = {k: os.environ.get(k) for k in kv}
    os.environ.update(kv)
    try:
        yield
    finally:
        for k, v in old.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


def _particles(n_halo: int, n_bg: int):
    rng = np.random.default_rng(20120416)
    blob = 0.5 + 0.04 * rng.standard_normal((n_halo, 3))
    bg = rng.random((n_bg, 3))
    pos = np.mod(np.vstack([blob, bg]), 1.0)
    mom = 0.01 * rng.standard_normal(pos.shape)
    mass = np.full(len(pos), 1.0 / len(pos))
    return pos, mom, mass


def _config(mesh: int) -> SimulationConfig:
    return SimulationConfig.from_dict(
        {"treepm": {"pm": {"mesh_size": mesh}}, "pp_subcycles": 2}
    )


def _run_steps(cfg, pos, mom, mass):
    """One fresh simulation advanced STEPS steps; returns (sim, seconds)."""
    sim = SerialSimulation(cfg, pos, mom, mass)
    t0 = time.perf_counter()
    sim.run(0.0, 0.01 * STEPS, STEPS)
    return sim, time.perf_counter() - t0


def _best_rate(cfg, pos, mom, mass):
    """Best steps/sec over REPEATS fresh runs; returns (rate, sim)."""
    best = np.inf
    sim = None
    for _ in range(REPEATS):
        s, dt = _run_steps(cfg, pos, mom, mass)
        if dt < best:
            best, sim = dt, s
    return STEPS / best, sim


def test_step_throughput(save_result):
    native_ok = _pp_native.available()
    lines = [
        "end-to-end step throughput: native kernels vs all-python path",
        f"{STEPS} full PM steps (2 PP subcycles each) per run, best of "
        f"{REPEATS} runs; native warmup excluded",
        f"native kernels available: {native_ok}",
        "",
        f"{'config':>8s} {'N':>6s} {'mesh':>5s} {'python':>12s} "
        f"{'native':>12s} {'speedup':>8s} {'bitwise':>8s}",
    ]
    speedups = {}
    for name, n_halo, n_bg, mesh in CONFIGS:
        pos, mom, mass = _particles(n_halo, n_bg)
        cfg = _config(mesh)
        _run_steps(cfg, pos, mom, mass)  # warmup: compile + self-tests
        rate_nat, sim_nat = _best_rate(cfg, pos, mom, mass)
        with _env(REPRO_NO_NATIVE="1"):
            rate_py, sim_py = _best_rate(cfg, pos, mom, mass)
        bitwise = np.array_equal(sim_nat.pos, sim_py.pos) and np.array_equal(
            sim_nat.mom, sim_py.mom
        )
        speedups[name] = rate_nat / rate_py
        lines.append(
            f"{name:>8s} {n_halo + n_bg:6d} {mesh:5d} "
            f"{rate_py:8.2f} st/s {rate_nat:8.2f} st/s "
            f"{speedups[name]:7.2f}x {str(bitwise):>8s}"
        )
        assert bitwise, f"native/python state mismatch on config {name!r}"
    lines.append("")
    lines.append(f"medium configuration speedup: {speedups['medium']:.2f}x")
    save_result("step_throughput", "\n".join(lines))
    if native_ok:
        assert speedups["medium"] >= 3.0
    else:  # no compiler: both runs take the numpy path
        assert speedups["medium"] >= 0.8


def test_step_ledger_breakdown(save_result):
    """Record the per-phase timing ledger of a native-path run (the
    whole-step analogue of the paper's Table 1 breakdown)."""
    name, n_halo, n_bg, mesh = CONFIGS[1]
    pos, mom, mass = _particles(n_halo, n_bg)
    cfg = _config(mesh)
    _run_steps(cfg, pos, mom, mass)  # warmup
    sim, dt = _run_steps(cfg, pos, mom, mass)
    report = sim.timing.report()
    save_result(
        "step_throughput_phases",
        f"native-path per-phase breakdown ({name}, {STEPS} steps, "
        f"{dt:.3f}s wall)\n" + report,
    )
    assert "kick-drift" in report
