"""Setup shim for environments without PEP 517 build isolation.

All metadata lives in pyproject.toml; this file only enables the legacy
``pip install -e .`` path on machines lacking the ``wheel`` package.
"""

from setuptools import setup

setup()
