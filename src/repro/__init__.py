"""repro — a GreeM-style massively parallel TreePM N-body framework.

A full reproduction of Ishiyama, Nitadori & Makino (SC12),
"4.45 Pflops Astrophysical N-Body Simulation on K computer — The
Gravitational Trillion-Body Problem": the TreePM force solver (S2
split, Phantom-GRAPE-style kernel, Barnes-modified tree), dynamic
multisection domain decomposition with the sampling method, the relay
mesh communication algorithm over an in-process SPMD runtime with a
torus network model, cosmological initial conditions and integration,
and the performance models behind the paper's Table I.

Quick start::

    import numpy as np
    from repro import SimulationConfig, SerialSimulation

    rng = np.random.default_rng(0)
    pos = rng.random((512, 3))
    sim = SerialSimulation(
        SimulationConfig(), pos, np.zeros_like(pos), np.full(512, 1 / 512)
    )
    sim.run(0.0, 0.1, n_steps=5)
"""

from repro.config import (
    DomainConfig,
    MachineConfig,
    PMConfig,
    RelayMeshConfig,
    SimulationConfig,
    TreeConfig,
    TreePMConfig,
    ValidationConfig,
)
from repro.treepm.solver import TreePMSolver
from repro.validate import InvariantViolation, InvariantWarning, Validator
from repro.sim.serial import SerialSimulation
from repro.sim.parallel import (
    ParallelSimulation,
    resume_parallel_simulation,
    run_parallel_simulation,
)
from repro.sim.elastic import ElasticRunner, run_elastic_simulation
from repro.mpi.faults import FaultPlan, PeerFailure
from repro.mpi.recovery import RecoveryError, RecoveryEvent
from repro.mpi.runtime import MPIRuntime, run_spmd

__version__ = "1.0.0"

__all__ = [
    "TreeConfig",
    "PMConfig",
    "TreePMConfig",
    "DomainConfig",
    "RelayMeshConfig",
    "MachineConfig",
    "SimulationConfig",
    "ValidationConfig",
    "InvariantViolation",
    "InvariantWarning",
    "Validator",
    "TreePMSolver",
    "SerialSimulation",
    "ParallelSimulation",
    "run_parallel_simulation",
    "resume_parallel_simulation",
    "ElasticRunner",
    "run_elastic_simulation",
    "FaultPlan",
    "PeerFailure",
    "RecoveryError",
    "RecoveryEvent",
    "MPIRuntime",
    "run_spmd",
    "__version__",
]
