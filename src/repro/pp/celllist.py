"""Cell-list neighbor machinery: the P3M short-range baseline.

The paper motivates TreePM *over* P3M: "It is not practical to use the
P3M algorithm since the computational cost of the short-range part
increases rapidly as the formation proceeds.  The calculation cost of a
cell within the cutoff radius with n particles is O(n^2).  Thus, for a
cell with 1000 times more particles than average, the cost is 10^6
times more expensive.  The TreePM algorithm can solve this problem,
since the calculation cost of such [a] cell is O(n log n)."

:class:`CellList` bins particles into cubic cells of size >= rcut and
produces, per cell, the particle list of the 27-cell neighborhood;
:func:`p3m_short_range_forces` evaluates the cutoff forces directly on
those lists — O(sum over cells of n_i * m_i), which degrades
quadratically under clustering.  The ablation benchmark quantifies the
paper's 10^6 argument against the tree's O(n log n).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.pp.kernel import InteractionCounter, PPKernel

__all__ = ["CellList", "p3m_short_range_forces"]


class CellList:
    """Periodic cubic binning with cell size >= the interaction range.

    Parameters
    ----------
    pos:
        Particle positions in ``[0, box)``.
    rcut:
        Interaction range; cells are at least this wide so that all
        partners of a particle lie in the 27-cell neighborhood.
    box:
        Periodic box size.
    """

    def __init__(self, pos: np.ndarray, rcut: float, box: float = 1.0) -> None:
        pos = np.asarray(pos, dtype=np.float64)
        if rcut <= 0 or rcut > box / 2:
            raise ValueError("need 0 < rcut <= box/2")
        self.box = float(box)
        self.n_cells = max(1, int(np.floor(box / rcut)))
        self.pos = pos
        cells = np.minimum(
            (pos / box * self.n_cells).astype(np.int64), self.n_cells - 1
        )
        self.cell_index = (
            cells[:, 0] * self.n_cells + cells[:, 1]
        ) * self.n_cells + cells[:, 2]
        order = np.argsort(self.cell_index, kind="stable")
        self.order = order
        sorted_idx = self.cell_index[order]
        total = self.n_cells**3
        self.starts = np.searchsorted(sorted_idx, np.arange(total + 1))

    def cell_members(self, cx: int, cy: int, cz: int) -> np.ndarray:
        """Particle indices (original order) in one cell."""
        n = self.n_cells
        c = ((cx % n) * n + (cy % n)) * n + (cz % n)
        return self.order[self.starts[c] : self.starts[c + 1]]

    def neighborhood_members(self, cx: int, cy: int, cz: int) -> np.ndarray:
        """Particle indices of the 27-cell (3x3x3) neighborhood."""
        if self.n_cells <= 2:
            # every cell neighbors every other: the whole box
            return self.order
        parts = [
            self.cell_members(cx + dx, cy + dy, cz + dz)
            for dx in (-1, 0, 1)
            for dy in (-1, 0, 1)
            for dz in (-1, 0, 1)
        ]
        return np.concatenate(parts)

    def occupancy(self) -> np.ndarray:
        """Particles per cell (flattened)."""
        return np.diff(self.starts)

    def cost_estimate(self) -> int:
        """Sum over cells of n_cell * n_neighborhood: the pair-count
        the direct P3M loop must evaluate."""
        occ = self.occupancy().reshape((self.n_cells,) * 3)
        if self.n_cells <= 2:
            return int(occ.sum()) ** 2
        neigh = np.zeros_like(occ)
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    neigh += np.roll(occ, (dx, dy, dz), axis=(0, 1, 2))
        return int((occ * neigh).sum())


def p3m_short_range_forces(
    pos: np.ndarray,
    mass: np.ndarray,
    split,
    box: float = 1.0,
    eps: float = 0.0,
    G: float = 1.0,
    counter: InteractionCounter | None = None,
) -> np.ndarray:
    """Direct (cell-list) evaluation of the short-range cutoff force.

    This is the P3M baseline of the paper's introduction: exact within
    the force split, but with cost quadratic in cell occupancy.
    """
    pos = np.asarray(pos, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    cl = CellList(pos, split.cutoff_radius, box)
    kernel = PPKernel(split=split, eps=eps, G=G, box=box, counter=counter)
    acc = np.zeros_like(pos)
    n = cl.n_cells
    for cx in range(n):
        for cy in range(n):
            for cz in range(n):
                targets = cl.cell_members(cx, cy, cz)
                if len(targets) == 0:
                    continue
                sources = cl.neighborhood_members(cx, cy, cz)
                acc[targets] = kernel.accumulate(
                    pos[targets], pos[sources], mass[sources]
                )
    return acc
