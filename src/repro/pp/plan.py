"""Flat interaction-plan representation and batched executor.

The legacy short-range path interleaves traversal and kernel work one
group at a time: every group pays a ``vstack``/``concatenate``, a fresh
``(T, S, 3)`` temporary and a redundant per-pair minimum-image
``np.round`` even when the whole list provably needs no wrap.  The plan
engine splits a force evaluation into two phases instead:

1. **Plan construction** (:meth:`repro.tree.traversal.TreeSolver.build_plan`)
   runs Barnes' modified traversal for *all* groups and emits one flat
   CSR-style :class:`InteractionPlan`: per-group target slices, the
   concatenated source-particle indices, accepted-node indices,
   precomputed periodic image shifts per list entry, and a per-group
   ``no_wrap`` certificate (every pair displacement provably within
   ``box/2``, so the per-pair ``np.round`` is exactly a no-op).
2. **Plan execution** (:class:`PlanExecutor`) sweeps the plan in large
   batches of groups bucketed by list length, with reused scratch
   buffers and zero-mass column padding.  In float64 mode the batched
   arithmetic is elementwise identical to the legacy per-group kernel,
   so forces match bitwise; an optional float32 mode mirrors the paper's
   single-precision Phantom-GRAPE kernel.

The executor deliberately knows nothing about trees: it consumes the
plan plus the Morton-sorted particle arrays and node moments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.forces.cutoff import S2ForceSplit
from repro.native.build import native_threads as _native_threads
from repro.pp import native as _native
from repro.pp.rsqrt import fast_rsqrt
from repro.utils.periodic import minimum_image

__all__ = ["InteractionPlan", "PlanExecutor", "multi_arange", "slice_plan"]

#: Lazily computed result of the native-kernel cross-check (None until
#: first use; the check runs once per process).
_NATIVE_VERIFIED = None


def _native_verified(lib) -> bool:
    """Cross-check the compiled kernel against the numpy pipeline.

    The native sweep replays numpy's float64 arithmetic operation by
    operation, including numpy's SIMD reduction order for the component
    sum — an order that is an implementation detail of the running
    numpy build.  Rather than trust it across platforms, the first
    native execution verifies bitwise agreement on a small synthetic
    plan exercising wrap and no-wrap groups, self pairs, softened and
    unsoftened kernels, and both split modes; any mismatch silently
    disables the native path for the process.
    """
    global _NATIVE_VERIFIED
    if _NATIVE_VERIFIED is not None:
        return _NATIVE_VERIFIED
    from repro.pp.kernel import PPKernel

    rng = np.random.default_rng(20120416)
    N, M = 48, 6
    pos = rng.random((N, 3))
    mass = rng.random(N) + 0.5
    ncom = rng.random((M, 3))
    nmass = rng.random(M) + 1.0
    pidx = rng.integers(0, N, 60).astype(np.int64)
    pidx[:12] = np.arange(12)  # include self pairs
    plan = InteractionPlan(
        group_nodes=np.zeros(4, dtype=np.int64),
        group_lo=np.array([0, 12, 24, 36], dtype=np.int64),
        group_hi=np.array([12, 24, 36, 48], dtype=np.int64),
        part_ptr=np.array([0, 20, 30, 50, 60], dtype=np.int64),
        part_idx=pidx,
        node_ptr=np.array([0, 3, 6, 6, 10], dtype=np.int64),
        node_idx=rng.integers(0, M, 10).astype(np.int64),
        no_wrap=np.array([True, False, True, False]),
    )
    kernels = [
        PPKernel(split=S2ForceSplit(0.4), eps=0.0, G=2.0, box=1.0),
        PPKernel(split=S2ForceSplit(0.4), eps=1e-3, box=1.0),
        PPKernel(split=None, eps=1e-3, box=None),
        PPKernel(split=None, eps=0.0, box=1.0),
    ]
    numpy_exec = PlanExecutor(use_native=False)
    native_exec = PlanExecutor()
    ok = True
    for kern in kernels:
        want = numpy_exec.execute(plan, kern, pos, mass, ncom, nmass)
        got = np.zeros_like(pos)
        native_exec._execute_native(lib, plan, kern, pos, mass, ncom, nmass, got)
        if not np.array_equal(want, got):
            ok = False
            break
    _NATIVE_VERIFIED = ok
    return ok


def multi_arange(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(lo[i], hi[i])`` without a Python loop."""
    lo = np.asarray(lo, dtype=np.int64)
    hi = np.asarray(hi, dtype=np.int64)
    lens = hi - lo
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.concatenate([[0], np.cumsum(lens)[:-1]])
    return np.arange(total, dtype=np.int64) - np.repeat(starts, lens) + np.repeat(
        lo, lens
    )


def slice_plan(plan: "InteractionPlan", groups: np.ndarray) -> "InteractionPlan":
    """A sub-plan containing only the selected groups.

    The CSR pointer arrays are rebuilt over the kept groups while every
    index keeps referring to the *full* Morton-sorted particle/node
    arrays, and each group's target slice ``[group_lo, group_hi)`` is
    untouched — so executing the sub-plan against the same sorted inputs
    reproduces, bitwise, exactly the rows the full sweep produced for
    those groups (groups own disjoint target rows and each group's
    arithmetic depends only on its own interaction list).  This is what
    the ABFT force spot-check leans on: re-sweep a sampled subset of
    groups through the reference pipeline and compare rows.
    """
    groups = np.asarray(groups, dtype=np.int64)
    if groups.ndim != 1:
        raise ValueError("groups must be a 1-D index array")
    if groups.size and (groups.min() < 0 or groups.max() >= plan.n_groups):
        raise IndexError("group index out of range")
    plo, phi = plan.part_ptr[groups], plan.part_ptr[groups + 1]
    nlo, nhi = plan.node_ptr[groups], plan.node_ptr[groups + 1]
    psel = multi_arange(plo, phi)
    nsel = multi_arange(nlo, nhi)
    zero = np.zeros(1, dtype=np.int64)
    return InteractionPlan(
        group_nodes=plan.group_nodes[groups],
        group_lo=plan.group_lo[groups],
        group_hi=plan.group_hi[groups],
        part_ptr=np.concatenate([zero, np.cumsum(phi - plo)]).astype(np.int64),
        part_idx=plan.part_idx[psel],
        node_ptr=np.concatenate([zero, np.cumsum(nhi - nlo)]).astype(np.int64),
        node_idx=plan.node_idx[nsel],
        part_shift=None if plan.part_shift is None else plan.part_shift[psel],
        node_shift=None if plan.node_shift is None else plan.node_shift[nsel],
        no_wrap=None if plan.no_wrap is None else plan.no_wrap[groups],
    )


@dataclass
class InteractionPlan:
    """CSR-style description of one whole short-range force evaluation.

    All index arrays refer to the tree's Morton-sorted particle order.
    Group ``i`` owns targets ``[group_lo[i], group_hi[i])``, particle
    sources ``part_idx[part_ptr[i]:part_ptr[i+1]]`` and accepted nodes
    ``node_idx[node_ptr[i]:node_ptr[i+1]]``.  Each source slot of a
    group's list keeps the legacy order: particles first, then nodes.

    ``part_shift``/``node_shift`` hold the periodic image shift of each
    list entry relative to the group center (``box`` times an integer
    vector; subtracting it moves the source next to the group).  They
    are ``None`` for non-periodic plans.  ``no_wrap[i]`` certifies that
    every pair displacement of group ``i`` lies within ``box/2`` in all
    coordinates, so the per-pair minimum-image round is exactly zero.
    """

    group_nodes: np.ndarray
    group_lo: np.ndarray
    group_hi: np.ndarray
    part_ptr: np.ndarray
    part_idx: np.ndarray
    node_ptr: np.ndarray
    node_idx: np.ndarray
    part_shift: Optional[np.ndarray] = None
    node_shift: Optional[np.ndarray] = None
    no_wrap: Optional[np.ndarray] = None

    @property
    def n_groups(self) -> int:
        return len(self.group_nodes)

    @property
    def target_counts(self) -> np.ndarray:
        """Targets per group (the per-call ``Ni``)."""
        return self.group_hi - self.group_lo

    @property
    def list_lengths(self) -> np.ndarray:
        """Interaction-list length per group (the per-call ``Nj``)."""
        return np.diff(self.part_ptr) + np.diff(self.node_ptr)

    @property
    def n_pairs(self) -> int:
        """Total pairwise interactions the plan encodes."""
        if self.n_groups == 0:
            return 0
        return int(np.dot(self.target_counts, self.list_lengths))


class PlanExecutor:
    """Batched sweep over an :class:`InteractionPlan`.

    Parameters
    ----------
    dtype:
        ``np.float64`` (default) computes bitwise-identically to the
        legacy per-group kernel path.  ``np.float32`` mirrors the
        paper's single-precision kernel: sources are re-centered on the
        group via the plan's baked image shifts (keeping float32
        coordinates well-conditioned), the wrap is dropped entirely, and
        all pair arithmetic runs in single precision.
    pair_budget:
        Approximate cap on target-rows x padded-list-columns per batch;
        bounds scratch memory at roughly ``40 * pair_budget`` bytes in
        float64.  Small budgets keep every scratch board resident in
        cache, which matters far more than batching overhead on the
        memory-bound sweep.
    refine_rows:
        Row-chunk size for the cutoff-culling refinement (see
        :meth:`_refine`); ``0`` disables refinement.
    use_native:
        Sweep through the compiled plan-sweep kernel when one can be
        built (see :mod:`repro.pp.native`); float64 only, bitwise
        identical to the numpy pipeline.  Falls back silently to the
        numpy pipeline when unavailable or unsupported for the kernel
        configuration.

    Scratch buffers are owned by the executor and grown on demand, so a
    long-lived executor (one per :class:`TreeSolver`) allocates nothing
    in steady state.
    """

    def __init__(
        self,
        dtype=np.float64,
        pair_budget: int = 1 << 16,
        refine_rows: int = 64,
        use_native: bool = True,
    ) -> None:
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError("dtype must be float64 or float32")
        if pair_budget < 1:
            raise ValueError("pair_budget must be >= 1")
        self.pair_budget = int(pair_budget)
        self.refine_rows = int(refine_rows)
        self.use_native = bool(use_native)
        self._scratch: dict = {}
        #: batches executed since construction (diagnostic)
        self.batches_run = 0
        #: native-kernel sweeps executed since construction (diagnostic)
        self.native_runs = 0

    # -- scratch management ---------------------------------------------------

    def _buf(self, name: str, shape, dtype) -> np.ndarray:
        """A reusable contiguous scratch view of the requested shape."""
        n = 1
        for s in shape:
            n *= int(s)
        key = (name, dtype)
        buf = self._scratch.get(key)
        if buf is None or buf.size < n:
            buf = np.empty(n, dtype=dtype)
            self._scratch[key] = buf
        return buf[:n].reshape(shape)

    def scratch_bytes(self) -> int:
        """Current scratch footprint (diagnostic)."""
        return sum(b.nbytes for b in self._scratch.values())

    # -- execution ------------------------------------------------------------

    def execute(
        self,
        plan: InteractionPlan,
        kernel,
        pos_sorted: np.ndarray,
        mass_sorted: np.ndarray,
        node_com: np.ndarray,
        node_mass: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Accumulate the plan's monopole forces into ``out`` (sorted
        particle order).  ``kernel`` is a :class:`repro.pp.kernel.PPKernel`
        supplying the physics (split, softening, G, rsqrt path, box,
        Ewald table, counter)."""
        if out is None:
            out = np.zeros_like(pos_sorted)
        if plan.n_groups == 0:
            return out
        T = plan.target_counts
        S = plan.list_lengths
        kernel.counter.record_many(T, S)

        if (
            self.use_native
            and self._native_ok(kernel)
            and out.flags.c_contiguous
            and out.dtype == np.dtype(np.float64)
        ):
            lib = _native.get_lib()
            if lib is not None and _native_verified(lib):
                self._execute_native(
                    lib, plan, kernel, pos_sorted, mass_sorted,
                    node_com, node_mass, out,
                )
                return out

        refined = False
        if (
            self.refine_rows > 0
            and kernel.split is not None
            and getattr(kernel.split, "exact_cutoff", False)
            and plan.n_pairs
        ):
            plan = self._refine(plan, kernel, pos_sorted, node_com)
            T = plan.target_counts
            S = plan.list_lengths
            refined = True

        # gather the concatenated source streams once
        spos = pos_sorted[plan.part_idx]
        smass = mass_sorted[plan.part_idx]
        npos = node_com[plan.node_idx]
        nmass = node_mass[plan.node_idx]

        f32 = self.dtype == np.dtype(np.float32)
        box = kernel.box
        if f32 and box is not None and plan.part_shift is not None:
            # bake the image shifts: every source lands next to its
            # group, the per-pair wrap is dropped below
            spos = spos - plan.part_shift
            npos = npos - plan.node_shift

        G = plan.n_groups
        if box is None:
            wrap = np.zeros(G, dtype=bool)
        elif f32 and plan.part_shift is not None:
            wrap = np.zeros(G, dtype=bool)
        elif plan.no_wrap is not None:
            wrap = ~plan.no_wrap
        else:
            wrap = np.ones(G, dtype=bool)

        pcnt = np.diff(plan.part_ptr)
        order = np.argsort(S, kind="stable")[::-1]
        order = order[S[order] > 0]  # empty lists contribute nothing
        for need_wrap in (False, True):
            sel = order[wrap[order] == need_wrap]
            i = 0
            while i < len(sel):
                smax = int(S[sel[i]])
                ttot = int(T[sel[i]])
                j = i + 1
                while (
                    j < len(sel)
                    and (ttot + int(T[sel[j]])) * smax <= self.pair_budget
                ):
                    ttot += int(T[sel[j]])
                    j += 1
                self._run_batch(
                    plan, sel[i:j], smax, ttot, need_wrap, kernel,
                    pos_sorted, spos, smass, npos, nmass, pcnt, out,
                    refined,
                )
                i = j
        return out

    def _native_ok(self, kernel) -> bool:
        """Whether the compiled kernel covers this configuration.

        The native sweep implements the exact-arithmetic float64
        pipeline for plain softened Newtonian gravity and the S2 split;
        everything else (float32 mode, fast rsqrt, Ewald tables, other
        split shapes) stays on the numpy path.
        """
        return (
            self.dtype == np.dtype(np.float64)
            and kernel.ewald_table is None
            and not kernel.use_fast_rsqrt
            and (kernel.split is None or type(kernel.split) is S2ForceSplit)
        )

    def _execute_native(
        self,
        lib,
        plan: InteractionPlan,
        kernel,
        pos_sorted: np.ndarray,
        mass_sorted: np.ndarray,
        node_com: np.ndarray,
        node_mass: np.ndarray,
        out: np.ndarray,
    ) -> None:
        self.native_runs += 1
        i64 = lambda a: np.ascontiguousarray(a, dtype=np.int64)
        f64 = lambda a: np.ascontiguousarray(a, dtype=np.float64)
        G = plan.n_groups
        box = kernel.box
        if box is None:
            wrap = np.zeros(G, dtype=np.uint8)
        elif plan.no_wrap is not None:
            wrap = (~plan.no_wrap).astype(np.uint8)
        else:
            wrap = np.ones(G, dtype=np.uint8)
        split = kernel.split
        if split is not None:
            rcut = split.cutoff_radius
            rc2 = (rcut * (1.0 + 1e-9)) ** 2
        else:
            rcut = rc2 = 0.0
        smax = int(plan.list_lengths.max()) if G else 0
        stride = 4 * max(smax, 1)
        # one scratch board per OpenMP thread; groups own disjoint output
        # rows so any thread count gives bitwise-identical forces
        nthreads = max(1, min(_native_threads(), G)) if G else 1
        scratch = self._buf("native_scratch", (nthreads * stride,), np.float64)
        eps2 = float(np.float64(kernel.eps) * np.float64(kernel.eps))
        _native.sweep(
            lib,
            i64(plan.group_lo),
            i64(plan.group_hi),
            i64(plan.part_ptr),
            i64(plan.part_idx),
            i64(plan.node_ptr),
            i64(plan.node_idx),
            f64(pos_sorted),
            f64(mass_sorted),
            f64(node_com),
            f64(node_mass),
            wrap,
            0.0 if box is None else float(box),
            eps2,
            0 if split is None else 1,
            float(rcut),
            float(rc2),
            float(kernel.G),
            scratch,
            out,
            nthreads=nthreads,
            scratch_stride=stride,
        )

    def _refine(
        self,
        plan: InteractionPlan,
        kernel,
        pos_sorted: np.ndarray,
        node_com: np.ndarray,
    ) -> InteractionPlan:
        """Split groups into row chunks and cull provably-out-of-range
        sources per chunk.

        The split's ``exact_cutoff`` contract makes the force factor
        exactly ``0.0`` past ``cutoff_radius``, so any source whose
        distance to a chunk's target bounding box provably exceeds the
        cutoff contributes only exact ``+/-0.0`` terms to the
        sequential einsum reduction — dropping it (and never computing
        its displacement at all) cannot change a bit of the result.
        The distance lower bound is the componentwise gap between the
        source and the bbox, taken the short way around the circle for
        periodic boxes, so it is sound regardless of which image the
        per-pair wrap would pick.  Stats are recorded from the original
        plan before refinement, keeping ``<Ni>``/``<Nj>`` identical to
        the legacy path.
        """
        chunk = self.refine_rows
        rcut = kernel.split.cutoff_radius * (1.0 + 1e-9)
        rc2 = rcut * rcut
        box = kernel.box
        Gn = plan.n_groups
        tcnt = plan.target_counts
        reps = (tcnt + chunk - 1) // chunk
        C = int(reps.sum())
        parent = np.repeat(np.arange(Gn, dtype=np.int64), reps)
        rep_starts = np.concatenate([[0], np.cumsum(reps)[:-1]])
        rank = np.arange(C, dtype=np.int64) - np.repeat(rep_starts, reps)
        clo = plan.group_lo[parent] + rank * chunk
        chi = np.minimum(clo + chunk, plan.group_hi[parent])

        # exact per-chunk target bounding boxes
        tpos = pos_sorted[multi_arange(clo, chi)]
        cptr = np.concatenate([[0], np.cumsum(chi - clo)[:-1]])
        tmin = np.minimum.reduceat(tpos, cptr, axis=0)
        tmax = np.maximum.reduceat(tpos, cptr, axis=0)
        width = tmax - tmin

        unsplit = C == Gn

        def cull(ptr, idx, shift, svals_all):
            ccnt = np.diff(ptr)[parent]
            crow = np.repeat(np.arange(C, dtype=np.int64), ccnt)
            s = svals_all[idx]
            if unsplit:
                big = None  # entries map 1:1, skip the second gather
            else:
                big = multi_arange(ptr[:-1][parent], ptr[1:][parent])
                s = s[big]
            lo = tmin[crow]
            d = np.minimum(np.maximum(s, lo, out=lo), tmax[crow])
            np.subtract(s, d, out=d)
            np.abs(d, out=d)
            if box is not None:
                # the short way around: either the direct gap or past
                # the bbox's far edge through the periodic boundary
                alt = box - width[crow]
                alt -= d
                np.minimum(d, alt, out=d)
                np.maximum(d, 0.0, out=d)
            keep = np.einsum("ij,ij->i", d, d) <= rc2
            kept = np.flatnonzero(keep) if big is None else big[keep]
            new_cnt = np.bincount(crow[keep], minlength=C)
            new_ptr = np.concatenate([[0], np.cumsum(new_cnt)]).astype(np.int64)
            new_shift = shift[kept] if shift is not None else None
            return new_ptr, idx[kept], new_shift

        pptr, pidx, pshift = cull(
            plan.part_ptr, plan.part_idx, plan.part_shift, pos_sorted
        )
        nptr, nidx, nshift = cull(
            plan.node_ptr, plan.node_idx, plan.node_shift, node_com
        )
        return InteractionPlan(
            group_nodes=plan.group_nodes[parent],
            group_lo=clo,
            group_hi=chi,
            part_ptr=pptr,
            part_idx=pidx,
            node_ptr=nptr,
            node_idx=nidx,
            part_shift=pshift,
            node_shift=nshift,
            no_wrap=None if plan.no_wrap is None else plan.no_wrap[parent],
        )

    def _fill_padded(
        self, rows_lo, rows_hi, col_offset, vals_pos, vals_mass, sb, mb, B
    ) -> None:
        """Scatter CSR entry ranges into the padded (B, smax) buffers."""
        cnt = rows_hi - rows_lo
        total = int(cnt.sum())
        if total == 0:
            return
        idx = multi_arange(rows_lo, rows_hi)
        row = np.repeat(np.arange(B), cnt)
        starts = np.concatenate([[0], np.cumsum(cnt)[:-1]])
        col = (
            np.arange(total, dtype=np.int64)
            - np.repeat(starts, cnt)
            + np.repeat(col_offset, cnt)
        )
        sb[row, col] = vals_pos[idx]
        mb[row, col] = vals_mass[idx]

    def _inv_r3(self, r2s: np.ndarray, dt: np.dtype) -> np.ndarray:
        """``(r^2+eps^2)^(-3/2)`` on a flat compressed vector, with the
        exact operation sequence of the legacy kernel."""
        y = np.sqrt(r2s)
        np.divide(dt.type(1.0), y, out=y)
        f = y * y
        f *= y
        return f

    def _run_batch(
        self,
        plan,
        groups,
        smax,
        ttot,
        need_wrap,
        kernel,
        pos_sorted,
        spos,
        smass,
        npos,
        nmass,
        pcnt,
        out,
        refined=False,
    ) -> None:
        self.batches_run += 1
        dt = self.dtype
        B = len(groups)

        # padded per-group source boards; zero masses neutralize padding
        # (their products append exact +0.0 terms to the sequential
        # einsum reduction, preserving bitwise results).  Only the
        # padding tail of each row is zeroed — every other column is
        # overwritten by the scatter fills below.
        sb = self._buf("src_pos", (B, smax, 3), dt)
        mb = self._buf("src_mass", (B, smax), dt)
        bp = pcnt[groups]
        bn = plan.node_ptr[groups + 1] - plan.node_ptr[groups]
        off = np.arange(B, dtype=np.int64) * smax
        pad = multi_arange(off + bp + bn, off + smax)
        sb.reshape(B * smax, 3)[pad] = 0.0
        mb.reshape(B * smax)[pad] = 0.0
        self._fill_padded(
            plan.part_ptr[groups], plan.part_ptr[groups + 1],
            np.zeros(B, dtype=np.int64), spos, smass, sb, mb, B,
        )
        self._fill_padded(
            plan.node_ptr[groups], plan.node_ptr[groups + 1],
            bp, npos, nmass, sb, mb, B,
        )

        tcnt = plan.group_hi[groups] - plan.group_lo[groups]
        trows = multi_arange(plan.group_lo[groups], plan.group_hi[groups])
        tgt = pos_sorted[trows]
        if dt != tgt.dtype:
            tgt = tgt.astype(dt)
        rend = np.cumsum(tcnt)

        # dx = source - target, exactly the legacy kernel's orientation;
        # one broadcast subtraction per group row-block avoids a full
        # gathered copy of the source board
        dx = self._buf("dx", (ttot, smax, 3), dt)
        for i in range(B):
            r1 = rend[i]
            r0 = r1 - tcnt[i]
            np.subtract(sb[i][None, :, :], tgt[r0:r1, None, :], out=dx[r0:r1])
        if need_wrap:
            minimum_image(dx, kernel.box, out=dx)

        r2 = self._buf("r2", (ttot, smax), dt)
        np.einsum("tsk,tsk->ts", dx, dx, out=r2)
        eps2 = dt.type(kernel.eps) * dt.type(kernel.eps)

        split = kernel.split
        f = self._buf("f", (ttot, smax), dt)
        if (
            split is not None
            and getattr(split, "exact_cutoff", False)
            and not refined
        ):
            # compressed pipeline: past the cutoff the factor is exactly
            # 0.0, so f is exactly +0.0 there (positive inv_r3 times
            # +0.0) — write the zeros directly and run the expensive
            # rsqrt/cutoff chain only on the in-range pairs.  The margin
            # keeps the exclusion sound against the rounding of the
            # factor's internal 2r/rcut scaling.
            rc2 = dt.type((split.cutoff_radius * (1.0 + 1e-9)) ** 2)
            inr = self._buf("inr", (ttot, smax), bool)
            np.less_equal(r2, rc2, out=inr)
            idx = np.flatnonzero(inr.reshape(-1))
            r2c = r2.reshape(-1)[idx]
            zc = r2c == 0.0
            r2sc = r2c + eps2
            if kernel.eps == 0.0:
                np.copyto(r2sc, dt.type(1.0), where=zc)
            if kernel.use_fast_rsqrt:
                y = fast_rsqrt(r2sc)
                fc = y * y
                fc *= y
                fc *= split.short_range_factor(np.sqrt(r2c))
            elif kernel.eps == 0.0:
                # r2sc is bitwise r2c away from the guarded self-pairs
                # (x + 0.0 == x for x > 0), so one sqrt serves both the
                # inverse cube and the cutoff argument; the self-pairs
                # are zeroed below either way
                r = np.sqrt(r2sc)
                y = dt.type(1.0) / r
                fc = y * y
                fc *= y
                fc *= split.short_range_factor(r)
            else:
                fc = self._inv_r3(r2sc, dt)
                fc *= split.short_range_factor(np.sqrt(r2c))
            np.copyto(fc, dt.type(0.0), where=zc)
            f[...] = 0.0
            f.reshape(-1)[idx] = fc
        else:
            zero = self._buf("zero", (ttot, smax), bool)
            np.equal(r2, 0.0, out=zero)
            r2s = self._buf("r2s", (ttot, smax), dt)
            np.add(r2, eps2, out=r2s)
            if kernel.eps == 0.0:
                # guard exact zeros so the rsqrt path stays finite
                np.copyto(r2s, dt.type(1.0), where=zero)
            if kernel.use_fast_rsqrt:
                y = fast_rsqrt(r2s)
                np.multiply(y, y, out=f)
                f *= y
                if split is not None:
                    r = self._buf("r", (ttot, smax), dt)
                    np.sqrt(r2, out=r)
                    f *= split.short_range_factor(r)
            elif split is not None and kernel.eps == 0.0:
                # sqrt(r2s) is bitwise sqrt(r2) away from the guarded
                # zeros (x + 0.0 == x), so one sqrt serves both the
                # inverse cube and the cutoff argument; the guarded
                # entries are overwritten by the zero mask below
                y = self._buf("y", (ttot, smax), dt)
                np.sqrt(r2s, out=y)
                inv = self._buf("r", (ttot, smax), dt)
                np.divide(dt.type(1.0), y, out=inv)
                np.multiply(inv, inv, out=f)
                f *= inv
                f *= split.short_range_factor(y)
            else:
                y = self._buf("y", (ttot, smax), dt)
                np.sqrt(r2s, out=y)
                np.divide(dt.type(1.0), y, out=y)
                np.multiply(y, y, out=f)
                f *= y
                if split is not None:
                    r = self._buf("r", (ttot, smax), dt)
                    np.sqrt(r2, out=r)
                    f *= split.short_range_factor(r)
            np.copyto(f, dt.type(0.0), where=zero)

        # fold the source masses into f one group row-block at a time
        # ((m*f)*dx is einsum's own product order, so this is bitwise
        # equal to the legacy three-operand contraction)
        for i in range(B):
            r1 = rend[i]
            r0 = r1 - tcnt[i]
            np.multiply(f[r0:r1], mb[i][None, :], out=f[r0:r1])
        acc = self._buf("acc", (ttot, 3), dt)
        np.einsum("ts,tsk->tk", f, dx, out=acc)
        acc *= dt.type(kernel.G)
        if kernel.ewald_table is not None:
            m2 = self._buf("m2", (ttot, smax), dt)
            gid = np.repeat(np.arange(B), tcnt)
            np.take(mb, gid, axis=0, out=m2)
            corr = -kernel.ewald_table.correction(dx)
            acc += dt.type(kernel.G) * np.einsum("ts,tsk->tk", m2, corr)
        # += onto the zeroed rows matches the legacy `0.0 + acc` exactly
        # (it normalizes any -0.0 component the same way)
        out[trows] += acc
