"""GRAPE-5-style API facade over the PP kernel.

The paper's force loop "was originally developed for the x86
architecture with the SSE instruction set, and named Phantom-GRAPE
after its API compatibility to GRAPE-5" — application code written for
the GRAPE special-purpose pipelines (set the j-particles, stream the
i-particles, read back forces) runs unchanged on the software kernel.

This module provides that calling convention over
:class:`repro.pp.kernel.PPKernel`, so GRAPE-style client code (like the
1995-2003 Gordon Bell tree codes the paper cites) can drive our kernel:

    g5 = PhantomGrape(eps=1e-4)
    g5.set_n(len(sources))
    g5.set_xmj(0, pos_j, mass_j)
    g5.set_ip(pos_i)
    g5.run()
    acc = g5.get_force()
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.pp.kernel import InteractionCounter, PPKernel
from repro.pp.plan import InteractionPlan, PlanExecutor

__all__ = ["PhantomGrape"]


class PhantomGrape:
    """Software GRAPE pipeline (GRAPE-5 call surface).

    Parameters
    ----------
    eps:
        Plummer softening applied by the pipeline.
    split:
        Optional force split: with the g_P3M cutoff attached this is
        the paper's ported kernel; without it, plain softened gravity
        (the original Phantom-GRAPE).
    use_fast_rsqrt:
        Use the emulated approximate-rsqrt path.
    jmemsize:
        Capacity of the j-particle (source) memory, mirroring the
        hardware's finite board memory; exceeding it raises.
    precision:
        ``"double"`` (default) runs the exact float64 kernel;
        ``"single"`` runs the pair arithmetic in float32 through the
        plan executor, matching the real Phantom-GRAPE's
        single-precision pipelines.
    """

    def __init__(
        self,
        eps: float = 0.0,
        split=None,
        G: float = 1.0,
        use_fast_rsqrt: bool = False,
        jmemsize: int = 2**20,
        precision: str = "double",
    ) -> None:
        if precision not in ("double", "single"):
            raise ValueError("precision must be 'double' or 'single'")
        self.precision = precision
        self.counter = InteractionCounter()
        self._kernel = PPKernel(
            split=split,
            eps=eps,
            G=G,
            use_fast_rsqrt=use_fast_rsqrt,
            counter=self.counter,
        )
        self._executor = (
            PlanExecutor(dtype=np.float32) if precision == "single" else None
        )
        self.jmemsize = int(jmemsize)
        self._xj: Optional[np.ndarray] = None
        self._mj: Optional[np.ndarray] = None
        self._nj = 0
        self._xi: Optional[np.ndarray] = None
        self._acc: Optional[np.ndarray] = None
        self._ran = False

    # -- j-particle (source) memory -----------------------------------------

    def set_n(self, nj: int) -> None:
        """Declare the number of j-particles (GRAPE: g5_set_n)."""
        if not 0 < nj <= self.jmemsize:
            raise ValueError(f"nj must be in (0, {self.jmemsize}]")
        self._nj = int(nj)
        self._xj = np.zeros((nj, 3))
        self._mj = np.zeros(nj)

    def set_xmj(self, offset: int, xj: np.ndarray, mj: np.ndarray) -> None:
        """Load source positions and masses starting at ``offset``
        (GRAPE: g5_set_xmj); supports incremental board filling."""
        if self._xj is None:
            raise RuntimeError("call set_n first")
        xj = np.asarray(xj, dtype=np.float64)
        mj = np.asarray(mj, dtype=np.float64)
        if xj.ndim != 2 or xj.shape[1] != 3 or len(xj) != len(mj):
            raise ValueError("xj must be (n, 3) with matching mj")
        if offset < 0 or offset + len(xj) > self._nj:
            raise ValueError("j-particle range outside the declared size")
        self._xj[offset : offset + len(xj)] = xj
        self._mj[offset : offset + len(mj)] = mj

    # -- i-particle pipeline --------------------------------------------------

    def set_ip(self, xi: np.ndarray) -> None:
        """Load the i-particles (targets) for the next run."""
        xi = np.asarray(xi, dtype=np.float64)
        if xi.ndim != 2 or xi.shape[1] != 3:
            raise ValueError("xi must be (n, 3)")
        self._xi = xi
        self._ran = False

    def run(self) -> None:
        """Fire the pipeline (GRAPE: g5_run)."""
        if self._xj is None or self._xi is None:
            raise RuntimeError("set_n/set_xmj and set_ip must precede run")
        if self.precision == "single":
            self._acc = self._run_single()
        else:
            self._acc = self._kernel.accumulate(self._xi, self._xj, self._mj)
        self._ran = True

    def _run_single(self) -> np.ndarray:
        """Float32 pipeline: one-group interaction plan over the loaded
        boards, executed by the shared batched engine."""
        ni = len(self._xi)
        pos = np.vstack([self._xi, self._xj])
        mass = np.concatenate([np.zeros(ni), self._mj])
        plan = InteractionPlan(
            group_nodes=np.zeros(1, dtype=np.int64),
            group_lo=np.zeros(1, dtype=np.int64),
            group_hi=np.full(1, ni, dtype=np.int64),
            part_ptr=np.array([0, self._nj], dtype=np.int64),
            part_idx=np.arange(ni, ni + self._nj, dtype=np.int64),
            node_ptr=np.zeros(2, dtype=np.int64),
            node_idx=np.empty(0, dtype=np.int64),
        )
        out = self._executor.execute(
            plan,
            self._kernel,
            pos,
            mass,
            np.empty((0, 3)),
            np.empty(0),
        )
        return out[:ni]

    def get_force(self) -> np.ndarray:
        """Read back accelerations (GRAPE: g5_get_force)."""
        if not self._ran:
            raise RuntimeError("run() has not completed")
        return self._acc

    def get_potential(self) -> np.ndarray:
        """Read back potentials for the last i-particle set."""
        if self._xi is None or self._xj is None:
            raise RuntimeError("pipeline not loaded")
        return self._kernel.potential(self._xi, self._xj, self._mj)

    # -- convenience -------------------------------------------------------------

    def calculate_forces_on(self, xi: np.ndarray) -> np.ndarray:
        """set_ip + run + get_force in one call."""
        self.set_ip(xi)
        self.run()
        return self.get_force()
