"""The particle-particle force loop (Phantom-GRAPE port, numpy edition).

Evaluates eq. (2) of the paper: softened Newtonian pair accelerations
multiplied by the ``g_P3M`` cutoff (or any force split's short-range
factor), fully vectorized over a block of targets times an interaction
list of sources — the exact shape of the work Barnes' modified traversal
produces (forces from list members onto all particles of a group).

Flop accounting follows the paper's convention of 51 floating-point
operations per interaction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import FLOPS_PER_INTERACTION
from repro.pp.rsqrt import fast_rsqrt
from repro.utils.periodic import minimum_image

__all__ = ["InteractionCounter", "PPKernel", "pp_forces"]


@dataclass
class InteractionCounter:
    """Counts particle-particle interactions and derived flops.

    The paper's ``<Ni>``/``<Nj>`` statistics are per-call means of the
    target count and interaction-list length.  Only streaming sums are
    kept — integer sums are exact (well below 2**53), so the means are
    identical to averaging a per-call log, without the unbounded memory
    growth such a log shows over a long run.
    """

    interactions: int = 0
    calls: int = 0
    sum_group_size: int = 0
    sum_list_length: int = 0

    def record(self, n_targets: int, n_sources: int) -> None:
        self.interactions += n_targets * n_sources
        self.calls += 1
        self.sum_group_size += n_targets
        self.sum_list_length += n_sources

    def record_many(self, n_targets: np.ndarray, n_sources: np.ndarray) -> None:
        """Record one call per row of ``n_targets``/``n_sources`` at once
        (the plan executor's whole-evaluation form)."""
        n_targets = np.asarray(n_targets, dtype=np.int64)
        n_sources = np.asarray(n_sources, dtype=np.int64)
        self.interactions += int(np.dot(n_targets, n_sources))
        self.calls += len(n_targets)
        self.sum_group_size += int(n_targets.sum())
        self.sum_list_length += int(n_sources.sum())

    @property
    def flops(self) -> int:
        """Total flops under the paper's 51 flops/interaction convention."""
        return FLOPS_PER_INTERACTION * self.interactions

    @property
    def mean_group_size(self) -> float:
        """The paper's <Ni>: average number of particles per group."""
        return self.sum_group_size / self.calls if self.calls else 0.0

    @property
    def mean_list_length(self) -> float:
        """The paper's <Nj>: average interaction-list length."""
        return self.sum_list_length / self.calls if self.calls else 0.0

    def reset(self) -> None:
        self.interactions = 0
        self.calls = 0
        self.sum_group_size = 0
        self.sum_list_length = 0

    def merge(self, other: "InteractionCounter") -> None:
        self.interactions += other.interactions
        self.calls += other.calls
        self.sum_group_size += other.sum_group_size
        self.sum_list_length += other.sum_list_length


class PPKernel:
    """Vectorized short-range force kernel.

    Parameters
    ----------
    split:
        A force split providing ``short_range_factor(r)`` (use ``None``
        for plain softened Newtonian gravity, the pure-tree baseline).
    eps:
        Plummer softening length.
    G:
        Gravitational constant.
    use_fast_rsqrt:
        Emulate the HPC-ACE approximate-rsqrt path (24-bit accuracy)
        instead of the exact square root.
    counter:
        Optional shared :class:`InteractionCounter`.
    box:
        When set, pair displacements are reduced to their minimum image
        in a periodic box of this size (per-pair exact periodicity).
    ewald_table:
        Optional :class:`repro.forces.ewald_table.EwaldCorrectionTable`
        adding the tabulated image-lattice correction to every pair
        (the GADGET-style exact-periodic pure-tree configuration; not
        meaningful together with a force split, whose PM part already
        carries the periodic images).
    """

    def __init__(
        self,
        split=None,
        eps: float = 0.0,
        G: float = 1.0,
        use_fast_rsqrt: bool = False,
        counter: InteractionCounter | None = None,
        box: float | None = None,
        ewald_table=None,
    ) -> None:
        if split is not None and ewald_table is not None:
            raise ValueError(
                "ewald_table applies to full (unsplit) gravity only"
            )
        self.split = split
        self.eps = float(eps)
        self.G = float(G)
        self.use_fast_rsqrt = bool(use_fast_rsqrt)
        self.counter = counter if counter is not None else InteractionCounter()
        self.box = None if box is None else float(box)
        self.ewald_table = ewald_table

    def _inv_r3(self, r2s: np.ndarray) -> np.ndarray:
        """(r^2 + eps^2)^(-3/2) via the selected rsqrt path."""
        if self.use_fast_rsqrt:
            y = fast_rsqrt(r2s)
        else:
            y = 1.0 / np.sqrt(r2s)
        return y * y * y

    def accumulate(
        self,
        targets: np.ndarray,
        sources: np.ndarray,
        masses: np.ndarray,
        *,
        dx_offsets: np.ndarray | None = None,
    ) -> np.ndarray:
        """Accelerations on ``targets`` from the list ``sources``.

        Parameters
        ----------
        targets:
            ``(T, 3)`` positions of the group particles.
        sources:
            ``(S, 3)`` positions of interaction-list members.
        masses:
            ``(S,)`` masses of list members.
        dx_offsets:
            Optional ``(S, 3)`` periodic image offsets already applied
            to the sources by the caller (tree traversal handles
            periodicity; this kernel is purely geometric).

        Returns ``(T, 3)`` accelerations.  Zero-separation pairs (a
        particle interacting with itself inside its own group) are
        skipped, matching GRAPE semantics where self-force vanishes.
        """
        targets = np.asarray(targets, dtype=np.float64)
        sources = np.asarray(sources, dtype=np.float64)
        masses = np.asarray(masses, dtype=np.float64)
        if dx_offsets is not None:
            sources = sources + dx_offsets
        self.counter.record(len(targets), len(sources))

        dx = sources[None, :, :] - targets[:, None, :]  # (T, S, 3)
        if self.box is not None:
            minimum_image(dx, self.box, out=dx)
        r2 = np.einsum("tsk,tsk->ts", dx, dx)
        r2s = r2 + self.eps * self.eps
        if self.eps == 0.0:
            # guard exact zeros so the rsqrt path stays finite
            zero = r2 == 0.0
            r2s = np.where(zero, 1.0, r2s)
        f = self._inv_r3(r2s)
        if self.split is not None:
            r = np.sqrt(r2)
            f = f * self.split.short_range_factor(r)
        f = np.where(r2 == 0.0, 0.0, f)
        acc = self.G * np.einsum("s,ts,tsk->tk", masses, f, dx)
        if self.ewald_table is not None:
            # the table convention is dx = r_i - r_j (the Ewald pair
            # kernel); our dx is r_j - r_i, and the correction is odd
            corr = -self.ewald_table.correction(dx)
            acc += self.G * np.einsum("s,tsk->tk", masses, corr)
        return acc

    def potential(
        self,
        targets: np.ndarray,
        sources: np.ndarray,
        masses: np.ndarray,
    ) -> np.ndarray:
        """Short-range potential on targets (for energy diagnostics)."""
        targets = np.asarray(targets, dtype=np.float64)
        sources = np.asarray(sources, dtype=np.float64)
        masses = np.asarray(masses, dtype=np.float64)
        dx = sources[None, :, :] - targets[:, None, :]
        if self.box is not None:
            minimum_image(dx, self.box, out=dx)
        r2 = np.einsum("tsk,tsk->ts", dx, dx)
        r2s = r2 + self.eps * self.eps
        zero = r2 == 0.0
        r2s = np.where(zero & (self.eps == 0.0), 1.0, r2s)
        p = -1.0 / np.sqrt(r2s)
        if self.split is not None:
            r = np.sqrt(r2)
            # h(r)/r with the softened 1/r
            p = p * self.split.short_range_potential_factor(r)
        p = np.where(zero, 0.0, p)
        return self.G * np.einsum("s,ts->t", masses, p)


def pp_forces(
    pos: np.ndarray,
    mass: np.ndarray,
    split=None,
    eps: float = 0.0,
    G: float = 1.0,
    use_fast_rsqrt: bool = False,
    chunk: int = 512,
    counter: InteractionCounter | None = None,
) -> np.ndarray:
    """All-pairs short-range forces through the kernel (O(N^2) driver).

    This is the microbenchmark configuration of section II-A: a simple
    O(N^2) kernel sweep, used to measure kernel throughput.
    """
    kern = PPKernel(
        split=split, eps=eps, G=G, use_fast_rsqrt=use_fast_rsqrt, counter=counter
    )
    pos = np.asarray(pos, dtype=np.float64)
    acc = np.empty_like(pos)
    for lo in range(0, len(pos), chunk):
        hi = min(lo + chunk, len(pos))
        acc[lo:hi] = kern.accumulate(pos[lo:hi], pos, mass)
    return acc
