"""Bindings for the native plan-sweep kernel.

The C source (:file:`_plansweep.c`) ships with the package and is built
through the shared compile-on-demand loader
(:mod:`repro.native.build`): compiled once per source/toolchain/flag
combination into a hash-keyed on-disk cache, bound through
:mod:`ctypes`.  The build deliberately targets the baseline
architecture with ``-ffp-contract=off`` so the kernel performs exactly
the individually rounded IEEE double operations of the numpy executor
pipeline — no FMA contraction, no reassociation — keeping its forces
bitwise identical to the pure-numpy path.

When the toolchain supports OpenMP the library is built with
``-fopenmp`` and exposes ``plan_sweep_threads``, a parallel-over-groups
variant selected when ``REPRO_NATIVE_THREADS`` requests more than one
thread.  Plan groups own disjoint output rows, so the threaded sweep is
bitwise identical to the serial one for any thread count.

The loader degrades gracefully: if no compiler is present (or the build
fails, or ``REPRO_NO_NATIVE`` / ``REPRO_NO_NATIVE_PP`` is set — checked
on every call) the executor silently falls back to the numpy pipeline.
Nothing outside this module needs to know whether the native kernel is
in use, and no third-party build machinery is involved.
"""

from __future__ import annotations

import ctypes
import os
from typing import Optional

from repro.native import build as _build

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_plansweep.c")

_I64P = ctypes.POINTER(ctypes.c_int64)
_F64P = ctypes.POINTER(ctypes.c_double)
_U8P = ctypes.POINTER(ctypes.c_uint8)

_ARGTYPES = [
    ctypes.c_int64,  # n_groups
    _I64P,  # group_lo
    _I64P,  # group_hi
    _I64P,  # part_ptr
    _I64P,  # part_idx
    _I64P,  # node_ptr
    _I64P,  # node_idx
    _F64P,  # pos
    _F64P,  # mass
    _F64P,  # node_com
    _F64P,  # node_mass
    _U8P,  # wrap
    ctypes.c_double,  # box
    ctypes.c_double,  # eps2
    ctypes.c_int,  # use_split
    ctypes.c_double,  # rcut
    ctypes.c_double,  # rc2
    ctypes.c_double,  # G
    _F64P,  # scratch
    _F64P,  # out
]


def _declare(lib: ctypes.CDLL) -> None:
    if getattr(lib, "_plansweep_declared", False):
        return
    lib.plan_sweep.restype = None
    lib.plan_sweep.argtypes = _ARGTYPES
    lib.plan_sweep_threads.restype = None
    lib.plan_sweep_threads.argtypes = _ARGTYPES + [
        ctypes.c_int64,  # scratch_stride
        ctypes.c_int,  # nthreads
    ]
    lib._plansweep_declared = True


def get_lib() -> Optional[ctypes.CDLL]:
    """The loaded kernel library, or ``None`` when unavailable.

    The stage gate (``REPRO_NO_NATIVE`` / ``REPRO_NO_NATIVE_PP``) is
    checked on every call; the build itself happens at most once per
    source/flag combination (see :func:`repro.native.build.load_library`).
    """
    if not _build.stage_enabled("pp"):
        return None
    extra = ("-fopenmp",) if _build.openmp_available() else ()
    lib = _build.load_library(_SRC, extra_flags=extra)
    if lib is None:
        return None
    _declare(lib)
    return lib


def available() -> bool:
    """Whether the native plan-sweep kernel can be used."""
    return get_lib() is not None


def threaded_available() -> bool:
    """Whether the sweep can actually run multi-threaded (OpenMP built)."""
    return _build.openmp_available() and available()


def _ptr(arr, ctype):
    return arr.ctypes.data_as(ctype)


def sweep(
    lib,
    group_lo,
    group_hi,
    part_ptr,
    part_idx,
    node_ptr,
    node_idx,
    pos,
    mass,
    node_com,
    node_mass,
    wrap,
    box,
    eps2,
    use_split,
    rcut,
    rc2,
    G,
    scratch,
    out,
    nthreads: int = 1,
    scratch_stride: int = 0,
) -> None:
    """Invoke ``plan_sweep`` (arrays must be C-contiguous and typed).

    With ``nthreads > 1`` the OpenMP entry point is used; ``scratch``
    must then hold ``nthreads * scratch_stride`` doubles (one board per
    thread).  Results are bitwise identical either way.
    """
    args = [
        ctypes.c_int64(len(group_lo)),
        _ptr(group_lo, _I64P),
        _ptr(group_hi, _I64P),
        _ptr(part_ptr, _I64P),
        _ptr(part_idx, _I64P),
        _ptr(node_ptr, _I64P),
        _ptr(node_idx, _I64P),
        _ptr(pos, _F64P),
        _ptr(mass, _F64P),
        _ptr(node_com, _F64P),
        _ptr(node_mass, _F64P),
        _ptr(wrap, _U8P),
        ctypes.c_double(box),
        ctypes.c_double(eps2),
        ctypes.c_int(use_split),
        ctypes.c_double(rcut),
        ctypes.c_double(rc2),
        ctypes.c_double(G),
        _ptr(scratch, _F64P),
        _ptr(out, _F64P),
    ]
    if nthreads > 1:
        lib.plan_sweep_threads(
            *args, ctypes.c_int64(scratch_stride), ctypes.c_int(nthreads)
        )
    else:
        lib.plan_sweep(*args)


__all__ = ["available", "get_lib", "sweep", "threaded_available"]
