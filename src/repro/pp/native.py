"""Compile-on-demand loader for the native plan-sweep kernel.

The C source (:file:`_plansweep.c`) ships with the package and is built
into a shared library with the system C compiler the first time it is
requested, then bound through :mod:`ctypes`.  The build deliberately
targets the baseline architecture with ``-ffp-contract=off`` so the
kernel performs exactly the individually rounded IEEE double operations
of the numpy executor pipeline — no FMA contraction, no reassociation —
keeping its forces bitwise identical to the pure-numpy path.

The loader degrades gracefully: if no compiler is present (or the build
fails, or ``REPRO_NO_NATIVE`` is set in the environment) the executor
silently falls back to the numpy pipeline.  Nothing outside this module
needs to know whether the native kernel is in use, and no third-party
build machinery is involved.
"""

from __future__ import annotations

import ctypes
import os
import subprocess
import tempfile
from typing import Optional

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_plansweep.c")

_lib = None
_tried = False

_I64P = ctypes.POINTER(ctypes.c_int64)
_F64P = ctypes.POINTER(ctypes.c_double)
_U8P = ctypes.POINTER(ctypes.c_uint8)

_ARGTYPES = [
    ctypes.c_int64,  # n_groups
    _I64P,  # group_lo
    _I64P,  # group_hi
    _I64P,  # part_ptr
    _I64P,  # part_idx
    _I64P,  # node_ptr
    _I64P,  # node_idx
    _F64P,  # pos
    _F64P,  # mass
    _F64P,  # node_com
    _F64P,  # node_mass
    _U8P,  # wrap
    ctypes.c_double,  # box
    ctypes.c_double,  # eps2
    ctypes.c_int,  # use_split
    ctypes.c_double,  # rcut
    ctypes.c_double,  # rc2
    ctypes.c_double,  # G
    _F64P,  # scratch
    _F64P,  # out
]


def _build() -> Optional[ctypes.CDLL]:
    if os.environ.get("REPRO_NO_NATIVE"):
        return None
    if not os.path.exists(_SRC):
        return None
    cc = os.environ.get("CC", "cc")
    workdir = tempfile.mkdtemp(prefix="repro-plansweep-")
    so = os.path.join(workdir, "plansweep.so")
    cmd = [
        cc,
        "-O2",
        "-fPIC",
        "-shared",
        "-ffp-contract=off",
        "-o",
        so,
        _SRC,
        "-lm",
    ]
    try:
        subprocess.run(cmd, check=True, capture_output=True, timeout=120)
        lib = ctypes.CDLL(so)
    except (OSError, subprocess.SubprocessError):
        return None
    lib.plan_sweep.restype = None
    lib.plan_sweep.argtypes = _ARGTYPES
    return lib


def get_lib() -> Optional[ctypes.CDLL]:
    """The loaded kernel library, or ``None`` when unavailable.

    The first call attempts the build; the outcome (either way) is
    cached for the life of the process.
    """
    global _lib, _tried
    if not _tried:
        _tried = True
        _lib = _build()
    return _lib


def available() -> bool:
    """Whether the native plan-sweep kernel can be used."""
    return get_lib() is not None


def _ptr(arr, ctype):
    return arr.ctypes.data_as(ctype)


def sweep(
    lib,
    group_lo,
    group_hi,
    part_ptr,
    part_idx,
    node_ptr,
    node_idx,
    pos,
    mass,
    node_com,
    node_mass,
    wrap,
    box,
    eps2,
    use_split,
    rcut,
    rc2,
    G,
    scratch,
    out,
) -> None:
    """Invoke ``plan_sweep`` (arrays must be C-contiguous and typed)."""
    lib.plan_sweep(
        ctypes.c_int64(len(group_lo)),
        _ptr(group_lo, _I64P),
        _ptr(group_hi, _I64P),
        _ptr(part_ptr, _I64P),
        _ptr(part_idx, _I64P),
        _ptr(node_ptr, _I64P),
        _ptr(node_idx, _I64P),
        _ptr(pos, _F64P),
        _ptr(mass, _F64P),
        _ptr(node_com, _F64P),
        _ptr(node_mass, _F64P),
        _ptr(wrap, _U8P),
        ctypes.c_double(box),
        ctypes.c_double(eps2),
        ctypes.c_int(use_split),
        ctypes.c_double(rcut),
        ctypes.c_double(rc2),
        ctypes.c_double(G),
        _ptr(scratch, _F64P),
        _ptr(out, _F64P),
    )


__all__ = ["available", "get_lib", "sweep"]
