"""Emulation of the HPC-ACE fast approximate reciprocal square root.

The paper computes inverse square roots "using a fast approximate
instruction of HPC-ACE with 8-bit accuracy and a third-order convergence
method

    y0 ~ 1/sqrt(x),  h0 = 1 - x y0^2,  y1 = y0 (1 + h0/2 + 3 h0^2 / 8)

to obtain 24-bit accuracy.  A full convergence to double-precision will
increase both CPU time and the flops count, without improving the
accuracy of scientific results."

We emulate the 8-bit seed by truncating the exact reciprocal square root
to 8 mantissa bits, then apply the identical third-order refinement.
The result carries ~24 valid bits: relative error ~ 2^-25.
"""

from __future__ import annotations

import numpy as np

__all__ = ["fast_rsqrt", "rsqrt_seed_8bit", "rsqrt_relative_error"]

#: Number of mantissa bits retained by the emulated hardware estimate.
SEED_BITS = 8


def rsqrt_seed_8bit(x: np.ndarray) -> np.ndarray:
    """8-bit-accurate initial estimate of ``1/sqrt(x)``.

    Emulates the HPC-ACE ``frsqrta`` instruction by rounding the exact
    value to ``SEED_BITS`` mantissa bits.
    """
    x = np.asarray(x, dtype=np.float64)
    exact = 1.0 / np.sqrt(x)
    mant, expo = np.frexp(exact)
    scale = float(1 << SEED_BITS)
    mant = np.round(mant * scale) / scale
    return np.ldexp(mant, expo)


def fast_rsqrt(x: np.ndarray) -> np.ndarray:
    """``1/sqrt(x)`` via the paper's seed + third-order refinement.

    Accurate to ~24 bits (relative error below ~6e-8 for positive
    finite inputs), matching the precision the paper deems sufficient
    for the scientific results.
    """
    x = np.asarray(x, dtype=np.float64)
    y0 = rsqrt_seed_8bit(x)
    h0 = 1.0 - x * y0 * y0
    return y0 * (1.0 + h0 * (0.5 + h0 * (3.0 / 8.0)))


def rsqrt_relative_error(x: np.ndarray) -> np.ndarray:
    """Relative error of :func:`fast_rsqrt` against the exact value."""
    x = np.asarray(x, dtype=np.float64)
    exact = 1.0 / np.sqrt(x)
    return np.abs(fast_rsqrt(x) - exact) / exact
