/* Native sweep over a CSR interaction plan.
 *
 * This is the compiled analogue of the numpy PlanExecutor pipeline (and
 * of the paper's hand-tuned Phantom-GRAPE kernel): one pass over the
 * plan, one fused scalar loop per pair.  Every floating-point operation
 * below reproduces, in the same order, one individually rounded IEEE
 * double operation of the numpy float64 pipeline, so the results are
 * bitwise identical:
 *
 *   - dx = source - target, then (wrap groups only) the minimum-image
 *     round dx -= box * rint(dx / box);
 *   - r2 accumulated over components left-to-right;
 *   - f = (y*y)*y with y = 1.0/sqrt(r2 + eps2);
 *   - the S2 cutoff polynomial with powers expanded into the exact
 *     multiply chains used by repro.forces.cutoff.gp3m_cutoff;
 *   - per-target accumulation strictly sequential over the source list
 *     (numpy's einsum order), scaled by G at the end.
 *
 * Pairs whose force factor is exactly +/-0.0 (self pairs, pairs past the
 * exact cutoff) are skipped: a sequential IEEE sum is unchanged by
 * adding signed zeros (mid-sum cancellation yields +0.0, and the final
 * `out += acc` onto zeroed rows normalizes any leading -0.0), which is
 * the same argument that licenses the numpy path's compression.
 *
 * plan_sweep_threads parallelizes over groups with OpenMP (compiled in
 * only when the loader probes -fopenmp successfully; without it the
 * pragma is ignored and the loop runs serially).  Groups own disjoint
 * target rows and each group's arithmetic depends only on its own
 * interaction list, so the result is bitwise independent of the
 * schedule and thread count.
 *
 * Compile with the default x86-64 target and -ffp-contract=off: no FMA
 * contraction, no reassociation, hardware-rounded sqrt/divide.
 */

#include <math.h>
#include <stdint.h>

#ifdef _OPENMP
#include <omp.h>
#endif

static double gp3m(double xi)
{
    /* exact operation sequence of gp3m_cutoff's array branch */
    double g = xi * (3.0 / 20.0);
    g += -12.0 / 35.0;
    g *= xi;
    g += -0.5;
    g *= xi;
    g += 8.0 / 5.0;
    double xi2 = xi * xi;
    g *= xi2;
    g += -8.0 / 5.0;
    double xi3 = xi2 * xi;
    g *= xi3;
    g += 1.0;
    double q = xi * (1.0 / 5.0);
    q += 18.0 / 35.0;
    q *= xi;
    q += 3.0 / 35.0;
    double zeta = xi - 1.0;
    if (zeta < 0.0)
        zeta = 0.0;
    double z2 = zeta * zeta;
    double z6 = z2 * z2;
    z6 *= z2;
    q *= z6;
    g -= q;
    if (xi >= 2.0)
        g = 0.0;
    return g;
}

static void sweep_group(
    int64_t g,
    const int64_t *group_lo,
    const int64_t *group_hi,
    const int64_t *part_ptr,
    const int64_t *part_idx,
    const int64_t *node_ptr,
    const int64_t *node_idx,
    const double *pos,
    const double *mass,
    const double *node_com,
    const double *node_mass,
    const uint8_t *wrap,
    double box,
    double eps2,
    int use_split,
    double rcut,
    double rc2,
    double G,
    double *scratch,
    double *out)
{
    int64_t p0 = part_ptr[g], p1 = part_ptr[g + 1];
    int64_t n0 = node_ptr[g], n1 = node_ptr[g + 1];
    int64_t S = (p1 - p0) + (n1 - n0);
    if (S == 0)
        return;
    /* gather the interaction list once per group (particles first,
     * then nodes: the legacy list order) */
    double *sx = scratch;
    double *sm = scratch + 3 * S;
    int64_t k = 0;
    for (int64_t i = p0; i < p1; ++i, ++k) {
        int64_t j = part_idx[i];
        sx[3 * k] = pos[3 * j];
        sx[3 * k + 1] = pos[3 * j + 1];
        sx[3 * k + 2] = pos[3 * j + 2];
        sm[k] = mass[j];
    }
    for (int64_t i = n0; i < n1; ++i, ++k) {
        int64_t j = node_idx[i];
        sx[3 * k] = node_com[3 * j];
        sx[3 * k + 1] = node_com[3 * j + 1];
        sx[3 * k + 2] = node_com[3 * j + 2];
        sm[k] = node_mass[j];
    }
    int w = wrap != 0 && wrap[g];
    for (int64_t t = group_lo[g]; t < group_hi[g]; ++t) {
        double tx = pos[3 * t];
        double ty = pos[3 * t + 1];
        double tz = pos[3 * t + 2];
        double ax = 0.0, ay = 0.0, az = 0.0;
        for (int64_t s = 0; s < S; ++s) {
            double dx = sx[3 * s] - tx;
            double dy = sx[3 * s + 1] - ty;
            double dz = sx[3 * s + 2] - tz;
            if (w) {
                dx -= rint(dx / box) * box;
                dy -= rint(dy / box) * box;
                dz -= rint(dz / box) * box;
            }
            /* numpy's einsum reduces the length-3 component axis in
             * SIMD-pair order: lane x plus remainder z, then lane y */
            double r2 = (dx * dx + dz * dz) + dy * dy;
            if (r2 == 0.0)
                continue; /* self pair: factor is zeroed */
            if (use_split && r2 > rc2)
                continue; /* exact cutoff: factor is exactly 0.0 */
            double r2s = r2 + eps2;
            double y = 1.0 / sqrt(r2s);
            double f = (y * y) * y;
            if (use_split) {
                double xi = (2.0 * sqrt(r2)) / rcut;
                f *= gp3m(xi);
            }
            double fm = f * sm[s];
            ax += fm * dx;
            ay += fm * dy;
            az += fm * dz;
        }
        out[3 * t] += ax * G;
        out[3 * t + 1] += ay * G;
        out[3 * t + 2] += az * G;
    }
}

void plan_sweep(
    int64_t n_groups,
    const int64_t *group_lo,
    const int64_t *group_hi,
    const int64_t *part_ptr,
    const int64_t *part_idx,
    const int64_t *node_ptr,
    const int64_t *node_idx,
    const double *pos,       /* (N, 3) Morton-sorted positions */
    const double *mass,      /* (N,) */
    const double *node_com,  /* (M, 3) */
    const double *node_mass, /* (M,) */
    const uint8_t *wrap,     /* per-group: apply per-pair minimum image */
    double box,
    double eps2,
    int use_split,           /* 1: apply the S2 gp3m cutoff */
    double rcut,
    double rc2,              /* skip threshold, >= rcut^2 */
    double G,
    double *scratch,         /* >= 4 * max list length doubles */
    double *out)             /* (N, 3); rows group_lo..group_hi get += */
{
    for (int64_t g = 0; g < n_groups; ++g)
        sweep_group(g, group_lo, group_hi, part_ptr, part_idx, node_ptr,
                    node_idx, pos, mass, node_com, node_mass, wrap, box,
                    eps2, use_split, rcut, rc2, G, scratch, out);
}

/* Threaded variant: parallel over groups, one scratch board of
 * `scratch_stride` doubles per thread.  Bitwise identical to plan_sweep
 * for any nthreads (disjoint output rows, per-group arithmetic). */
void plan_sweep_threads(
    int64_t n_groups,
    const int64_t *group_lo,
    const int64_t *group_hi,
    const int64_t *part_ptr,
    const int64_t *part_idx,
    const int64_t *node_ptr,
    const int64_t *node_idx,
    const double *pos,
    const double *mass,
    const double *node_com,
    const double *node_mass,
    const uint8_t *wrap,
    double box,
    double eps2,
    int use_split,
    double rcut,
    double rc2,
    double G,
    double *scratch,         /* >= nthreads * scratch_stride doubles */
    double *out,
    int64_t scratch_stride,
    int nthreads)
{
    (void)nthreads;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 8) num_threads(nthreads)
#endif
    for (int64_t g = 0; g < n_groups; ++g) {
        int tid = 0;
#ifdef _OPENMP
        tid = omp_get_thread_num();
#endif
        sweep_group(g, group_lo, group_hi, part_ptr, part_idx, node_ptr,
                    node_idx, pos, mass, node_com, node_mass, wrap, box,
                    eps2, use_split, rcut, rc2, G,
                    scratch + (int64_t)tid * scratch_stride, out);
    }
}
