"""Particle-particle (short-range) force kernel.

A numpy port of the paper's Phantom-GRAPE force loop for the HPC-ACE
architecture: the softened Newtonian pair force multiplied by the g_P3M
cutoff function, with an optional emulation of the fast approximate
reciprocal-square-root path (8-bit initial estimate refined by one
third-order iteration to 24-bit accuracy, exactly as described in
section II-A) and exact interaction/flop counters.
"""

from repro.pp.rsqrt import fast_rsqrt, rsqrt_relative_error
from repro.pp.kernel import (
    PPKernel,
    InteractionCounter,
    pp_forces,
)
from repro.pp.plan import InteractionPlan, PlanExecutor
from repro.pp.celllist import CellList, p3m_short_range_forces

__all__ = [
    "fast_rsqrt",
    "rsqrt_relative_error",
    "PPKernel",
    "InteractionCounter",
    "InteractionPlan",
    "PlanExecutor",
    "pp_forces",
    "CellList",
    "p3m_short_range_forces",
]
