"""Runtime invariant guardrails: health checks, corruption detection,
diagnostic dumps.

The paper's trillion-particle campaign can only trust a week-long
integration because every pipeline stage conserves what it must:
particle count across the 3-D multisection exchange, mass through mesh
assignment and the relay/slab conversions, momentum and energy across
the TreePM force split.  This package turns those conservation laws
into *runtime guardrails*:

* :mod:`repro.validate.checks` — composable, vectorized invariant
  checkers (finite-field sweeps, count/momentum/mass conservation,
  octree moment consistency, domain partition coverage);
* :mod:`repro.validate.monitor` — per-step energy and momentum drift
  monitors with configurable tolerances;
* :mod:`repro.validate.errors` — the structured
  :class:`InvariantViolation` every checker raises, carrying step,
  rank, stage and offending-array statistics;
* :mod:`repro.validate.runtime` — the :class:`Validator` policy engine
  (``off | warn | abort | dump``, per-check overrides, sampling
  interval) that the simulations consult; ``dump`` writes a diagnostic
  checkpoint through the fault-tolerance machinery before aborting, so
  every violation is reproducible offline;
* :mod:`repro.validate.sdc` — silent-data-corruption audits
  (:class:`SdcAuditor`): snapshot digest cross-checks with
  two-out-of-three attribution and in-place healing, a
  partition-independent live-state fingerprint, and ABFT force
  spot-checks against the reference kernel (policy
  ``off | warn | heal | abort``).

See ``docs/validation.md`` for the invariant catalogue and the
"violation -> diagnostic dump -> offline repro" workflow.
"""

from repro.validate.checks import (
    check_domain_containment,
    check_domain_partition,
    check_finite,
    check_in_box,
    check_mesh_mass,
    check_momentum,
    check_octree,
    check_particle_count,
    check_positive,
    check_recovery_totals,
    first_violation,
)
from repro.validate.errors import InvariantViolation, InvariantWarning, array_stats
from repro.validate.monitor import (
    EnergyDriftMonitor,
    LayzerIrvineMonitor,
    MomentumDriftMonitor,
)
from repro.validate.runtime import POLICIES, Validator
from repro.validate.sdc import SdcAuditor, SdcEvent, SdcViolation, SdcWarning

__all__ = [
    "InvariantViolation",
    "InvariantWarning",
    "array_stats",
    "check_finite",
    "check_positive",
    "check_in_box",
    "check_particle_count",
    "check_momentum",
    "check_mesh_mass",
    "check_octree",
    "check_domain_partition",
    "check_domain_containment",
    "check_recovery_totals",
    "first_violation",
    "EnergyDriftMonitor",
    "LayzerIrvineMonitor",
    "MomentumDriftMonitor",
    "Validator",
    "POLICIES",
    "SdcAuditor",
    "SdcEvent",
    "SdcViolation",
    "SdcWarning",
]
