"""Composable, vectorized invariant checkers.

Every checker inspects one conservation law or structural invariant of
the TreePM pipeline and returns either ``None`` (invariant holds) or an
:class:`repro.validate.errors.InvariantViolation` carrying the stage,
step, rank and offending-array statistics.  Checkers never raise and
never loop over particles in Python — they are meant to be cheap enough
to leave enabled (``warn`` policy) on production runs.

The invariants mirror what the GreeM method paper (Ishiyama, Fukushige
& Makino 2009) validates for the production code: particle count and
momentum across the multisection exchange, mass through mesh assignment
and the relay/slab conversions, octree moment consistency, domain
partition disjointness/coverage, and finite particle fields everywhere.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.validate.errors import InvariantViolation, array_stats

__all__ = [
    "check_finite",
    "check_positive",
    "check_in_box",
    "check_particle_count",
    "check_momentum",
    "check_mesh_mass",
    "check_octree",
    "check_domain_partition",
    "check_domain_containment",
    "check_recovery_totals",
    "first_violation",
    "EXACT_REL_TOL",
]

#: Relative tolerance for conservation sums that differ only by
#: floating-point reassociation (exchange, mesh conversions).
EXACT_REL_TOL = 1.0e-9


def check_finite(
    name: str,
    arr: np.ndarray,
    *,
    stage: str,
    step: Optional[int] = None,
    rank: Optional[int] = None,
) -> Optional[InvariantViolation]:
    """Finite-field sweep: every entry of ``arr`` must be finite."""
    arr = np.asarray(arr)
    if arr.size == 0 or bool(np.isfinite(arr).all()):
        return None
    stats = array_stats(arr, name)
    return InvariantViolation(
        f"non-finite values in '{name}': {stats['n_nan']} NaN, "
        f"{stats['n_inf']} inf (first at flat index {stats['first_bad_index']})",
        check="finite_fields",
        stage=stage,
        step=step,
        rank=rank,
        stats=stats,
    )


def check_positive(
    name: str,
    arr: np.ndarray,
    *,
    stage: str,
    step: Optional[int] = None,
    rank: Optional[int] = None,
) -> Optional[InvariantViolation]:
    """Strict positivity (particle masses: negative mass is corruption)."""
    arr = np.asarray(arr)
    if arr.size == 0:
        return None
    bad = ~(arr > 0.0)  # catches negatives, zeros and NaNs in one pass
    if not bad.any():
        return None
    idx = int(np.flatnonzero(bad.ravel())[0])
    return InvariantViolation(
        f"non-positive values in '{name}': {int(bad.sum())} of {arr.size} "
        f"(first at flat index {idx}, value {arr.ravel()[idx]!r})",
        check="positive_mass",
        stage=stage,
        step=step,
        rank=rank,
        stats=array_stats(arr, name),
    )


def check_in_box(
    name: str,
    pos: np.ndarray,
    *,
    stage: str,
    box: float = 1.0,
    step: Optional[int] = None,
    rank: Optional[int] = None,
) -> Optional[InvariantViolation]:
    """Positions must lie inside the periodic box ``[0, box)``.

    Every wrapped particle satisfies this, so an out-of-box position in
    an exchanged payload is a transport-corruption signature.
    """
    pos = np.asarray(pos)
    if pos.size == 0:
        return None
    bad = ~((pos >= 0.0) & (pos < box))  # NaN compares false -> flagged
    if not bad.any():
        return None
    idx = int(np.flatnonzero(bad.ravel())[0])
    return InvariantViolation(
        f"positions in '{name}' outside [0, {box}): {int(bad.sum())} "
        f"coordinate(s), first at flat index {idx} "
        f"(value {pos.ravel()[idx]!r})",
        check="in_box",
        stage=stage,
        step=step,
        rank=rank,
        stats=array_stats(pos, name),
    )


def check_particle_count(
    n_before: int,
    n_after: int,
    *,
    stage: str,
    step: Optional[int] = None,
    rank: Optional[int] = None,
) -> Optional[InvariantViolation]:
    """Global particle count must be conserved across an exchange."""
    if int(n_before) == int(n_after):
        return None
    return InvariantViolation(
        f"global particle count changed: {int(n_before)} -> {int(n_after)} "
        f"({int(n_after) - int(n_before):+d})",
        check="particle_count",
        stage=stage,
        step=step,
        rank=rank,
        stats={"n_before": int(n_before), "n_after": int(n_after)},
    )


def check_momentum(
    p_before: np.ndarray,
    p_after: np.ndarray,
    *,
    stage: str,
    scale: Optional[float] = None,
    rel_tol: float = EXACT_REL_TOL,
    step: Optional[int] = None,
    rank: Optional[int] = None,
) -> Optional[InvariantViolation]:
    """Total momentum must be conserved (to summation-order noise).

    A particle exchange only moves arrays between ranks, so the global
    ``sum(m * p)`` may change only by floating-point reassociation.
    ``scale`` sets the magnitude the tolerance is relative to (default:
    the larger momentum norm, floored at 1).
    """
    p_before = np.asarray(p_before, dtype=np.float64)
    p_after = np.asarray(p_after, dtype=np.float64)
    diff = float(np.max(np.abs(p_after - p_before))) if p_before.size else 0.0
    if scale is None:
        scale = max(
            float(np.max(np.abs(p_before), initial=0.0)),
            float(np.max(np.abs(p_after), initial=0.0)),
            1.0,
        )
    if not np.isfinite(diff) or diff > rel_tol * scale:
        return InvariantViolation(
            f"total momentum changed by {diff:.6g} "
            f"(tolerance {rel_tol * scale:.6g}): "
            f"{p_before.tolist()} -> {p_after.tolist()}",
            check="momentum_conservation",
            stage=stage,
            step=step,
            rank=rank,
            stats={"before": p_before.tolist(), "after": p_after.tolist()},
        )
    return None


def check_mesh_mass(
    mesh_mass: float,
    particle_mass: float,
    *,
    stage: str,
    rel_tol: float = EXACT_REL_TOL,
    step: Optional[int] = None,
    rank: Optional[int] = None,
) -> Optional[InvariantViolation]:
    """Mass on the mesh must equal the mass of the assigned particles.

    The assignment windows sum to one and the slab/relay conversions
    assign every cell exactly one owner (summing overlapping ghost
    contributions), so the two totals may differ only by reassociation.
    """
    mesh_mass = float(mesh_mass)
    particle_mass = float(particle_mass)
    scale = max(abs(particle_mass), abs(mesh_mass), 1.0e-300)
    err = abs(mesh_mass - particle_mass)
    if np.isfinite(err) and err <= rel_tol * scale:
        return None
    return InvariantViolation(
        f"mesh mass {mesh_mass:.12g} != particle mass {particle_mass:.12g} "
        f"(relative error {err / scale:.3g}, tolerance {rel_tol:.3g})",
        check="mass_conservation",
        stage=stage,
        step=step,
        rank=rank,
        stats={"mesh_mass": mesh_mass, "particle_mass": particle_mass},
    )


def check_octree(
    tree,
    *,
    stage: str = "tree/build",
    rel_tol: float = 1.0e-9,
    step: Optional[int] = None,
    rank: Optional[int] = None,
) -> Optional[InvariantViolation]:
    """Structural octree invariants, vectorized over all nodes.

    * the root holds every particle and the total mass;
    * every node's mass equals the prefix-sum mass of its particle
      slice (guards in-memory corruption of the moment arrays);
    * every positive-mass node's center of mass lies inside the node
      cube (to a relative slack of ``rel_tol`` times the node size).
    """
    total = float(tree.mass_sorted.sum())
    root_mass = float(tree.node_mass[0])
    scale = max(abs(total), 1.0e-300)
    if not np.isfinite(root_mass) or abs(root_mass - total) > rel_tol * scale:
        return InvariantViolation(
            f"root node mass {root_mass:.12g} != total particle mass "
            f"{total:.12g}",
            check="octree_moments",
            stage=stage,
            step=step,
            rank=rank,
            stats={"root_mass": root_mass, "total_mass": total},
        )
    if int(tree.node_lo[0]) != 0 or int(tree.node_hi[0]) != tree.n_particles:
        return InvariantViolation(
            f"root node spans [{int(tree.node_lo[0])}, {int(tree.node_hi[0])}) "
            f"but the tree holds {tree.n_particles} particles",
            check="octree_moments",
            stage=stage,
            step=step,
            rank=rank,
        )
    if not bool(np.isfinite(tree.node_com).all()):
        return InvariantViolation(
            "non-finite node center of mass",
            check="octree_moments",
            stage=stage,
            step=step,
            rank=rank,
            stats=array_stats(tree.node_com, "node_com"),
        )
    # COM inside the node cube, for nodes with positive mass
    positive = tree.node_mass > 0.0
    slack = tree.node_half[:, None] * (1.0 + rel_tol) + 1.0e-12
    outside = np.abs(tree.node_com - tree.node_center) > slack
    bad = positive & outside.any(axis=1)
    if bad.any():
        idx = int(np.flatnonzero(bad)[0])
        return InvariantViolation(
            f"{int(bad.sum())} node(s) have a center of mass outside their "
            f"cube (first: node {idx}, com "
            f"{tree.node_com[idx].tolist()}, center "
            f"{tree.node_center[idx].tolist()}, half {tree.node_half[idx]!r})",
            check="octree_com_bounds",
            stage=stage,
            step=step,
            rank=rank,
            stats={"n_bad": int(bad.sum()), "first_node": idx},
        )
    return None


def check_domain_partition(
    decomp,
    *,
    stage: str = "decomp/multisection",
    rel_tol: float = 1.0e-9,
    step: Optional[int] = None,
    rank: Optional[int] = None,
) -> Optional[InvariantViolation]:
    """Domains must tile the box: disjoint, covering, volumes sum to 1.

    Multisection boundaries are per-axis sorted arrays; monotonicity per
    level plus total volume equal to the box volume is equivalent to a
    disjoint exact cover by construction of the rectangles.
    """

    def _monotone(bounds: np.ndarray) -> bool:
        b = np.asarray(bounds, dtype=np.float64)
        return bool(np.isfinite(b).all() and (np.diff(b, axis=-1) > 0).all())

    if not (
        _monotone(decomp.x_bounds)
        and _monotone(decomp.y_bounds)
        and _monotone(decomp.z_bounds)
    ):
        return InvariantViolation(
            "decomposition boundaries are not strictly increasing "
            "(overlapping or empty domains)",
            check="domain_partition",
            stage=stage,
            step=step,
            rank=rank,
            stats={
                "x_bounds": np.asarray(decomp.x_bounds).tolist(),
            },
        )
    vol = float(decomp.domain_volumes().sum())
    if abs(vol - 1.0) > rel_tol:
        return InvariantViolation(
            f"domain volumes sum to {vol:.12g}, not 1 (coverage broken)",
            check="domain_partition",
            stage=stage,
            step=step,
            rank=rank,
            stats={"volume_sum": vol},
        )
    return None


def check_domain_containment(
    pos: np.ndarray,
    decomp,
    rank: int,
    *,
    stage: str = "decomp/exchange",
    step: Optional[int] = None,
) -> Optional[InvariantViolation]:
    """After an exchange, every local particle must belong to this rank.

    Uses the decomposition's own ``owner_of`` predicate, so the check is
    exactly the assignment rule the exchange used — a mismatch means the
    payload changed in flight.
    """
    pos = np.asarray(pos)
    if len(pos) == 0:
        return None
    owners = decomp.owner_of(pos)
    bad = owners != rank
    if not bad.any():
        return None
    idx = int(np.flatnonzero(bad)[0])
    return InvariantViolation(
        f"{int(bad.sum())} particle(s) landed on rank {rank} but belong to "
        f"other domains (first: index {idx}, position "
        f"{pos[idx].tolist()}, owner {int(owners[idx])})",
        check="domain_containment",
        stage=stage,
        step=step,
        rank=rank,
        stats={"n_bad": int(bad.sum()), "first_index": idx},
    )


def check_recovery_totals(
    count: int,
    mass: float,
    momentum: np.ndarray,
    reference: Dict,
    *,
    stage: str = "recovery",
    rel_tol: float = EXACT_REL_TOL,
    step: Optional[int] = None,
    rank: Optional[int] = None,
) -> Optional[InvariantViolation]:
    """Post-recovery sweep: restored global totals must match the
    conservation reference frozen at the rollback boundary.

    ``reference`` carries any of ``count`` (exact match required),
    ``mass`` (relative), ``momentum`` with its ``mom_scale`` (absolute
    per component, relative to the sum of ``|m p|`` magnitudes — the
    restored arrays are bit-identical copies, so only summation
    reassociation may move the totals).  Missing reference keys are
    skipped, which lets the disk-fallback path check count only.
    """
    if "count" in reference and int(count) != int(reference["count"]):
        return InvariantViolation(
            f"recovered particle count {int(count)} != reference "
            f"{int(reference['count'])}",
            check="recovery_totals",
            stage=stage,
            step=step,
            rank=rank,
            stats={"count": int(count), "reference": int(reference["count"])},
        )
    if "mass" in reference:
        want = float(reference["mass"])
        diff = abs(float(mass) - want)
        if not np.isfinite(diff) or diff > rel_tol * max(abs(want), 1.0e-300):
            return InvariantViolation(
                f"recovered total mass {float(mass):.17g} differs from "
                f"reference {want:.17g} by {diff:.6g}",
                check="recovery_totals",
                stage=stage,
                step=step,
                rank=rank,
                stats={"mass": float(mass), "reference": want},
            )
    if "momentum" in reference:
        ref_p = np.asarray(reference["momentum"], dtype=np.float64)
        got_p = np.asarray(momentum, dtype=np.float64)
        scale = max(float(reference.get("mom_scale", 0.0)), 1.0e-300)
        diff = float(np.max(np.abs(got_p - ref_p), initial=0.0))
        if not np.isfinite(diff) or diff > rel_tol * scale:
            return InvariantViolation(
                f"recovered total momentum {got_p.tolist()} differs from "
                f"reference {ref_p.tolist()} by {diff:.6g} "
                f"(tolerance {rel_tol * scale:.6g})",
                check="recovery_totals",
                stage=stage,
                step=step,
                rank=rank,
                stats={"momentum": got_p.tolist(), "reference": ref_p.tolist()},
            )
    return None


def first_violation(*violations: Optional[InvariantViolation]) -> Optional[
    InvariantViolation
]:
    """The first non-None violation of an argument list (or None)."""
    for v in violations:
        if v is not None:
            return v
    return None
