"""Structured invariant-violation errors and offending-array statistics.

A guardrail that fires must leave the operator with everything needed to
reproduce the failure offline: *which* invariant broke, at *which*
pipeline stage, on *which* rank and step, and a numeric summary of the
offending array.  :class:`InvariantViolation` carries exactly that, and
:func:`array_stats` computes the summary in one vectorized pass.

This module has no dependencies beyond numpy, so every layer of the
framework (tree, decomp, meshcomm, sim) can raise structured violations
without import cycles.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

__all__ = ["InvariantViolation", "InvariantWarning", "array_stats"]


class InvariantWarning(UserWarning):
    """Emitted (instead of raising) under the ``warn`` validation policy."""


def array_stats(arr: np.ndarray, name: str = "array") -> Dict[str, Any]:
    """One-pass numeric summary of an array for violation reports.

    Returns shape/dtype, finite min/max/mean, the number of NaN and
    infinite entries, and the flat index of the first non-finite entry
    (``None`` when the array is fully finite).
    """
    arr = np.asarray(arr)
    out: Dict[str, Any] = {
        "name": name,
        "shape": tuple(arr.shape),
        "dtype": str(arr.dtype),
    }
    if arr.size == 0:
        out.update(n_nan=0, n_inf=0, first_bad_index=None)
        return out
    if not np.issubdtype(arr.dtype, np.floating):
        out.update(
            n_nan=0,
            n_inf=0,
            first_bad_index=None,
            min=int(arr.min()) if np.issubdtype(arr.dtype, np.integer) else None,
            max=int(arr.max()) if np.issubdtype(arr.dtype, np.integer) else None,
        )
        return out
    finite = np.isfinite(arr)
    n_nan = int(np.isnan(arr).sum())
    n_inf = int(arr.size - finite.sum() - n_nan)
    out["n_nan"] = n_nan
    out["n_inf"] = n_inf
    bad = ~finite
    out["first_bad_index"] = int(np.flatnonzero(bad.ravel())[0]) if bad.any() else None
    if finite.any():
        vals = arr[finite]
        out["min"] = float(vals.min())
        out["max"] = float(vals.max())
        out["mean"] = float(vals.mean())
    return out


class InvariantViolation(RuntimeError):
    """A runtime invariant of the simulation pipeline does not hold.

    Parameters
    ----------
    message:
        Human-readable description of what broke.
    check:
        Machine name of the checker that fired (``"finite_fields"``,
        ``"particle_count"``, ...) — the key used by per-check policy
        overrides.
    stage:
        Pipeline stage, slash-separated like the Table I rows
        (``"decomp/exchange"``, ``"mesh/assignment"``, ``"pp/ghosts"``).
    step:
        Simulation step index at the time of the check, if known.
    rank:
        World rank that detected the violation (``None`` for serial).
    stats:
        Numeric summary of the offending array(s), usually from
        :func:`array_stats`.
    dump_path:
        Filled in by the ``dump`` policy with the path of the diagnostic
        checkpoint written before aborting.
    """

    def __init__(
        self,
        message: str,
        *,
        check: str,
        stage: str,
        step: Optional[int] = None,
        rank: Optional[int] = None,
        stats: Optional[Dict[str, Any]] = None,
        dump_path: Optional[str] = None,
    ) -> None:
        where = stage
        if step is not None:
            where += f", step {step}"
        if rank is not None:
            where += f", rank {rank}"
        super().__init__(f"[{check} @ {where}] {message}")
        self.detail = message
        self.check = check
        self.stage = stage
        self.step = step
        self.rank = rank
        self.stats = stats or {}
        self.dump_path = dump_path

    def summary(self) -> Dict[str, Any]:
        """JSON-serializable record (checkpoint manifests, logs)."""
        return {
            "check": self.check,
            "stage": self.stage,
            "step": self.step,
            "rank": self.rank,
            "message": self.detail,
            "stats": _jsonable(self.stats),
            "dump_path": str(self.dump_path) if self.dump_path else None,
        }

    @staticmethod
    def from_summary(data: Dict[str, Any]) -> "InvariantViolation":
        """Rebuild a violation from :meth:`summary` output (used to
        re-raise a remote rank's violation on every rank)."""
        return InvariantViolation(
            str(data.get("message", "invariant violation")),
            check=str(data.get("check", "unknown")),
            stage=str(data.get("stage", "unknown")),
            step=data.get("step"),
            rank=data.get("rank"),
            stats=data.get("stats"),
            dump_path=data.get("dump_path"),
        )


def _jsonable(obj: Any) -> Any:
    """Best-effort conversion of stats payloads to JSON-safe values."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    return obj
