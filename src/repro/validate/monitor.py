"""Per-step drift monitors: energy and momentum over a whole run.

Unlike the stage checkers in :mod:`repro.validate.checks` (which test
invariants that hold *exactly*, to summation noise), these track
quantities that drift slowly under a healthy integrator — total energy
and total momentum — and fire only when the drift exceeds a configured
tolerance.  A pathologically large timestep, a corrupted force
accumulator or a broken kick coefficient all show up here within a few
steps, long before the particle distribution visibly disintegrates.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.validate.errors import InvariantViolation

__all__ = [
    "EnergyDriftMonitor",
    "LayzerIrvineMonitor",
    "MomentumDriftMonitor",
]


class EnergyDriftMonitor:
    """Relative total-energy drift against the first recorded value.

    Cosmological energy is not strictly conserved (expansion does work),
    so the default tolerance is loose — it catches integrator blow-ups
    (orders of magnitude in one step), not percent-level secular drift.
    """

    def __init__(self, tol: float) -> None:
        if not tol > 0:
            raise ValueError("energy tolerance must be positive")
        self.tol = float(tol)
        self.e0: Optional[float] = None
        self.last: Optional[float] = None

    def update(
        self,
        energy: float,
        *,
        step: Optional[int] = None,
        rank: Optional[int] = None,
        stage: str = "integrate/energy",
    ) -> Optional[InvariantViolation]:
        """Record one total-energy sample; returns a violation when the
        relative drift from the first sample exceeds the tolerance."""
        energy = float(energy)
        self.last = energy
        if not np.isfinite(energy):
            return InvariantViolation(
                f"total energy is not finite ({energy!r})",
                check="energy_drift",
                stage=stage,
                step=step,
                rank=rank,
                stats={"energy": energy, "e0": self.e0},
            )
        if self.e0 is None:
            self.e0 = energy
            return None
        scale = max(abs(self.e0), 1.0e-300)
        drift = abs(energy - self.e0) / scale
        if drift > self.tol:
            return InvariantViolation(
                f"relative energy drift {drift:.4g} exceeds tolerance "
                f"{self.tol:.4g} (E0 = {self.e0:.6g}, E = {energy:.6g})",
                check="energy_drift",
                stage=stage,
                step=step,
                rank=rank,
                stats={"e0": self.e0, "energy": energy, "drift": drift},
            )
        return None


class LayzerIrvineMonitor:
    """Cosmological energy check through the Layzer-Irvine equation.

    In comoving coordinates the expansion does work on the system, so
    ``K + W`` drifts even under a perfect integrator and naive drift
    monitoring is the wrong invariant.  What a healthy cosmological
    integration *does* conserve is the Layzer-Irvine residual
    ``[a (K + W)] + int K da`` (see :mod:`repro.analysis.energy`); this
    monitor accumulates per-step ``(a, K, W_c)`` samples and fires when
    the relative violation of that equation exceeds the tolerance.
    """

    def __init__(self, tol: float) -> None:
        if not tol > 0:
            raise ValueError("energy tolerance must be positive")
        from repro.analysis.energy import LayzerIrvineTracker

        self.tol = float(tol)
        self.tracker = LayzerIrvineTracker()

    def update(
        self,
        a: float,
        kinetic: float,
        comoving_potential: float,
        *,
        step: Optional[int] = None,
        rank: Optional[int] = None,
        stage: str = "integrate/energy",
    ) -> Optional[InvariantViolation]:
        """Record one ``(a, K, W_c)`` sample; returns a violation when
        the Layzer-Irvine equation is broken beyond the tolerance."""
        if not (np.isfinite(a) and np.isfinite(kinetic)
                and np.isfinite(comoving_potential)):
            return InvariantViolation(
                f"non-finite energy sample (a={a!r}, K={kinetic!r}, "
                f"W_c={comoving_potential!r})",
                check="energy_drift",
                stage=stage,
                step=step,
                rank=rank,
                stats={"a": a, "kinetic": kinetic,
                       "comoving_potential": comoving_potential},
            )
        self.tracker.record(a, kinetic, comoving_potential)
        if self.tracker.n_samples < 2:
            return None
        violation = self.tracker.relative_violation()
        if violation > self.tol:
            return InvariantViolation(
                f"Layzer-Irvine violation {violation:.4g} exceeds "
                f"tolerance {self.tol:.4g} over a = "
                f"{self.tracker.a[0]:.4g} .. {self.tracker.a[-1]:.4g} "
                f"(residual {self.tracker.residual():.6g})",
                check="energy_drift",
                stage=stage,
                step=step,
                rank=rank,
                stats={
                    "violation": violation,
                    "residual": self.tracker.residual(),
                    "a_first": self.tracker.a[0],
                    "a_last": self.tracker.a[-1],
                    "n_samples": self.tracker.n_samples,
                },
            )
        return None


class MomentumDriftMonitor:
    """Drift of the total momentum vector against the first sample.

    The drift is measured relative to the largest momentum *scale* seen
    so far (the global ``sum(m |p|)``), so a cold start (zero total
    momentum, growing thermal momenta) does not divide by zero and a hot
    system is not held to an absolute threshold.
    """

    def __init__(self, tol: float) -> None:
        if not tol > 0:
            raise ValueError("momentum tolerance must be positive")
        self.tol = float(tol)
        self.p0: Optional[np.ndarray] = None
        self.scale = 0.0

    def update(
        self,
        momentum: np.ndarray,
        scale: float,
        *,
        step: Optional[int] = None,
        rank: Optional[int] = None,
        stage: str = "integrate/momentum",
    ) -> Optional[InvariantViolation]:
        """Record ``(total momentum vector, sum(m |p|))`` for one step."""
        momentum = np.asarray(momentum, dtype=np.float64)
        if not np.isfinite(momentum).all() or not np.isfinite(scale):
            return InvariantViolation(
                f"total momentum is not finite ({momentum.tolist()})",
                check="momentum_drift",
                stage=stage,
                step=step,
                rank=rank,
                stats={"momentum": momentum.tolist()},
            )
        self.scale = max(self.scale, float(scale), 1.0e-300)
        if self.p0 is None:
            self.p0 = momentum.copy()
            return None
        drift = float(np.linalg.norm(momentum - self.p0)) / self.scale
        if drift > self.tol:
            return InvariantViolation(
                f"relative momentum drift {drift:.4g} exceeds tolerance "
                f"{self.tol:.4g} (P0 = {self.p0.tolist()}, "
                f"P = {momentum.tolist()})",
                check="momentum_drift",
                stage=stage,
                step=step,
                rank=rank,
                stats={
                    "p0": self.p0.tolist(),
                    "momentum": momentum.tolist(),
                    "drift": drift,
                },
            )
        return None
