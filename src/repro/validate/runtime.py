"""The validation policy engine: decides *what happens* when a check fires.

A :class:`Validator` binds a :class:`repro.config.ValidationConfig` to
one simulation (serial) or one rank of an SPMD job (parallel) and
routes every detected :class:`~repro.validate.errors.InvariantViolation`
through the configured policy:

* ``off``   — the check is never evaluated;
* ``warn``  — emit an :class:`~repro.validate.errors.InvariantWarning`
  and keep running (cheap enough to leave on: checks are vectorized and
  evaluated every ``interval`` steps only);
* ``abort`` — raise the violation;
* ``dump``  — write a diagnostic checkpoint through the supplied dump
  hook (the PR-1 checkpoint machinery), attach its path to the
  violation, then raise — so a violation is always reproducible offline.

Per-check overrides let a production run keep e.g. finite-field sweeps
at ``abort`` while sampling the expensive energy monitor at ``warn``.

In SPMD jobs checks must be *collective-safe*: a violation detected on
one rank only (a corrupted point-to-point payload, say) must still
produce a coordinated dump and a clean job-wide abort instead of a
deadlock.  :meth:`Validator.handle_collective` therefore allgathers the
per-rank verdicts so every rank takes the same branch.
"""

from __future__ import annotations

import warnings
from typing import Callable, Optional

from repro.validate.errors import InvariantViolation, InvariantWarning

__all__ = ["Validator", "POLICIES"]

POLICIES = ("off", "warn", "abort", "dump")


class Validator:
    """Policy router for invariant checks.

    Parameters
    ----------
    config:
        A :class:`repro.config.ValidationConfig`.
    rank:
        World rank of the owning simulation (``None`` for serial).
    dump_fn:
        Called under the ``dump`` policy with the violation; must write
        a diagnostic checkpoint and return its path.  In SPMD jobs the
        hook is invoked on *every* rank (collectively), so a distributed
        checkpoint write is safe.
    """

    def __init__(
        self,
        config,
        rank: Optional[int] = None,
        dump_fn: Optional[Callable[[InvariantViolation], object]] = None,
    ) -> None:
        self.config = config
        self.rank = rank
        self.dump_fn = dump_fn
        self.step = 0  # set by begin_step; lets deep call sites skip plumbing

    # -- gating -----------------------------------------------------------------

    def begin_step(self, step: int) -> None:
        """Record the current step index (used when ``active`` /
        ``check_enabled`` are called without one, e.g. deep inside the
        PM pipeline where the step is not threaded through)."""
        self.step = int(step)

    @property
    def enabled(self) -> bool:
        """True when any check can fire (global policy or an override)."""
        if self.config.policy != "off":
            return True
        return any(p != "off" for p in self.config.overrides.values())

    def active(self, step: Optional[int] = None) -> bool:
        """Should checks run at this step?  (Sampling interval gate —
        deterministic in ``step``, so every rank agrees.)"""
        if step is None:
            step = self.step
        return self.enabled and step % self.config.interval == 0

    def policy_for(self, check: str) -> str:
        """Effective policy for a named check (override or global)."""
        return self.config.overrides.get(check, self.config.policy)

    def check_enabled(self, check: str, step: Optional[int] = None) -> bool:
        return self.active(step) and self.policy_for(check) != "off"

    # -- serial handling ---------------------------------------------------------

    def handle(self, violation: Optional[InvariantViolation]) -> None:
        """Apply the policy to one (possibly absent) violation."""
        if violation is None:
            return
        policy = self.policy_for(violation.check)
        if policy == "off":
            return
        if policy == "warn":
            warnings.warn(str(violation), InvariantWarning, stacklevel=2)
            return
        if policy == "dump" and self.dump_fn is not None:
            violation.dump_path = self.dump_fn(violation)
        raise violation

    # -- collective handling ------------------------------------------------------

    def handle_collective(
        self, comm, violation: Optional[InvariantViolation]
    ) -> None:
        """Apply the policy across an SPMD job (collective: every rank
        calls, with its local verdict or ``None``).

        The per-rank verdicts are allgathered; if any rank detected a
        violation, every rank takes the same policy branch — warning
        locally, or (for ``dump``) writing the distributed diagnostic
        checkpoint together before all ranks raise.  The lowest
        detecting rank's violation is the one re-raised everywhere, so
        the job-level error names the true origin.
        """
        reports = comm.allgather(
            violation.summary() if violation is not None else None
        )
        origin = next((r for r in reports if r is not None), None)
        if origin is None:
            return
        policy = self.policy_for(str(origin["check"]))
        if policy == "off":
            return
        if policy == "warn":
            if violation is not None:
                warnings.warn(str(violation), InvariantWarning, stacklevel=2)
            return
        # abort / dump: reconstruct the origin violation on silent ranks
        mine = violation if violation is not None else (
            InvariantViolation.from_summary(origin)
        )
        if policy == "dump" and self.dump_fn is not None:
            mine.dump_path = self.dump_fn(mine)
        raise mine
