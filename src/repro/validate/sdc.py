"""Silent-data-corruption (SDC) audits: detect, attribute, heal.

A crashed rank announces itself; a flipped DRAM bit does not.  At the
paper's scale — 24576 nodes for a month — the expected number of
*silent* upsets is not zero, and a single mantissa bit in a mass array
quietly poisons every force that touches it.  This module is the
counterpart of the crash-recovery machinery in
:mod:`repro.mpi.recovery`: it assumes the job keeps running and asks
whether the *data* is still right.

Three audits run at a configurable cadence (:class:`repro.config.SdcConfig`):

* **Snapshot audit** — every rank re-digests its frozen rollback
  snapshot and its buddy replica and cross-checks them against the
  ring partner's digests (:meth:`repro.mpi.recovery.BuddyStore.snapshot_audit`).
  Two copies plus the frozen checksums recorded at replication time
  give a two-out-of-three vote that *attributes* a mismatch to the
  owner copy, the buddy copy, the transport, or the checksum record
  itself — and every attribution except the last names a surviving
  clean copy to heal from, in place, with no communicator shrink
  (:meth:`~repro.mpi.recovery.BuddyStore.heal_in_place`).

* **Fingerprint audit** — a partition-independent 64-bit fingerprint
  of the conserved particle identity (``ids``, ``mass``) is frozen at
  run start; per-rank fingerprints sum (mod 2^64) to the global value,
  so one allgather per audit detects a corrupted *live* array no
  matter how many times the particles migrated between ranks.  Healing
  live state in place is impossible (there is no clean copy of "now"),
  so the ``heal`` policy rolls the job back to the last verified
  boundary through the elastic recovery path.

* **ABFT force spot-check** — the tree solver retains its last
  interaction-plan sweep; each audit re-executes a deterministic
  pseudo-random sample of plan groups through the pure-python
  reference pipeline (:class:`repro.pp.plan.PlanExecutor` with
  ``use_native=False``) and compares the sampled target rows bitwise
  against the accelerations the production sweep actually produced.
  In float64 the native kernel is bitwise-identical to the reference,
  so *any* difference is a miscomputation; healing disables the native
  path and rolls back.

Findings become structured :class:`SdcEvent` records (detected →
attributed → healed); the :class:`SdcConfig` policy decides whether a
detection warns, heals, or aborts via :class:`SdcViolation`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.config import SdcConfig
from repro.utils.integrity import fingerprint_particles

__all__ = [
    "SdcEvent",
    "SdcViolation",
    "SdcWarning",
    "SdcAuditor",
]

_U64 = 1 << 64


class SdcWarning(UserWarning):
    """Emitted under the ``warn`` policy for every detection."""


class SdcViolation(RuntimeError):
    """Corruption the configured policy does not allow to pass.

    Raised collectively (every rank of the audit raises together, from
    the same allreduced verdict) so the elastic runner can route it
    into the recovery state machine like a rank failure.  ``events``
    carries this rank's contributing :class:`SdcEvent` records — it may
    be empty on ranks that only learned of the corruption through the
    collective verdict.
    """

    def __init__(self, message: str, events: Optional[List["SdcEvent"]] = None):
        super().__init__(message)
        self.events: List[SdcEvent] = list(events or [])


@dataclass
class SdcEvent:
    """One detected corruption, as seen from one rank.

    Attributes
    ----------
    step:
        Application step of the audit that caught it.
    kind:
        ``"snapshot"`` (frozen rollback copies), ``"fingerprint"``
        (live conserved arrays), ``"spot_check"`` (force sweep),
        ``"transport"`` (a checksum-failed SHM frame) or
        ``"checkpoint"`` (on-disk bit-rot).
    array:
        The damaged array (or file) name.
    owner_world_rank:
        World rank owning the damaged data; ``-1`` when the audit only
        establishes a global property (fingerprint mismatch).
    attribution:
        Verdict of the evidence vote: ``"owner"``, ``"buddy"``,
        ``"transport"``, ``"checksum"``, ``"live"``, ``"compute"`` or
        ``"unrecoverable"``.
    detected / healed:
        Lifecycle flags; ``healed`` flips when a clean copy was
        restored in place or a rollback re-verified the state.
    detail:
        Free-form evidence summary.
    """

    step: int
    kind: str
    array: str
    owner_world_rank: int = -1
    attribution: str = "unknown"
    detected: bool = True
    healed: bool = False
    detail: str = ""

    def summary(self) -> dict:
        """JSON-ready form (manifests, reports)."""
        return {
            "step": self.step,
            "kind": self.kind,
            "array": self.array,
            "owner_world_rank": self.owner_world_rank,
            "attribution": self.attribution,
            "detected": self.detected,
            "healed": self.healed,
            "detail": self.detail,
        }


@dataclass
class SdcAuditor:
    """Per-rank audit engine; all audits are collective calls.

    One auditor lives on each rank (the elastic runner owns it) and
    accumulates the rank-local :class:`SdcEvent` stream.  Every audit
    method must be entered by all ranks of ``comm`` in lockstep — the
    verdicts come from allgathers/ring exchanges, so every rank reaches
    the same decision and the policy raise is collective.
    """

    config: SdcConfig = field(default_factory=SdcConfig)
    world_rank: int = 0
    events: List[SdcEvent] = field(default_factory=list)
    #: audits executed (all kinds; diagnostic)
    audits_run: int = 0
    _reference_fp: Optional[int] = None
    _reference_count: Optional[int] = None

    # -- cadence -----------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    def due(self, steps_since_start: int) -> bool:
        """Is the audit battery due after this many completed steps?"""
        return (
            self.enabled
            and steps_since_start > 0
            and steps_since_start % self.config.audit_every == 0
        )

    # -- fingerprint audit -------------------------------------------------------

    @staticmethod
    def _global_fingerprint(comm, ids, mass):
        local = fingerprint_particles(ids, mass)
        parts = comm.allgather((int(local), int(len(ids))))
        total = 0
        count = 0
        for fp, n in parts:
            total = (total + fp) % _U64
            count += n
        return total, count

    def set_reference(self, comm, ids, mass) -> None:
        """Freeze the run-start fingerprint (collective).

        ``ids`` and ``mass`` are conserved quantities: the global
        fingerprint is invariant under migration, repartitioning and
        communicator shrinks, so one reference covers the whole run.
        """
        fp, count = self._global_fingerprint(comm, ids, mass)
        self._reference_fp = fp
        self._reference_count = count

    def fingerprint_audit(self, comm, ids, mass, step: int) -> Optional[SdcEvent]:
        """Compare the live global fingerprint against the reference
        (collective; every rank returns the same verdict).  The first
        call with no reference freezes one instead of judging."""
        if not self.enabled:
            return None
        fp, count = self._global_fingerprint(comm, ids, mass)
        if self._reference_fp is None:
            self._reference_fp = fp
            self._reference_count = count
            return None
        self.audits_run += 1
        if fp == self._reference_fp and count == self._reference_count:
            return None
        ev = SdcEvent(
            step=step,
            kind="fingerprint",
            array="ids/mass",
            owner_world_rank=-1,
            attribution="live",
            detail=(
                f"global fingerprint {fp:#018x} (count {count}) != reference "
                f"{self._reference_fp:#018x} (count {self._reference_count})"
            ),
        )
        self.events.append(ev)
        return ev

    # -- ABFT force spot-check ---------------------------------------------------

    def spot_check(self, solver, step: int) -> Optional[SdcEvent]:
        """Re-sweep a sampled subset of the last interaction plan
        through the reference pipeline and compare rows bitwise.

        Local (no communication): each rank checks its own sweep; the
        collective verdict happens in :meth:`apply_policy`.  Needs
        ``solver.retain_last_sweep`` to have been on during the sweep.
        """
        cfg = self.config
        if not self.enabled or cfg.spot_check_groups < 1:
            return None
        sweep = getattr(solver, "last_sweep", None)
        if not sweep:
            return None
        plan = sweep["plan"]
        if plan is None or plan.n_groups == 0:
            return None
        from repro.pp.kernel import PPKernel
        from repro.pp.plan import PlanExecutor, multi_arange, slice_plan

        self.audits_run += 1
        rng = np.random.default_rng((cfg.seed, step, self.world_rank))
        k = min(cfg.spot_check_groups, plan.n_groups)
        groups = np.sort(rng.choice(plan.n_groups, size=k, replace=False))
        sub = slice_plan(plan, groups)
        kc = sweep["kernel_config"]
        kernel = PPKernel(
            split=kc["split"],
            eps=kc["eps"],
            G=kc["G"],
            use_fast_rsqrt=kc["use_fast_rsqrt"],
            box=kc["box"],
            ewald_table=kc["ewald_table"],
        )
        main = solver._executor
        ref = PlanExecutor(
            dtype=main.dtype,
            pair_budget=main.pair_budget,
            refine_rows=main.refine_rows,
            use_native=False,
        )
        out = np.zeros_like(sweep["acc_sorted"])
        ref.execute(
            sub,
            kernel,
            sweep["pos_sorted"],
            sweep["mass_sorted"],
            sweep["node_com"],
            sweep["node_mass"],
            out=out,
        )
        rows = multi_arange(plan.group_lo[groups], plan.group_hi[groups])
        got = sweep["acc_sorted"][rows]
        want = out[rows]
        if np.array_equal(got, want):
            return None
        bad = int(np.count_nonzero(np.any(got != want, axis=-1)))
        if self.config.policy == "heal":
            # stop trusting the production path before the rollback
            # recomputes these forces
            main.use_native = False
        ev = SdcEvent(
            step=step,
            kind="spot_check",
            array="acc",
            owner_world_rank=self.world_rank,
            attribution="compute",
            detail=(
                f"{bad} of {rows.size} sampled target rows differ from the "
                f"reference sweep ({k} of {plan.n_groups} groups sampled, "
                f"native_used={bool(sweep['native_used'])})"
            ),
        )
        self.events.append(ev)
        return ev

    # -- snapshot audit ----------------------------------------------------------

    def snapshot_audit(self, comm, buddy, step: int) -> List[SdcEvent]:
        """Cross-check the frozen rollback copies against the ring
        partner's digests; under the ``heal`` policy, restore every
        healable block in place from its surviving clean copy
        (collective)."""
        if not self.enabled:
            return []
        self.audits_run += 1
        findings = buddy.snapshot_audit(comm)
        if self.config.policy == "heal":
            findings = buddy.heal_in_place(comm, findings)
        new = [
            SdcEvent(
                step=step,
                kind="snapshot",
                array=f["array"],
                owner_world_rank=f["owner"],
                attribution=f["attribution"],
                healed=bool(f.get("healed", False)),
                detail=f"role={f['role']} snapshot_step={f['step']}",
            )
            for f in findings
        ]
        self.events.extend(new)
        return new

    # -- external detections -----------------------------------------------------

    def record(self, event: SdcEvent) -> SdcEvent:
        """Append an event produced outside the audit battery (transport
        CRC failures, checkpoint bit-rot found during recovery)."""
        self.events.append(event)
        return event

    def mark_rolled_back(self, events: List[SdcEvent], boundary: int) -> None:
        """A rollback re-verified the state these events damaged."""
        for ev in events:
            if not ev.healed:
                ev.healed = True
                ev.detail = (
                    f"{ev.detail}; healed by rollback to step {boundary}"
                ).lstrip("; ")

    # -- policy ------------------------------------------------------------------

    def apply_policy(self, comm, new_events: List[SdcEvent]) -> None:
        """Collective verdict on this audit round's detections.

        ``warn`` logs and continues; ``heal`` raises
        :class:`SdcViolation` only for events nothing healed in place
        (the caller's recovery path is the heal of last resort);
        ``abort`` raises on any detection.  The raise happens on every
        rank of ``comm`` together: the fatal count is allreduced, so a
        rank with no local events still joins the recovery round its
        peers are about to enter.
        """
        policy = self.config.policy
        if policy in ("off",) or not self.enabled:
            return
        if policy == "warn":
            for ev in new_events:
                warnings.warn(
                    f"SDC detected (policy=warn): {ev.summary()}", SdcWarning
                )
            return
        if policy == "abort":
            fatal = [ev for ev in new_events if ev.detected]
        else:  # heal
            fatal = [ev for ev in new_events if ev.detected and not ev.healed]
        n_local = len(fatal)
        if comm is not None and comm.size > 1:
            total = int(
                comm.allreduce(np.array([float(n_local)]), op="sum")[0]
            )
        else:
            total = n_local
        if total:
            raise SdcViolation(
                f"{total} unhealed corruption event(s) under policy "
                f"{policy!r} (this rank: {n_local})",
                events=fatal,
            )
