"""Bindings for the native PM mesh scatter/gather kernels.

:func:`scatter` and :func:`gather` replace the hot ``np.add.at`` /
fancy-index accumulation loops of :mod:`repro.mesh.assignment`; the
per-axis stencil indices and weights are still computed by the (shared)
numpy code, so the two paths agree bit for bit.  Both return a falsy
value when the kernel is unavailable or the inputs are out of contract,
and the caller falls back to the numpy loops.
"""

from __future__ import annotations

import ctypes
import os
from typing import Optional

import numpy as np

from repro.native import build as _build

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_meshops.c")

_I64P = ctypes.POINTER(ctypes.c_int64)
_F64P = ctypes.POINTER(ctypes.c_double)

_verified: dict = {}


def _ptr(arr, ctype):
    return arr.ctypes.data_as(ctype)


def _declare(lib: ctypes.CDLL) -> None:
    if getattr(lib, "_meshops_declared", False):
        return
    lib.mesh_scatter.restype = None
    lib.mesh_scatter.argtypes = [
        ctypes.c_int64, ctypes.c_int64,
        _I64P, _I64P, _I64P, _F64P, _F64P, _F64P, _F64P,
        ctypes.c_int64, ctypes.c_int64, _F64P,
    ]
    lib.mesh_gather.restype = None
    lib.mesh_gather.argtypes = [
        ctypes.c_int64, ctypes.c_int64,
        _I64P, _I64P, _I64P, _F64P, _F64P, _F64P,
        ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
        _F64P, _F64P,
    ]
    lib._meshops_declared = True


def get_lib() -> Optional[ctypes.CDLL]:
    """The verified mesh-ops library, or ``None`` (checked per call)."""
    if not _build.stage_enabled("mesh"):
        return None
    lib = _build.load_library(_SRC)
    if lib is None:
        return None
    _declare(lib)
    key = id(lib)
    if key not in _verified:
        try:
            _verified[key] = _self_test(lib)
        except Exception:
            _verified[key] = False
    return lib if _verified[key] else None


def available() -> bool:
    """Whether the native mesh kernels can be used right now."""
    return get_lib() is not None


def _contract_ok(ix, iy, iz, wx, wy, wz) -> bool:
    for arr in (ix, iy, iz):
        if arr.dtype != np.int64 or not arr.flags["C_CONTIGUOUS"]:
            return False
    for arr in (wx, wy, wz):
        if arr.dtype != np.float64 or not arr.flags["C_CONTIGUOUS"]:
            return False
    return True


def _scatter_with(lib, out, ix, iy, iz, wx, wy, wz, mass) -> None:
    n, s = ix.shape
    lib.mesh_scatter(
        ctypes.c_int64(n), ctypes.c_int64(s),
        _ptr(ix, _I64P), _ptr(iy, _I64P), _ptr(iz, _I64P),
        _ptr(wx, _F64P), _ptr(wy, _F64P), _ptr(wz, _F64P),
        _ptr(mass, _F64P),
        ctypes.c_int64(out.shape[1]), ctypes.c_int64(out.shape[2]),
        _ptr(out, _F64P),
    )


def scatter(out, ix, iy, iz, wx, wy, wz, mass) -> bool:
    """Accumulate stencil deposits into ``out``; False = fall back."""
    lib = get_lib()
    if lib is None:
        return False
    if out.dtype != np.float64 or not out.flags["C_CONTIGUOUS"]:
        return False
    if not _contract_ok(ix, iy, iz, wx, wy, wz):
        return False
    mass = np.ascontiguousarray(mass, dtype=np.float64)
    _scatter_with(lib, out, ix, iy, iz, wx, wy, wz, mass)
    return True


def _gather_with(lib, mesh3, ncomp, ix, iy, iz, wx, wy, wz) -> np.ndarray:
    n, s = ix.shape
    out = np.zeros((n, ncomp))
    lib.mesh_gather(
        ctypes.c_int64(n), ctypes.c_int64(s),
        _ptr(ix, _I64P), _ptr(iy, _I64P), _ptr(iz, _I64P),
        _ptr(wx, _F64P), _ptr(wy, _F64P), _ptr(wz, _F64P),
        ctypes.c_int64(mesh3.shape[1]), ctypes.c_int64(mesh3.shape[2]),
        ctypes.c_int64(ncomp),
        _ptr(mesh3, _F64P), _ptr(out, _F64P),
    )
    return out


def gather(mesh, ix, iy, iz, wx, wy, wz) -> Optional[np.ndarray]:
    """Interpolated values ``(N,) + mesh.shape[3:]``; ``None`` = fall back.

    ``mesh`` may carry trailing component axes; they are flattened for
    the kernel and restored on the result.
    """
    lib = get_lib()
    if lib is None:
        return None
    if mesh.dtype != np.float64 or not mesh.flags["C_CONTIGUOUS"]:
        return None
    if not _contract_ok(ix, iy, iz, wx, wy, wz):
        return None
    tail = mesh.shape[3:]
    ncomp = 1
    for d in tail:
        ncomp *= d
    mesh3 = mesh.reshape(mesh.shape[:3] + (ncomp,))
    out = _gather_with(lib, mesh3, ncomp, ix, iy, iz, wx, wy, wz)
    return out.reshape((len(ix),) + tail)


# -- self-test ----------------------------------------------------------------


def _self_test(lib) -> bool:
    """Bitwise comparison against the numpy scatter/gather loops."""
    from repro.mesh.assignment import _gather_numpy, _scatter_numpy, _weights_1d

    rng = np.random.default_rng(0xFACADE)
    n_mesh = 9
    box = 0.7
    h = box / n_mesh
    pos = rng.random((200, 3)) * box
    pos[0] = 0.0
    pos[1] = box  # exact upper edge: wraps to cell 0
    pos[2] = np.nextafter(box, 0.0)
    mass = rng.random(len(pos)) + 0.5
    u = pos / h
    for scheme in ("ngp", "cic", "tsc"):
        ix, wx = _weights_1d(scheme, u[:, 0])
        iy, wy = _weights_1d(scheme, u[:, 1])
        iz, wz = _weights_1d(scheme, u[:, 2])
        ix %= n_mesh
        iy %= n_mesh
        iz %= n_mesh
        ref = np.zeros((n_mesh, n_mesh, n_mesh))
        _scatter_numpy(ref, ix, iy, iz, wx, wy, wz, mass)
        got = np.zeros((n_mesh, n_mesh, n_mesh))
        _scatter_with(lib, got, ix, iy, iz, wx, wy, wz, mass)
        if not np.array_equal(ref, got):
            return False

        field = rng.standard_normal((n_mesh, n_mesh, n_mesh))
        ref_g = _gather_numpy(field, ix, iy, iz, wx, wy, wz)
        got_g = _gather_with(lib, field.reshape(field.shape + (1,)), 1,
                             ix, iy, iz, wx, wy, wz)[:, 0]
        if not np.array_equal(ref_g, got_g):
            return False

        vec = rng.standard_normal((n_mesh, n_mesh, n_mesh, 3))
        ref_v = _gather_numpy(vec, ix, iy, iz, wx, wy, wz)
        got_v = _gather_with(lib, vec, 3, ix, iy, iz, wx, wy, wz)
        if not np.array_equal(ref_v, got_v):
            return False
    return True


__all__ = ["available", "gather", "get_lib", "scatter"]
