"""Shared compile-on-demand loader for the native kernels.

One function, :func:`load_library`, turns a C source file into a loaded
:class:`ctypes.CDLL`.  Compiled artifacts are cached on disk keyed by a
hash of the source bytes plus the full compiler command line, so

* a source file is compiled at most once per toolchain/flag combination
  across processes, and
* editing a kernel source (or changing flags) can never load a stale
  binary — the key changes, so a fresh ``.so`` is built.

The loader degrades gracefully: no compiler, a failed build, or an
unloadable artifact all yield ``None``, and callers fall back to their
numpy reference pipelines.  Nothing outside this module needs to know
whether a kernel is in use.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from typing import Optional, Sequence, Tuple

__all__ = [
    "BASE_FLAGS",
    "cache_dir",
    "load_library",
    "native_threads",
    "openmp_available",
    "source_key",
    "stage_enabled",
]

#: Baseline flags shared by every kernel: no FMA contraction and no
#: reassociation, so each C expression performs exactly the individually
#: rounded IEEE double operations of its numpy counterpart.
BASE_FLAGS: Tuple[str, ...] = ("-O2", "-fPIC", "-shared", "-ffp-contract=off")

#: Per-process memo: cache-key -> CDLL or None (failed).
_loaded: dict = {}

_openmp: Optional[bool] = None


def stage_enabled(stage: str) -> bool:
    """Whether native kernels for ``stage`` are allowed right now.

    Checked per call (cheap environment lookups), so tests and the
    step benchmark can toggle stages inside one process.
    """
    env = os.environ
    if env.get("REPRO_NO_NATIVE"):
        return False
    if env.get(f"REPRO_NO_NATIVE_{stage.upper()}"):
        return False
    return True


def native_threads() -> int:
    """OpenMP thread count requested via ``REPRO_NATIVE_THREADS``."""
    raw = os.environ.get("REPRO_NATIVE_THREADS", "")
    try:
        n = int(raw)
    except ValueError:
        return 1
    return max(1, n)


def _compiler() -> str:
    return os.environ.get("CC", "cc")


def cache_dir() -> str:
    """Directory holding compiled ``.so`` artifacts."""
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return override
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return os.path.join(tempfile.gettempdir(), f"repro-native-{uid}")


def source_key(src_path: str, flags: Sequence[str]) -> Optional[str]:
    """Cache key: hash of the source bytes and the compile command.

    Returns ``None`` when the source cannot be read (missing file).
    """
    try:
        with open(src_path, "rb") as fh:
            blob = fh.read()
    except OSError:
        return None
    h = hashlib.sha256()
    h.update(blob)
    h.update(b"\0")
    h.update(_compiler().encode())
    for f in flags:
        h.update(b"\0")
        h.update(f.encode())
    return h.hexdigest()[:20]


def _compile(src_path: str, so_path: str, flags: Sequence[str]) -> bool:
    """Compile ``src_path`` into ``so_path`` atomically."""
    os.makedirs(os.path.dirname(so_path), exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        prefix=".build-", suffix=".so", dir=os.path.dirname(so_path)
    )
    os.close(fd)
    cmd = [_compiler(), *flags, "-o", tmp, src_path, "-lm"]
    try:
        subprocess.run(cmd, check=True, capture_output=True, timeout=120)
        os.replace(tmp, so_path)
        return True
    except (OSError, subprocess.SubprocessError):
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return False


def openmp_available() -> bool:
    """Whether the toolchain can build OpenMP shared objects.

    Probed once per process with a minimal program; the verdict gates
    adding ``-fopenmp`` to kernels that have threaded entry points.
    """
    global _openmp
    if _openmp is not None:
        return _openmp
    workdir = tempfile.mkdtemp(prefix="repro-omp-probe-")
    src = os.path.join(workdir, "probe.c")
    with open(src, "w") as fh:
        fh.write(
            "#include <omp.h>\n"
            "int probe(void) { return omp_get_max_threads(); }\n"
        )
    so = os.path.join(workdir, "probe.so")
    cmd = [_compiler(), *BASE_FLAGS, "-fopenmp", "-o", so, src, "-lm"]
    try:
        subprocess.run(cmd, check=True, capture_output=True, timeout=60)
        ctypes.CDLL(so)
        _openmp = True
    except (OSError, subprocess.SubprocessError):
        _openmp = False
    return _openmp


def load_library(
    src_path: str, extra_flags: Sequence[str] = ()
) -> Optional[ctypes.CDLL]:
    """Load (building if needed) the kernel library for a C source.

    The on-disk artifact is keyed by :func:`source_key`, so concurrent
    processes share builds and a modified source always recompiles.
    Returns ``None`` when the source is missing or the build fails;
    the (per-key) outcome is memoized for the life of the process.
    """
    flags = tuple(BASE_FLAGS) + tuple(extra_flags)
    key = source_key(src_path, flags)
    if key is None:
        return None
    name = os.path.splitext(os.path.basename(src_path))[0].lstrip("_")
    memo_key = (name, key)
    if memo_key in _loaded:
        return _loaded[memo_key]
    so_path = os.path.join(cache_dir(), f"{name}-{key}.so")
    lib: Optional[ctypes.CDLL] = None
    if os.path.exists(so_path):
        try:
            lib = ctypes.CDLL(so_path)
        except OSError:
            lib = None
    if lib is None:
        if _compile(src_path, so_path, flags):
            try:
                lib = ctypes.CDLL(so_path)
            except OSError:
                lib = None
    _loaded[memo_key] = lib
    return lib
