"""Bindings for the native plan-construction traversal kernel.

:func:`traverse_all` mirrors :func:`repro.tree.traversal.traverse_all_numpy`
— same inputs, same six-tuple CSR plan, bit for bit — and returns
``None`` when the kernel is unavailable or the stage is disabled.  The
first successful load self-tests the kernel against the numpy reference
on periodic/open × cutoff/pure-tree configurations.
"""

from __future__ import annotations

import ctypes
import os
from typing import Optional, Tuple

import numpy as np

from repro.native import build as _build

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_traverse.c")

_I64P = ctypes.POINTER(ctypes.c_int64)
_F64P = ctypes.POINTER(ctypes.c_double)
_U8P = ctypes.POINTER(ctypes.c_uint8)

_verified: dict = {}


def _ptr(arr, ctype):
    return arr.ctypes.data_as(ctype)


def _declare(lib: ctypes.CDLL) -> None:
    if getattr(lib, "_traverse_declared", False):
        return
    lib.plan_traverse.restype = ctypes.c_int64
    lib.plan_traverse.argtypes = [
        _I64P, ctypes.c_int64,
        _F64P, _F64P, _F64P, _I64P, _I64P, _U8P, _I64P,
        ctypes.c_double, ctypes.c_int, ctypes.c_double,
        ctypes.c_int, ctypes.c_double,
        ctypes.c_int64, ctypes.c_int64,
        _I64P, _I64P, _F64P,
        _I64P, _I64P, _F64P,
        _I64P, _I64P,
    ]
    lib._traverse_declared = True


def get_lib() -> Optional[ctypes.CDLL]:
    """The verified traversal library, or ``None`` (checked per call)."""
    if not _build.stage_enabled("traverse"):
        return None
    lib = _build.load_library(_SRC)
    if lib is None:
        return None
    _declare(lib)
    key = id(lib)
    if key not in _verified:
        try:
            _verified[key] = _self_test(lib)
        except Exception:
            _verified[key] = False
    return lib if _verified[key] else None


def available() -> bool:
    """Whether the native traversal kernel can be used right now."""
    return get_lib() is not None


def _traverse_with(
    lib, tree, groups: np.ndarray, rcut, theta: float, periodic: bool, box: float
) -> Optional[Tuple]:
    Gn = len(groups)
    n_nodes = tree.n_nodes
    groups = np.ascontiguousarray(groups, dtype=np.int64)
    node_com = np.ascontiguousarray(tree.node_com, dtype=np.float64)
    node_center = np.ascontiguousarray(tree.node_center, dtype=np.float64)
    node_half = np.ascontiguousarray(tree.node_half, dtype=np.float64)
    node_lo = np.ascontiguousarray(tree.node_lo, dtype=np.int64)
    node_hi = np.ascontiguousarray(tree.node_hi, dtype=np.int64)
    is_leaf = np.ascontiguousarray(tree.node_is_leaf.view(np.uint8))
    children = np.ascontiguousarray(tree.node_children, dtype=np.int64)
    queue = np.empty(n_nodes + 8, dtype=np.int64)
    counts = np.zeros(3, dtype=np.int64)
    n = tree.n_particles
    part_cap = max(1024, 8 * n)
    node_cap = max(1024, 8 * n)
    for _ in range(2):
        part_ptr = np.empty(Gn + 1, dtype=np.int64)
        node_ptr = np.empty(Gn + 1, dtype=np.int64)
        part_idx = np.empty(part_cap, dtype=np.int64)
        node_idx = np.empty(node_cap, dtype=np.int64)
        part_shift = np.empty((part_cap, 3)) if periodic else np.empty((0, 3))
        node_shift = np.empty((node_cap, 3)) if periodic else np.empty((0, 3))
        rc = lib.plan_traverse(
            _ptr(groups, _I64P), ctypes.c_int64(Gn),
            _ptr(node_com, _F64P), _ptr(node_center, _F64P),
            _ptr(node_half, _F64P), _ptr(node_lo, _I64P), _ptr(node_hi, _I64P),
            _ptr(is_leaf, _U8P), _ptr(children, _I64P),
            ctypes.c_double(theta), ctypes.c_int(1 if periodic else 0),
            ctypes.c_double(box),
            ctypes.c_int(0 if rcut is None else 1),
            ctypes.c_double(0.0 if rcut is None else float(rcut)),
            ctypes.c_int64(part_cap), ctypes.c_int64(node_cap),
            _ptr(part_ptr, _I64P), _ptr(part_idx, _I64P), _ptr(part_shift, _F64P),
            _ptr(node_ptr, _I64P), _ptr(node_idx, _I64P), _ptr(node_shift, _F64P),
            _ptr(queue, _I64P), _ptr(counts, _I64P),
        )
        if rc == 0:
            np_count = int(counts[1])
            nn_count = int(counts[2])
            return (
                part_ptr,
                part_idx[:np_count].copy(),
                node_ptr,
                node_idx[:nn_count].copy(),
                part_shift[:np_count].copy() if periodic else None,
                node_shift[:nn_count].copy() if periodic else None,
                int(counts[0]),
            )
        part_cap = max(part_cap, int(counts[1]))
        node_cap = max(node_cap, int(counts[2]))
    return None


def traverse_all(tree, groups, rcut, theta, periodic, box, stats) -> Optional[Tuple]:
    """Native drop-in for ``traverse_all_numpy``; ``None`` = fall back."""
    Gn = len(groups)
    if Gn == 0:
        return None  # the numpy path handles the empty plan shape
    lib = get_lib()
    if lib is None:
        return None
    got = _traverse_with(lib, tree, np.asarray(groups), rcut, theta, periodic, box)
    if got is None:
        return None
    part_ptr, part_idx, node_ptr, node_idx, part_shift, node_shift, visited = got
    stats.nodes_visited += visited
    return part_ptr, part_idx, node_ptr, node_idx, part_shift, node_shift


# -- self-test ----------------------------------------------------------------


def _self_test(lib) -> bool:
    """Bitwise plan comparison vs the numpy traversal on four configs."""
    from repro.tree.octree import Octree
    from repro.tree.traversal import TraversalStats, traverse_all_numpy

    rng = np.random.default_rng(0xBEEF)
    pos = np.mod(
        np.vstack(
            [0.5 + 0.06 * rng.standard_normal((160, 3)), rng.random((96, 3))]
        ),
        1.0,
    )
    mass = np.full(len(pos), 1.0 / len(pos))
    tree = Octree(pos, mass, leaf_size=4)
    groups = np.array(tree.group_nodes(24), dtype=np.int64)
    groups = groups[np.argsort(tree.node_lo[groups], kind="stable")]

    for periodic in (True, False):
        for rcut in (None, 3.0 / 16):
            for theta in (0.4, 0.8):
                ref_stats = TraversalStats()
                ref = traverse_all_numpy(
                    tree, groups, rcut, theta, periodic, 1.0, ref_stats
                )
                got = _traverse_with(lib, tree, groups, rcut, theta, periodic, 1.0)
                if got is None:
                    return False
                visited = got[6]
                if visited != ref_stats.nodes_visited:
                    return False
                order = (0, 1, 2, 3, 4, 5)
                native = (got[0], got[1], got[2], got[3], got[4], got[5])
                for k in order:
                    a, b = native[k], ref[k]
                    if a is None or b is None:
                        if not (a is None and b is None):
                            return False
                        continue
                    if not np.array_equal(a, b):
                        return False
    return True


__all__ = ["available", "get_lib", "traverse_all"]
