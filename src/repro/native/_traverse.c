/* Native plan-construction traversal (Barnes' modified algorithm).
 *
 * One FIFO breadth-first walk per group, emitting accepted nodes and
 * dumped-leaf particles straight into the plan's CSR layout.  The
 * Python reference sweeps all groups level-synchronously and restores
 * per-group order with a stable sort; per-group relative order is
 * level-major with frontier order inside each level both ways, so the
 * sequential per-group emission here reproduces the reference plan
 * entry for entry.
 *
 * Per-pair arithmetic mirrors the numpy expressions exactly
 * (individually rounded doubles, no contraction):
 *
 *   dx    = com - gcenter          (per component)
 *   s     = rint(dx / box) * box;  dx -= s        (periodic only)
 *   dist  = sqrt((dx0*dx0 + dx2*dx2) + dx1*dx1)   (einsum pair order)
 *   keep  = (dist - gr) - half*sqrt3 <= rcut      (when rcut active)
 *   gap   = dist - gr
 *   accept = keep && gap > 0 && 2*half < theta*gap
 *
 * Capacity protocol: when part_cap / node_cap is too small the walk
 * keeps counting without writing and returns -1 with the exact needed
 * sizes in counts_out, so the caller retries once with a tight
 * allocation.
 */

#include <math.h>
#include <stdint.h>

int64_t plan_traverse(
    const int64_t *groups,       /* (n_groups,) node ids */
    int64_t n_groups,
    const double *node_com,      /* (n_nodes, 3) */
    const double *node_center,   /* (n_nodes, 3) */
    const double *node_half,     /* (n_nodes,) */
    const int64_t *node_lo,
    const int64_t *node_hi,
    const uint8_t *node_is_leaf,
    const int64_t *node_children, /* (n_nodes, 8) */
    double theta,
    int periodic,
    double box,
    int use_rcut,
    double rcut,
    int64_t part_cap,
    int64_t node_cap,
    int64_t *part_ptr,           /* (n_groups + 1,) */
    int64_t *part_idx,           /* (part_cap,) */
    double *part_shift,          /* (part_cap, 3), periodic only */
    int64_t *node_ptr,           /* (n_groups + 1,) */
    int64_t *node_idx,           /* (node_cap,) */
    double *node_shift,          /* (node_cap, 3), periodic only */
    int64_t *queue,              /* scratch, length >= n_nodes */
    int64_t *counts_out)         /* [visited, part_needed, node_needed] */
{
    const double sqrt3 = sqrt(3.0);
    int64_t np_count = 0, nn_count = 0, visited = 0;
    part_ptr[0] = 0;
    node_ptr[0] = 0;
    for (int64_t gi = 0; gi < n_groups; ++gi) {
        int64_t g = groups[gi];
        double gc0 = node_center[3 * g];
        double gc1 = node_center[3 * g + 1];
        double gc2 = node_center[3 * g + 2];
        double gr = node_half[g] * sqrt3;
        int64_t head = 0, tail = 0;
        queue[tail++] = 0; /* every group starts at the root */
        while (head < tail) {
            int64_t nd = queue[head++];
            visited++;
            double dx0 = node_com[3 * nd] - gc0;
            double dx1 = node_com[3 * nd + 1] - gc1;
            double dx2 = node_com[3 * nd + 2] - gc2;
            double s0 = 0.0, s1 = 0.0, s2 = 0.0;
            if (periodic) {
                s0 = rint(dx0 / box) * box;
                s1 = rint(dx1 / box) * box;
                s2 = rint(dx2 / box) * box;
                dx0 -= s0;
                dx1 -= s1;
                dx2 -= s2;
            }
            double dist = sqrt((dx0 * dx0 + dx2 * dx2) + dx1 * dx1);
            double half = node_half[nd];
            int keep = 1;
            if (use_rcut)
                keep = (dist - gr) - half * sqrt3 <= rcut;
            double gap = dist - gr;
            int accept = keep && gap > 0.0 && 2.0 * half < theta * gap;
            if (accept) {
                if (nn_count < node_cap) {
                    node_idx[nn_count] = nd;
                    if (periodic) {
                        node_shift[3 * nn_count] = s0;
                        node_shift[3 * nn_count + 1] = s1;
                        node_shift[3 * nn_count + 2] = s2;
                    }
                }
                nn_count++;
            } else if (keep) {
                if (node_is_leaf[nd]) {
                    for (int64_t p = node_lo[nd]; p < node_hi[nd]; ++p) {
                        if (np_count < part_cap) {
                            part_idx[np_count] = p;
                            if (periodic) {
                                part_shift[3 * np_count] = s0;
                                part_shift[3 * np_count + 1] = s1;
                                part_shift[3 * np_count + 2] = s2;
                            }
                        }
                        np_count++;
                    }
                } else {
                    for (int c = 0; c < 8; ++c) {
                        int64_t k = node_children[8 * nd + c];
                        if (k >= 0)
                            queue[tail++] = k;
                    }
                }
            }
        }
        part_ptr[gi + 1] = np_count;
        node_ptr[gi + 1] = nn_count;
    }
    counts_out[0] = visited;
    counts_out[1] = np_count;
    counts_out[2] = nn_count;
    if (np_count > part_cap || nn_count > node_cap)
        return -1;
    return 0;
}
