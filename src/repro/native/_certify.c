/* Native no-wrap certification for periodic interaction plans.
 *
 * For each group: bounding box of the group's targets (a contiguous
 * pos_sorted range) versus the bounding box of its unshifted list
 * entries (particle and node CSR lists).  When the extreme
 * displacement stays within box/2 minus a safety margin, the per-pair
 * minimum-image rounding is exactly zero and can be skipped without
 * changing a single bit.
 *
 * Arithmetic mirrors the numpy reference exactly: min/max reductions
 * are exact, and the margin expression
 *
 *   half_box_safe = 0.5 * box - 1e-9 * box
 *
 * performs the same individually rounded IEEE double operations
 * (compiled with -ffp-contract=off).
 */

#include <math.h>
#include <stdint.h>

void certify_no_wrap(
    int64_t n_groups,
    const int64_t *group_lo,     /* (n_groups,) */
    const int64_t *group_hi,     /* (n_groups,) */
    const int64_t *part_ptr,     /* (n_groups + 1,) */
    const int64_t *part_idx,
    const int64_t *node_ptr,     /* (n_groups + 1,) */
    const int64_t *node_idx,
    const double *pos_sorted,    /* (n, 3) */
    const double *node_com,      /* (n_nodes, 3) */
    double box,
    uint8_t *out)                /* (n_groups,) 1 = certified */
{
    const double half_box_safe = 0.5 * box - 1e-9 * box;
    for (int64_t g = 0; g < n_groups; ++g) {
        double tmin[3], tmax[3], smin[3], smax[3];
        for (int k = 0; k < 3; ++k) {
            tmin[k] = INFINITY;
            tmax[k] = -INFINITY;
            smin[k] = INFINITY;
            smax[k] = -INFINITY;
        }
        for (int64_t i = group_lo[g]; i < group_hi[g]; ++i) {
            const double *p = pos_sorted + 3 * i;
            for (int k = 0; k < 3; ++k) {
                if (p[k] < tmin[k]) tmin[k] = p[k];
                if (p[k] > tmax[k]) tmax[k] = p[k];
            }
        }
        for (int64_t j = part_ptr[g]; j < part_ptr[g + 1]; ++j) {
            const double *p = pos_sorted + 3 * part_idx[j];
            for (int k = 0; k < 3; ++k) {
                if (p[k] < smin[k]) smin[k] = p[k];
                if (p[k] > smax[k]) smax[k] = p[k];
            }
        }
        for (int64_t j = node_ptr[g]; j < node_ptr[g + 1]; ++j) {
            const double *p = node_com + 3 * node_idx[j];
            for (int k = 0; k < 3; ++k) {
                if (p[k] < smin[k]) smin[k] = p[k];
                if (p[k] > smax[k]) smax[k] = p[k];
            }
        }
        int ok = 1;
        for (int k = 0; k < 3; ++k) {
            if (!(smax[k] - tmin[k] <= half_box_safe
                  && tmax[k] - smin[k] <= half_box_safe)) {
                ok = 0;
            }
        }
        int64_t n_src = (part_ptr[g + 1] - part_ptr[g])
                      + (node_ptr[g + 1] - node_ptr[g]);
        out[g] = (uint8_t)(ok || n_src == 0);
    }
}
