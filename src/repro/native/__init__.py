"""Compile-on-demand native kernels for the per-step hot path.

Every per-step stage of the TreePM cycle — octree construction, plan
traversal, PM mesh scatter/gather, the kick-drift update, and the plan
sweep itself (:mod:`repro.pp.native`) — has a small C kernel compiled
on first use with the system compiler and bound through :mod:`ctypes`.
The shared loader lives in :mod:`repro.native.build`; the per-stage
modules each carry a bitwise self-test gate against the numpy reference
pipeline, so a kernel is only ever a speedup, never a behavior change.

Opt-outs (checked per call, so they can be toggled within a process):

``REPRO_NO_NATIVE``
    Disable every native kernel.
``REPRO_NO_NATIVE_TREE`` / ``..._TRAVERSE`` / ``..._MESH`` /
``..._UPDATE`` / ``..._PP``
    Disable one stage (tree build, plan construction, mesh
    scatter/gather, kick-drift update, plan sweep).
``REPRO_NATIVE_THREADS``
    OpenMP thread count for the plan sweep (default 1).  Threading is
    deterministic: groups own disjoint output rows, so the result is
    bitwise identical for any thread count.
``REPRO_NATIVE_CACHE``
    Directory for compiled ``.so`` artifacts (default: a per-user
    directory under the system temp dir).  Cache entries are keyed by a
    hash of the C source and the compiler command line, so editing a
    kernel source can never load a stale binary.
"""

from repro.native.build import (
    native_threads,
    openmp_available,
    stage_enabled,
)

__all__ = ["native_threads", "openmp_available", "stage_enabled"]
