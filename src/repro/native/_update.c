/* Native kick / fused kick-drift-wrap update kernels.
 *
 * Bitwise contract with the numpy update arithmetic
 * (repro.integrate.leapfrog + repro.utils.periodic.wrap_positions):
 *
 *   kick:            mom[i] += acc[i] * c
 *   kick_drift_wrap: mom[i] += acc[i] * kc
 *                    p       = pos[i] + mom[i] * dc
 *                    r       = np.mod(p, box)    == fmod + sign fixup
 *                    if (r >= box) r = 0.0       (fold the rounding case)
 *
 * numpy's mod is fmod with the remainder pulled onto the divisor's
 * sign; for the positive boxes used here that is the single
 * conditional add below.  Each element performs exactly the
 * individually rounded IEEE double ops of the numpy expressions
 * (-ffp-contract=off), so the fused update is a pure speedup.
 */

#include <math.h>
#include <stdint.h>

void kick(int64_t n3, double *mom, const double *acc, double coeff)
{
    for (int64_t i = 0; i < n3; ++i)
        mom[i] += acc[i] * coeff;
}

void kick_drift_wrap(
    int64_t n3,
    double *pos,
    double *mom,
    const double *acc,
    double kick_coeff,
    double drift_coeff,
    double box)
{
    for (int64_t i = 0; i < n3; ++i) {
        mom[i] += acc[i] * kick_coeff;
        double p = pos[i] + mom[i] * drift_coeff;
        double r = fmod(p, box);
        if (r != 0.0 && ((r < 0.0) != (box < 0.0)))
            r += box;
        if (r >= box)
            r = 0.0;
        pos[i] = r;
    }
}

/* Drift-only variant (distributed driver: the kick and drift live in
 * different ledger phases there). */
void drift_wrap(
    int64_t n3, double *pos, const double *mom, double drift_coeff, double box)
{
    for (int64_t i = 0; i < n3; ++i) {
        double p = pos[i] + mom[i] * drift_coeff;
        double r = fmod(p, box);
        if (r != 0.0 && ((r < 0.0) != (box < 0.0)))
            r += box;
        if (r >= box)
            r = 0.0;
        pos[i] = r;
    }
}
