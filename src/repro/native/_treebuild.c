/* Native octree construction: Morton keys, stable radix argsort, the
 * level-synchronous node build, and the Barnes group selection.
 *
 * Bitwise contract with repro.tree.morton / repro.tree.octree:
 *
 *   - Morton keys are pure integer ops on the same scaled doubles
 *     ((pos - origin) / size * 2^bits, truncated, clamped) — exact.
 *   - The argsort is an LSD byte radix sort, which is stable and
 *     therefore produces the identical permutation to numpy's
 *     argsort(kind="stable") on uint64 keys.
 *   - Nodes are appended in the same BFS order as the Python builder
 *     (parents in frontier order, children in octant order, empty
 *     children skipped), with child geometry computed by the same
 *     expressions (center = parent + offset * half / 2), so every node
 *     array matches the Python build bit for bit.
 *
 * Node moments stay in numpy (vectorized prefix sums) — both builders
 * produce identical lo/hi slices, so the moments agree by construction.
 */

#include <math.h>
#include <stdint.h>

static uint64_t spread_bits(uint64_t x)
{
    x &= 0x1FFFFFULL;
    x = (x | (x << 32)) & 0x1F00000000FFFFULL;
    x = (x | (x << 16)) & 0x1F0000FF0000FFULL;
    x = (x | (x << 8)) & 0x100F00F00F00F00FULL;
    x = (x | (x << 4)) & 0x10C30C30C30C30C3ULL;
    x = (x | (x << 2)) & 0x1249249249249249ULL;
    return x;
}

/* Compute Morton keys; returns 0, or -1 when any position lies outside
 * [origin, origin+size]^3 (the caller falls back to the numpy path,
 * which raises the proper exception). */
int64_t morton_keys(
    const double *pos,      /* (n, 3) */
    int64_t n,
    const double *origin,   /* (3,) */
    double size,
    int64_t bits,
    uint64_t *keys)         /* (n,) out */
{
    uint64_t n_cells = (uint64_t)1 << bits;
    double max_cell = (double)(n_cells - 1);
    for (int64_t i = 0; i < n; ++i) {
        uint64_t c[3];
        for (int k = 0; k < 3; ++k) {
            double scaled = (pos[3 * i + k] - origin[k]) / size;
            if (!(scaled >= 0.0) || !(scaled <= 1.0))
                return -1; /* outside the cube (or NaN) */
            double cell = scaled * (double)n_cells;
            /* numpy: minimum(uint64(cell), n_cells - 1); the cast
             * truncates toward zero exactly like .astype(np.uint64) */
            if (cell > max_cell)
                cell = max_cell;
            c[k] = (uint64_t)cell;
            if (c[k] > n_cells - 1)
                c[k] = n_cells - 1;
        }
        keys[i] = (spread_bits(c[0]) << 2) | (spread_bits(c[1]) << 1)
                | spread_bits(c[2]);
    }
    return 0;
}

/* Stable LSD radix argsort of uint64 keys.  keys_in is clobbered (it
 * ends up holding the sorted keys, which are also copied to keys_out);
 * the permutation lands in perm_out.  tmp_* are scratch of length n.
 * Stability makes the permutation identical to numpy's
 * argsort(kind="stable"). */
void radix_argsort(
    uint64_t *keys_in,
    int64_t n,
    uint64_t *keys_out,
    int64_t *perm_out,
    uint64_t *tmp_keys,
    int64_t *tmp_perm)
{
    uint64_t *ka = keys_in, *kb = tmp_keys;
    int64_t *pa = perm_out, *pb = tmp_perm;
    for (int64_t i = 0; i < n; ++i)
        pa[i] = i;
    int64_t count[256];
    for (int pass = 0; pass < 8; ++pass) {
        int shift = pass * 8;
        for (int j = 0; j < 256; ++j)
            count[j] = 0;
        for (int64_t i = 0; i < n; ++i)
            count[(ka[i] >> shift) & 0xFF]++;
        int64_t total = 0;
        for (int j = 0; j < 256; ++j) {
            int64_t c = count[j];
            count[j] = total;
            total += c;
        }
        for (int64_t i = 0; i < n; ++i) {
            int64_t dst = count[(ka[i] >> shift) & 0xFF]++;
            kb[dst] = ka[i];
            pb[dst] = pa[i];
        }
        uint64_t *kt = ka; ka = kb; kb = kt;
        int64_t *pt = pa; pa = pb; pb = pt;
    }
    /* eight passes = even number of swaps: the result is back in
     * keys_in / perm_out */
    for (int64_t i = 0; i < n; ++i)
        keys_out[i] = keys_in[i];
}

/* Level-synchronous octree build over sorted keys.
 *
 * Nodes are written in BFS order: node i is processed when reached
 * sequentially (all nodes at shallower depths precede it), children
 * appended at the tail in octant order.  Returns the node count, or
 * -1 when cap is too small (overflow nodes would need storage to keep
 * counting exactly; the caller retries with a larger allocation).
 */
int64_t octree_build(
    const uint64_t *keys,    /* (n,) sorted */
    int64_t n,
    int64_t leaf_size,
    int64_t max_depth,
    const double *root_center, /* (3,) origin + size/2 */
    double root_half,          /* size / 2 */
    int64_t cap,
    double *node_center,     /* (cap, 3) */
    double *node_half,       /* (cap,) */
    int64_t *node_lo,
    int64_t *node_hi,
    int64_t *node_depth,
    uint8_t *node_is_leaf,
    int64_t *node_children)  /* (cap, 8) */
{
    if (cap < 1)
        return -1;
    int64_t count = 1;
    node_center[0] = root_center[0];
    node_center[1] = root_center[1];
    node_center[2] = root_center[2];
    node_half[0] = root_half;
    node_lo[0] = 0;
    node_hi[0] = n;
    node_depth[0] = 0;
    node_is_leaf[0] = 1;
    for (int c = 0; c < 8; ++c)
        node_children[c] = -1;
    for (int64_t i = 0; i < count; ++i) {
        int64_t lo = node_lo[i];
        int64_t hi = node_hi[i];
        int64_t depth = node_depth[i];
        double ph = node_half[i];
        double pc0 = node_center[3 * i];
        double pc1 = node_center[3 * i + 1];
        double pc2 = node_center[3 * i + 2];
        if (hi - lo <= leaf_size || depth >= max_depth)
            continue;
        int shift = (int)(3 * (max_depth - depth - 1));
        uint64_t parent_pref = (keys[lo] >> shift) >> 3;
        /* child boundaries: binary search for each prefix target,
         * identical integers to numpy searchsorted (left) */
        int64_t bounds[9];
        bounds[0] = lo;
        for (int c = 1; c < 9; ++c) {
            uint64_t target = parent_pref * 8 + (uint64_t)c;
            int64_t a = lo, b = hi;
            while (a < b) {
                int64_t mid = a + ((b - a) >> 1);
                if ((keys[mid] >> shift) < target)
                    a = mid + 1;
                else
                    b = mid;
            }
            bounds[c] = a;
        }
        node_is_leaf[i] = 0;
        for (int c = 0; c < 8; ++c) {
            int64_t clo = bounds[c], chi = bounds[c + 1];
            if (chi == clo)
                continue;
            int64_t idx = count++;
            if (idx >= cap)
                return -1;
            double off0 = (c & 4) ? 1.0 : -1.0;
            double off1 = (c & 2) ? 1.0 : -1.0;
            double off2 = (c & 1) ? 1.0 : -1.0;
            node_center[3 * idx] = pc0 + (off0 * ph) / 2.0;
            node_center[3 * idx + 1] = pc1 + (off1 * ph) / 2.0;
            node_center[3 * idx + 2] = pc2 + (off2 * ph) / 2.0;
            node_half[idx] = ph / 2.0;
            node_lo[idx] = clo;
            node_hi[idx] = chi;
            node_depth[idx] = depth + 1;
            node_is_leaf[idx] = 1;
            for (int k = 0; k < 8; ++k)
                node_children[8 * idx + k] = -1;
            node_children[8 * i + c] = idx;
        }
    }
    return count;
}

/* Barnes group selection: the shallowest nodes holding at most
 * group_size particles, in the exact emission order of the Python
 * stack walk (pop from the tail, children pushed in octant order).
 * Returns the group count, or -(needed) when cap is too small. */
int64_t group_nodes(
    const int64_t *node_lo,
    const int64_t *node_hi,
    const int64_t *node_children, /* (n_nodes, 8) */
    const uint8_t *node_is_leaf,
    int64_t n_nodes,
    int64_t group_size,
    int64_t cap,
    int64_t *out,
    int64_t *stack) /* scratch, length >= n_nodes + 8 */
{
    int64_t top = 0;
    int64_t count = 0;
    stack[top++] = 0;
    while (top > 0) {
        int64_t i = stack[--top];
        if (node_hi[i] - node_lo[i] <= group_size || node_is_leaf[i]) {
            if (count < cap)
                out[count] = i;
            count++;
        } else {
            for (int c = 0; c < 8; ++c) {
                int64_t k = node_children[8 * i + c];
                if (k >= 0)
                    stack[top++] = k;
            }
        }
    }
    if (count > cap)
        return -count;
    return count;
}
