"""Bindings for the native octree-construction kernel.

Three entry points mirror the phases of :class:`repro.tree.octree.Octree`
construction — :func:`morton_build` (keys + stable argsort),
:func:`build_nodes` (the level-synchronous node build) and
:func:`group_nodes` (Barnes' group selection).  Each returns ``None``
when the kernel is unavailable, the stage is disabled, or the inputs are
out of contract, and the caller falls back to the numpy reference.

The first successful load runs a bitwise self-test against the numpy
builder on a synthetic clustered particle set (duplicates included, to
exercise sort stability); a mismatch permanently disables the kernel for
the process.
"""

from __future__ import annotations

import ctypes
import os
from typing import List, Optional, Tuple

import numpy as np

from repro.native import build as _build

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_treebuild.c")

_I64P = ctypes.POINTER(ctypes.c_int64)
_U64P = ctypes.POINTER(ctypes.c_uint64)
_F64P = ctypes.POINTER(ctypes.c_double)
_U8P = ctypes.POINTER(ctypes.c_uint8)

#: self-test verdict per loaded library id (kernels re-verify if the
#: cache key — and thus the library — changes within a process)
_verified: dict = {}


def _ptr(arr, ctype):
    return arr.ctypes.data_as(ctype)


def _declare(lib: ctypes.CDLL) -> None:
    if getattr(lib, "_treebuild_declared", False):
        return
    lib.morton_keys.restype = ctypes.c_int64
    lib.morton_keys.argtypes = [
        _F64P, ctypes.c_int64, _F64P, ctypes.c_double, ctypes.c_int64, _U64P,
    ]
    lib.radix_argsort.restype = None
    lib.radix_argsort.argtypes = [_U64P, ctypes.c_int64, _U64P, _I64P, _U64P, _I64P]
    lib.octree_build.restype = ctypes.c_int64
    lib.octree_build.argtypes = [
        _U64P, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
        _F64P, ctypes.c_double, ctypes.c_int64,
        _F64P, _F64P, _I64P, _I64P, _I64P, _U8P, _I64P,
    ]
    lib.group_nodes.restype = ctypes.c_int64
    lib.group_nodes.argtypes = [
        _I64P, _I64P, _I64P, _U8P,
        ctypes.c_int64, ctypes.c_int64, ctypes.c_int64, _I64P, _I64P,
    ]
    lib._treebuild_declared = True


def get_lib() -> Optional[ctypes.CDLL]:
    """The verified tree-build library, or ``None``.

    Stage gating (``REPRO_NO_NATIVE`` / ``REPRO_NO_NATIVE_TREE``) is
    checked on every call so it can be toggled within a process.
    """
    if not _build.stage_enabled("tree"):
        return None
    lib = _build.load_library(_SRC)
    if lib is None:
        return None
    _declare(lib)
    key = id(lib)
    if key not in _verified:
        try:
            _verified[key] = _self_test(lib)
        except Exception:
            _verified[key] = False
    return lib if _verified[key] else None


def available() -> bool:
    """Whether the native tree-build kernel can be used right now."""
    return get_lib() is not None


# -- kernel wrappers ----------------------------------------------------------


def _morton_build_with(
    lib, pos: np.ndarray, origin: np.ndarray, size: float, bits: int
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    n = len(pos)
    pos = np.ascontiguousarray(pos, dtype=np.float64)
    origin = np.ascontiguousarray(origin, dtype=np.float64)
    keys = np.empty(n, dtype=np.uint64)
    rc = lib.morton_keys(
        _ptr(pos, _F64P), ctypes.c_int64(n), _ptr(origin, _F64P),
        ctypes.c_double(size), ctypes.c_int64(bits), _ptr(keys, _U64P),
    )
    if rc != 0:
        return None  # out-of-cube / non-finite: numpy path raises properly
    keys_sorted = np.empty(n, dtype=np.uint64)
    perm = np.empty(n, dtype=np.int64)
    tmp_k = np.empty(n, dtype=np.uint64)
    tmp_p = np.empty(n, dtype=np.int64)
    lib.radix_argsort(
        _ptr(keys, _U64P), ctypes.c_int64(n), _ptr(keys_sorted, _U64P),
        _ptr(perm, _I64P), _ptr(tmp_k, _U64P), _ptr(tmp_p, _I64P),
    )
    return keys_sorted, perm


def morton_build(
    pos: np.ndarray, origin: np.ndarray, size: float, bits: int
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """``(sorted_keys, perm)`` for positions in the root cube, or ``None``."""
    lib = get_lib()
    if lib is None or len(pos) == 0:
        return None
    return _morton_build_with(lib, pos, origin, size, bits)


def _build_nodes_with(
    lib,
    keys_sorted: np.ndarray,
    leaf_size: int,
    max_depth: int,
    root_center: np.ndarray,
    root_half: float,
) -> Optional[Tuple]:
    n = len(keys_sorted)
    keys_sorted = np.ascontiguousarray(keys_sorted, dtype=np.uint64)
    root_center = np.ascontiguousarray(root_center, dtype=np.float64)
    cap = max(512, (8 * n) // max(1, leaf_size) + 64)
    hard_cap = 8 * (n + 8) * max_depth + 64
    while True:
        center = np.empty((cap, 3), dtype=np.float64)
        half = np.empty(cap, dtype=np.float64)
        lo = np.empty(cap, dtype=np.int64)
        hi = np.empty(cap, dtype=np.int64)
        depth = np.empty(cap, dtype=np.int64)
        is_leaf = np.empty(cap, dtype=np.uint8)
        children = np.empty((cap, 8), dtype=np.int64)
        ret = lib.octree_build(
            _ptr(keys_sorted, _U64P), ctypes.c_int64(n),
            ctypes.c_int64(leaf_size), ctypes.c_int64(max_depth),
            _ptr(root_center, _F64P), ctypes.c_double(root_half),
            ctypes.c_int64(cap),
            _ptr(center, _F64P), _ptr(half, _F64P), _ptr(lo, _I64P),
            _ptr(hi, _I64P), _ptr(depth, _I64P), _ptr(is_leaf, _U8P),
            _ptr(children, _I64P),
        )
        if ret >= 0:
            k = int(ret)
            return (
                center[:k].copy(),
                half[:k].copy(),
                lo[:k].copy(),
                hi[:k].copy(),
                depth[:k].copy(),
                is_leaf[:k].copy().view(np.bool_),
                children[:k].copy(),
            )
        if cap >= hard_cap:
            return None
        cap = min(cap * 4, hard_cap)


def build_nodes(
    keys_sorted: np.ndarray,
    leaf_size: int,
    max_depth: int,
    root_center: np.ndarray,
    root_half: float,
) -> Optional[Tuple]:
    """Node arrays ``(center, half, lo, hi, depth, is_leaf, children)``."""
    lib = get_lib()
    if lib is None or len(keys_sorted) == 0:
        return None
    return _build_nodes_with(lib, keys_sorted, leaf_size, max_depth, root_center, root_half)


def _group_nodes_with(
    lib,
    node_lo: np.ndarray,
    node_hi: np.ndarray,
    node_children: np.ndarray,
    node_is_leaf: np.ndarray,
    group_size: int,
) -> List[int]:
    n_nodes = len(node_lo)
    lo = np.ascontiguousarray(node_lo, dtype=np.int64)
    hi = np.ascontiguousarray(node_hi, dtype=np.int64)
    children = np.ascontiguousarray(node_children, dtype=np.int64)
    is_leaf = np.ascontiguousarray(node_is_leaf.view(np.uint8))
    out = np.empty(n_nodes, dtype=np.int64)
    stack = np.empty(n_nodes + 8, dtype=np.int64)
    ret = lib.group_nodes(
        _ptr(lo, _I64P), _ptr(hi, _I64P), _ptr(children, _I64P),
        _ptr(is_leaf, _U8P), ctypes.c_int64(n_nodes),
        ctypes.c_int64(group_size), ctypes.c_int64(n_nodes),
        _ptr(out, _I64P), _ptr(stack, _I64P),
    )
    return out[: int(ret)].tolist()


def group_nodes(
    node_lo: np.ndarray,
    node_hi: np.ndarray,
    node_children: np.ndarray,
    node_is_leaf: np.ndarray,
    group_size: int,
) -> Optional[List[int]]:
    """Group node ids in the reference emission order, or ``None``."""
    lib = get_lib()
    if lib is None or len(node_lo) == 0:
        return None
    return _group_nodes_with(
        lib, node_lo, node_hi, node_children, node_is_leaf, group_size
    )


# -- self-test ----------------------------------------------------------------


def _self_test(lib) -> bool:
    """Bitwise comparison against the numpy builder on a synthetic set."""
    from repro.tree.morton import morton_keys
    from repro.tree.octree import build_nodes_numpy

    rng = np.random.default_rng(0xC0FFEE)
    clustered = 0.5 + 0.07 * rng.standard_normal((96, 3))
    uniform = rng.random((64, 3))
    pos = np.mod(np.vstack([clustered, uniform]), 1.0)
    pos[:4] = pos[4:8]  # exact duplicates: sort stability must matter
    pos[8] = 0.0
    pos[9] = 1.0  # upper-boundary clamp
    pos[10] = [0.0, 1.0, 0.5]
    origin = np.zeros(3)
    size = 1.0
    bits = 21

    ref_keys = morton_keys(pos, origin, size, bits)
    ref_perm = np.argsort(ref_keys, kind="stable")
    ref_sorted = ref_keys[ref_perm]

    got = _morton_build_with(lib, pos, origin, size, bits)
    if got is None:
        return False
    keys_sorted, perm = got
    if not (
        np.array_equal(keys_sorted, ref_sorted) and np.array_equal(perm, ref_perm)
    ):
        return False

    # out-of-cube input must be refused (numpy path raises instead)
    bad = pos.copy()
    bad[0, 0] = 1.5
    if _morton_build_with(lib, bad, origin, size, bits) is not None:
        return False

    root_center = origin + 0.5 * size
    for leaf_size in (1, 8):
        ref_nodes = build_nodes_numpy(ref_sorted, len(pos), origin, size, leaf_size, bits)
        got_nodes = _build_nodes_with(
            lib, ref_sorted, leaf_size, bits, root_center, size / 2.0
        )
        if got_nodes is None:
            return False
        for a, b in zip(got_nodes, ref_nodes):
            if a.dtype != b.dtype or not np.array_equal(a, b):
                return False
        lo, hi = ref_nodes[2], ref_nodes[3]
        is_leaf, children = ref_nodes[5], ref_nodes[6]
        for gs in (1, 16, 64):
            ref_groups = _group_nodes_python(lo, hi, children, is_leaf, gs)
            got_groups = _group_nodes_with(lib, lo, hi, children, is_leaf, gs)
            if got_groups != ref_groups:
                return False
    return True


def _group_nodes_python(lo, hi, children, is_leaf, group_size) -> List[int]:
    out: List[int] = []
    stack = [0]
    while stack:
        i = stack.pop()
        if hi[i] - lo[i] <= group_size or is_leaf[i]:
            out.append(int(i))
        else:
            stack.extend(c for c in children[i] if c >= 0)
    return out


__all__ = ["available", "build_nodes", "get_lib", "group_nodes", "morton_build"]
