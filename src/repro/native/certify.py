"""Bindings for the native no-wrap certification kernel.

:func:`certify` mirrors :func:`repro.tree.traversal.certify_no_wrap_numpy`
— same inputs, same per-group boolean verdicts, bit for bit — and
returns ``None`` when the kernel is unavailable or the stage is
disabled.  The first successful load self-tests the kernel against the
numpy reference on periodic plans built from clustered and uniform
particle sets.
"""

from __future__ import annotations

import ctypes
import os
from typing import Optional

import numpy as np

from repro.native import build as _build

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_certify.c")

_I64P = ctypes.POINTER(ctypes.c_int64)
_F64P = ctypes.POINTER(ctypes.c_double)
_U8P = ctypes.POINTER(ctypes.c_uint8)

_verified: dict = {}


def _ptr(arr, ctype):
    return arr.ctypes.data_as(ctype)


def _declare(lib: ctypes.CDLL) -> None:
    if getattr(lib, "_certify_declared", False):
        return
    lib.certify_no_wrap.restype = None
    lib.certify_no_wrap.argtypes = [
        ctypes.c_int64,
        _I64P, _I64P,
        _I64P, _I64P,
        _I64P, _I64P,
        _F64P, _F64P,
        ctypes.c_double,
        _U8P,
    ]
    lib._certify_declared = True


def get_lib() -> Optional[ctypes.CDLL]:
    """The verified certification library, or ``None`` (checked per call)."""
    if not _build.stage_enabled("certify"):
        return None
    lib = _build.load_library(_SRC)
    if lib is None:
        return None
    _declare(lib)
    key = id(lib)
    if key not in _verified:
        try:
            _verified[key] = _self_test(lib)
        except Exception:
            _verified[key] = False
    return lib if _verified[key] else None


def available() -> bool:
    """Whether the native certification kernel can be used right now."""
    return get_lib() is not None


def _certify_with(lib, tree, plan, box: float) -> np.ndarray:
    G = plan.n_groups
    group_lo = np.ascontiguousarray(plan.group_lo, dtype=np.int64)
    group_hi = np.ascontiguousarray(plan.group_hi, dtype=np.int64)
    part_ptr = np.ascontiguousarray(plan.part_ptr, dtype=np.int64)
    part_idx = np.ascontiguousarray(plan.part_idx, dtype=np.int64)
    node_ptr = np.ascontiguousarray(plan.node_ptr, dtype=np.int64)
    node_idx = np.ascontiguousarray(plan.node_idx, dtype=np.int64)
    pos_sorted = np.ascontiguousarray(tree.pos_sorted, dtype=np.float64)
    node_com = np.ascontiguousarray(tree.node_com, dtype=np.float64)
    out = np.zeros(G, dtype=np.uint8)
    lib.certify_no_wrap(
        ctypes.c_int64(G),
        _ptr(group_lo, _I64P), _ptr(group_hi, _I64P),
        _ptr(part_ptr, _I64P), _ptr(part_idx, _I64P),
        _ptr(node_ptr, _I64P), _ptr(node_idx, _I64P),
        _ptr(pos_sorted, _F64P), _ptr(node_com, _F64P),
        ctypes.c_double(box),
        _ptr(out, _U8P),
    )
    return out.view(np.bool_)


def certify(tree, plan, box: float) -> Optional[np.ndarray]:
    """Native drop-in for ``certify_no_wrap_numpy``; ``None`` = fall back."""
    if plan.n_groups == 0:
        return None
    lib = get_lib()
    if lib is None:
        return None
    return _certify_with(lib, tree, plan, box)


# -- self-test ----------------------------------------------------------------


def _self_test(lib) -> bool:
    """Bitwise verdict comparison vs the numpy reference on periodic plans.

    Plans are constructed through :func:`traverse_all_numpy` directly
    (never through the solver, whose certification step would recurse
    back into :func:`get_lib` mid-verification).
    """
    from repro.pp.plan import InteractionPlan
    from repro.tree.octree import Octree
    from repro.tree.traversal import (
        TraversalStats,
        certify_no_wrap_numpy,
        traverse_all_numpy,
    )

    rng = np.random.default_rng(0xCE47)
    pos = np.mod(
        np.vstack(
            [0.5 + 0.05 * rng.standard_normal((140, 3)), rng.random((100, 3))]
        ),
        1.0,
    )
    mass = np.full(len(pos), 1.0 / len(pos))
    tree = Octree(pos, mass, leaf_size=4)
    groups = np.array(tree.group_nodes(24), dtype=np.int64)
    groups = groups[np.argsort(tree.node_lo[groups], kind="stable")]

    for rcut in (None, 3.0 / 16):
        for theta in (0.4, 0.8):
            stats = TraversalStats()
            (part_ptr, part_idx, node_ptr, node_idx,
             part_shift, node_shift) = traverse_all_numpy(
                tree, groups, rcut, theta, True, 1.0, stats
            )
            plan = InteractionPlan(
                group_nodes=groups,
                group_lo=tree.node_lo[groups],
                group_hi=tree.node_hi[groups],
                part_ptr=part_ptr,
                part_idx=part_idx,
                node_ptr=node_ptr,
                node_idx=node_idx,
                part_shift=part_shift,
                node_shift=node_shift,
            )
            ref = certify_no_wrap_numpy(tree, plan, 1.0)
            got = _certify_with(lib, tree, plan, 1.0)
            if got.shape != ref.shape or not np.array_equal(got, ref):
                return False
    return True


__all__ = ["available", "certify", "get_lib"]
