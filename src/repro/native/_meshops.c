/* Native PM mesh scatter (mass assignment) and gather (interpolation).
 *
 * Python computes the per-axis stencil indices and weights (identical
 * in both paths), so these kernels replace only the hot accumulation
 * loops.  Bitwise contract with repro.mesh.assignment:
 *
 *   - scatter keeps the reference loop nesting — stencil offsets
 *     (a, b, c) outer, particles inner — because np.add.at accumulates
 *     strictly sequentially in index order, one offset at a time;
 *   - gather runs particle-outer, which leaves each output element's
 *     accumulation sequence (the (a, b, c) order) unchanged;
 *   - the per-deposit value is ((mass * (wx * wy)) * wz), matching the
 *     numpy expression tree exactly, with -ffp-contract=off.
 *
 * Indices arrive already folded into range by the caller (periodic mod
 * for the global mesh, validated local offsets for the ghosted one).
 */

#include <stdint.h>

void mesh_scatter(
    int64_t n,            /* particles */
    int64_t s,            /* stencil size per axis (1 / 2 / 3) */
    const int64_t *ix,    /* (n, s) first-axis indices, in [0, d0) */
    const int64_t *iy,    /* (n, s) */
    const int64_t *iz,    /* (n, s) */
    const double *wx,     /* (n, s) weights */
    const double *wy,
    const double *wz,
    const double *mass,   /* (n,) */
    int64_t d1,           /* mesh dims (d0 is implicit) */
    int64_t d2,
    double *out)          /* (d0, d1, d2), accumulated into */
{
    for (int64_t a = 0; a < s; ++a) {
        for (int64_t b = 0; b < s; ++b) {
            for (int64_t c = 0; c < s; ++c) {
                for (int64_t i = 0; i < n; ++i) {
                    int64_t cell =
                        (ix[i * s + a] * d1 + iy[i * s + b]) * d2
                        + iz[i * s + c];
                    out[cell] +=
                        (mass[i] * (wx[i * s + a] * wy[i * s + b]))
                        * wz[i * s + c];
                }
            }
        }
    }
}

void mesh_gather(
    int64_t n,
    int64_t s,
    const int64_t *ix,
    const int64_t *iy,
    const int64_t *iz,
    const double *wx,
    const double *wy,
    const double *wz,
    int64_t d1,
    int64_t d2,
    int64_t ncomp,        /* trailing components per mesh cell */
    const double *mesh,   /* (d0, d1, d2, ncomp) */
    double *out)          /* (n, ncomp), zero-initialized by caller */
{
    for (int64_t i = 0; i < n; ++i) {
        for (int64_t a = 0; a < s; ++a) {
            for (int64_t b = 0; b < s; ++b) {
                double wab = wx[i * s + a] * wy[i * s + b];
                for (int64_t c = 0; c < s; ++c) {
                    double w = wab * wz[i * s + c];
                    int64_t cell =
                        (ix[i * s + a] * d1 + iy[i * s + b]) * d2
                        + iz[i * s + c];
                    const double *src = mesh + cell * ncomp;
                    double *dst = out + i * ncomp;
                    for (int64_t k = 0; k < ncomp; ++k)
                        dst[k] += w * src[k];
                }
            }
        }
    }
}
