"""Bindings for the native kick / kick-drift-wrap update kernels.

The integrators copy the particle state once per step and then update
in place through these entry points; each returns False when the kernel
is unavailable (or the stage is disabled) and the caller performs the
identical numpy arithmetic instead.
"""

from __future__ import annotations

import ctypes
import os
from typing import Optional

import numpy as np

from repro.native import build as _build

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_update.c")

_F64P = ctypes.POINTER(ctypes.c_double)

_verified: dict = {}


def _ptr(arr):
    return arr.ctypes.data_as(_F64P)


def _declare(lib: ctypes.CDLL) -> None:
    if getattr(lib, "_update_declared", False):
        return
    lib.kick.restype = None
    lib.kick.argtypes = [ctypes.c_int64, _F64P, _F64P, ctypes.c_double]
    lib.kick_drift_wrap.restype = None
    lib.kick_drift_wrap.argtypes = [
        ctypes.c_int64, _F64P, _F64P, _F64P,
        ctypes.c_double, ctypes.c_double, ctypes.c_double,
    ]
    lib.drift_wrap.restype = None
    lib.drift_wrap.argtypes = [
        ctypes.c_int64, _F64P, _F64P, ctypes.c_double, ctypes.c_double,
    ]
    lib._update_declared = True


def get_lib() -> Optional[ctypes.CDLL]:
    """The verified update library, or ``None`` (checked per call)."""
    if not _build.stage_enabled("update"):
        return None
    lib = _build.load_library(_SRC)
    if lib is None:
        return None
    _declare(lib)
    key = id(lib)
    if key not in _verified:
        try:
            _verified[key] = _self_test(lib)
        except Exception:
            _verified[key] = False
    return lib if _verified[key] else None


def available() -> bool:
    """Whether the native update kernels can be used right now."""
    return get_lib() is not None


def _ok(*arrays) -> bool:
    return all(
        a.dtype == np.float64 and a.flags["C_CONTIGUOUS"] for a in arrays
    )


def kick(mom: np.ndarray, acc: np.ndarray, coeff: float) -> bool:
    """``mom += acc * coeff`` in place; False = caller falls back."""
    lib = get_lib()
    if lib is None or not _ok(mom, acc) or mom.shape != acc.shape:
        return False
    lib.kick(ctypes.c_int64(mom.size), _ptr(mom), _ptr(acc),
             ctypes.c_double(coeff))
    return True


def kick_drift_wrap(
    pos: np.ndarray,
    mom: np.ndarray,
    acc: np.ndarray,
    kick_coeff: float,
    drift_coeff: float,
    box: float,
) -> bool:
    """Fused ``mom += acc*kc; pos = wrap(pos + mom*dc)`` in place."""
    lib = get_lib()
    if (
        lib is None
        or not _ok(pos, mom, acc)
        or not (pos.shape == mom.shape == acc.shape)
    ):
        return False
    lib.kick_drift_wrap(
        ctypes.c_int64(pos.size), _ptr(pos), _ptr(mom), _ptr(acc),
        ctypes.c_double(kick_coeff), ctypes.c_double(drift_coeff),
        ctypes.c_double(box),
    )
    return True


def drift_wrap(
    pos: np.ndarray, mom: np.ndarray, drift_coeff: float, box: float
) -> bool:
    """``pos = wrap(pos + mom * drift_coeff)`` in place."""
    lib = get_lib()
    if lib is None or not _ok(pos, mom) or pos.shape != mom.shape:
        return False
    lib.drift_wrap(
        ctypes.c_int64(pos.size), _ptr(pos), _ptr(mom),
        ctypes.c_double(drift_coeff), ctypes.c_double(box),
    )
    return True


# -- self-test ----------------------------------------------------------------


def _self_test(lib) -> bool:
    """Bitwise comparison against the numpy update expressions."""
    from repro.utils.periodic import wrap_positions

    rng = np.random.default_rng(0xD1CE)
    for box in (1.0, 0.7, 62.5):
        pos = rng.random((257, 3)) * box
        # exercise the wrap: a band straddling each face, the exact
        # edge, and tiny negative excursions
        pos[0] = 0.0
        pos[1] = np.nextafter(box, 0.0)
        mom = 0.3 * box * rng.standard_normal((257, 3))
        acc = rng.standard_normal((257, 3))
        kc, dc = 0.37, 1.9

        ref_mom = mom + acc * kc
        ref_pos = wrap_positions(pos + ref_mom * dc, box)

        got_pos = pos.copy()
        got_mom = mom.copy()
        lib.kick_drift_wrap(
            ctypes.c_int64(got_pos.size), _ptr(got_pos), _ptr(got_mom),
            _ptr(acc), ctypes.c_double(kc), ctypes.c_double(dc),
            ctypes.c_double(box),
        )
        if not (
            np.array_equal(got_mom, ref_mom) and np.array_equal(got_pos, ref_pos)
        ):
            return False

        k_mom = mom.copy()
        lib.kick(ctypes.c_int64(k_mom.size), _ptr(k_mom), _ptr(acc),
                 ctypes.c_double(kc))
        if not np.array_equal(k_mom, ref_mom):
            return False

        d_pos = pos.copy()
        lib.drift_wrap(
            ctypes.c_int64(d_pos.size), _ptr(d_pos), _ptr(mom),
            ctypes.c_double(dc), ctypes.c_double(box),
        )
        if not np.array_equal(d_pos, wrap_positions(pos + mom * dc, box)):
            return False
    return True


__all__ = ["available", "drift_wrap", "get_lib", "kick", "kick_drift_wrap"]
