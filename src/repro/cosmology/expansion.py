"""FLRW expansion history.

Code units set ``H0 = 1`` (time unit = 1/H0); :class:`Expansion`
provides E(a), H(a) and the kick/drift time integrals the comoving
leapfrog integrator needs:

    drift(a1, a2) = int dt / a^2 = int da / (a^3 H),
    kick(a1, a2)  = int dt / a   = int da / (a^2 H).
"""

from __future__ import annotations

import numpy as np
from scipy.integrate import quad

from repro.cosmology.params import CosmologyParams

__all__ = ["Expansion"]


class Expansion:
    """Expansion kinematics for a parameter set (H0 = 1 units)."""

    def __init__(self, params: CosmologyParams) -> None:
        self.params = params

    def E(self, a) -> np.ndarray:
        """Dimensionless Hubble rate ``H(a) / H0``."""
        a = np.asarray(a, dtype=np.float64)
        p = self.params
        return np.sqrt(p.omega_m / a**3 + p.omega_k / a**2 + p.omega_l)

    def H(self, a) -> np.ndarray:
        """Hubble rate in code units (H0 = 1)."""
        return self.E(a)

    def dtda(self, a) -> np.ndarray:
        """dt/da = 1 / (a H)."""
        a = np.asarray(a, dtype=np.float64)
        return 1.0 / (a * self.E(a))

    def drift_factor(self, a1: float, a2: float) -> float:
        """``int_{a1}^{a2} da / (a^3 H)`` — multiplies momentum in a drift."""
        val, _ = quad(lambda a: 1.0 / (a**3 * float(self.E(a))), a1, a2)
        return val

    def kick_factor(self, a1: float, a2: float) -> float:
        """``int_{a1}^{a2} da / (a^2 H)`` — multiplies force in a kick."""
        val, _ = quad(lambda a: 1.0 / (a**2 * float(self.E(a))), a1, a2)
        return val

    def time_between(self, a1: float, a2: float) -> float:
        """Cosmic time elapsed between scale factors (code units)."""
        val, _ = quad(lambda a: float(self.dtda(a)), a1, a2)
        return val

    def comoving_distance(self, z: float) -> float:
        """Comoving distance to redshift z (units of c / H0)."""
        if z < 0:
            raise ValueError("z must be non-negative")
        val, _ = quad(lambda zz: 1.0 / float(self.E(1.0 / (1.0 + zz))), 0.0, z)
        return val

    def lookback_time(self, z: float) -> float:
        """Lookback time to redshift z (units of 1/H0)."""
        if z < 0:
            raise ValueError("z must be non-negative")
        return self.time_between(1.0 / (1.0 + z), 1.0)

    @staticmethod
    def a_of_z(z) -> np.ndarray:
        return 1.0 / (1.0 + np.asarray(z, dtype=np.float64))

    @staticmethod
    def z_of_a(a) -> np.ndarray:
        return 1.0 / np.asarray(a, dtype=np.float64) - 1.0
