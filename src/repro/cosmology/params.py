"""Cosmological parameter sets."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CosmologyParams", "WMAP7", "EINSTEIN_DE_SITTER"]


@dataclass(frozen=True)
class CosmologyParams:
    """Flat(-ish) FLRW background parameters.

    Attributes
    ----------
    omega_m:
        Total matter density parameter at z = 0.
    omega_l:
        Cosmological-constant density parameter at z = 0.
    omega_b:
        Baryon density (enters the transfer-function shape).
    h:
        Dimensionless Hubble parameter (H0 = 100 h km/s/Mpc).
    sigma8:
        Linear density fluctuation amplitude in 8 Mpc/h spheres.
    n_s:
        Primordial spectral index.
    """

    omega_m: float = 0.272
    omega_l: float = 0.728
    omega_b: float = 0.0455
    h: float = 0.704
    sigma8: float = 0.81
    n_s: float = 0.967

    def __post_init__(self) -> None:
        if self.omega_m <= 0:
            raise ValueError("omega_m must be positive")
        if self.omega_b < 0 or self.omega_b > self.omega_m:
            raise ValueError("need 0 <= omega_b <= omega_m")
        if self.h <= 0 or self.sigma8 <= 0:
            raise ValueError("h and sigma8 must be positive")

    @property
    def omega_k(self) -> float:
        """Curvature density parameter (0 for a flat universe)."""
        return 1.0 - self.omega_m - self.omega_l

    @property
    def gamma_shape(self) -> float:
        """Sugiyama (1995) shape parameter for the BBKS transfer
        function, including the baryon correction."""
        import math

        return (
            self.omega_m
            * self.h
            * math.exp(-self.omega_b * (1.0 + math.sqrt(2 * self.h) / self.omega_m))
        )


#: The concordance cosmology the paper adopts (Komatsu et al. 2011).
WMAP7 = CosmologyParams()

#: Matter-only universe: D(a) = a exactly; useful in tests.
EINSTEIN_DE_SITTER = CosmologyParams(
    omega_m=1.0, omega_l=0.0, omega_b=0.0, h=0.7, sigma8=0.8, n_s=1.0
)
