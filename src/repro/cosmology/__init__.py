"""Cosmology: expansion history, growth, linear power spectra.

Provides the background the paper's simulation needs: a WMAP7-like
concordance cosmology [38], the linear growth factor used by the
Zel'dovich initial conditions, and a CDM power spectrum with the sharp
free-streaming cutoff of a 100 GeV neutralino [37] that makes the
smallest dark-matter structures of Figure 6 resolvable.
"""

from repro.cosmology.params import CosmologyParams, WMAP7
from repro.cosmology.expansion import Expansion
from repro.cosmology.growth import GrowthFactor
from repro.cosmology.power_spectrum import (
    PowerSpectrum,
    bbks_transfer,
    free_streaming_cutoff,
)

__all__ = [
    "CosmologyParams",
    "WMAP7",
    "Expansion",
    "GrowthFactor",
    "PowerSpectrum",
    "bbks_transfer",
    "free_streaming_cutoff",
]
