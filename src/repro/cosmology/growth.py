"""Linear growth factor of matter perturbations.

Uses the standard integral solution (valid for Lambda-CDM, no
radiation):

    D(a) ~ H(a) * int_0^a da' / (a' H(a'))^3,

normalized so D(1) = 1, plus the logarithmic growth rate
``f = dlnD/dlna`` entering the Zel'dovich velocities.
"""

from __future__ import annotations

import numpy as np
from scipy.integrate import quad

from repro.cosmology.expansion import Expansion
from repro.cosmology.params import CosmologyParams

__all__ = ["GrowthFactor"]


class GrowthFactor:
    """Linear growth factor D(a), normalized to D(1) = 1."""

    def __init__(self, params: CosmologyParams) -> None:
        self.params = params
        self.expansion = Expansion(params)
        self._norm = 1.0
        self._norm = 1.0 / self._unnormalized(1.0)

    def _unnormalized(self, a: float) -> float:
        E = self.expansion.E
        integral, _ = quad(
            lambda x: x ** (-3.0) * float(E(x)) ** (-3.0), 1e-8, float(a)
        )
        return 2.5 * self.params.omega_m * float(E(a)) * integral

    def D(self, a) -> np.ndarray:
        """Growth factor at scale factor(s) ``a``."""
        a = np.atleast_1d(np.asarray(a, dtype=np.float64))
        out = np.array([self._unnormalized(x) * self._norm for x in a])
        return out if out.size > 1 else out[0]

    def f(self, a) -> np.ndarray:
        """Growth rate ``dlnD / dlna`` (numerical derivative)."""
        a = np.atleast_1d(np.asarray(a, dtype=np.float64))
        h = 1e-5
        lo = np.maximum(a * (1 - h), 1e-8)
        hi = a * (1 + h)
        out = np.atleast_1d(
            (np.log(self.D(hi)) - np.log(self.D(lo))) / (np.log(hi) - np.log(lo))
        )
        return out if out.size > 1 else float(out[0])

    def D_ratio(self, a_from: float, a_to: float) -> float:
        """Linear growth between two epochs: D(a_to) / D(a_from)."""
        return float(self.D(a_to)) / float(self.D(a_from))
