"""Linear matter power spectra.

The paper's initial condition is "the initial dark matter density
fluctuations with the power spectrum containing a sharp cutoff generated
by the free motion of dark matter particles (neutralino) with a mass of
100 GeV" [Green, Hofmann & Schwarz 2004].  We provide:

* the BBKS CDM transfer function with the Sugiyama shape parameter,
* the Green-Hofmann-Schwarz-style free-streaming cutoff
  ``T_fs(k) = (1 - 2/3 (k/k_fs)^2) exp(-(k/k_fs)^2)``,
* sigma8 normalization and growth scaling,

plus unit helpers to express the spectrum in simulation box units.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np
from scipy.integrate import quad

from repro.cosmology.growth import GrowthFactor
from repro.cosmology.params import CosmologyParams

__all__ = ["bbks_transfer", "free_streaming_cutoff", "PowerSpectrum"]


def bbks_transfer(k: np.ndarray, gamma: float) -> np.ndarray:
    """BBKS (1986) CDM transfer function.

    ``k`` in h/Mpc; ``gamma`` is the shape parameter (~ omega_m * h).
    """
    k = np.asarray(k, dtype=np.float64)
    q = np.where(k > 0, k / max(gamma, 1e-30), 1e-30)
    t = np.log(1.0 + 2.34 * q) / (2.34 * q)
    t *= (
        1.0
        + 3.89 * q
        + (16.1 * q) ** 2
        + (5.46 * q) ** 3
        + (6.71 * q) ** 4
    ) ** -0.25
    return np.where(k > 0, t, 1.0)


def free_streaming_cutoff(k: np.ndarray, k_fs: float) -> np.ndarray:
    """Neutralino free-streaming cutoff of the transfer function.

    Following the parametrization of Green, Hofmann & Schwarz (2004):
    damping ``(1 - 2/3 (k/k_fs)^2) exp(-(k/k_fs)^2)`` — a *sharp*
    small-scale cutoff (negative lobe clipped to an exponential tail so
    the power stays non-negative).
    """
    k = np.asarray(k, dtype=np.float64)
    x2 = (k / k_fs) ** 2
    t = (1.0 - (2.0 / 3.0) * x2) * np.exp(-x2)
    # beyond x^2 = 1.5 the prefactor goes negative; the physical
    # spectrum simply keeps damping
    return np.where(t > 0.0, t, np.exp(-x2) * 1e-8)


class PowerSpectrum:
    """Linear matter power spectrum P(k) with optional cutoff.

    Parameters
    ----------
    params:
        Cosmology; sets the transfer-function shape and sigma8.
    k_fs:
        Free-streaming cutoff wavenumber in h/Mpc (``None`` = pure CDM).
        The paper's 100 GeV neutralino corresponds to a comoving
        free-streaming scale of ~1 pc, i.e. ``k_fs ~ 1e6`` h/Mpc.
    transfer:
        Override transfer function ``T(k)``; default BBKS.

    ``P(k) = A k^n_s T(k)^2 T_fs(k)^2`` with A fixed by sigma8.
    """

    def __init__(
        self,
        params: CosmologyParams,
        k_fs: Optional[float] = None,
        transfer: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> None:
        self.params = params
        self.k_fs = k_fs
        if transfer is None:
            gamma = params.gamma_shape
            transfer = lambda k: bbks_transfer(k, gamma)
        self._transfer = transfer
        self.growth = GrowthFactor(params)
        self._amplitude = 1.0
        self._amplitude = (params.sigma8 / self.sigma_r(8.0)) ** 2

    def _shape(self, k: np.ndarray) -> np.ndarray:
        k = np.asarray(k, dtype=np.float64)
        p = k**self.params.n_s * self._transfer(k) ** 2
        if self.k_fs is not None:
            p = p * free_streaming_cutoff(k, self.k_fs) ** 2
        return p

    def __call__(self, k: np.ndarray, z: float = 0.0) -> np.ndarray:
        """P(k) at redshift z, in (Mpc/h)^3; k in h/Mpc."""
        d = self.growth.D(1.0 / (1.0 + z)) if z != 0.0 else 1.0
        return self._amplitude * self._shape(k) * d**2

    def dimensionless(self, k: np.ndarray, z: float = 0.0) -> np.ndarray:
        """``Delta^2(k) = k^3 P(k) / (2 pi^2)``."""
        k = np.asarray(k, dtype=np.float64)
        return k**3 * self(k, z) / (2.0 * np.pi**2)

    def sigma_r(self, r: float, z: float = 0.0) -> float:
        """RMS linear fluctuation in top-hat spheres of radius r Mpc/h."""

        def w(x):
            return 3.0 * (np.sin(x) - x * np.cos(x)) / x**3

        def integrand(lnk):
            k = np.exp(lnk)
            return self.dimensionless(k, z) * w(k * r) ** 2

        val, _ = quad(integrand, np.log(1e-5), np.log(1e3 / r), limit=200)
        return float(np.sqrt(val))

    def in_box_units(self, box_mpc_h: float) -> Callable[[np.ndarray], np.ndarray]:
        """P(k) as a function of k in box units (box length = 1).

        Wavenumbers convert as ``k_phys = k_box / L``; the power
        converts as ``P_box = P_phys / L^3`` so that the dimensionless
        variance is preserved.
        """
        if box_mpc_h <= 0:
            raise ValueError("box size must be positive")

        def p_box(k_box, z=0.0):
            k_phys = np.asarray(k_box, dtype=np.float64) / box_mpc_h
            return self(k_phys, z) / box_mpc_h**3

        return p_box
