"""Mass assignment and mesh interpolation kernels.

Implements the three classic Hockney & Eastwood assignment schemes:

* NGP (nearest grid point, order 1, 1 point),
* CIC (cloud in cell, order 2, 8 points),
* TSC (triangular shaped cloud, order 3, 27 points — used by GreeM:
  "a particle interacts with 27 grid points").

Assignment and interpolation use the *same* window so that the PM force
has no self-force on an isolated particle (to interpolation accuracy).
Grid points sit at ``i * h`` for ``i = 0 .. n-1`` with ``h = box / n``.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.native import meshops as _native_mesh

__all__ = [
    "assignment_order",
    "assign_mass",
    "assign_mass_local",
    "interpolate_mesh",
    "interpolate_local",
    "window_ft",
]

_ORDERS = {"ngp": 1, "cic": 2, "tsc": 3}


def assignment_order(scheme: str) -> int:
    """Order p of the scheme (the window is a p-fold top-hat convolution)."""
    try:
        return _ORDERS[scheme]
    except KeyError:
        raise ValueError(f"unknown assignment scheme {scheme!r}") from None


def _weights_1d(scheme: str, u: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-axis stencil indices and weights.

    Parameters
    ----------
    u:
        Particle coordinate in grid units (``x / h``), shape (N,).

    Returns
    -------
    idx:
        Integer grid indices, shape (N, S) where S is the stencil size.
    w:
        Corresponding weights, shape (N, S); each row sums to 1.
    """
    if scheme == "ngp":
        base = np.floor(u + 0.5).astype(np.int64)
        return base[:, None], np.ones((len(u), 1))
    if scheme == "cic":
        base = np.floor(u).astype(np.int64)
        f = u - base
        idx = np.stack([base, base + 1], axis=1)
        w = np.stack([1.0 - f, f], axis=1)
        return idx, w
    if scheme == "tsc":
        base = np.floor(u + 0.5).astype(np.int64)  # nearest grid point
        d = u - base  # in [-0.5, 0.5)
        idx = np.stack([base - 1, base, base + 1], axis=1)
        w = np.stack(
            [
                0.5 * (0.5 - d) ** 2,
                0.75 - d * d,
                0.5 * (0.5 + d) ** 2,
            ],
            axis=1,
        )
        return idx, w
    raise ValueError(f"unknown assignment scheme {scheme!r}")


def _scatter_numpy(out, ix, iy, iz, wx, wy, wz, mass) -> None:
    """Reference deposit loops (also the native kernel's self-test
    oracle): ``np.add.at`` accumulates strictly sequentially, one
    stencil offset at a time."""
    s = ix.shape[1]
    for a in range(s):
        for b in range(s):
            wab = wx[:, a] * wy[:, b]
            ia = ix[:, a]
            ib = iy[:, b]
            for c in range(s):
                np.add.at(out, (ia, ib, iz[:, c]), mass * wab * wz[:, c])


def _gather_numpy(mesh, ix, iy, iz, wx, wy, wz) -> np.ndarray:
    """Reference interpolation loops (native self-test oracle)."""
    s = ix.shape[1]
    out = np.zeros((len(ix),) + mesh.shape[3:])
    for a in range(s):
        for b in range(s):
            wab = wx[:, a] * wy[:, b]
            ia = ix[:, a]
            ib = iy[:, b]
            for c in range(s):
                w = wab * wz[:, c]
                vals = mesh[ia, ib, iz[:, c]]
                if vals.ndim > 1:
                    out += w[:, None] * vals
                else:
                    out += w * vals
    return out


def _scatter(out, ix, iy, iz, wx, wy, wz, mass) -> None:
    """Deposit through the native kernel when available, else numpy."""
    if _native_mesh.scatter(out, ix, iy, iz, wx, wy, wz, mass):
        return
    _scatter_numpy(out, ix, iy, iz, wx, wy, wz, mass)


def _gather(mesh, ix, iy, iz, wx, wy, wz) -> np.ndarray:
    """Interpolate through the native kernel when available, else numpy."""
    out = _native_mesh.gather(mesh, ix, iy, iz, wx, wy, wz)
    if out is not None:
        return out
    return _gather_numpy(mesh, ix, iy, iz, wx, wy, wz)


def _reimage_local(li, axis_len, n) -> np.ndarray:
    """Fold stencil indices that fell off the local mesh by a full
    period back inside.

    A particle sitting exactly at the box edge (or pushed there by the
    float rounding of ``x / h``, so that ``u == n``) lands its stencil
    one period off the provisioned ghost layers.  Shifting such an
    index by ``±n`` targets the same global cell — local cell ``i``
    means global cell ``(lo - ghost + i) mod n`` — so the fold is
    exact; anything still outside after one period is a genuine domain
    violation and raises as before.
    """
    low = li < 0
    high = li >= axis_len
    if low.any() or high.any():
        li = np.where(low & (li + n < axis_len), li + n, li)
        li = np.where(high & (li - n >= 0), li - n, li)
    return li


def assign_mass(
    pos: np.ndarray,
    mass: np.ndarray,
    n: int,
    box: float = 1.0,
    scheme: str = "tsc",
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Assign particle masses to a periodic ``(n, n, n)`` mesh.

    Returns the *mass* mesh (sum of assigned masses per cell); divide by
    the cell volume ``(box/n)**3`` for density.
    """
    pos = np.asarray(pos, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    if pos.ndim != 2 or pos.shape[1] != 3:
        raise ValueError("pos must be (N, 3)")
    if out is None:
        out = np.zeros((n, n, n))
    elif out.shape != (n, n, n):
        raise ValueError("out has wrong shape")

    h = box / n
    u = pos / h
    ix, wx = _weights_1d(scheme, u[:, 0])
    iy, wy = _weights_1d(scheme, u[:, 1])
    iz, wz = _weights_1d(scheme, u[:, 2])
    ix %= n
    iy %= n
    iz %= n
    _scatter(out, ix, iy, iz, wx, wy, wz, mass)
    return out


def interpolate_mesh(
    mesh: np.ndarray,
    pos: np.ndarray,
    box: float = 1.0,
    scheme: str = "tsc",
) -> np.ndarray:
    """Interpolate a periodic mesh field at particle positions.

    ``mesh`` may have trailing component axes, e.g. ``(n, n, n)`` for a
    scalar field or ``(n, n, n, 3)`` for a force mesh; the result has
    shape ``(N,) + mesh.shape[3:]``.
    """
    pos = np.asarray(pos, dtype=np.float64)
    n = mesh.shape[0]
    if mesh.shape[:3] != (n, n, n):
        raise ValueError("mesh must be (n, n, n, ...)")
    h = box / n
    u = pos / h
    ix, wx = _weights_1d(scheme, u[:, 0])
    iy, wy = _weights_1d(scheme, u[:, 1])
    iz, wz = _weights_1d(scheme, u[:, 2])
    ix %= n
    iy %= n
    iz %= n
    return _gather(mesh, ix, iy, iz, wx, wy, wz)


def assign_mass_local(
    pos: np.ndarray,
    mass: np.ndarray,
    region,
    box: float = 1.0,
    scheme: str = "tsc",
) -> np.ndarray:
    """Assign masses onto a process-local (ghosted, unwrapped) mesh.

    ``region`` is a :class:`repro.meshcomm.slab.LocalMeshRegion`; all
    particles must lie inside the region's interior cells (their
    assignment stencil then fits within the ghost layers).  No periodic
    wrapping happens here — ghost contributions are folded in by the
    mesh conversion step.
    """
    pos = np.asarray(pos, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    out = region.allocate()
    if len(pos) == 0:
        return out
    h = box / region.n
    u = pos / h
    origin = np.asarray(region.lo) - region.ghost
    idx_w = [_weights_1d(scheme, u[:, d]) for d in range(3)]
    locals_ = []
    for d, (idx, _) in enumerate(idx_w):
        li = _reimage_local(idx - origin[d], out.shape[d], region.n)
        if li.min() < 0 or li.max() >= out.shape[d]:
            raise ValueError(
                f"particle assignment stencil leaves the local mesh along "
                f"dim {d}; increase ghosts or fix the domain"
            )
        locals_.append(li)
    (_, wx), (_, wy), (_, wz) = idx_w
    lx, ly, lz = locals_
    _scatter(out, lx, ly, lz, wx, wy, wz, mass)
    return out


def interpolate_local(
    mesh: np.ndarray,
    pos: np.ndarray,
    region,
    box: float = 1.0,
    scheme: str = "tsc",
    trim: int = 0,
) -> np.ndarray:
    """Interpolate a process-local mesh field at local particle positions.

    ``mesh`` has the region's array shape minus ``trim`` cells on every
    face (e.g. a force mesh computed from a ghosted potential).
    """
    pos = np.asarray(pos, dtype=np.float64)
    out_shape = (len(pos),) + mesh.shape[3:]
    out = np.zeros(out_shape)
    if len(pos) == 0:
        return out
    h = box / region.n
    u = pos / h
    origin = np.asarray(region.lo) - region.ghost + trim
    idx_w = [_weights_1d(scheme, u[:, d]) for d in range(3)]
    locals_ = []
    for d, (idx, _) in enumerate(idx_w):
        li = _reimage_local(idx - origin[d], mesh.shape[d], region.n)
        if li.min() < 0 or li.max() >= mesh.shape[d]:
            raise ValueError(
                f"interpolation stencil leaves the local mesh along dim {d}"
            )
        locals_.append(li)
    (_, wx), (_, wy), (_, wz) = idx_w
    lx, ly, lz = locals_
    return _gather(mesh, lx, ly, lz, wx, wy, wz)


def window_ft(scheme: str, k: np.ndarray, h: float) -> np.ndarray:
    """Fourier transform of the 1-D assignment window.

    ``W(k) = sinc(k h / 2) ** p`` with ``p`` the assignment order; used
    for the deconvolution correction in the PM Green's function.
    """
    p = assignment_order(scheme)
    arg = np.asarray(k) * h / 2.0
    # np.sinc(x) = sin(pi x)/(pi x)
    return np.sinc(arg / np.pi) ** p
