"""k-space Green's functions for the PM Poisson solver.

The potential of the long-range force component is, in Fourier space,

    phi(k) = -4 pi G / k^2 * S_split(k) * rho(k) / W(k)^2

where ``S_split`` is the force split's k-space factor (``S2(k rcut)^2``
for the paper's split, 1 for a plain PM solver) and ``W`` the assignment
window whose square deconvolves the smoothing applied once by mass
assignment and once by force interpolation.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.mesh.assignment import window_ft

__all__ = ["kvectors", "build_greens_function", "build_optimal_greens_function"]


def kvectors(n: int, box: float = 1.0, rfft: bool = True):
    """Angular wavenumbers of a cubic FFT mesh.

    Returns ``(kx, ky, kz)`` broadcastable to the (r)FFT mesh shape,
    each in physical units (``2 pi m / box``).
    """
    # fftfreq(n, d) returns cycles per unit length; multiply by 2 pi:
    k1 = 2.0 * np.pi * np.fft.fftfreq(n, d=box / n)
    if rfft:
        kz = 2.0 * np.pi * np.fft.rfftfreq(n, d=box / n)
    else:
        kz = k1
    return (
        k1[:, None, None],
        k1[None, :, None],
        kz[None, None, :],
    )


def build_greens_function(
    n: int,
    box: float = 1.0,
    split=None,
    G: float = 1.0,
    assignment: Optional[str] = "tsc",
    deconvolve: int = 2,
    rfft: bool = True,
) -> np.ndarray:
    """Precompute the Green's function mesh ``G(k)``.

    Multiplying the FFT of the mass-density mesh by this array yields
    the FFT of the long-range potential.  The DC (k = 0) mode is zero,
    which implements the neutralizing uniform background of periodic
    gravity.

    Parameters
    ----------
    split:
        Force split providing ``long_range_kspace_factor``; ``None``
        solves for the full ``1/r^2`` gravity (plain PM).
    assignment:
        Scheme whose window is deconvolved (``None`` disables).
    deconvolve:
        Power of the window divided out: 2 compensates assignment and
        interpolation (correct for TreePM, where the split factor
        suppresses the Nyquist modes that the division amplifies); 1 is
        the safe choice for a pure-PM solver (dividing twice without a
        k-space cutoff amplifies mesh-scale aliasing into visible
        ringing); 0 disables deconvolution.
    """
    kx, ky, kz = kvectors(n, box, rfft=rfft)
    k2 = kx**2 + ky**2 + kz**2
    with np.errstate(divide="ignore", invalid="ignore"):
        gk = -4.0 * np.pi * G / k2
    gk[0, 0, 0] = 0.0

    if split is not None:
        kmag = np.sqrt(k2)
        gk = gk * split.long_range_kspace_factor(kmag)

    if deconvolve not in (0, 1, 2):
        raise ValueError("deconvolve must be 0, 1 or 2")
    if deconvolve and assignment is not None:
        h = box / n
        w = (
            window_ft(assignment, kx, h)
            * window_ft(assignment, ky, h)
            * window_ft(assignment, kz, h)
        )
        # the window never vanishes on the grid (|k h / 2| <= pi/2 < pi)
        gk = gk / w**deconvolve
    return gk


def _differencing_transfer(k1: np.ndarray, h: float, scheme: str) -> np.ndarray:
    """Effective wavenumber d(k) of the real-space gradient stencil
    (the force transfer is ``i d(k)``)."""
    if scheme == "two_point":
        return np.sin(k1 * h) / h
    if scheme == "four_point":
        return (8.0 * np.sin(k1 * h) - np.sin(2.0 * k1 * h)) / (6.0 * h)
    if scheme == "spectral":
        return k1
    raise ValueError(f"unknown differencing scheme {scheme!r}")


def build_optimal_greens_function(
    n: int,
    box: float = 1.0,
    split=None,
    G: float = 1.0,
    assignment: str = "tsc",
    differencing: str = "four_point",
    alias_range: int = 1,
) -> np.ndarray:
    """Hockney & Eastwood's optimal influence function.

    Minimizes the mean-square force error of the full mesh pipeline —
    assignment window, alias images, gradient stencil, interpolation —
    jointly, instead of naively deconvolving the window:

        G_opt(k) = -4 pi G *
            sum_m  W^2(k_m) (d(k).k_m) S^2(k_m) / k_m^2
            -----------------------------------------------
            |d(k)|^2 * ( sum_m W^2(k_m) )^2

    where ``k_m = k + 2 pi m n / box`` are the alias images
    (``|m|_inf <= alias_range``), W the assignment window, S the force
    split's k-space factor and ``i d(k)`` the transfer of the chosen
    differencing scheme.  In the alias-free, exact-derivative limit it
    reduces to the standard deconvolved Green's function.

    Use with :class:`repro.mesh.poisson.PMSolver` via
    ``greens_mode="optimal"``; the raw (non-deconvolved) density is the
    matching input.
    """
    if alias_range < 0:
        raise ValueError("alias_range must be >= 0")
    kx, ky, kz = kvectors(n, box, rfft=True)
    h = box / n
    dx = _differencing_transfer(kx, h, differencing)
    dy = _differencing_transfer(ky, h, differencing)
    dz = _differencing_transfer(kz, h, differencing)
    d2 = dx**2 + dy**2 + dz**2

    two_pi_n = 2.0 * np.pi * n / box
    numer = np.zeros(kx.shape[0:1] + ky.shape[1:2] + kz.shape[2:3])
    wsum = np.zeros_like(numer)
    shifts = range(-alias_range, alias_range + 1)
    for mx in shifts:
        kxm = kx + two_pi_n * mx
        wx2 = window_ft(assignment, kxm, h) ** 2
        for my in shifts:
            kym = ky + two_pi_n * my
            wy2 = window_ft(assignment, kym, h) ** 2
            for mz in shifts:
                kzm = kz + two_pi_n * mz
                wz2 = window_ft(assignment, kzm, h) ** 2
                w2 = wx2 * wy2 * wz2
                km2 = kxm**2 + kym**2 + kzm**2
                with np.errstate(divide="ignore", invalid="ignore"):
                    s2 = (
                        split.long_range_kspace_factor(np.sqrt(km2))
                        if split is not None
                        else 1.0
                    )
                    term = w2 * (dx * kxm + dy * kym + dz * kzm) * s2 / km2
                term = np.where(km2 > 0.0, term, 0.0)
                numer += term
                wsum += w2

    with np.errstate(divide="ignore", invalid="ignore"):
        gk = -4.0 * np.pi * G * numer / (d2 * wsum**2)
    gk[~np.isfinite(gk)] = 0.0
    gk[0, 0, 0] = 0.0
    return gk
