"""Finite-difference gradients on periodic meshes.

The paper obtains mesh forces "by the four point finite difference
algorithm from the potential"; the two-point scheme and an exact
spectral derivative are provided for comparison/ablation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gradient_mesh", "gradient_block"]


def _axis_diff_two_point(phi: np.ndarray, axis: int, h: float) -> np.ndarray:
    return (np.roll(phi, -1, axis=axis) - np.roll(phi, 1, axis=axis)) / (2.0 * h)


def _axis_diff_four_point(phi: np.ndarray, axis: int, h: float) -> np.ndarray:
    p1 = np.roll(phi, -1, axis=axis)
    m1 = np.roll(phi, 1, axis=axis)
    p2 = np.roll(phi, -2, axis=axis)
    m2 = np.roll(phi, 2, axis=axis)
    return (8.0 * (p1 - m1) - (p2 - m2)) / (12.0 * h)


def gradient_mesh(
    phi: np.ndarray, box: float = 1.0, scheme: str = "four_point"
) -> np.ndarray:
    """Gradient of a periodic scalar mesh.

    Parameters
    ----------
    phi:
        ``(n, n, n)`` potential mesh.
    scheme:
        ``"two_point"``, ``"four_point"`` (the paper) or ``"spectral"``.

    Returns
    -------
    ``(n, n, n, 3)`` gradient mesh.  The *force* mesh is ``-gradient``.
    """
    n = phi.shape[0]
    if phi.shape != (n, n, n):
        raise ValueError("phi must be a cubic mesh")
    h = box / n
    if scheme == "two_point":
        diff = _axis_diff_two_point
    elif scheme == "four_point":
        diff = _axis_diff_four_point
    elif scheme == "spectral":
        return _spectral_gradient(phi, box)
    else:
        raise ValueError(f"unknown differencing scheme {scheme!r}")
    return np.stack([diff(phi, ax, h) for ax in range(3)], axis=-1)


def gradient_block(
    phi: np.ndarray, h: float, scheme: str = "four_point", trim: int = 2
) -> np.ndarray:
    """Gradient of a non-periodic (ghosted) block by slicing.

    The result covers the input minus ``trim`` cells on every face
    (``trim`` must be >= the stencil half-width: 1 for two-point, 2 for
    four-point).  Used on process-local ghosted potential meshes, where
    periodic wrapping is already encoded in the ghost layers.
    """
    need = {"two_point": 1, "four_point": 2}
    if scheme not in need:
        raise ValueError(f"unknown differencing scheme {scheme!r}")
    if trim < need[scheme]:
        raise ValueError(f"trim must be >= {need[scheme]} for {scheme}")
    t = trim
    core = tuple(slice(t, s - t) for s in phi.shape)
    out = np.empty(tuple(s - 2 * t for s in phi.shape) + (3,))
    for ax in range(3):
        def sl(off):
            idx = list(core)
            idx[ax] = slice(t + off, phi.shape[ax] - t + off)
            return phi[tuple(idx)]

        if scheme == "two_point":
            out[..., ax] = (sl(1) - sl(-1)) / (2.0 * h)
        else:
            out[..., ax] = (8.0 * (sl(1) - sl(-1)) - (sl(2) - sl(-2))) / (12.0 * h)
    return out


def _spectral_gradient(phi: np.ndarray, box: float) -> np.ndarray:
    n = phi.shape[0]
    k1 = 2.0 * np.pi * np.fft.fftfreq(n, d=box / n)
    kz = 2.0 * np.pi * np.fft.rfftfreq(n, d=box / n)
    ft = np.fft.rfftn(phi)
    out = np.empty(phi.shape + (3,))
    for ax, k in enumerate(
        (k1[:, None, None], k1[None, :, None], kz[None, None, :])
    ):
        out[..., ax] = np.fft.irfftn(1j * k * ft, s=phi.shape, axes=(0, 1, 2))
    return out
