"""The serial PM solver: particles -> long-range forces.

This is the single-process reference implementation of the PM cycle the
paper describes (density assignment, FFT Poisson solve, finite-difference
acceleration mesh, force interpolation).  The distributed version in
:mod:`repro.meshcomm` reproduces these steps with slab-decomposed FFTs
and the relay mesh communication; both must agree bitwise on the same
density mesh, which the integration tests check.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.mesh.assignment import assign_mass, interpolate_mesh
from repro.mesh.differentiate import gradient_mesh
from repro.mesh.greens import build_greens_function

__all__ = ["PMSolver"]


class PMSolver:
    """FFT particle-mesh solver on an ``(n, n, n)`` periodic grid.

    Parameters
    ----------
    n:
        Mesh points per dimension.
    box:
        Periodic box size.
    split:
        Force split whose ``long_range_kspace_factor`` shapes the
        Green's function; ``None`` solves full gravity (pure PM code).
    G:
        Gravitational constant.
    assignment:
        ``"ngp" | "cic" | "tsc"``.
    deconvolve:
        Window-deconvolution power (0, 1 or 2); ``None`` selects 2 when
        a split is present (TreePM: the split factor suppresses the
        amplified Nyquist modes) and 1 for a pure-PM solver (dividing
        twice without a k-space cutoff produces mesh-scale ringing).
    differencing:
        Mesh gradient scheme (``"four_point"`` in the paper).
    interlace:
        Assign the density twice, the second pass with particles
        shifted by half a cell diagonal, and average in k space with
        the compensating phase.  Cancels the odd alias images of the
        assignment window — a standard refinement over the paper's
        plain TSC that roughly halves the PM force error.
    greens_mode:
        ``"standard"`` (deconvolved -4 pi G S^2 / k^2, the paper) or
        ``"optimal"`` (the Hockney-Eastwood influence function
        minimizing the mean-square force error of the whole pipeline;
        ``deconvolve`` is then ignored — the windows are folded in).
    """

    def __init__(
        self,
        n: int,
        box: float = 1.0,
        split=None,
        G: float = 1.0,
        assignment: str = "tsc",
        deconvolve: int | None = None,
        differencing: str = "four_point",
        interlace: bool = False,
        greens_mode: str = "standard",
    ) -> None:
        if n < 4:
            raise ValueError("mesh size must be >= 4")
        if deconvolve is None:
            deconvolve = 2 if split is not None else 1
        self.n = int(n)
        self.box = float(box)
        self.split = split
        self.G = float(G)
        self.assignment = assignment
        self.deconvolve = int(deconvolve)
        self.differencing = differencing
        self.interlace = bool(interlace)
        if greens_mode == "standard":
            self.greens = build_greens_function(
                n, box, split=split, G=G, assignment=assignment,
                deconvolve=deconvolve,
            )
        elif greens_mode == "optimal":
            from repro.mesh.greens import build_optimal_greens_function

            self.greens = build_optimal_greens_function(
                n, box, split=split, G=G, assignment=assignment,
                differencing=differencing,
            )
        else:
            raise ValueError("greens_mode must be 'standard' or 'optimal'")
        self.greens_mode = greens_mode
        if self.interlace:
            from repro.mesh.greens import kvectors

            kx, ky, kz = kvectors(n, box)
            half = 0.5 * box / n
            self._interlace_phase = np.exp(1j * (kx + ky + kz) * half)
        else:
            self._interlace_phase = None

    # -- pipeline stages ----------------------------------------------------

    def density_mesh(self, pos: np.ndarray, mass: np.ndarray) -> np.ndarray:
        """Mass density on the mesh (mass per volume)."""
        cell_vol = (self.box / self.n) ** 3
        return assign_mass(
            pos, mass, self.n, self.box, scheme=self.assignment
        ) / cell_vol

    def density_k(self, pos: np.ndarray, mass: np.ndarray) -> np.ndarray:
        """k-space mass density, interlaced when enabled."""
        rho_k = np.fft.rfftn(self.density_mesh(pos, mass))
        if not self.interlace:
            return rho_k
        half = 0.5 * self.box / self.n
        from repro.utils.periodic import wrap_positions

        shifted = wrap_positions(np.asarray(pos) + half, self.box)
        rho2_k = np.fft.rfftn(self.density_mesh(shifted, mass))
        # the shifted mesh's odd alias images carry the opposite sign
        # after the phase correction: averaging cancels them
        return 0.5 * (rho_k + rho2_k * self._interlace_phase)

    def potential_mesh(self, rho: np.ndarray) -> np.ndarray:
        """Solve the Poisson equation for the long-range potential.

        The k = 0 mode of the Green's function is zero, so the mean
        density (the neutralizing background) drops out automatically.
        """
        rho_k = np.fft.rfftn(rho)
        phi_k = rho_k * self.greens
        return np.fft.irfftn(phi_k, s=rho.shape, axes=(0, 1, 2))

    def potential_mesh_from_k(self, rho_k: np.ndarray) -> np.ndarray:
        """Potential from an already-transformed (e.g. interlaced)
        density."""
        phi_k = rho_k * self.greens
        n = self.n
        return np.fft.irfftn(phi_k, s=(n, n, n), axes=(0, 1, 2))

    def acceleration_mesh(self, phi: np.ndarray) -> np.ndarray:
        """Acceleration mesh ``-grad phi``, shape (n, n, n, 3)."""
        return -gradient_mesh(phi, self.box, scheme=self.differencing)

    def interpolate(self, mesh: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Interpolate a mesh field at target positions."""
        return interpolate_mesh(mesh, targets, self.box, scheme=self.assignment)

    # -- high-level API ------------------------------------------------------

    def forces(
        self,
        pos: np.ndarray,
        mass: np.ndarray,
        targets: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Long-range accelerations at ``targets`` (default: at ``pos``)."""
        if self.interlace:
            phi = self.potential_mesh_from_k(self.density_k(pos, mass))
        else:
            phi = self.potential_mesh(self.density_mesh(pos, mass))
        acc = self.acceleration_mesh(phi)
        tgt = pos if targets is None else np.asarray(targets, dtype=np.float64)
        return self.interpolate(acc, tgt)

    def potential_at(
        self,
        pos: np.ndarray,
        mass: np.ndarray,
        targets: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Long-range potential at ``targets`` (default: at ``pos``)."""
        rho = self.density_mesh(pos, mass)
        phi = self.potential_mesh(rho)
        tgt = pos if targets is None else np.asarray(targets, dtype=np.float64)
        return self.interpolate(phi, tgt)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PMSolver(n={self.n}, box={self.box}, split={self.split!r}, "
            f"assignment={self.assignment!r})"
        )
