"""Particle-mesh (long-range) force machinery.

The PM part of the TreePM method: mass assignment onto a regular
periodic grid (NGP/CIC/TSC; the paper uses TSC, a 27-point kernel),
an FFT Poisson solver whose Green's function carries the force-split
shape factor, finite-difference force meshes (the paper's four-point
scheme) and interpolation of mesh forces back to particle positions.
"""

from repro.mesh.assignment import (
    assign_mass,
    assignment_order,
    interpolate_mesh,
    window_ft,
)
from repro.mesh.greens import (
    build_greens_function,
    build_optimal_greens_function,
    kvectors,
)
from repro.mesh.poisson import PMSolver
from repro.mesh.differentiate import gradient_block, gradient_mesh

__all__ = [
    "assign_mass",
    "assignment_order",
    "interpolate_mesh",
    "window_ft",
    "build_greens_function",
    "build_optimal_greens_function",
    "kvectors",
    "PMSolver",
    "gradient_mesh",
    "gradient_block",
]
