"""The sampling method with cost-proportional rates (paper section II).

Each step: every process draws a random sample of its particles, sized
proportionally to its measured force-calculation time; the root gathers
all samples, places multisection boundaries so every domain holds the
same number of samples, and broadcasts the new geometry.  A process
that was slower than average thus contributes more samples and receives
a smaller domain — its next step gets cheaper, which is the paper's
load-balancing feedback loop.

Boundary jitter from the random sampling is damped with a linear
weighted moving average over the last ``window`` (five in the paper)
boundary sets.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.decomp.multisection import MultisectionDecomposition

__all__ = ["BoundaryHistory", "SamplingDecomposer"]


class BoundaryHistory:
    """Linear weighted moving average of flattened boundary vectors.

    The most recent set gets weight ``window``, the oldest retained set
    weight 1 (the "linear weighted moving average technique for
    boundaries of last five steps").
    """

    def __init__(self, window: int = 5) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = int(window)
        self._history: list[np.ndarray] = []

    def push(self, boundaries: np.ndarray) -> np.ndarray:
        """Add a new boundary vector; returns the smoothed vector."""
        self._history.append(np.asarray(boundaries, dtype=np.float64).copy())
        if len(self._history) > self.window:
            self._history.pop(0)
        k = len(self._history)
        weights = np.arange(1, k + 1, dtype=np.float64)
        stacked = np.stack(self._history)
        return (weights[:, None] * stacked).sum(axis=0) / weights.sum()

    def __len__(self) -> int:
        return len(self._history)


class SamplingDecomposer:
    """Per-rank driver of the sampling method (SPMD object).

    Parameters
    ----------
    divisions:
        Multisection divisions; their product must equal the
        communicator size when :meth:`update` is called.
    sample_rate:
        Baseline fraction of all particles sampled per step.
    window:
        Boundary moving-average window (5 in the paper).
    cost_balance:
        Scale per-rank sampling rates with measured cost (the paper's
        scheme); if false, rates are uniform (particle-count balance).
    seed:
        Base RNG seed; the per-step, per-rank stream is derived from it
        deterministically.
    """

    def __init__(
        self,
        divisions: Tuple[int, int, int],
        sample_rate: float = 0.05,
        window: int = 5,
        cost_balance: bool = True,
        box: float = 1.0,
        seed: int = 0,
    ) -> None:
        if not 0 < sample_rate <= 1:
            raise ValueError("sample_rate must be in (0, 1]")
        self.divisions = tuple(int(d) for d in divisions)
        self.sample_rate = float(sample_rate)
        self.window = int(window)
        self.cost_balance = bool(cost_balance)
        self.box = float(box)
        self.seed = int(seed)
        self._step = 0
        self._history = BoundaryHistory(window)

    def update(
        self,
        comm,
        pos_local: np.ndarray,
        cost_seconds: float = 1.0,
    ) -> MultisectionDecomposition:
        """One decomposition update (collective over ``comm``).

        ``pos_local``: particles currently owned by this rank;
        ``cost_seconds``: this rank's measured force-calculation time
        for the last step.  Returns the new (smoothed) decomposition,
        identical on every rank.
        """
        dx, dy, dz = self.divisions
        if dx * dy * dz != comm.size:
            raise ValueError(
                f"divisions {self.divisions} do not match {comm.size} ranks"
            )
        pos_local = np.asarray(pos_local, dtype=np.float64)

        n_local = len(pos_local)
        counts = comm.allgather(n_local)
        costs = comm.allgather(float(cost_seconds))
        n_total = sum(counts)
        total_cost = sum(costs)
        target_samples = max(comm.size, int(round(self.sample_rate * n_total)))
        if self.cost_balance and total_cost > 0:
            # the paper's scheme: sample share ~ measured force time
            share = costs[comm.rank] / total_cost
        else:
            # uniform sampling rate: share ~ particle count
            share = n_local / max(n_total, 1)
        n_samp = min(n_local, max(1 if n_local else 0, int(round(target_samples * share))))

        rng = np.random.default_rng(
            (self.seed * 1_000_003 + self._step) * 131_071 + comm.rank
        )
        if n_samp and n_local:
            pick = rng.choice(n_local, size=n_samp, replace=False)
            my_samples = pos_local[pick]
        else:
            my_samples = np.zeros((0, 3))

        gathered = comm.gather(my_samples, root=0)
        if comm.rank == 0:
            samples = np.vstack(gathered)
            decomp = MultisectionDecomposition.from_samples(
                samples, self.divisions, self.box
            )
            flat = decomp.flatten()
        else:
            flat = None
        flat = comm.bcast(flat, root=0)
        smoothed = self._history.push(flat)
        self._step += 1
        return MultisectionDecomposition.unflatten(smoothed, self.divisions, self.box)
