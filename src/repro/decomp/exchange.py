"""Particle exchange after a decomposition update.

Each rank sends the particles that now fall outside its domain to their
new owners with one ``alltoallv`` — the paper's "particle exchange" row
of Table I.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.decomp.multisection import MultisectionDecomposition

__all__ = ["exchange_particles"]


def exchange_particles(
    comm,
    decomp: MultisectionDecomposition,
    arrays: Dict[str, np.ndarray],
) -> Dict[str, np.ndarray]:
    """Redistribute particles to their owning ranks.

    Parameters
    ----------
    arrays:
        Per-particle arrays sharing the first dimension; must contain
        ``"pos"`` with shape ``(N, 3)`` (used to determine ownership).

    Returns the same keys with this rank's new particle population
    (own particles kept, immigrants appended).
    """
    if "pos" not in arrays:
        raise ValueError('arrays must contain "pos"')
    pos = np.asarray(arrays["pos"])
    n = len(pos)
    for key, arr in arrays.items():
        if len(arr) != n:
            raise ValueError(f"array {key!r} length mismatch")
    if decomp.n_domains != comm.size:
        raise ValueError("decomposition size does not match communicator")

    owners = decomp.owner_of(pos) if n else np.zeros(0, dtype=np.int64)
    keys = sorted(arrays)
    sends = []
    for dst in range(comm.size):
        sel = owners == dst
        sends.append({k: np.asarray(arrays[k])[sel] for k in keys})
    received = comm.alltoall(sends)
    return {
        k: np.concatenate([msg[k] for msg in received], axis=0) for k in keys
    }
