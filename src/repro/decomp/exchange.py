"""Particle exchange after a decomposition update.

Each rank sends the particles that now fall outside its domain to their
new owners with one ``alltoallv`` — the paper's "particle exchange" row
of Table I.

The exchange is guarded by an always-on conservation check: the
per-destination send counts are allgathered (one small integer matrix
row per rank) and compared against what actually arrived, so a message
lost or truncated in flight raises a structured
:class:`repro.validate.errors.InvariantViolation` naming the sender and
receiver ranks instead of silently evaporating particles.  Array dtypes
and row counts of every received payload are checked the same way.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.decomp.multisection import MultisectionDecomposition
from repro.validate.errors import InvariantViolation

__all__ = ["exchange_particles"]


def exchange_particles(
    comm,
    decomp: MultisectionDecomposition,
    arrays: Dict[str, np.ndarray],
    step: int = None,
) -> Dict[str, np.ndarray]:
    """Redistribute particles to their owning ranks.

    Parameters
    ----------
    arrays:
        Per-particle arrays sharing the first dimension; must contain
        ``"pos"`` with shape ``(N, 3)`` (used to determine ownership).
    step:
        Optional step index recorded on conservation-failure errors.

    Returns the same keys with this rank's new particle population
    (own particles kept, immigrants appended).  Raises
    :class:`repro.validate.errors.InvariantViolation` when the global
    particle count is not conserved or a received payload disagrees in
    dtype/shape with what its sender dispatched.
    """
    if "pos" not in arrays:
        raise ValueError('arrays must contain "pos"')
    pos = np.asarray(arrays["pos"])
    n = len(pos)
    for key, arr in arrays.items():
        if len(arr) != n:
            raise ValueError(f"array {key!r} length mismatch")
    if decomp.n_domains != comm.size:
        raise ValueError("decomposition size does not match communicator")

    owners = decomp.owner_of(pos) if n else np.zeros(0, dtype=np.int64)
    keys = sorted(arrays)
    sends = []
    send_counts = np.zeros(comm.size, dtype=np.int64)
    for dst in range(comm.size):
        sel = owners == dst
        send_counts[dst] = int(sel.sum())
        sends.append({k: np.asarray(arrays[k])[sel] for k in keys})
    # reliable: absorbs injected transient drops/delays by per-pair
    # retransmission (bounded by the runtime's per-step retry budget)
    received = comm.alltoall(sends, reliable=True)

    # -- conservation guard: what was sent is exactly what arrived ----------
    # The allgathered count matrix is tiny (size^2 int64) next to the
    # particle payload, so this stays on even with validation off.
    count_matrix = np.asarray(comm.allgather(send_counts), dtype=np.int64)
    rank = comm.rank
    dtypes = {k: np.asarray(arrays[k]).dtype for k in keys}
    for src, msg in enumerate(received):
        if sorted(msg) != keys:
            raise InvariantViolation(
                f"payload from rank {src} to rank {rank} carries keys "
                f"{sorted(msg)}, expected {keys}",
                check="exchange_payload",
                stage="decomp/exchange",
                step=step,
                rank=rank,
            )
        expected = int(count_matrix[src, rank])
        for k in keys:
            got = np.asarray(msg[k])
            if len(got) != expected:
                raise InvariantViolation(
                    f"rank {src} sent {expected} particle(s) to rank {rank} "
                    f"but array {k!r} arrived with {len(got)} row(s)",
                    check="particle_count",
                    stage="decomp/exchange",
                    step=step,
                    rank=rank,
                    stats={"src": src, "dst": rank, "expected": expected,
                           "got": len(got), "array": k},
                )
            if got.dtype != dtypes[k]:
                raise InvariantViolation(
                    f"array {k!r} from rank {src} to rank {rank} arrived as "
                    f"dtype {got.dtype}, expected {dtypes[k]}",
                    check="exchange_payload",
                    stage="decomp/exchange",
                    step=step,
                    rank=rank,
                    stats={"src": src, "dst": rank, "array": k},
                )
    n_before = int(count_matrix.sum())
    n_after_local = sum(len(np.asarray(msg["pos"])) for msg in received)
    n_after = int(comm.allreduce(n_after_local, op="sum"))
    if n_after != n_before:
        raise InvariantViolation(
            f"global particle count changed across the exchange: "
            f"{n_before} sent, {n_after} arrived "
            f"({n_after - n_before:+d})",
            check="particle_count",
            stage="decomp/exchange",
            step=step,
            rank=rank,
            stats={"n_before": n_before, "n_after": n_after},
        )

    return {
        k: np.concatenate([msg[k] for msg in received], axis=0) for k in keys
    }
