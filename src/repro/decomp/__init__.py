"""Dynamic domain decomposition (paper section II, Fig. 3).

GreeM assigns each MPI process a rectangular domain from a 3-D
multisection of the box.  Domain geometries adapt every step via the
*sampling method*: each process contributes a random sample of its
particles, with the per-process sampling rate proportional to its
measured force-calculation time, and the new boundaries are placed so
all domains hold the same number of samples — i.e. the same expected
cost.  Boundaries are smoothed with a linear weighted moving average
over the last five steps to suppress sampling-noise jumps.
"""

from repro.decomp.multisection import MultisectionDecomposition
from repro.decomp.sampling import BoundaryHistory, SamplingDecomposer
from repro.decomp.exchange import exchange_particles

__all__ = [
    "MultisectionDecomposition",
    "SamplingDecomposer",
    "BoundaryHistory",
    "exchange_particles",
]
