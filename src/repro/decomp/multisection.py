"""3-D multisection decomposition of a periodic box into rectangles.

The box is cut into ``dx`` slabs along x, each slab independently into
``dy`` columns along y, each column independently into ``dz`` domains
along z [Makino 2004].  Domain ranks are row-major: ``rank = (i * dy
+ j) * dz + k``, matching the physical node layout of the torus model.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["MultisectionDecomposition", "divisions_for_ranks", "weighted_split"]


def divisions_for_ranks(n: int) -> Tuple[int, int, int]:
    """A near-cubic ``(dx, dy, dz)`` with ``dx * dy * dz == n``.

    Used when the rank count changes mid-run (elastic shrink after a
    failure, resume on a different partition): the multisection method
    works for any division triple, so the only freedom is choosing the
    most compact factorization — compact domains minimize the ghost
    surface the PP phase exchanges.  Deterministic; factors are sorted
    ``dx >= dy >= dz`` to match the row-major rank layout.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    best: Tuple[int, int, int] = (n, 1, 1)
    best_score = float("inf")
    for dz in range(1, int(round(n ** (1.0 / 3.0))) + 2):
        if n % dz:
            continue
        m = n // dz
        for dy in range(dz, int(np.sqrt(m)) + 1):
            if m % dy:
                continue
            dx = m // dy
            if dx < dy:
                continue
            # proxy for total domain surface at unit volume
            score = dx * dy + dy * dz + dz * dx
            if score < best_score:
                best_score = score
                best = (dx, dy, dz)
    return best


def weighted_split(
    values: np.ndarray,
    weights: np.ndarray,
    m: int,
    lo: float,
    hi: float,
) -> np.ndarray:
    """Boundaries splitting ``[lo, hi)`` into ``m`` weight-equal parts.

    Returns ``m + 1`` strictly increasing boundaries with ``lo`` and
    ``hi`` fixed; interior boundaries are weighted quantiles of
    ``values``.  With no (or too few) samples, the split degrades
    gracefully toward uniform.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    if not hi > lo:
        raise ValueError("need hi > lo")
    bounds = np.empty(m + 1)
    bounds[0], bounds[m] = lo, hi
    if m == 1:
        return bounds
    values = np.asarray(values, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if len(values) == 0:
        return np.linspace(lo, hi, m + 1)
    order = np.argsort(values)
    v = values[order]
    cw = np.cumsum(weights[order])
    total = cw[-1]
    if total <= 0:
        return np.linspace(lo, hi, m + 1)
    targets = total * np.arange(1, m) / m
    idx = np.searchsorted(cw, targets)
    idx = np.clip(idx, 0, len(v) - 1)
    # boundary halfway between the straddling samples (or at the sample
    # if it is the last one)
    nxt = np.clip(idx + 1, 0, len(v) - 1)
    bounds[1:m] = 0.5 * (v[idx] + v[nxt])
    # enforce strict monotonicity inside (lo, hi): degenerate sample
    # sets (few samples, duplicates) fall back to even spacing locally
    eps = (hi - lo) * 1e-9
    for i in range(1, m + 1):
        if bounds[i] <= bounds[i - 1] + eps and i < m:
            bounds[i] = bounds[i - 1] + (hi - bounds[i - 1]) / (m + 1 - i)
    bounds[1:m] = np.clip(bounds[1:m], lo + eps, hi - eps)
    bounds.sort()
    return bounds


class MultisectionDecomposition:
    """Rectangular domains from per-level boundary arrays.

    Parameters
    ----------
    x_bounds:
        ``(dx + 1,)`` increasing x boundaries covering ``[0, box]``.
    y_bounds:
        ``(dx, dy + 1)`` y boundaries per x slab.
    z_bounds:
        ``(dx, dy, dz + 1)`` z boundaries per (x, y) column.
    """

    def __init__(
        self,
        x_bounds: np.ndarray,
        y_bounds: np.ndarray,
        z_bounds: np.ndarray,
        box: float = 1.0,
    ) -> None:
        self.x_bounds = np.asarray(x_bounds, dtype=np.float64)
        self.y_bounds = np.asarray(y_bounds, dtype=np.float64)
        self.z_bounds = np.asarray(z_bounds, dtype=np.float64)
        self.box = float(box)
        dx = len(self.x_bounds) - 1
        if self.y_bounds.shape != (dx, self.y_bounds.shape[1]):
            raise ValueError("y_bounds must be (dx, dy + 1)")
        dy = self.y_bounds.shape[1] - 1
        if self.z_bounds.shape[:2] != (dx, dy):
            raise ValueError("z_bounds must be (dx, dy, dz + 1)")
        dz = self.z_bounds.shape[2] - 1
        self.divisions = (dx, dy, dz)
        for arr, name in (
            (self.x_bounds[None, None, :], "x_bounds"),
            (self.y_bounds[None, :, :], "y_bounds"),
            (self.z_bounds, "z_bounds"),
        ):
            if np.any(np.diff(arr, axis=-1) <= 0):
                raise ValueError(f"{name} must be strictly increasing")
        if (
            self.x_bounds[0] != 0.0
            or self.x_bounds[-1] != self.box
            or np.any(self.y_bounds[:, 0] != 0.0)
            or np.any(self.y_bounds[:, -1] != self.box)
            or np.any(self.z_bounds[..., 0] != 0.0)
            or np.any(self.z_bounds[..., -1] != self.box)
        ):
            raise ValueError("boundaries must span [0, box] on every level")

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def uniform(
        divisions: Tuple[int, int, int], box: float = 1.0
    ) -> "MultisectionDecomposition":
        """Static equal-volume decomposition (the paper's baseline)."""
        dx, dy, dz = divisions
        xb = np.linspace(0, box, dx + 1)
        yb = np.tile(np.linspace(0, box, dy + 1), (dx, 1))
        zb = np.tile(np.linspace(0, box, dz + 1), (dx, dy, 1))
        return MultisectionDecomposition(xb, yb, zb, box)

    @staticmethod
    def from_samples(
        samples: np.ndarray,
        divisions: Tuple[int, int, int],
        box: float = 1.0,
        weights: np.ndarray | None = None,
    ) -> "MultisectionDecomposition":
        """Build boundaries so every domain holds equal sample weight.

        This is the root-process step of the sampling method: the
        samples already encode cost (cost-proportional sampling rates),
        so equal sample counts mean equal expected cost.
        """
        samples = np.asarray(samples, dtype=np.float64)
        dx, dy, dz = divisions
        if weights is None:
            weights = np.ones(len(samples))
        xb = weighted_split(samples[:, 0], weights, dx, 0.0, box)
        yb = np.empty((dx, dy + 1))
        zb = np.empty((dx, dy, dz + 1))
        for i in range(dx):
            in_slab = (samples[:, 0] >= xb[i]) & (samples[:, 0] < xb[i + 1])
            s_slab = samples[in_slab]
            w_slab = weights[in_slab]
            yb[i] = weighted_split(s_slab[:, 1], w_slab, dy, 0.0, box)
            for j in range(dy):
                in_col = (s_slab[:, 1] >= yb[i, j]) & (s_slab[:, 1] < yb[i, j + 1])
                zb[i, j] = weighted_split(
                    s_slab[in_col][:, 2], w_slab[in_col], dz, 0.0, box
                )
        return MultisectionDecomposition(xb, yb, zb, box)

    # -- queries -----------------------------------------------------------------

    @property
    def n_domains(self) -> int:
        dx, dy, dz = self.divisions
        return dx * dy * dz

    def rank_of_cell(self, i: int, j: int, k: int) -> int:
        dx, dy, dz = self.divisions
        return (i * dy + j) * dz + k

    def cell_of_rank(self, rank: int) -> Tuple[int, int, int]:
        dx, dy, dz = self.divisions
        if not 0 <= rank < self.n_domains:
            raise ValueError(f"rank {rank} out of range")
        return (rank // (dy * dz), (rank // dz) % dy, rank % dz)

    def domain_bounds(self, rank: int) -> Tuple[np.ndarray, np.ndarray]:
        """(lo, hi) corners of the rank's rectangular domain."""
        i, j, k = self.cell_of_rank(rank)
        lo = np.array(
            [self.x_bounds[i], self.y_bounds[i, j], self.z_bounds[i, j, k]]
        )
        hi = np.array(
            [self.x_bounds[i + 1], self.y_bounds[i, j + 1], self.z_bounds[i, j, k + 1]]
        )
        return lo, hi

    def owner_of(self, pos: np.ndarray) -> np.ndarray:
        """Owning rank of each position (positions must lie in the box)."""
        pos = np.asarray(pos, dtype=np.float64)
        dx, dy, dz = self.divisions
        i = np.clip(
            np.searchsorted(self.x_bounds, pos[:, 0], side="right") - 1, 0, dx - 1
        )
        j = np.empty(len(pos), dtype=np.int64)
        k = np.empty(len(pos), dtype=np.int64)
        for ii in range(dx):
            sel = i == ii
            if not sel.any():
                continue
            j[sel] = np.clip(
                np.searchsorted(self.y_bounds[ii], pos[sel, 1], side="right") - 1,
                0,
                dy - 1,
            )
            for jj in range(dy):
                sel2 = sel & (j == jj)
                if not sel2.any():
                    continue
                k[sel2] = np.clip(
                    np.searchsorted(self.z_bounds[ii, jj], pos[sel2, 2], side="right")
                    - 1,
                    0,
                    dz - 1,
                )
        return (i * dy + j) * dz + k

    def domain_volumes(self) -> np.ndarray:
        """Volume of every domain (ordered by rank)."""
        out = np.empty(self.n_domains)
        for r in range(self.n_domains):
            lo, hi = self.domain_bounds(r)
            out[r] = np.prod(hi - lo)
        return out

    def flatten(self) -> np.ndarray:
        """All boundary values as one vector (for smoothing/broadcast)."""
        return np.concatenate(
            [self.x_bounds.ravel(), self.y_bounds.ravel(), self.z_bounds.ravel()]
        )

    @staticmethod
    def unflatten(
        vec: np.ndarray, divisions: Tuple[int, int, int], box: float = 1.0
    ) -> "MultisectionDecomposition":
        dx, dy, dz = divisions
        nx = dx + 1
        ny = dx * (dy + 1)
        xb = vec[:nx]
        yb = vec[nx : nx + ny].reshape(dx, dy + 1)
        zb = vec[nx + ny :].reshape(dx, dy, dz + 1)
        return MultisectionDecomposition(xb, yb, zb, box)
