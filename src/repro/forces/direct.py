"""Direct-summation (O(N^2)) force calculators.

These are the paper's historical baseline (the "direct summation" of the
introduction) and the accuracy reference for non-periodic configurations.
All routines are fully vectorized and process targets in chunks to bound
peak memory at ``O(chunk * N)``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.forces.softening import plummer_force_factor, plummer_potential
from repro.utils.periodic import minimum_image

__all__ = [
    "direct_forces_open",
    "direct_forces_periodic_mi",
    "direct_forces_cutoff",
    "direct_potential_open",
]

_DEFAULT_CHUNK = 1024


def _pair_displacements(
    targets: np.ndarray, sources: np.ndarray
) -> np.ndarray:
    """All displacement vectors sources[j] - targets[i], shape (T, S, 3)."""
    return sources[None, :, :] - targets[:, None, :]


def direct_forces_open(
    pos: np.ndarray,
    mass: np.ndarray,
    eps: float = 0.0,
    G: float = 1.0,
    targets: Optional[np.ndarray] = None,
    chunk: int = _DEFAULT_CHUNK,
) -> np.ndarray:
    """Softened Newtonian accelerations with open boundary conditions.

    Parameters
    ----------
    pos, mass:
        Source particle positions ``(N, 3)`` and masses ``(N,)``.
    eps:
        Plummer softening length.
    targets:
        Positions to evaluate at; defaults to ``pos`` (self-gravity,
        self-interaction excluded by the softening-free zero-distance
        guard).
    """
    pos = np.asarray(pos, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    tgt = pos if targets is None else np.asarray(targets, dtype=np.float64)
    acc = np.zeros_like(tgt)
    for lo in range(0, len(tgt), chunk):
        hi = min(lo + chunk, len(tgt))
        dx = _pair_displacements(tgt[lo:hi], pos)
        r2 = np.einsum("ijk,ijk->ij", dx, dx)
        f = plummer_force_factor(r2, eps)
        # zero-distance pairs (self-interaction when targets is pos)
        f[r2 == 0.0] = 0.0
        acc[lo:hi] = G * np.einsum("ij,ijk->ik", mass * f, dx)
    return acc


def direct_potential_open(
    pos: np.ndarray,
    mass: np.ndarray,
    eps: float = 0.0,
    G: float = 1.0,
    targets: Optional[np.ndarray] = None,
    chunk: int = _DEFAULT_CHUNK,
) -> np.ndarray:
    """Softened Newtonian potential with open boundaries."""
    pos = np.asarray(pos, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    tgt = pos if targets is None else np.asarray(targets, dtype=np.float64)
    phi = np.zeros(len(tgt))
    for lo in range(0, len(tgt), chunk):
        hi = min(lo + chunk, len(tgt))
        dx = _pair_displacements(tgt[lo:hi], pos)
        r2 = np.einsum("ijk,ijk->ij", dx, dx)
        p = plummer_potential(r2, eps)
        p[r2 == 0.0] = 0.0
        phi[lo:hi] = G * (p @ mass)
    return phi


def direct_forces_periodic_mi(
    pos: np.ndarray,
    mass: np.ndarray,
    box: float = 1.0,
    eps: float = 0.0,
    G: float = 1.0,
    targets: Optional[np.ndarray] = None,
    chunk: int = _DEFAULT_CHUNK,
) -> np.ndarray:
    """Direct forces using the minimum-image convention only.

    This is *not* the exact periodic force (use
    :class:`repro.forces.ewald.EwaldSummation` for that); it serves as a
    cheap approximation for strongly clustered configurations and in
    tests of the short-range machinery.
    """
    pos = np.asarray(pos, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    tgt = pos if targets is None else np.asarray(targets, dtype=np.float64)
    acc = np.zeros_like(tgt)
    for lo in range(0, len(tgt), chunk):
        hi = min(lo + chunk, len(tgt))
        dx = minimum_image(_pair_displacements(tgt[lo:hi], pos), box)
        r2 = np.einsum("ijk,ijk->ij", dx, dx)
        f = plummer_force_factor(r2, eps)
        f[r2 == 0.0] = 0.0
        acc[lo:hi] = G * np.einsum("ij,ijk->ik", mass * f, dx)
    return acc


def direct_forces_cutoff(
    pos: np.ndarray,
    mass: np.ndarray,
    split,
    box: float = 1.0,
    eps: float = 0.0,
    G: float = 1.0,
    targets: Optional[np.ndarray] = None,
    chunk: int = _DEFAULT_CHUNK,
) -> np.ndarray:
    """Direct evaluation of the *short-range* (cutoff) force, eq. (2).

    Sums, over minimum images, ``G m dx / (r^2+eps^2)^{3/2} * g(r)``
    where ``g`` is ``split.short_range_factor``.  This is the exact
    reference for the tree-based short-range solver (P3M-style PP part).
    """
    pos = np.asarray(pos, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    tgt = pos if targets is None else np.asarray(targets, dtype=np.float64)
    if split.cutoff_radius > box / 2.0:
        raise ValueError(
            "cutoff radius exceeds half the box; minimum image is invalid"
        )
    acc = np.zeros_like(tgt)
    for lo in range(0, len(tgt), chunk):
        hi = min(lo + chunk, len(tgt))
        dx = minimum_image(_pair_displacements(tgt[lo:hi], pos), box)
        r2 = np.einsum("ijk,ijk->ij", dx, dx)
        r = np.sqrt(r2)
        g = split.short_range_factor(r)
        f = plummer_force_factor(r2, eps) * g
        f[r2 == 0.0] = 0.0
        acc[lo:hi] = G * np.einsum("ij,ijk->ik", mass * f, dx)
    return acc
