"""Force-splitting shapes for the TreePM method.

The paper splits the density of a point mass into a PM part with the S2
profile of Hockney & Eastwood (a linearly decreasing sphere of diameter
``rcut``, eq. 1) and a PP part that is the residual.  By Newton's second
theorem the particle-particle interaction then vanishes beyond ``rcut``.

The short-range force between two particles is

    f = G m (r_j - r_i) / |r_j - r_i|^3 * g_P3M(2 |r_j - r_i| / rcut)

with the cutoff function ``g_P3M`` of eq. (3), a piecewise polynomial in
``xi = 2 r / rcut`` with a branch at ``xi = 1`` expressed through
``zeta = max(0, xi - 1)`` — the paper's FMA/SIMD-friendly form.

The long-range (PM) force is computed in Fourier space with the Green's
function ``-4 pi G / k^2 * S(k)^2`` where ``S`` is the S2 shape factor;
the product of the two pieces reconstructs exact ``1/r^2`` gravity,
which :class:`repro.forces.ewald.EwaldSummation` verifies.
"""

from __future__ import annotations

import numpy as np
from numpy.polynomial import polynomial as npoly

__all__ = [
    "gp3m_cutoff",
    "gp3m_potential_cutoff",
    "s2_shape_factor",
    "gaussian_force_cutoff",
    "gaussian_shape_factor",
    "S2ForceSplit",
    "GaussianForceSplit",
    "get_split",
]

# Polynomial g_A(xi) = 1 - 8/5 xi^3 + 8/5 xi^5 - 1/2 xi^6 - 12/35 xi^7
#                      + 3/20 xi^8           (valid on 0 <= xi <= 1)
_GA_COEF = np.array(
    [1.0, 0.0, 0.0, -8.0 / 5.0, 0.0, 8.0 / 5.0, -0.5, -12.0 / 35.0, 3.0 / 20.0]
)
# Correction subtracted on 1 <= xi <= 2:
#   (xi - 1)^6 * (3/35 + 18/35 xi + 1/5 xi^2)
_ZETA6 = npoly.polypow([-1.0, 1.0], 6)
_QB_COEF = np.array([3.0 / 35.0, 18.0 / 35.0, 1.0 / 5.0])
_CORR_COEF = npoly.polymul(_ZETA6, _QB_COEF)


def gp3m_cutoff(xi: np.ndarray) -> np.ndarray:
    """The short-range force cutoff function ``g_P3M`` of eq. (3).

    Parameters
    ----------
    xi:
        Scaled separation ``2 r / rcut`` (array or scalar).

    Returns
    -------
    ``g_P3M(xi)``: 1 at xi=0, monotonically decreasing to 0 at xi=2,
    and exactly 0 for xi > 2.
    """
    xi = np.asarray(xi, dtype=np.float64)
    scalar = xi.ndim == 0
    if scalar:
        xi = xi.reshape(1)
    # Horner evaluation of the paper's nested form (FMA-shaped), run
    # in-place on a handful of scratch arrays: this sits on the force
    # kernel's hot path and is otherwise allocation-bound.  The powers
    # are expanded into explicit multiply chains (xi2 = xi*xi,
    # xi3 = xi*xi2, zeta6 = (z2*z2)*z2) so the whole function is a
    # fixed sequence of individually rounded IEEE operations that the
    # native plan-sweep kernel reproduces bitwise.
    g = xi * (3.0 / 20.0)
    g += -12.0 / 35.0
    g *= xi
    g += -0.5
    g *= xi
    g += 8.0 / 5.0
    xi2 = xi * xi
    g *= xi2
    g += -8.0 / 5.0
    xi2 *= xi  # xi3
    g *= xi2
    g += 1.0
    q = xi * (1.0 / 5.0)
    q += 18.0 / 35.0
    q *= xi
    q += 3.0 / 35.0
    zeta = xi - 1.0
    np.maximum(zeta, 0.0, out=zeta)
    zeta *= zeta  # z2
    z6 = zeta * zeta
    z6 *= zeta
    q *= z6
    g -= q
    np.copyto(g, 0.0, where=xi >= 2.0)
    return g.reshape(()) if scalar else g


def _build_potential_pieces():
    """Exact antiderivatives for the short-range potential cutoff.

    The short-range potential is ``phi_s(r) = G m (2/rcut) * H(xi)`` with
    ``H(xi) = int_xi^2 g(u) / u^2 du``.  ``g/u^2`` is ``u^-2`` plus
    polynomials (and, on [1,2], also ``c1/u``), all integrable in closed
    form.  We precompute the polynomial antiderivatives once at import.
    """
    # Piece A on [0, 1]: g_A(u)/u^2 = u^-2 + polyA(u) where
    # polyA = (g_A - 1)/u^2, a polynomial starting at u^1.
    polyA = _GA_COEF[3:].copy()  # coefficients of u^1 .. u^6 after /u^2
    polyA = np.concatenate([[0.0], polyA])  # restore: degree array for u^0..
    intA = npoly.polyint(polyA)

    # Piece B on [1, 2]: additionally subtract corr(u)/u^2 where
    # corr = (u-1)^6 (3/35 + 18/35 u + 1/5 u^2), degree 8.
    # Split corr(u) = c0 + c1 u + u^2 * polyB(u):
    c0 = _CORR_COEF[0]
    c1 = _CORR_COEF[1]
    polyB = _CORR_COEF[2:]
    intB = npoly.polyint(polyB)
    return intA, c0, c1, intB


_INT_A, _C0, _C1, _INT_B = _build_potential_pieces()


def _FA(u):
    """Antiderivative of ``g_A(u) / u^2``."""
    return -1.0 / u + npoly.polyval(u, _INT_A)


def _FC(u):
    """Antiderivative of ``corr(u) / u^2`` (subtracted on [1, 2])."""
    return -_C0 / u + _C1 * np.log(u) + npoly.polyval(u, _INT_B)


def gp3m_potential_cutoff(xi: np.ndarray) -> np.ndarray:
    """Potential counterpart of :func:`gp3m_cutoff`.

    Returns ``h(xi)`` such that the short-range pair potential is
    ``phi_s(r) = -G m h(xi) / r`` with ``xi = 2 r / rcut``; ``h(0) = 1``
    (pure Newtonian) and ``h(xi) = 0`` for ``xi >= 2``.

    ``h(xi) = xi * int_xi^2 g(u)/u^2 du``; the ``1/u`` singularity of
    the antiderivative is multiplied out analytically so the expression
    stays stable down to ``xi = 0``.
    """
    xi = np.asarray(xi, dtype=np.float64)
    xi_c = np.clip(xi, 0.0, 2.0)
    # on [0, 1]:  xi * (FA(1) - FA(xi)) = xi*FA(1) + 1 - xi*P(xi)
    # (the -1/u of FA cancels against the leading Newtonian 1/xi)
    below = np.clip(xi_c, None, 1.0)
    part1 = xi * _FA(np.float64(1.0)) + 1.0 - xi * npoly.polyval(below, _INT_A)
    part1 = np.where(xi_c >= 1.0, 0.0, part1)
    # on [max(xi,1), 2]: regular integrand, evaluate directly
    lower = np.maximum(xi_c, 1.0)
    part2 = (_FA(np.float64(2.0)) - _FA(lower)) - (
        _FC(np.float64(2.0)) - _FC(lower)
    )
    h = part1 + xi * part2
    return np.where(xi >= 2.0, 0.0, h)


def s2_shape_factor(x: np.ndarray) -> np.ndarray:
    """Fourier transform of the (unit-mass) S2 density shape of eq. (1).

    ``x = k * rcut`` (the profile's support radius is ``rcut / 2``):

        S(k) = 12 / u^4 * (2 - 2 cos u - u sin u),   u = k rcut / 2.

    ``S(0) = 1``; for small ``u`` a series expansion avoids catastrophic
    cancellation.  Verified in tests against direct quadrature of
    ``4 pi int r^2 rho_S2(r) sinc(k r) dr``.
    """
    u = np.asarray(x, dtype=np.float64) / 2.0
    small = np.abs(u) < 0.1
    us = np.where(small, 1.0, u)  # avoid division by ~0 in the exact branch
    exact = 12.0 / us**4 * (2.0 - 2.0 * np.cos(us) - us * np.sin(us))
    series = 1.0 - u**2 / 15.0 + u**4 / 560.0
    return np.where(small, series, exact)


# ---------------------------------------------------------------------------
# Gaussian (GADGET-style) split, provided as a baseline/ablation.
# ---------------------------------------------------------------------------

def gaussian_force_cutoff(r: np.ndarray, rs: float) -> np.ndarray:
    """Short-range force factor of the Gaussian split.

    ``f_short = G m / r^2 * [erfc(r / 2 rs) + (r / rs sqrt(pi)) exp(-r^2/4rs^2)]``
    """
    from scipy.special import erfc

    r = np.asarray(r, dtype=np.float64)
    u = r / (2.0 * rs)
    return erfc(u) + (2.0 / np.sqrt(np.pi)) * u * np.exp(-(u**2))


def gaussian_shape_factor(x: np.ndarray) -> np.ndarray:
    """k-space suppression of the Gaussian split: ``exp(-(k rs)^2)``.

    ``x = k * rs``.
    """
    x = np.asarray(x, dtype=np.float64)
    return np.exp(-(x**2))


# ---------------------------------------------------------------------------
# Split objects: a uniform interface used by the PP kernel and the PM solver.
# ---------------------------------------------------------------------------

class S2ForceSplit:
    """The paper's S2/P3M force split with cutoff radius ``rcut``.

    Short range: multiply Newtonian pair force by
    ``gp3m_cutoff(2 r / rcut)``; identically zero beyond ``rcut``.
    Long range: multiply the k-space Green's function by
    ``s2_shape_factor(k rcut)^2``.
    """

    name = "s2"
    #: ``short_range_factor`` returns exactly 0.0 for any r past
    #: ``cutoff_radius`` — consumers may skip those pairs entirely
    #: without changing a bit of the result.
    exact_cutoff = True

    def __init__(self, rcut: float) -> None:
        if rcut <= 0:
            raise ValueError("rcut must be positive")
        self.rcut = float(rcut)

    def short_range_factor(self, r: np.ndarray) -> np.ndarray:
        """Dimensionless force factor g(r) multiplying G m / r^2."""
        return gp3m_cutoff(2.0 * np.asarray(r) / self.rcut)

    def short_range_potential_factor(self, r: np.ndarray) -> np.ndarray:
        """Dimensionless potential factor h(r) multiplying -G m / r."""
        return gp3m_potential_cutoff(2.0 * np.asarray(r) / self.rcut)

    def long_range_kspace_factor(self, k: np.ndarray) -> np.ndarray:
        """Multiplier of -4 pi G / k^2 in the PM Green's function."""
        return s2_shape_factor(np.asarray(k) * self.rcut) ** 2

    @property
    def cutoff_radius(self) -> float:
        """Radius beyond which the short-range force is exactly zero."""
        return self.rcut

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"S2ForceSplit(rcut={self.rcut})"


class GaussianForceSplit:
    """GADGET-style Gaussian force split with scale radius ``rs``.

    The short-range force is not compactly supported; ``cutoff_radius``
    reports the radius where the factor drops below ``tail_eps``.
    """

    name = "gaussian"
    #: the factor is clamped to exactly 0.0 beyond ``cutoff_radius``
    exact_cutoff = True

    def __init__(self, rs: float, tail_eps: float = 1.0e-5) -> None:
        if rs <= 0:
            raise ValueError("rs must be positive")
        self.rs = float(rs)
        self.tail_eps = float(tail_eps)
        self._rcut_eff = self._effective_cutoff()

    def _effective_cutoff(self) -> float:
        from scipy.optimize import brentq

        f = lambda r: gaussian_force_cutoff(np.float64(r), self.rs) - self.tail_eps
        return float(brentq(f, 1e-8 * self.rs, 50.0 * self.rs))

    def short_range_factor(self, r: np.ndarray) -> np.ndarray:
        g = gaussian_force_cutoff(np.asarray(r), self.rs)
        return np.where(np.asarray(r) > self._rcut_eff, 0.0, g)

    def short_range_potential_factor(self, r: np.ndarray) -> np.ndarray:
        from scipy.special import erfc

        r = np.asarray(r, dtype=np.float64)
        return erfc(r / (2.0 * self.rs))

    def long_range_kspace_factor(self, k: np.ndarray) -> np.ndarray:
        return gaussian_shape_factor(np.asarray(k) * self.rs)

    @property
    def cutoff_radius(self) -> float:
        return self._rcut_eff

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GaussianForceSplit(rs={self.rs})"


def get_split(name: str, rcut: float):
    """Factory: build a force split by name.

    For ``"gaussian"`` the scale radius is chosen as ``rcut / 4.5`` so
    that the effective support roughly matches the S2 split's ``rcut``.
    """
    if name == "s2":
        return S2ForceSplit(rcut)
    if name == "gaussian":
        return GaussianForceSplit(rcut / 4.5)
    raise ValueError(f"unknown force split {name!r}")
