"""Ewald summation: the exact force reference for periodic gravity.

The TreePM force (PP with the g_P3M cutoff + PM with the S2 Green's
function) approximates the exact periodic gravitational force, i.e. the
sum over all infinite image boxes with a neutralizing uniform
background.  Ewald summation computes that sum to machine precision by
splitting it into a rapidly converging real-space sum (complementary
error function screening) and a rapidly converging k-space sum.

This module is the accuracy yardstick for `benchmarks/bench_accuracy.py`
and for the TreePM integration tests.  It is O(N^2 * (images + modes))
and intended for small N.
"""

from __future__ import annotations

import numpy as np
from scipy.special import erfc

from repro.forces.softening import plummer_force_factor
from repro.utils.periodic import minimum_image

__all__ = ["EwaldSummation"]


class EwaldSummation:
    """Exact periodic gravity via Ewald summation.

    Parameters
    ----------
    box:
        Side length of the periodic cube.
    alpha:
        Ewald splitting parameter (in units of 1/box); ``2/box`` with
        ``nmax=3`` and ``kmax=8`` gives ~1e-10 relative force accuracy.
    nmax:
        Real-space images with ``|n|_inf <= nmax`` are summed.
    kmax:
        k-space modes with integer components ``|m|_inf <= kmax``
        (and ``|m|^2 <= kmax^2``) are summed.
    """

    def __init__(
        self,
        box: float = 1.0,
        alpha: float | None = None,
        nmax: int = 3,
        kmax: int = 8,
    ) -> None:
        if box <= 0:
            raise ValueError("box must be positive")
        self.box = float(box)
        self.alpha = (2.0 / box) if alpha is None else float(alpha)
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        self.nmax = int(nmax)
        self.kmax = int(kmax)
        self._images = self._make_images()
        self._kvecs, self._kfac = self._make_kspace()

    def _make_images(self) -> np.ndarray:
        r = np.arange(-self.nmax, self.nmax + 1)
        n = np.stack(np.meshgrid(r, r, r, indexing="ij"), axis=-1).reshape(-1, 3)
        return n.astype(np.float64) * self.box

    def _make_kspace(self):
        r = np.arange(-self.kmax, self.kmax + 1)
        m = np.stack(np.meshgrid(r, r, r, indexing="ij"), axis=-1).reshape(-1, 3)
        m2 = np.sum(m * m, axis=1)
        keep = (m2 > 0) & (m2 <= self.kmax**2)
        m = m[keep].astype(np.float64)
        k = 2.0 * np.pi / self.box * m
        k2 = np.sum(k * k, axis=1)
        # (4 pi / L^3) exp(-k^2 / 4 alpha^2) / k^2
        kfac = (
            4.0
            * np.pi
            / self.box**3
            * np.exp(-k2 / (4.0 * self.alpha**2))
            / k2
        )
        return k, kfac

    # -- pairwise kernels ---------------------------------------------------

    def _real_space_acc(self, dx: np.ndarray) -> np.ndarray:
        """Real-space Ewald acceleration kernel for displacements dx.

        ``dx`` has shape (..., 3) = r_i - r_j; returns the acceleration
        contribution per unit G*m_j (pointing from i toward j).
        """
        # shape (..., images, 3)
        s = dx[..., None, :] + self._images
        r2 = np.einsum("...ik,...ik->...i", s, s)
        r = np.sqrt(r2)
        with np.errstate(divide="ignore", invalid="ignore"):
            w = erfc(self.alpha * r) + (
                2.0 * self.alpha / np.sqrt(np.pi)
            ) * r * np.exp(-(self.alpha**2) * r2)
            kern = np.where(r2 > 0.0, w / (r2 * r), 0.0)
        return -np.einsum("...i,...ik->...k", kern, s)

    def _k_space_acc(self, dx: np.ndarray) -> np.ndarray:
        """k-space Ewald acceleration kernel per unit G*m_j."""
        phase = np.einsum("...k,mk->...m", dx, self._kvecs)
        sin_p = np.sin(phase)
        return -np.einsum("...m,m,mk->...k", sin_p, self._kfac, self._kvecs)

    def pair_acceleration(self, dx: np.ndarray) -> np.ndarray:
        """Exact periodic acceleration of a unit-G, unit-mass pair.

        ``dx = r_i - r_j``; the result points from i toward j (and all
        its images), including the neutralizing background.  The
        displacement is reduced to its minimum image first, which makes
        the result exactly periodic and keeps the truncated real-space
        image sum maximally converged.
        """
        dx = minimum_image(np.asarray(dx, dtype=np.float64), self.box)
        return self._real_space_acc(dx) + self._k_space_acc(dx)

    # -- N-body evaluation ----------------------------------------------------

    def forces(
        self,
        pos: np.ndarray,
        mass: np.ndarray,
        eps: float = 0.0,
        G: float = 1.0,
        chunk: int = 64,
        targets: np.ndarray | None = None,
    ) -> np.ndarray:
        """Exact periodic accelerations.

        If ``eps > 0`` a Plummer softening correction is applied to the
        *nearest image* of each pair (softening only matters at
        separations << box, where exactly one image dominates), making
        the result directly comparable to a softened TreePM force.

        ``targets`` (optional integer indices) restricts evaluation to
        a subset of particles — the O(N^2 * images) cost makes full
        evaluation impractical for large N, while a probe subset still
        yields converged error statistics.
        """
        pos = np.asarray(pos, dtype=np.float64)
        mass = np.asarray(mass, dtype=np.float64)
        tgt_idx = (
            np.arange(len(pos)) if targets is None else np.asarray(targets)
        )
        tpos = pos[tgt_idx]
        n = len(tpos)
        acc = np.zeros((n, 3))
        for lo in range(0, n, chunk):
            hi = min(lo + chunk, n)
            dx = tpos[lo:hi, None, :] - pos[None, :, :]  # (c, n, 3)
            a_pair = self.pair_acceleration(dx)
            # remove self-interaction (dx = 0 rows): real-space kernel
            # already drops the r=0 image, k-space sum of sin(0) = 0.
            if eps > 0.0:
                dmi = minimum_image(dx, self.box)
                r2 = np.einsum("ijk,ijk->ij", dmi, dmi)
                soft = plummer_force_factor(r2, eps)
                with np.errstate(divide="ignore"):
                    hard = np.where(r2 > 0.0, r2**-1.5, 0.0)
                soft = np.where(r2 > 0.0, soft, 0.0)
                a_pair = a_pair - (soft - hard)[..., None] * dmi
            acc[lo:hi] = G * np.einsum("j,ijk->ik", mass, a_pair)
        return acc

    # -- potential ---------------------------------------------------------------

    def _pair_potential(self, dx: np.ndarray) -> np.ndarray:
        """Ewald pair potential psi(dx) per unit G*m (background
        included); psi(0) is the interaction of a particle with its own
        periodic images (without the singular self term)."""
        dx = minimum_image(np.asarray(dx, dtype=np.float64), self.box)
        s = dx[..., None, :] + self._images
        r2 = np.einsum("...ik,...ik->...i", s, s)
        r = np.sqrt(r2)
        with np.errstate(divide="ignore", invalid="ignore"):
            real = np.where(r > 0.0, erfc(self.alpha * r) / r, 0.0)
        real = real.sum(axis=-1)
        phase = np.einsum("...k,mk->...m", dx, self._kvecs)
        kpart = np.einsum("...m,m->...", np.cos(phase), self._kfac)
        background = np.pi / (self.alpha**2 * self.box**3)
        return -(real + kpart - background)

    def potential(
        self,
        pos: np.ndarray,
        mass: np.ndarray,
        eps: float = 0.0,
        G: float = 1.0,
        chunk: int = 64,
        targets: np.ndarray | None = None,
    ) -> np.ndarray:
        """Exact periodic potential (with neutralizing background).

        The diagonal self term ``+2 alpha G m / sqrt(pi)`` replaces the
        excluded singular image; a single unit-mass particle in a unit
        box then has ``phi = +2.837297...`` — the gravitational sign of
        the Ewald lattice constant (the potential is defined by
        ``lap phi = 4 pi G (rho - rho_mean)``, so relative to the bare
        ``-G m / r`` every pair carries a positive periodic offset, as
        the PM solver independently measures).  As in :meth:`forces`,
        ``eps > 0`` applies a Plummer correction to the nearest image
        of each pair.
        """
        pos = np.asarray(pos, dtype=np.float64)
        mass = np.asarray(mass, dtype=np.float64)
        tgt_idx = np.arange(len(pos)) if targets is None else np.asarray(targets)
        tpos = pos[tgt_idx]
        phi = np.zeros(len(tpos))
        self_term = 2.0 * self.alpha / np.sqrt(np.pi)
        for lo in range(0, len(tpos), chunk):
            hi = min(lo + chunk, len(tpos))
            dx = tpos[lo:hi, None, :] - pos[None, :, :]
            psi = self._pair_potential(dx)
            if eps > 0.0:
                dmi = minimum_image(dx, self.box)
                r2 = np.einsum("ijk,ijk->ij", dmi, dmi)
                with np.errstate(divide="ignore"):
                    hard = np.where(r2 > 0.0, -(r2**-0.5), 0.0)
                soft = np.where(r2 > 0.0, -((r2 + eps * eps) ** -0.5), 0.0)
                psi = psi + (soft - hard)
            phi[lo:hi] = G * (psi @ mass)
            # diagonal (i == j) self correction: every target appears
            # once among the sources with its singular image excluded
            phi[lo:hi] += G * mass[tgt_idx[lo:hi]] * self_term
        return phi

    def total_energy(
        self, pos: np.ndarray, mass: np.ndarray, eps: float = 0.0, G: float = 1.0
    ) -> float:
        """Total potential energy ``1/2 sum_i m_i phi_i``."""
        return float(0.5 * np.sum(mass * self.potential(pos, mass, eps=eps, G=G)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EwaldSummation(box={self.box}, alpha={self.alpha}, "
            f"nmax={self.nmax}, kmax={self.kmax})"
        )
