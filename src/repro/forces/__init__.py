"""Force laws: cutoff functions, direct summation and the Ewald reference.

This package implements the mathematical content of the paper's
equations (1)-(3): the S2 force-splitting used by the P3M/TreePM method,
the short-range cutoff function ``g_P3M``, a Gaussian (GADGET-style)
split as a baseline, Plummer softening, direct-summation force
calculators (the O(N^2) baseline), and Ewald summation as the exact
reference for periodic gravity.
"""

from repro.forces.cutoff import (
    S2ForceSplit,
    GaussianForceSplit,
    gp3m_cutoff,
    gp3m_potential_cutoff,
    s2_shape_factor,
    get_split,
)
from repro.forces.softening import plummer_force_factor, plummer_potential
from repro.forces.direct import (
    direct_forces_open,
    direct_forces_periodic_mi,
    direct_forces_cutoff,
    direct_potential_open,
)
from repro.forces.ewald import EwaldSummation
from repro.forces.ewald_table import EwaldCorrectionTable, get_correction_table

__all__ = [
    "S2ForceSplit",
    "GaussianForceSplit",
    "gp3m_cutoff",
    "gp3m_potential_cutoff",
    "s2_shape_factor",
    "get_split",
    "plummer_force_factor",
    "plummer_potential",
    "direct_forces_open",
    "direct_forces_periodic_mi",
    "direct_forces_cutoff",
    "direct_potential_open",
    "EwaldSummation",
    "EwaldCorrectionTable",
    "get_correction_table",
]
