"""Plummer gravitational softening.

The paper uses "a small softening with length eps << rcut" on the
short-range interaction, equivalent to replacing the delta function with
a small kernel.  We use the standard Plummer form: the pair force becomes

    f = G m r / (r^2 + eps^2)^(3/2)

and the pair potential ``-G m / sqrt(r^2 + eps^2)``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["plummer_force_factor", "plummer_potential"]


def plummer_force_factor(r2: np.ndarray, eps: float) -> np.ndarray:
    """Return ``1 / (r^2 + eps^2)^(3/2)``.

    Multiplying by ``G m (r_j - r_i)`` gives the softened pair force.
    ``r2`` is the *squared* separation.  The result is finite at r = 0
    when ``eps > 0``.
    """
    r2 = np.asarray(r2, dtype=np.float64)
    with np.errstate(divide="ignore"):
        return (r2 + eps * eps) ** -1.5


def plummer_potential(r2: np.ndarray, eps: float) -> np.ndarray:
    """Return the softened potential factor ``-1 / sqrt(r^2 + eps^2)``."""
    r2 = np.asarray(r2, dtype=np.float64)
    with np.errstate(divide="ignore"):
        return -((r2 + eps * eps) ** -0.5)
