"""Tabulated Ewald corrections for periodic tree codes.

A pure tree code under periodic boundary conditions (the configuration
the paper contrasts TreePM against) cannot stop at minimum-image pair
forces: the infinite lattice of images contributes an O(1) correction.
Production tree codes (e.g. GADGET) therefore precompute the
*difference* between the exact Ewald force and the bare minimum-image
Newtonian force on a grid over the unit cell and interpolate it per
interaction:

    f_corr(dx) = f_ewald(dx) - f_newton(minimum_image(dx)).

The correction field is smooth (the 1/r^2 singularities cancel), odd in
each coordinate under the cubic symmetry of the lattice, and vanishes
at dx -> 0 like ``(4 pi / 3) dx`` — so a modest trilinear table over
one octant suffices.

This makes the "pure tree, periodic" baseline *exact* (up to table
resolution), at the cost the paper's comparison highlights: every pair
in the (long) tree interaction lists pays the lookup, while TreePM gets
periodicity for free from the FFT.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.forces.ewald import EwaldSummation
from repro.utils.periodic import minimum_image

__all__ = ["EwaldCorrectionTable", "get_correction_table"]


class EwaldCorrectionTable:
    """Trilinear-interpolated Ewald force correction.

    Parameters
    ----------
    n:
        Grid intervals per dimension over the octant ``[0, box/2]``.
    box:
        Periodic box size.
    ewald:
        Optional preconfigured :class:`EwaldSummation` (accuracy
        knobs); defaults to the standard settings.
    """

    def __init__(self, n: int = 32, box: float = 1.0, ewald=None) -> None:
        if n < 4:
            raise ValueError("n must be >= 4")
        self.n = int(n)
        self.box = float(box)
        ew = ewald if ewald is not None else EwaldSummation(box=box)
        g = np.linspace(0.0, box / 2.0, self.n + 1)
        pts = np.stack(np.meshgrid(g, g, g, indexing="ij"), axis=-1)
        exact = ew.pair_acceleration(pts)
        r2 = np.einsum("...k,...k->...", pts, pts)
        with np.errstate(divide="ignore", invalid="ignore"):
            newton = -pts / r2[..., None] ** 1.5
        newton[r2 == 0.0] = 0.0
        self.table = exact - newton  # (n+1, n+1, n+1, 3)
        self._h = (box / 2.0) / self.n

    def correction(self, dx: np.ndarray) -> np.ndarray:
        """Correction acceleration per unit ``G m`` for displacements.

        ``dx`` has shape ``(..., 3)``; arbitrary displacements are
        reduced to the minimum image, folded into the positive octant
        by oddness, and trilinearly interpolated.
        """
        dx = minimum_image(np.asarray(dx, dtype=np.float64), self.box)
        signs = np.where(dx >= 0.0, 1.0, -1.0)
        q = np.abs(dx) / self._h  # grid coordinates in [0, n]
        q = np.minimum(q, self.n - 1e-9)
        i0 = q.astype(np.int64)
        f = q - i0

        out = np.zeros_like(dx)
        for cx in (0, 1):
            wx = np.where(cx, f[..., 0], 1.0 - f[..., 0])
            for cy in (0, 1):
                wy = np.where(cy, f[..., 1], 1.0 - f[..., 1])
                for cz in (0, 1):
                    wz = np.where(cz, f[..., 2], 1.0 - f[..., 2])
                    w = wx * wy * wz
                    out += (
                        w[..., None]
                        * self.table[
                            i0[..., 0] + cx, i0[..., 1] + cy, i0[..., 2] + cz
                        ]
                    )
        return signs * out


_CACHE: Dict[Tuple[int, float], EwaldCorrectionTable] = {}


def get_correction_table(n: int = 32, box: float = 1.0) -> EwaldCorrectionTable:
    """Shared (memoized) correction table — construction costs seconds."""
    key = (int(n), float(box))
    if key not in _CACHE:
        _CACHE[key] = EwaldCorrectionTable(n=n, box=box)
    return _CACHE[key]
