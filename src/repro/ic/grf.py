"""Gaussian random fields with a prescribed power spectrum.

Conventions (used consistently by generator and estimator):

* ``k = 2 pi m / L`` for integer mode vectors m,
* ``P(k) = V <|delta_k|^2>`` with ``delta_k = FFT(delta) / N^3``,

so :func:`measure_power_spectrum` applied to
:func:`gaussian_random_field` output recovers the input spectrum — the
round-trip the tests check.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.mesh.greens import kvectors

__all__ = ["gaussian_random_field", "measure_power_spectrum"]


def gaussian_random_field(
    n: int,
    pk: Callable[[np.ndarray], np.ndarray],
    box: float = 1.0,
    seed: int = 0,
) -> np.ndarray:
    """Periodic real Gaussian field with power spectrum ``pk``.

    Parameters
    ----------
    n:
        Mesh points per dimension.
    pk:
        ``P(k)`` with k in radians per unit length (same length unit as
        ``box``); evaluated at k > 0 only.
    """
    if n < 2:
        raise ValueError("n must be >= 2")
    rng = np.random.default_rng(seed)
    white = rng.standard_normal((n, n, n))
    wk = np.fft.rfftn(white)
    kx, ky, kz = kvectors(n, box)
    kmag = np.sqrt(kx**2 + ky**2 + kz**2)
    amp = np.zeros_like(kmag)
    nonzero = kmag > 0
    pvals = np.asarray(pk(kmag[nonzero]), dtype=np.float64)
    if np.any(pvals < 0):
        raise ValueError("power spectrum must be non-negative")
    amp[nonzero] = np.sqrt(pvals * n**3 / box**3)
    return np.fft.irfftn(wk * amp, s=(n, n, n), axes=(0, 1, 2))


def measure_power_spectrum(
    delta: np.ndarray,
    box: float = 1.0,
    n_bins: int = 16,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Spherically averaged power spectrum of a periodic field.

    Returns ``(k_centers, P(k), mode_counts)``; bins are logarithmic
    between the fundamental and the Nyquist wavenumber.
    """
    n = delta.shape[0]
    if delta.shape != (n, n, n):
        raise ValueError("field must be cubic")
    dk = np.fft.rfftn(delta) / n**3
    power = np.abs(dk) ** 2 * box**3
    # rfft stores half the z modes: weight the doubled ones
    weight = np.full(delta.shape[:2] + (n // 2 + 1,), 2.0)
    weight[..., 0] = 1.0
    if n % 2 == 0:
        weight[..., -1] = 1.0
    kx, ky, kz = kvectors(n, box)
    kmag = np.sqrt(kx**2 + ky**2 + kz**2)

    k_min = 2.0 * np.pi / box
    k_max = np.pi * n / box
    edges = np.geomspace(k_min * 0.999, k_max, n_bins + 1)
    idx = np.digitize(kmag.ravel(), edges) - 1
    good = (idx >= 0) & (idx < n_bins) & (kmag.ravel() > 0)
    pw = (power * weight).ravel()[good]
    w = weight.ravel()[good]
    i = idx[good]
    psum = np.bincount(i, weights=pw, minlength=n_bins)
    wsum = np.bincount(i, weights=w, minlength=n_bins)
    ksum = np.bincount(i, weights=(kmag.ravel()[good] * w), minlength=n_bins)
    with np.errstate(invalid="ignore"):
        pk = psum / wsum
        kc = ksum / wsum
    keep = wsum > 0
    return kc[keep], pk[keep], wsum[keep]
