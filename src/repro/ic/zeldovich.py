"""Zel'dovich-approximation initial conditions.

Particles start on a uniform lattice and are displaced by the gradient
of the linear density field's displacement potential:

    psi_k = i k / k^2 * delta_k,   x = q + D(a) psi(q),

with canonical momenta (``p = a^2 dx/dt``, H0 = 1 code units)

    p = a^2 H(a) f(a) D(a) psi(q),

where D is the linear growth factor normalized at z = 0 (``delta_k``
is a z = 0 amplitude realization) and f = dlnD/dlna.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np

from repro.cosmology.expansion import Expansion
from repro.cosmology.growth import GrowthFactor
from repro.cosmology.params import CosmologyParams
from repro.ic.grf import gaussian_random_field
from repro.mesh.assignment import interpolate_mesh
from repro.mesh.greens import kvectors
from repro.utils.periodic import wrap_positions

__all__ = ["ZeldovichIC", "particle_mass"]


def particle_mass(params: CosmologyParams, n_particles: int) -> float:
    """Particle mass in code units (G = 1, H0 = 1, box = 1).

    The comoving matter density is ``rho_m = Omega_m * 3 H0^2/(8 pi G)
    = 3 Omega_m / (8 pi)``, so ``m = 3 Omega_m / (8 pi N)``.
    """
    if n_particles < 1:
        raise ValueError("n_particles must be positive")
    return 3.0 * params.omega_m / (8.0 * np.pi * n_particles)


@dataclass
class ZeldovichIC:
    """Initial-condition generator.

    Parameters
    ----------
    params:
        Cosmology (growth factors, particle mass).
    pk_box:
        z = 0 linear power spectrum in box units
        (see :meth:`repro.cosmology.power_spectrum.PowerSpectrum.in_box_units`).
    n_per_dim:
        Particles per dimension (N = n_per_dim^3, on a cubic lattice).
    mesh_n:
        Mesh resolution of the displacement field (default: 2x the
        particle lattice).
    seed:
        RNG seed of the Gaussian realization.
    """

    params: CosmologyParams
    pk_box: Callable[[np.ndarray], np.ndarray]
    n_per_dim: int
    mesh_n: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_per_dim < 2:
            raise ValueError("n_per_dim must be >= 2")
        if self.mesh_n is None:
            self.mesh_n = 2 * self.n_per_dim
        if self.mesh_n < self.n_per_dim:
            raise ValueError("mesh_n must be >= n_per_dim")
        self.growth = GrowthFactor(self.params)
        self.expansion = Expansion(self.params)

    # -- fields -----------------------------------------------------------------

    def density_field(self) -> np.ndarray:
        """The z = 0 linear density realization on the mesh."""
        return gaussian_random_field(
            self.mesh_n, self.pk_box, box=1.0, seed=self.seed
        )

    def displacement_field(self) -> np.ndarray:
        """Zel'dovich displacement mesh ``(n, n, n, 3)`` at z = 0.

        Nyquist planes are zeroed: the gradient of a real field has no
        representable Nyquist component, and keeping them would break
        ``delta = -div(psi)``.
        """
        delta = self.density_field()
        dk = np.fft.rfftn(delta)
        n = self.mesh_n
        kx, ky, kz = kvectors(n, 1.0)
        k_nyq = np.pi * n
        dk = dk * (
            (np.abs(kx) < k_nyq) & (np.abs(ky) < k_nyq) & (np.abs(kz) < k_nyq)
        )
        k2 = kx**2 + ky**2 + kz**2
        k2[0, 0, 0] = 1.0
        psi = np.empty(delta.shape + (3,))
        for ax, k in enumerate((kx, ky, kz)):
            comp = 1j * k / k2 * dk
            comp[0, 0, 0] = 0.0
            psi[..., ax] = np.fft.irfftn(comp, s=delta.shape, axes=(0, 1, 2))
        return psi

    def lattice(self) -> np.ndarray:
        """Unperturbed particle lattice (cell-centered)."""
        npd = self.n_per_dim
        g = (np.arange(npd) + 0.5) / npd
        return np.stack(np.meshgrid(g, g, g, indexing="ij"), axis=-1).reshape(-1, 3)

    # -- particles ---------------------------------------------------------------

    def generate(self, a_start: float) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Particles at scale factor ``a_start``.

        Returns ``(pos, mom, mass)``: wrapped comoving positions,
        canonical momenta ``p = a^2 dx/dt``, and per-particle masses.
        """
        if not 0 < a_start <= 1:
            raise ValueError("a_start must be in (0, 1]")
        q = self.lattice()
        psi_mesh = self.displacement_field()
        psi = interpolate_mesh(psi_mesh, q, box=1.0, scheme="cic")
        d = float(self.growth.D(a_start))
        f = float(self.growth.f(a_start))
        h = float(self.expansion.H(a_start))
        pos = wrap_positions(q + d * psi)
        mom = (a_start**2 * h * f * d) * psi
        n = len(q)
        mass = np.full(n, particle_mass(self.params, n))
        return pos, mom, mass

    def rms_displacement(self, a_start: float) -> float:
        """RMS Zel'dovich displacement at the starting epoch (a sanity
        measure: should be well below the particle spacing)."""
        psi = self.displacement_field()
        return float(self.growth.D(a_start)) * float(
            np.sqrt((psi**2).sum(axis=-1).mean())
        )
