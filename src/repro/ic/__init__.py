"""Initial conditions: Gaussian random fields + Zel'dovich displacements.

Generates the paper's starting state: particles on a uniform lattice,
displaced (and given velocities) according to a Gaussian random
realization of the linear power spectrum at the starting redshift
(z = 400 in the paper's run).
"""

from repro.ic.grf import gaussian_random_field, measure_power_spectrum
from repro.ic.zeldovich import ZeldovichIC, particle_mass
from repro.ic.lpt2 import Lpt2IC, second_order_displacement

__all__ = [
    "gaussian_random_field",
    "measure_power_spectrum",
    "ZeldovichIC",
    "Lpt2IC",
    "second_order_displacement",
    "particle_mass",
]
