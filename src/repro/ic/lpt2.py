"""Second-order Lagrangian perturbation theory (2LPT) initial conditions.

Zel'dovich (1LPT) starts carry second-order transients that decay only
as ~1/a; production codes therefore initialize with 2LPT:

    x = q + D1 psi1(q) + D2 psi2(q),
    div psi2 = +S,    S = sum_{i<j} [ phi1,ii phi1,jj - (phi1,ij)^2 ],

where phi1 is the first-order displacement potential
(``psi1 = -grad phi1``) and, to excellent accuracy in matter-dominated
eras, ``D2 = -3/7 D1^2`` with logarithmic growth rate ``f2 = 2 f1``
(Bouchet et al. 1995; Scoccimarro 1998).  With these signs the
second-order density correction of an isotropic compression is
positive — the spherical-collapse ``17/21`` coefficient the tests
check.

For a single plane wave the source term vanishes identically and 2LPT
reduces to Zel'dovich — the validation the tests use, alongside the
analytic second-order density of two crossed waves.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.ic.zeldovich import ZeldovichIC, particle_mass
from repro.mesh.assignment import interpolate_mesh
from repro.mesh.greens import kvectors
from repro.utils.periodic import wrap_positions

__all__ = ["second_order_displacement", "Lpt2IC"]


def second_order_displacement(psi1: np.ndarray) -> np.ndarray:
    """2LPT displacement mesh from the first-order displacement mesh.

    ``psi1`` is ``(n, n, n, 3)``; returns ``psi2`` of the same shape,
    with the standard normalization ``div psi2 = +S`` so the full
    second-order term is ``D2 psi2`` with ``D2 = -3/7 D1^2``.
    """
    n = psi1.shape[0]
    if psi1.shape != (n, n, n, 3):
        raise ValueError("psi1 must be (n, n, n, 3)")
    kx, ky, kz = kvectors(n, 1.0)
    ks = (kx, ky, kz)

    # first-order tidal tensor: phi1,ij = -psi1_i,j (psi1 = -grad phi1)
    psik = [np.fft.rfftn(psi1[..., i]) for i in range(3)]
    d = {}
    for i in range(3):
        for j in range(i, 3):
            d[(i, j)] = -np.fft.irfftn(
                1j * ks[j] * psik[i], s=(n, n, n), axes=(0, 1, 2)
            )

    source = (
        d[(0, 0)] * d[(1, 1)]
        + d[(0, 0)] * d[(2, 2)]
        + d[(1, 1)] * d[(2, 2)]
        - d[(0, 1)] ** 2
        - d[(0, 2)] ** 2
        - d[(1, 2)] ** 2
    )

    sk = np.fft.rfftn(source)
    k2 = kx**2 + ky**2 + kz**2
    k2[0, 0, 0] = 1.0
    psi2 = np.empty_like(psi1)
    for i, k in enumerate(ks):
        # div psi2 = +S  =>  psi2_k = -i k S_k / k^2
        comp = -1j * k / k2 * sk
        comp[0, 0, 0] = 0.0
        psi2[..., i] = np.fft.irfftn(comp, s=(n, n, n), axes=(0, 1, 2))
    return psi2


class Lpt2IC(ZeldovichIC):
    """2LPT initial-condition generator (drop-in for ZeldovichIC)."""

    def generate(self, a_start: float) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Particles at ``a_start`` with first + second order terms."""
        if not 0 < a_start <= 1:
            raise ValueError("a_start must be in (0, 1]")
        q = self.lattice()
        psi1_mesh = self.displacement_field()
        psi2_mesh = second_order_displacement(psi1_mesh)
        psi1 = interpolate_mesh(psi1_mesh, q, box=1.0, scheme="cic")
        psi2 = interpolate_mesh(psi2_mesh, q, box=1.0, scheme="cic")

        d1 = float(self.growth.D(a_start))
        f1 = float(self.growth.f(a_start))
        h = float(self.expansion.H(a_start))
        d2 = -3.0 / 7.0 * d1 * d1
        f2 = 2.0 * f1

        pos = wrap_positions(q + d1 * psi1 + d2 * psi2)
        # p = a^2 dx/dt = a^2 H (f1 D1 psi1 + f2 D2 psi2)
        mom = a_start**2 * h * (f1 * d1 * psi1 + f2 * d2 * psi2)
        n = len(q)
        mass = np.full(n, particle_mass(self.params, n))
        return pos, mom, mass
