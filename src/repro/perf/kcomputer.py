"""The K computer machine model (SPARC64 VIIIfx, Tofu interconnect)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import MachineConfig
from repro.constants import (
    FLOPS_PER_INTERACTION,
    KERNEL_FMA_OPS,
    KERNEL_NON_FMA_OPS,
)

__all__ = ["KComputerModel", "K_FULL", "K_PARTIAL"]


@dataclass(frozen=True)
class KComputerModel:
    """Performance characteristics derived from the machine config.

    The force-loop ceiling follows the paper's reasoning: one SIMD
    iteration evaluates two interactions with 17 FMA and 17 non-FMA
    instructions (51 * 2 flops).  The four FMA pipelines retire those
    34 instructions in 17 cycles, so the loop's peak is

        (51 * 2 flops) / (17 cycles) * clock = 6 flops/cycle * 2 GHz
        = 12 Gflops/core,

    i.e. at most 75% of the 16 Gflops LINPACK peak.  The measured
    kernel reaches ``kernel_efficiency`` of that (0.97, "11.65 Gflops
    ... 97% of the theoretical limit").
    """

    machine: MachineConfig = MachineConfig()
    kernel_efficiency: float = 0.97

    def __post_init__(self) -> None:
        if not 0 < self.kernel_efficiency <= 1:
            raise ValueError("kernel_efficiency must be in (0, 1]")

    # -- kernel ceilings --------------------------------------------------------

    @property
    def kernel_cycles_per_simd_iteration(self) -> int:
        """Issue slots: 17 FMA + 17 non-FMA over 2 pipelines each -> 17."""
        return max(KERNEL_FMA_OPS, KERNEL_NON_FMA_OPS)

    @property
    def kernel_flops_per_cycle(self) -> float:
        return 2.0 * FLOPS_PER_INTERACTION / self.kernel_cycles_per_simd_iteration

    @property
    def kernel_peak_per_core(self) -> float:
        """Theoretical force-loop limit in flop/s (12 G on K)."""
        return self.kernel_flops_per_cycle * self.machine.clock_hz

    @property
    def kernel_max_efficiency(self) -> float:
        """Force-loop limit over LINPACK peak (75% on K)."""
        return self.kernel_peak_per_core / self.machine.peak_per_core

    @property
    def kernel_sustained_per_core(self) -> float:
        """Measured-kernel flop/s per core (11.64 G at 97%)."""
        return self.kernel_peak_per_core * self.kernel_efficiency

    # -- projected times ------------------------------------------------------------

    def pp_kernel_seconds(self, interactions: float) -> float:
        """Force-calculation wall time for a number of PP interactions
        spread over the whole machine at the sustained kernel rate."""
        total_rate = self.kernel_sustained_per_core * (
            self.machine.cores_per_node * self.machine.nodes
        )
        return interactions * FLOPS_PER_INTERACTION / total_rate

    def sustained_pflops(self, interactions: float, seconds: float) -> float:
        """The paper's performance metric in Pflops (51 flops per
        interaction over the measured step time)."""
        return interactions * FLOPS_PER_INTERACTION / seconds / 1.0e15


#: The full system (82944 nodes) as configured in the paper's runs.
K_FULL = KComputerModel(MachineConfig())

#: The 24576-node partial system (~30%).
K_PARTIAL = KComputerModel(
    MachineConfig(nodes=24576, torus_shape=(32, 24, 32))
)
