"""Flop accounting using the paper's conventions."""

from __future__ import annotations

from repro.config import MachineConfig
from repro.constants import FLOPS_PER_INTERACTION

__all__ = ["measured_performance", "efficiency", "kernel_limit_flops"]


def measured_performance(interactions: float, seconds: float) -> float:
    """Sustained flop/s: 51 flops per PP interaction over wall time.

    This is deliberately the paper's *underestimate*: "the performance
    is underestimated since we use only the particle-particle
    interaction part".
    """
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    return interactions * FLOPS_PER_INTERACTION / seconds


def efficiency(performance: float, machine: MachineConfig) -> float:
    """Fraction of the machine's LINPACK peak."""
    return performance / machine.peak_total


def kernel_limit_flops(machine: MachineConfig) -> float:
    """Per-core force-loop ceiling (see KComputerModel): the paper's
    12 Gflops on a 16 Gflops core."""
    from repro.perf.kcomputer import KComputerModel

    return KComputerModel(machine).kernel_peak_per_core
