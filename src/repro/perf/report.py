"""Text rendering of Table I-style breakdowns."""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

__all__ = ["format_table1"]

_ROW_ORDER = [
    "PM/density assignment",
    "PM/communication",
    "PM/FFT",
    "PM/acceleration on mesh",
    "PM/force interpolation",
    "PP/local tree",
    "PP/communication",
    "PP/tree construction",
    "PP/tree traversal",
    "PP/force calculation",
    "Domain Decomposition/position update",
    "Domain Decomposition/sampling method",
    "Domain Decomposition/particle exchange",
]


def format_table1(
    columns: Mapping[str, Mapping[str, float]],
    footer: Optional[Mapping[str, Mapping[str, float]]] = None,
    title: str = "CALCULATION COST OF EACH PART PER STEP (seconds)",
) -> str:
    """Render one or more Table I columns side by side.

    Parameters
    ----------
    columns:
        Mapping from column label (e.g. ``"p=24576 (paper)"``) to a
        row -> seconds mapping.
    footer:
        Optional extra scalar rows per column (Pflops, efficiency, ...).
    """
    labels = list(columns)
    width = max(len(l) for l in labels) + 2
    name_w = 42
    lines = [title, "=" * (name_w + width * len(labels))]
    header = " " * name_w + "".join(f"{l:>{width}}" for l in labels)
    lines.append(header)

    def emit(row_name: str, display: str) -> None:
        vals = []
        for l in labels:
            v = columns[l].get(row_name)
            vals.append(f"{v:>{width}.2f}" if v is not None else " " * width)
        lines.append(f"{display:<{name_w}}" + "".join(vals))

    current_section = None
    for row in _ROW_ORDER:
        section, sub = row.split("/", 1)
        if section != current_section:
            total_by_label = {
                l: sum(v for k, v in columns[l].items() if k.startswith(section + "/"))
                for l in labels
            }
            lines.append(
                f"{section + ' (sec/step)':<{name_w}}"
                + "".join(f"{total_by_label[l]:>{width}.2f}" for l in labels)
            )
            current_section = section
        if any(row in columns[l] for l in labels):
            emit(row, "    " + sub)

    totals = {l: sum(columns[l].values()) for l in labels}
    lines.append("-" * (name_w + width * len(labels)))
    lines.append(
        f"{'Total (sec/step)':<{name_w}}"
        + "".join(f"{totals[l]:>{width}.2f}" for l in labels)
    )
    if footer:
        for key in sorted({k for col in footer.values() for k in col}):
            vals = []
            for l in labels:
                v = footer.get(l, {}).get(key)
                vals.append(f"{v:>{width}.3g}" if v is not None else " " * width)
            lines.append(f"{key:<{name_w}}" + "".join(vals))
    return "\n".join(lines)
