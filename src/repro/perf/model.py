"""Analytic Table I model: per-phase scaling with node count.

Each row of Table I follows a mechanistic scaling law in the number of
processes ``p`` (at fixed problem size N, i.e. strong scaling):

* local compute rows (density assignment, interpolation, the whole PP
  section, position update, particle exchange) scale like ``1/p``;
* the FFT is parallelized over at most ``N_PM`` 1-D slabs, which both
  runs saturate: constant;
* "acceleration on mesh" is slab-local work on the FFT processes:
  constant;
* the mesh-conversion communication shrinks sublinearly (relay groups
  grow with p but congestion near the FFT processes does not vanish);
* the sampling method *grows* slowly with p (the root gathers samples
  from every process).

Calibrating the coefficient of every row from the paper's 24576-node
column and predicting the 82944-node column (or vice versa) is the
reproduction test for Table I: the model must land close to the
measured numbers, and the derived aggregate metrics (Pflops,
efficiency) must match the paper's headline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

__all__ = ["PhaseRule", "TableOneModel", "PAPER_TABLE1", "TABLE1_RULES"]


@dataclass(frozen=True)
class PhaseRule:
    """Power-law scaling of one phase: ``t(p) = c * p**exponent``."""

    name: str
    exponent: float

    def coefficient(self, t: float, p: int) -> float:
        return t / p**self.exponent

    def predict(self, c: float, p: int) -> float:
        return c * p**self.exponent


#: Scaling exponents per Table I row (strong scaling in p).
TABLE1_RULES = [
    PhaseRule("PM/density assignment", -1.0),
    PhaseRule("PM/communication", -0.25),
    PhaseRule("PM/FFT", 0.0),
    PhaseRule("PM/acceleration on mesh", 0.0),
    PhaseRule("PM/force interpolation", -1.0),
    PhaseRule("PP/local tree", -1.0),
    PhaseRule("PP/communication", -0.5),
    PhaseRule("PP/tree construction", -1.0),
    PhaseRule("PP/tree traversal", -1.0),
    PhaseRule("PP/force calculation", -1.0),
    PhaseRule("Domain Decomposition/position update", -1.0),
    PhaseRule("Domain Decomposition/sampling method", 0.2),
    PhaseRule("Domain Decomposition/particle exchange", -0.5),
]

#: The paper's measured Table I (seconds per step, N = 10240^3).
PAPER_TABLE1: Dict[int, Dict[str, float]] = {
    24576: {
        "PM/density assignment": 1.44,
        "PM/communication": 2.01,
        "PM/FFT": 4.06,
        "PM/acceleration on mesh": 0.13,
        "PM/force interpolation": 1.64,
        "PP/local tree": 4.00,
        "PP/communication": 3.70,
        "PP/tree construction": 3.82,
        "PP/tree traversal": 17.17,
        "PP/force calculation": 122.18,
        "Domain Decomposition/position update": 0.28,
        "Domain Decomposition/sampling method": 2.94,
        "Domain Decomposition/particle exchange": 3.06,
    },
    82944: {
        "PM/density assignment": 0.44,
        "PM/communication": 1.50,
        "PM/FFT": 4.17,
        "PM/acceleration on mesh": 0.13,
        "PM/force interpolation": 0.50,
        "PP/local tree": 1.26,
        "PP/communication": 2.02,
        "PP/tree construction": 1.52,
        "PP/tree traversal": 4.60,
        "PP/force calculation": 35.72,
        "Domain Decomposition/position update": 0.08,
        "Domain Decomposition/sampling method": 3.80,
        "Domain Decomposition/particle exchange": 1.50,
    },
}

#: Aggregate paper measurements per node count.
PAPER_TOTALS = {
    24576: {
        "total_seconds": 173.84,
        "interactions_per_step": 5.35e15,
        "pflops": 1.53,
        "efficiency": 0.487,
        "ni": 115,
        "nj": 2346,
    },
    82944: {
        "total_seconds": 60.20,
        "interactions_per_step": 5.30e15,
        "pflops": 4.45,
        "efficiency": 0.420,
        "ni": 116,
        "nj": 2328,
    },
}


class TableOneModel:
    """Calibrate Table I rows at one node count, predict another."""

    def __init__(self, rules=None) -> None:
        self.rules = list(rules) if rules is not None else list(TABLE1_RULES)
        self._coeffs: Dict[str, float] = {}
        self._calibrated_at: int | None = None

    def calibrate(self, column: Mapping[str, float], p: int) -> None:
        """Fit the per-row coefficients to a measured column."""
        if p < 1:
            raise ValueError("p must be positive")
        missing = [r.name for r in self.rules if r.name not in column]
        if missing:
            raise ValueError(f"column missing rows: {missing}")
        for rule in self.rules:
            self._coeffs[rule.name] = rule.coefficient(column[rule.name], p)
        self._calibrated_at = p

    def predict(self, p: int) -> Dict[str, float]:
        """Per-row predicted seconds at node count ``p``."""
        if not self._coeffs:
            raise RuntimeError("calibrate() first")
        return {
            rule.name: rule.predict(self._coeffs[rule.name], p)
            for rule in self.rules
        }

    def predict_total(self, p: int) -> float:
        return sum(self.predict(p).values())

    @staticmethod
    def section_totals(column: Mapping[str, float]) -> Dict[str, float]:
        """Sum rows into the paper's PM / PP / DD sections."""
        out: Dict[str, float] = {}
        for key, val in column.items():
            section = key.split("/", 1)[0]
            out[section] = out.get(section, 0.0) + val
        return out
