"""Performance models: the K computer, flop accounting, Table I.

The paper's headline numbers (1.53 / 4.45 Pflops, 48.7% / 42.0%
efficiency, 97%-of-limit kernel) are functions of the machine model and
the algorithm's operation counts.  This package encodes those functions
so the benchmarks can regenerate the numbers from first principles plus
the paper's measured inputs, and project our small-scale measurements
to the paper's scale.
"""

from repro.perf.kcomputer import KComputerModel, K_FULL, K_PARTIAL
from repro.perf.flops import (
    measured_performance,
    efficiency,
    kernel_limit_flops,
)
from repro.perf.memory import MemoryModel
from repro.perf.model import PhaseRule, TableOneModel, PAPER_TABLE1
from repro.perf.relaymodel import MeshExchangeModel, PAPER_RELAY_CASE
from repro.perf.report import format_table1

__all__ = [
    "KComputerModel",
    "K_FULL",
    "K_PARTIAL",
    "measured_performance",
    "efficiency",
    "kernel_limit_flops",
    "PhaseRule",
    "TableOneModel",
    "PAPER_TABLE1",
    "MemoryModel",
    "MeshExchangeModel",
    "PAPER_RELAY_CASE",
    "format_table1",
]
