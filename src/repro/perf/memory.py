"""Memory footprint model: the paper's "~200 TB" for 10240^3 particles.

"The total amount of memory required is ~200TB" — i.e. ~186 bytes per
particle across particle arrays, tree storage, communication buffers
and the PM meshes.  This model itemizes a GreeM-style budget and checks
it against the paper's number and against the K computer's 16 GB/node
limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["MemoryModel"]

_DOUBLE = 8
_FLOAT = 4
_INT64 = 8


@dataclass(frozen=True)
class MemoryModel:
    """Bytes-per-particle accounting for a TreePM production run.

    Attributes
    ----------
    n_particles:
        Total particle count.
    n_mesh:
        Global PM mesh points per dimension.
    nodes:
        Compute nodes sharing the load.
    ghost_fraction:
        Extra particle copies held as ghosts / exchange buffers.
    tree_nodes_per_particle:
        Octree cells per particle (~0.3-0.5 for leaf size ~8-16).
    """

    n_particles: float = 10240**3
    n_mesh: int = 4096
    nodes: int = 24576
    ghost_fraction: float = 0.15
    tree_nodes_per_particle: float = 0.4

    def particle_bytes(self) -> float:
        """Per-particle state: position + velocity (double), the
        carried acceleration, and a 64-bit id."""
        return 3 * _DOUBLE + 3 * _DOUBLE + 3 * _DOUBLE + _INT64

    def tree_bytes_per_particle(self) -> float:
        """Per-particle share of tree storage: center+half (4 floats),
        mass+com (4 doubles), children/range bookkeeping (~4 ints)."""
        per_node = 4 * _FLOAT + 4 * _DOUBLE + 4 * _INT64
        return self.tree_nodes_per_particle * per_node

    def buffer_bytes_per_particle(self) -> float:
        """Ghost copies + alltoall staging (positions + masses)."""
        return self.ghost_fraction * (3 * _DOUBLE + _DOUBLE) * 2

    def exchange_bytes_per_particle(self) -> float:
        """Double-buffered particle exchange / Morton sort: a second
        transient copy of positions and velocities."""
        return 2 * 3 * _DOUBLE

    def mesh_bytes_total(self) -> float:
        """PM meshes: density + potential + 3 force components, double,
        distributed once across the machine (local windows + slabs)."""
        return 5 * _DOUBLE * float(self.n_mesh) ** 3

    def bytes_per_particle(self) -> float:
        return (
            self.particle_bytes()
            + self.tree_bytes_per_particle()
            + self.buffer_bytes_per_particle()
            + self.exchange_bytes_per_particle()
            + self.mesh_bytes_total() / self.n_particles
        )

    def total_bytes(self) -> float:
        return self.bytes_per_particle() * self.n_particles

    def per_node_bytes(self) -> float:
        return self.total_bytes() / self.nodes

    def breakdown(self) -> Dict[str, float]:
        """Terabytes per component."""
        tb = 1.0e12
        return {
            "particles": self.particle_bytes() * self.n_particles / tb,
            "tree": self.tree_bytes_per_particle() * self.n_particles / tb,
            "buffers": self.buffer_bytes_per_particle() * self.n_particles / tb,
            "exchange": self.exchange_bytes_per_particle()
            * self.n_particles
            / tb,
            "meshes": self.mesh_bytes_total() / tb,
            "total": self.total_bytes() / tb,
        }
