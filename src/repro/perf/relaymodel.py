"""Analytic model of the mesh-conversion communication (paper §II-B).

The paper's measured data point: a 4096^3-mesh FFT on 12288 nodes.
With the straightforward global ``MPI_Alltoallv``, the forward (density
3-D -> 1-D slabs) conversion took ~10 s and the backward (potential
slabs -> 3-D) conversion ~3 s; with the relay mesh method using 3
groups they dropped to ~3 s and ~0.3 s, while the FFT itself took ~4 s.

At this scale the exchange is congestion bound, not bandwidth bound
(the slab data per FFT process is only ~10^2 MB).  Two distinct
mechanisms dominate the two directions:

* **forward**: every FFT process receives one message from each process
  whose domain column overlaps its slab (~p/dx senders); thousands of
  concurrent senders per receiver collapse throughput, and the cost is
  ~linear in the senders-per-receiver count ``S``
  (``t = S * t_recv``);
* **backward**: the (few) FFT processes each *send* to ~p/dx
  destinations; messages queue at the sender, and the observed cost
  grows ~quadratically with the sends-per-sender count ``K``
  (``t = c_send * K^2``) — the regime the paper's footnote describes
  ("a FFT process receives meshes from ~4000 processes. Such a large
  number of non-blocking communications do not work concurrently").

Calibrating ``t_recv`` on the direct forward time and ``c_send`` on the
direct backward time, the model *predicts* the relay timings (the
reproduction target): the relay method divides both S and K by the
number of groups (each stage communicates within one group only), at
the price of a cheap reduce/broadcast across groups.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["MeshExchangeModel", "PAPER_RELAY_CASE"]

#: Paper-measured seconds for the 12288-node test (section II-B).
PAPER_RELAY_CASE = {
    "direct": {"forward": 10.0, "backward": 3.0},
    "relay3": {"forward": 3.0, "backward": 0.3},
    "fft": 4.0,
}


@dataclass(frozen=True)
class MeshExchangeModel:
    """Mechanistic message counts + calibrated congestion costs.

    Parameters
    ----------
    p:
        Number of processes.
    divisions:
        3-D domain divisions (product = p).
    n_mesh, n_fft:
        PM mesh size and number of FFT (slab) processes.
    t_recv:
        Effective per-incoming-message cost under receiver congestion.
    c_send:
        Quadratic sender-queue coefficient (seconds per message^2).
    bandwidth:
        Endpoint bandwidth for the byte terms (bytes/s).
    """

    p: int
    divisions: Tuple[int, int, int]
    n_mesh: int
    n_fft: int
    t_recv: float = 1.3e-2
    c_send: float = 5.0e-6
    bandwidth: float = 5.0e9

    def __post_init__(self) -> None:
        dx, dy, dz = self.divisions
        if dx * dy * dz != self.p:
            raise ValueError("divisions must multiply to p")
        if not 1 <= self.n_fft <= self.n_mesh:
            raise ValueError("n_fft must be in [1, n_mesh]")

    # -- message-count geometry -----------------------------------------------

    def senders_per_slab(self, n_groups: int = 1) -> float:
        """Processes of one group whose domain column overlaps one
        slab's x-range (the forward S)."""
        dx = self.divisions[0]
        group_p = self.p / n_groups
        per_x = group_p / dx  # processes sharing one domain x-interval
        slab_overlap = min(dx, dx / self.n_fft + 1.0)  # +1: ghost layers
        return min(per_x * slab_overlap, group_p)

    def sends_per_holder(self, n_groups: int = 1) -> float:
        """Destinations of one slab holder in the backward a2a (the
        backward K): one group's processes overlapping its slab."""
        return self.senders_per_slab(n_groups)

    def slab_bytes(self) -> float:
        return 8.0 * self.n_mesh**3 / self.n_fft

    def _cross_group_seconds(self, n_groups: int) -> float:
        """Reduce (forward) / broadcast (backward) across groups:
        log2(groups) rounds of one slab-sized transfer."""
        if n_groups <= 1:
            return 0.0
        rounds = math.ceil(math.log2(n_groups))
        return rounds * (self.t_recv + self.slab_bytes() / self.bandwidth)

    # -- timings -------------------------------------------------------------------

    def forward_seconds(self, n_groups: int = 1) -> float:
        """Density conversion: receiver-congestion limited."""
        s = self.senders_per_slab(n_groups)
        within = s * self.t_recv + self.slab_bytes() / self.bandwidth
        return within + self._cross_group_seconds(n_groups)

    def backward_seconds(self, n_groups: int = 1) -> float:
        """Potential conversion: sender-queue limited."""
        k = self.sends_per_holder(n_groups)
        within = self.c_send * k * k + self.slab_bytes() / self.bandwidth
        return within + self._cross_group_seconds(n_groups)

    def summary(self, n_groups: int = 1) -> Dict[str, float]:
        return {
            "forward_seconds": self.forward_seconds(n_groups),
            "backward_seconds": self.backward_seconds(n_groups),
            "senders_per_slab": self.senders_per_slab(n_groups),
            "sends_per_holder": self.sends_per_holder(n_groups),
        }

    # -- calibration -------------------------------------------------------------------

    @classmethod
    def calibrated_to_paper(cls) -> "MeshExchangeModel":
        """The 12288-node, 4096^3-mesh configuration with ``t_recv``
        and ``c_send`` fit to the paper's *direct-method* timings; the
        relay timings are then genuine predictions."""
        proto = cls(p=12288, divisions=(16, 24, 32), n_mesh=4096, n_fft=4096)
        s = proto.senders_per_slab(1)
        byte_s = proto.slab_bytes() / proto.bandwidth
        t_recv = (PAPER_RELAY_CASE["direct"]["forward"] - byte_s) / s
        k = proto.sends_per_holder(1)
        c_send = (PAPER_RELAY_CASE["direct"]["backward"] - byte_s) / (k * k)
        return cls(
            p=12288,
            divisions=(16, 24, 32),
            n_mesh=4096,
            n_fft=4096,
            t_recv=t_recv,
            c_send=c_send,
        )
