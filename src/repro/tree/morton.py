"""Morton (Z-order) keys: the spatial sort underlying the linear octree.

Keys interleave the bits of the three integer cell coordinates so that
sorting particles by key groups them into octree cells at every level
simultaneously: the particles of any cell at depth d form a contiguous
run of the sorted order.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MORTON_BITS", "morton_keys", "morton_sort", "spread_bits"]

#: Bits per dimension; 3 * 21 = 63 bits fit an unsigned 64-bit key.
MORTON_BITS = 21


def spread_bits(x: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of each element: bit i moves to bit 3*i."""
    x = np.asarray(x, dtype=np.uint64)
    x &= np.uint64(0x1FFFFF)  # keep 21 bits
    x = (x | (x << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x << np.uint64(2))) & np.uint64(0x1249249249249249)
    return x


def morton_keys(
    pos: np.ndarray, origin=0.0, size: float = 1.0, bits: int = MORTON_BITS
) -> np.ndarray:
    """Morton keys of positions inside the cube ``[origin, origin+size)^3``.

    Positions exactly on the upper boundary are clamped into the last
    cell.  Raises if any position lies outside the cube.
    """
    pos = np.asarray(pos, dtype=np.float64)
    if bits < 1 or bits > MORTON_BITS:
        raise ValueError(f"bits must be in [1, {MORTON_BITS}]")
    scaled = (pos - origin) / size
    if np.any(scaled < 0.0) or np.any(scaled > 1.0):
        raise ValueError("positions outside the tree root cube")
    n_cells = 1 << bits
    cells = np.minimum((scaled * n_cells).astype(np.uint64), n_cells - 1)
    return (
        (spread_bits(cells[:, 0]) << np.uint64(2))
        | (spread_bits(cells[:, 1]) << np.uint64(1))
        | spread_bits(cells[:, 2])
    )


def morton_sort(pos: np.ndarray, origin=0.0, size: float = 1.0) -> np.ndarray:
    """Permutation sorting positions into Morton order."""
    return np.argsort(morton_keys(pos, origin, size), kind="stable")
