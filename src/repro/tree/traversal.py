"""Barnes' modified tree traversal and the tree force solver.

A single traversal per *group* of particles builds one interaction list
shared by the whole group (Barnes 1990), reducing traversal cost by the
group size ``<Ni>`` at the price of longer lists ``<Nj>`` — the paper
discusses exactly this trade-off (optimum ``<Ni> ~ 100`` on K computer).

With a force split attached, nodes and particles farther than the
cutoff radius from the group are culled, so the list length saturates
as the paper describes (``<Nj> ~ 2300`` vs ~6x more for the pure tree
of the 2009-2010 Gordon Bell codes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.pp.kernel import InteractionCounter, PPKernel
from repro.tree.octree import Octree
from repro.utils.periodic import minimum_image

__all__ = ["TraversalStats", "TreeSolver", "tree_forces"]


def _multi_arange(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(lo[i], hi[i])`` without a Python loop."""
    lens = hi - lo
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.concatenate([[0], np.cumsum(lens)[:-1]])
    return np.arange(total, dtype=np.int64) - np.repeat(starts, lens) + np.repeat(
        lo, lens
    )


@dataclass
class TraversalStats:
    """Counters describing one force evaluation."""

    n_groups: int = 0
    nodes_visited: int = 0
    pp_from_particles: int = 0
    pp_from_nodes: int = 0
    counter: InteractionCounter = field(default_factory=InteractionCounter)

    @property
    def mean_group_size(self) -> float:
        """The paper's <Ni>."""
        return self.counter.mean_group_size

    @property
    def mean_list_length(self) -> float:
        """The paper's <Nj> (particles + accepted nodes per list)."""
        return self.counter.mean_list_length

    @property
    def interactions(self) -> int:
        return self.counter.interactions


class TreeSolver:
    """Short-range force solver: octree + group traversal + PP kernel.

    Parameters
    ----------
    box:
        Periodic box size (ignored when ``periodic=False``).
    theta:
        Opening angle of the multipole acceptance criterion.
    leaf_size, group_size:
        Tree construction / traversal granularity.
    split:
        Force split for TreePM mode (``None`` = pure tree, the
        Gordon-Bell-1990s baseline).
    eps:
        Plummer softening.
    periodic:
        Apply minimum-image displacements during traversal (requires
        the interaction range to be < box/2 when a split is present).
    use_quadrupole:
        Include node quadrupole moments (pure-tree mode; with a split
        the quadrupole term is scaled by the same cutoff factor, a
        second-order approximation).
    use_fast_rsqrt:
        Forward the emulated HPC-ACE rsqrt path to the PP kernel.
    ewald_correction:
        Add the tabulated Ewald image-lattice correction to every pair
        interaction — the exact-periodic pure-tree configuration
        (GADGET-style).  Requires ``periodic=True`` and no force split.
    """

    def __init__(
        self,
        box: float = 1.0,
        theta: float = 0.5,
        leaf_size: int = 8,
        group_size: int = 64,
        split=None,
        eps: float = 0.0,
        G: float = 1.0,
        periodic: bool = True,
        use_quadrupole: bool = False,
        use_fast_rsqrt: bool = False,
        ewald_correction: bool = False,
    ) -> None:
        if theta <= 0:
            raise ValueError("theta must be positive")
        self.box = float(box)
        self.theta = float(theta)
        self.leaf_size = int(leaf_size)
        self.group_size = int(group_size)
        self.split = split
        self.eps = float(eps)
        self.G = float(G)
        self.periodic = bool(periodic)
        self.use_quadrupole = bool(use_quadrupole)
        self.use_fast_rsqrt = bool(use_fast_rsqrt)
        if split is not None and periodic and split.cutoff_radius > box / 2:
            raise ValueError("cutoff radius must be < box/2 for periodic runs")
        self._ewald_table = None
        if ewald_correction:
            if not periodic or split is not None:
                raise ValueError(
                    "ewald_correction needs periodic pure-tree mode"
                )
            from repro.forces.ewald_table import get_correction_table

            self._ewald_table = get_correction_table(box=self.box)

    # -- public API -----------------------------------------------------------

    def build(self, pos: np.ndarray, mass: np.ndarray) -> Octree:
        """Construct the octree (the paper's "tree construction" phase)."""
        origin = 0.0 if self.periodic else np.min(pos, axis=0)
        size = self.box if self.periodic else float(
            np.max(np.ptp(pos, axis=0)) * (1 + 1e-12) + 1e-300
        )
        return Octree(
            pos,
            mass,
            size=size,
            origin=origin,
            leaf_size=self.leaf_size,
            compute_quadrupole=self.use_quadrupole,
        )

    def forces(
        self,
        pos: np.ndarray,
        mass: np.ndarray,
        tree: Optional[Octree] = None,
        targets_mask: Optional[np.ndarray] = None,
        ledger=None,
    ) -> Tuple[np.ndarray, TraversalStats]:
        """Short-range accelerations on all particles.

        Returns ``(acc, stats)`` with ``acc`` in input particle order.

        Parameters
        ----------
        targets_mask:
            Optional boolean mask over the input particles; groups
            containing no masked particle are skipped entirely (used by
            the distributed driver, where ghost particles are sources
            but not targets).  Unmasked rows of the result are zero.
        ledger:
            Optional :class:`repro.utils.timer.TimingLedger` receiving
            the paper's "PP/tree traversal" and "PP/force calculation"
            phase split.
        """
        pos = np.asarray(pos, dtype=np.float64)
        mass = np.asarray(mass, dtype=np.float64)
        if tree is None:
            tree = self.build(pos, mass)
        stats = TraversalStats()
        kernel = PPKernel(
            split=self.split,
            eps=self.eps,
            G=self.G,
            use_fast_rsqrt=self.use_fast_rsqrt,
            counter=stats.counter,
            box=self.box if self.periodic else None,
            ewald_table=self._ewald_table,
        )
        mask_sorted = None
        if targets_mask is not None:
            targets_mask = np.asarray(targets_mask, dtype=bool)
            if len(targets_mask) != len(pos):
                raise ValueError("targets_mask length mismatch")
            mask_sorted = targets_mask[tree.perm]
        acc_sorted = np.zeros_like(tree.pos_sorted)
        for g in tree.group_nodes(self.group_size):
            if mask_sorted is not None:
                glo, ghi = tree.node_lo[g], tree.node_hi[g]
                if not mask_sorted[glo:ghi].any():
                    continue
            self._group_force(tree, g, kernel, acc_sorted, stats, ledger)
            stats.n_groups += 1
        if mask_sorted is not None:
            acc_sorted[~mask_sorted] = 0.0
        acc = np.empty_like(acc_sorted)
        acc[tree.perm] = acc_sorted
        return acc, stats

    # -- internals --------------------------------------------------------------

    def _group_force(
        self,
        tree: Octree,
        g: int,
        kernel: PPKernel,
        acc_sorted: np.ndarray,
        stats: TraversalStats,
        ledger=None,
    ) -> None:
        import time as _time

        glo, ghi = tree.node_lo[g], tree.node_hi[g]
        gc = tree.node_center[g]
        gr = tree.node_half[g] * np.sqrt(3.0)
        rcut = self.split.cutoff_radius if self.split is not None else None

        t0 = _time.perf_counter()
        part_idx, node_idx = self._traverse(tree, gc, gr, rcut, stats)
        t1 = _time.perf_counter()
        if ledger is not None:
            ledger.add("PP/tree traversal", t1 - t0)

        targets = tree.pos_sorted[glo:ghi]
        src_pos = tree.pos_sorted[part_idx]
        src_mass = tree.mass_sorted[part_idx]
        node_pos = tree.node_com[node_idx]
        node_mass = tree.node_mass[node_idx]
        stats.pp_from_particles += len(part_idx) * (ghi - glo)
        stats.pp_from_nodes += len(node_idx) * (ghi - glo)

        all_pos = np.vstack([src_pos, node_pos])
        all_mass = np.concatenate([src_mass, node_mass])
        # periodicity is handled per pair inside the kernel (box set on
        # the kernel when self.periodic)
        t2 = _time.perf_counter()
        acc_sorted[glo:ghi] += kernel.accumulate(targets, all_pos, all_mass)
        if self.use_quadrupole and len(node_idx):
            acc_sorted[glo:ghi] += self._quadrupole_acc(
                targets, node_pos, tree.node_quad[node_idx]
            )
        if ledger is not None:
            ledger.add("PP/force calculation", _time.perf_counter() - t2)

    def _traverse(self, tree, gc, gr, rcut, stats):
        """Breadth-first vectorized traversal: the whole frontier is
        classified (cull / accept / dump leaf / open) with array ops."""
        node_parts: list = []
        leaf_lo: list = []
        leaf_hi: list = []
        frontier = np.array([0], dtype=np.int64)
        sqrt3 = np.sqrt(3.0)
        while frontier.size:
            stats.nodes_visited += frontier.size
            dx = tree.node_com[frontier] - gc
            if self.periodic:
                dx -= self.box * np.round(dx / self.box)
            dist = np.sqrt(np.einsum("ij,ij->i", dx, dx))
            half = tree.node_half[frontier]
            keep = np.ones(frontier.size, dtype=bool)
            if rcut is not None:
                keep = dist - gr - half * sqrt3 <= rcut
            gap = dist - gr
            accept = keep & (gap > 0) & (2.0 * half < self.theta * gap)
            rest = keep & ~accept
            is_leaf = rest & tree.node_is_leaf[frontier]
            to_open = rest & ~tree.node_is_leaf[frontier]

            if accept.any():
                node_parts.append(frontier[accept])
            if is_leaf.any():
                leaf_lo.append(tree.node_lo[frontier[is_leaf]])
                leaf_hi.append(tree.node_hi[frontier[is_leaf]])
            if to_open.any():
                kids = tree.node_children[frontier[to_open]].ravel()
                frontier = kids[kids >= 0]
            else:
                frontier = np.empty(0, dtype=np.int64)

        node_idx = (
            np.concatenate(node_parts)
            if node_parts
            else np.empty(0, dtype=np.int64)
        )
        if leaf_lo:
            lo = np.concatenate(leaf_lo)
            hi = np.concatenate(leaf_hi)
            part_idx = _multi_arange(lo, hi)
        else:
            part_idx = np.empty(0, dtype=np.int64)
        return part_idx, node_idx

    def _quadrupole_acc(
        self, targets: np.ndarray, node_pos: np.ndarray, quads: np.ndarray
    ) -> np.ndarray:
        """Quadrupole correction (traceless Q convention):

        ``a = G [ (Q r) / r^5 - (5/2) (r.Q.r) r / r^7 ]`` with
        ``r = target - node`` and an extra factor of the split's
        short-range cutoff when one is attached.
        """
        r = targets[:, None, :] - node_pos[None, :, :]  # (T, S, 3)
        if self.periodic:
            r -= self.box * np.round(r / self.box)
        r2 = np.einsum("tsk,tsk->ts", r, r) + self.eps**2
        r1 = np.sqrt(r2)
        inv5 = r2**-2.5
        qr = np.einsum("sab,tsb->tsa", quads, r)
        rqr = np.einsum("tsa,tsa->ts", qr, r)
        acc = qr * inv5[..., None] - 2.5 * (rqr * inv5 / r2)[..., None] * r
        if self.split is not None:
            acc = acc * self.split.short_range_factor(r1)[..., None]
        return self.G * np.sum(acc, axis=1)


def tree_forces(
    pos: np.ndarray,
    mass: np.ndarray,
    theta: float = 0.5,
    eps: float = 0.0,
    G: float = 1.0,
    split=None,
    box: float = 1.0,
    periodic: bool = False,
    group_size: int = 64,
    leaf_size: int = 8,
    use_quadrupole: bool = False,
    ewald_correction: bool = False,
) -> Tuple[np.ndarray, TraversalStats]:
    """One-shot convenience wrapper around :class:`TreeSolver`."""
    solver = TreeSolver(
        box=box,
        theta=theta,
        leaf_size=leaf_size,
        group_size=group_size,
        split=split,
        eps=eps,
        G=G,
        periodic=periodic,
        use_quadrupole=use_quadrupole,
        ewald_correction=ewald_correction,
    )
    return solver.forces(pos, mass)
