"""Barnes' modified tree traversal and the tree force solver.

A single traversal per *group* of particles builds one interaction list
shared by the whole group (Barnes 1990), reducing traversal cost by the
group size ``<Ni>`` at the price of longer lists ``<Nj>`` — the paper
discusses exactly this trade-off (optimum ``<Ni> ~ 100`` on K computer).

With a force split attached, nodes and particles farther than the
cutoff radius from the group are culled, so the list length saturates
as the paper describes (``<Nj> ~ 2300`` vs ~6x more for the pure tree
of the 2009-2010 Gordon Bell codes).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.native import certify as _native_certify
from repro.native import traverse as _native_traverse
from repro.pp.kernel import InteractionCounter, PPKernel
from repro.pp.plan import InteractionPlan, PlanExecutor, multi_arange
from repro.tree.octree import Octree
from repro.utils.periodic import minimum_image

__all__ = [
    "TraversalStats",
    "TreeSolver",
    "certify_no_wrap_numpy",
    "traverse_all_numpy",
    "tree_forces",
]

_multi_arange = multi_arange


@dataclass
class TraversalStats:
    """Counters describing one force evaluation."""

    n_groups: int = 0
    nodes_visited: int = 0
    pp_from_particles: int = 0
    pp_from_nodes: int = 0
    counter: InteractionCounter = field(default_factory=InteractionCounter)

    @property
    def mean_group_size(self) -> float:
        """The paper's <Ni>."""
        return self.counter.mean_group_size

    @property
    def mean_list_length(self) -> float:
        """The paper's <Nj> (particles + accepted nodes per list)."""
        return self.counter.mean_list_length

    @property
    def interactions(self) -> int:
        return self.counter.interactions


class TreeSolver:
    """Short-range force solver: octree + group traversal + PP kernel.

    Parameters
    ----------
    box:
        Periodic box size (ignored when ``periodic=False``).
    theta:
        Opening angle of the multipole acceptance criterion.
    leaf_size, group_size:
        Tree construction / traversal granularity.
    split:
        Force split for TreePM mode (``None`` = pure tree, the
        Gordon-Bell-1990s baseline).
    eps:
        Plummer softening.
    periodic:
        Apply minimum-image displacements during traversal (requires
        the interaction range to be < box/2 when a split is present).
    use_quadrupole:
        Include node quadrupole moments (pure-tree mode; with a split
        the quadrupole term is scaled by the same cutoff factor, a
        second-order approximation).
    use_fast_rsqrt:
        Forward the emulated HPC-ACE rsqrt path to the PP kernel.
    ewald_correction:
        Add the tabulated Ewald image-lattice correction to every pair
        interaction — the exact-periodic pure-tree configuration
        (GADGET-style).  Requires ``periodic=True`` and no force split.
    use_plan:
        Evaluate forces through the flat interaction-plan engine
        (default): one traversal pass emits a CSR plan for all groups,
        then a batched executor sweeps it.  ``False`` selects the legacy
        interleaved per-group path (kept for A/B comparison); in float64
        mode both produce bitwise-identical forces.
    plan_float32:
        Run the plan executor's pair arithmetic in single precision,
        mirroring the paper's float32 Phantom-GRAPE kernel (plan mode
        only; forces are then approximate at the 1e-7 level).
    plan_pair_budget:
        Target pair count per executor batch.  The default keeps every
        scratch board cache-resident, which dominates throughput on the
        memory-bound sweep.
    plan_native:
        Allow the plan executor to sweep through the compiled
        plan-sweep kernel when one is available (bitwise identical to
        the numpy pipeline; see :mod:`repro.pp.native`).  ``False``
        pins the pure-numpy executor, e.g. for A/B timing.
    """

    def __init__(
        self,
        box: float = 1.0,
        theta: float = 0.5,
        leaf_size: int = 8,
        group_size: int = 64,
        split=None,
        eps: float = 0.0,
        G: float = 1.0,
        periodic: bool = True,
        use_quadrupole: bool = False,
        use_fast_rsqrt: bool = False,
        ewald_correction: bool = False,
        use_plan: bool = True,
        plan_float32: bool = False,
        plan_pair_budget: int = 1 << 17,
        plan_native: bool = True,
    ) -> None:
        if theta <= 0:
            raise ValueError("theta must be positive")
        self.box = float(box)
        self.theta = float(theta)
        self.leaf_size = int(leaf_size)
        self.group_size = int(group_size)
        self.split = split
        self.eps = float(eps)
        self.G = float(G)
        self.periodic = bool(periodic)
        self.use_quadrupole = bool(use_quadrupole)
        self.use_fast_rsqrt = bool(use_fast_rsqrt)
        self.use_plan = bool(use_plan)
        self.plan_float32 = bool(plan_float32)
        self._executor = PlanExecutor(
            dtype=np.float32 if plan_float32 else np.float64,
            pair_budget=plan_pair_budget,
            use_native=plan_native,
        )
        #: when True, every plan-path ``forces`` call keeps the inputs
        #: and monopole output of its sweep in ``last_sweep`` so the SDC
        #: auditor can re-execute a sampled sub-plan through the
        #: reference pipeline and compare bitwise (ABFT spot-check)
        self.retain_last_sweep = False
        self.last_sweep: Optional[dict] = None
        if split is not None and periodic and split.cutoff_radius > box / 2:
            raise ValueError("cutoff radius must be < box/2 for periodic runs")
        self._ewald_table = None
        if ewald_correction:
            if not periodic or split is not None:
                raise ValueError(
                    "ewald_correction needs periodic pure-tree mode"
                )
            from repro.forces.ewald_table import get_correction_table

            self._ewald_table = get_correction_table(box=self.box)

    # -- public API -----------------------------------------------------------

    def build(self, pos: np.ndarray, mass: np.ndarray) -> Octree:
        """Construct the octree (the paper's "tree construction" phase)."""
        origin = 0.0 if self.periodic else np.min(pos, axis=0)
        size = self.box if self.periodic else float(
            np.max(np.ptp(pos, axis=0)) * (1 + 1e-12) + 1e-300
        )
        return Octree(
            pos,
            mass,
            size=size,
            origin=origin,
            leaf_size=self.leaf_size,
            compute_quadrupole=self.use_quadrupole,
        )

    def forces(
        self,
        pos: np.ndarray,
        mass: np.ndarray,
        tree: Optional[Octree] = None,
        targets_mask: Optional[np.ndarray] = None,
        ledger=None,
    ) -> Tuple[np.ndarray, TraversalStats]:
        """Short-range accelerations on all particles.

        Returns ``(acc, stats)`` with ``acc`` in input particle order.

        Parameters
        ----------
        targets_mask:
            Optional boolean mask over the input particles; groups
            containing no masked particle are skipped entirely (used by
            the distributed driver, where ghost particles are sources
            but not targets).  Unmasked rows of the result are zero.
        ledger:
            Optional :class:`repro.utils.timer.TimingLedger` receiving
            the paper's "PP/tree traversal" and "PP/force calculation"
            phase split.
        """
        pos = np.asarray(pos, dtype=np.float64)
        mass = np.asarray(mass, dtype=np.float64)
        if tree is None:
            tree = self.build(pos, mass)
        stats = TraversalStats()
        kernel = PPKernel(
            split=self.split,
            eps=self.eps,
            G=self.G,
            use_fast_rsqrt=self.use_fast_rsqrt,
            counter=stats.counter,
            box=self.box if self.periodic else None,
            ewald_table=self._ewald_table,
        )
        mask_sorted = None
        if targets_mask is not None:
            targets_mask = np.asarray(targets_mask, dtype=bool)
            if len(targets_mask) != len(pos):
                raise ValueError("targets_mask length mismatch")
            mask_sorted = targets_mask[tree.perm]
        acc_sorted = np.zeros_like(tree.pos_sorted)
        if self.use_plan:
            if ledger is not None:
                t0 = time.perf_counter()
            plan = self.build_plan(tree, mask_sorted=mask_sorted, stats=stats)
            if ledger is not None:
                t1 = time.perf_counter()
                ledger.add("PP/tree traversal", t1 - t0)
            native_before = self._executor.native_runs
            self._executor.execute(
                plan,
                kernel,
                tree.pos_sorted,
                tree.mass_sorted,
                tree.node_com,
                tree.node_mass,
                out=acc_sorted,
            )
            if self.retain_last_sweep:
                # monopole output *before* quadrupole terms and mask
                # zeroing: exactly what re-executing the plan reproduces
                self.last_sweep = {
                    "plan": plan,
                    "pos_sorted": tree.pos_sorted,
                    "mass_sorted": tree.mass_sorted,
                    "node_com": tree.node_com,
                    "node_mass": tree.node_mass,
                    "acc_sorted": acc_sorted.copy(),
                    "mask_sorted": mask_sorted,
                    "native_used": self._executor.native_runs > native_before,
                    "kernel_config": {
                        "split": self.split,
                        "eps": self.eps,
                        "G": self.G,
                        "use_fast_rsqrt": self.use_fast_rsqrt,
                        "box": self.box if self.periodic else None,
                        "ewald_table": self._ewald_table,
                    },
                }
            if self.use_quadrupole:
                self._plan_quadrupole(tree, plan, acc_sorted)
            if ledger is not None:
                ledger.add("PP/force calculation", time.perf_counter() - t1)
        else:
            for g in tree.group_nodes(self.group_size):
                if mask_sorted is not None:
                    glo, ghi = tree.node_lo[g], tree.node_hi[g]
                    if not mask_sorted[glo:ghi].any():
                        continue
                self._group_force(tree, g, kernel, acc_sorted, stats, ledger)
                stats.n_groups += 1
        if mask_sorted is not None:
            acc_sorted[~mask_sorted] = 0.0
        acc = np.empty_like(acc_sorted)
        acc[tree.perm] = acc_sorted
        return acc, stats

    # -- the interaction plan ----------------------------------------------------

    def build_plan(
        self,
        tree: Octree,
        mask_sorted: Optional[np.ndarray] = None,
        stats: Optional[TraversalStats] = None,
    ) -> InteractionPlan:
        """Traverse every group once and emit the flat interaction plan.

        Groups containing no masked target are omitted entirely (the
        ghost-as-source-only case of the distributed driver).  For
        periodic solvers the plan carries per-entry image shifts and the
        per-group ``no_wrap`` certificate the executor uses to drop the
        per-pair minimum-image round where it is provably a no-op.
        """
        if stats is None:
            stats = TraversalStats()
        rcut = self.split.cutoff_radius if self.split is not None else None
        groups = np.array(tree.group_nodes(self.group_size), dtype=np.int64)
        groups = groups[np.argsort(tree.node_lo[groups], kind="stable")]
        if mask_sorted is not None:
            cs = np.concatenate([[0], np.cumsum(mask_sorted)])
            has = cs[tree.node_hi[groups]] - cs[tree.node_lo[groups]] > 0
            groups = groups[has]

        (part_ptr, part_idx, node_ptr, node_idx,
         part_shift, node_shift) = self._traverse_all(tree, groups, rcut, stats)

        tcnt = tree.node_hi[groups] - tree.node_lo[groups]
        stats.n_groups += len(groups)
        stats.pp_from_particles += int(np.dot(np.diff(part_ptr), tcnt))
        stats.pp_from_nodes += int(np.dot(np.diff(node_ptr), tcnt))

        plan = InteractionPlan(
            group_nodes=groups,
            group_lo=tree.node_lo[groups],
            group_hi=tree.node_hi[groups],
            part_ptr=part_ptr,
            part_idx=part_idx,
            node_ptr=node_ptr,
            node_idx=node_idx,
            part_shift=part_shift,
            node_shift=node_shift,
        )
        if self.periodic and plan.n_groups:
            plan.no_wrap = self._certify_no_wrap(tree, plan)
        return plan

    def _traverse_all(self, tree, groups, rcut, stats):
        """Plan-construction traversal over all groups at once.

        Runs in the native kernel when available (bitwise self-tested
        against :func:`traverse_all_numpy`), else in the vectorized
        numpy sweep.  Both return identical plans bit for bit.
        """
        native = _native_traverse.traverse_all(
            tree, groups, rcut, self.theta, self.periodic, self.box, stats
        )
        if native is not None:
            return native
        return traverse_all_numpy(
            tree, groups, rcut, self.theta, self.periodic, self.box, stats
        )

    def _certify_no_wrap(self, tree: Octree, plan: InteractionPlan) -> np.ndarray:
        """Per-group proof that every pair displacement fits in box/2.

        Runs in the native kernel when available (bitwise self-tested
        against :func:`certify_no_wrap_numpy`), else in the vectorized
        numpy sweep.  Both return identical verdicts bit for bit.
        """
        native = _native_certify.certify(tree, plan, self.box)
        if native is not None:
            return native
        return certify_no_wrap_numpy(tree, plan, self.box)

    def _plan_quadrupole(
        self, tree: Octree, plan: InteractionPlan, acc_sorted: np.ndarray
    ) -> None:
        """Per-group quadrupole corrections for the plan path (optional
        mode; identical arithmetic to the legacy loop)."""
        for i in range(plan.n_groups):
            nlo, nhi = plan.node_ptr[i], plan.node_ptr[i + 1]
            if nhi == nlo:
                continue
            glo, ghi = plan.group_lo[i], plan.group_hi[i]
            nidx = plan.node_idx[nlo:nhi]
            acc_sorted[glo:ghi] += self._quadrupole_acc(
                tree.pos_sorted[glo:ghi],
                tree.node_com[nidx],
                tree.node_quad[nidx],
            )

    # -- internals --------------------------------------------------------------

    def _group_force(
        self,
        tree: Octree,
        g: int,
        kernel: PPKernel,
        acc_sorted: np.ndarray,
        stats: TraversalStats,
        ledger=None,
    ) -> None:
        glo, ghi = tree.node_lo[g], tree.node_hi[g]
        gc = tree.node_center[g]
        gr = tree.node_half[g] * np.sqrt(3.0)
        rcut = self.split.cutoff_radius if self.split is not None else None

        if ledger is not None:
            t0 = time.perf_counter()
        part_idx, node_idx, _, _ = self._traverse(tree, gc, gr, rcut, stats)
        if ledger is not None:
            ledger.add("PP/tree traversal", time.perf_counter() - t0)

        targets = tree.pos_sorted[glo:ghi]
        src_pos = tree.pos_sorted[part_idx]
        src_mass = tree.mass_sorted[part_idx]
        node_pos = tree.node_com[node_idx]
        node_mass = tree.node_mass[node_idx]
        stats.pp_from_particles += len(part_idx) * (ghi - glo)
        stats.pp_from_nodes += len(node_idx) * (ghi - glo)

        all_pos = np.vstack([src_pos, node_pos])
        all_mass = np.concatenate([src_mass, node_mass])
        # periodicity is handled per pair inside the kernel (box set on
        # the kernel when self.periodic)
        if ledger is not None:
            t2 = time.perf_counter()
        acc_sorted[glo:ghi] += kernel.accumulate(targets, all_pos, all_mass)
        if self.use_quadrupole and len(node_idx):
            acc_sorted[glo:ghi] += self._quadrupole_acc(
                targets, node_pos, tree.node_quad[node_idx]
            )
        if ledger is not None:
            ledger.add("PP/force calculation", time.perf_counter() - t2)

    def _traverse(self, tree, gc, gr, rcut, stats, want_shift=False):
        """Breadth-first vectorized traversal: the whole frontier is
        classified (cull / accept / dump leaf / open) with array ops.

        With ``want_shift`` (plan construction in a periodic box) the
        periodic image shift applied to each accepted node / dumped leaf
        is also returned, per resulting list entry.
        """
        node_parts: list = []
        node_shifts: list = []
        leaf_lo: list = []
        leaf_hi: list = []
        leaf_shifts: list = []
        frontier = np.array([0], dtype=np.int64)
        sqrt3 = np.sqrt(3.0)
        want_shift = want_shift and self.periodic
        while frontier.size:
            stats.nodes_visited += frontier.size
            dx = tree.node_com[frontier] - gc
            shift = None
            if self.periodic:
                if want_shift:
                    shift = np.round(dx / self.box)
                    shift *= self.box
                    dx -= shift
                else:
                    minimum_image(dx, self.box, out=dx)
            dist = np.sqrt(np.einsum("ij,ij->i", dx, dx))
            half = tree.node_half[frontier]
            keep = np.ones(frontier.size, dtype=bool)
            if rcut is not None:
                keep = dist - gr - half * sqrt3 <= rcut
            gap = dist - gr
            accept = keep & (gap > 0) & (2.0 * half < self.theta * gap)
            rest = keep & ~accept
            is_leaf = rest & tree.node_is_leaf[frontier]
            to_open = rest & ~tree.node_is_leaf[frontier]

            if accept.any():
                node_parts.append(frontier[accept])
                if want_shift:
                    node_shifts.append(shift[accept])
            if is_leaf.any():
                leaf_lo.append(tree.node_lo[frontier[is_leaf]])
                leaf_hi.append(tree.node_hi[frontier[is_leaf]])
                if want_shift:
                    leaf_shifts.append(shift[is_leaf])
            if to_open.any():
                kids = tree.node_children[frontier[to_open]].ravel()
                frontier = kids[kids >= 0]
            else:
                frontier = np.empty(0, dtype=np.int64)

        node_idx = (
            np.concatenate(node_parts)
            if node_parts
            else np.empty(0, dtype=np.int64)
        )
        if leaf_lo:
            lo = np.concatenate(leaf_lo)
            hi = np.concatenate(leaf_hi)
            part_idx = _multi_arange(lo, hi)
        else:
            part_idx = np.empty(0, dtype=np.int64)
        part_shift = node_shift = None
        if want_shift:
            node_shift = (
                np.concatenate(node_shifts)
                if node_shifts
                else np.empty((0, 3))
            )
            if leaf_lo:
                # a dumped leaf's particles all use the leaf's image
                part_shift = np.repeat(
                    np.concatenate(leaf_shifts), hi - lo, axis=0
                )
            else:
                part_shift = np.empty((0, 3))
        return part_idx, node_idx, part_shift, node_shift

    def _quadrupole_acc(
        self, targets: np.ndarray, node_pos: np.ndarray, quads: np.ndarray
    ) -> np.ndarray:
        """Quadrupole correction (traceless Q convention):

        ``a = G [ (Q r) / r^5 - (5/2) (r.Q.r) r / r^7 ]`` with
        ``r = target - node``, Plummer-softened denominators, and an
        extra factor of the split's short-range cutoff when one is
        attached.  The cutoff is evaluated at the *unsoftened*
        separation, matching the monopole kernel — evaluating it at the
        softened radius (a former bug) under-weighted the correction
        whenever ``eps`` is comparable to ``rcut``.
        """
        r = targets[:, None, :] - node_pos[None, :, :]  # (T, S, 3)
        if self.periodic:
            minimum_image(r, self.box, out=r)
        r2 = np.einsum("tsk,tsk->ts", r, r)
        r2s = r2 + self.eps**2
        inv5 = r2s**-2.5
        qr = np.einsum("sab,tsb->tsa", quads, r)
        rqr = np.einsum("tsa,tsa->ts", qr, r)
        acc = qr * inv5[..., None] - 2.5 * (rqr * inv5 / r2s)[..., None] * r
        if self.split is not None:
            acc = acc * self.split.short_range_factor(np.sqrt(r2))[..., None]
        return self.G * np.sum(acc, axis=1)


def traverse_all_numpy(tree, groups, rcut, theta, periodic, box, stats):
    """One batched breadth-first sweep over ``(group, node)`` pairs
    for every group at once.

    Each pair's cull / accept / dump-leaf / open decision is the
    same elementwise arithmetic as :meth:`TreeSolver._traverse`, and
    the final stable regrouping by group index restores each group's
    exact BFS emission order, so the resulting plan is bit-identical
    to running the per-group traversal in a Python loop — at a small
    fraction of the interpreter overhead.  The native kernel
    (:mod:`repro.native.traverse`) emits the same plan group by group;
    this function is its fallback and self-test reference.
    """
    Gn = len(groups)
    want_shift = periodic
    empty_idx = np.empty(0, dtype=np.int64)
    empty_shift = np.empty((0, 3)) if want_shift else None
    if Gn == 0:
        zp = np.zeros(1, dtype=np.int64)
        return zp, empty_idx, zp.copy(), empty_idx.copy(), empty_shift, empty_shift

    sqrt3 = np.sqrt(3.0)
    gcenters = tree.node_center[groups]
    gradii = tree.node_half[groups] * sqrt3
    gidx = np.arange(Gn, dtype=np.int64)
    nodes = np.zeros(Gn, dtype=np.int64)  # every group starts at the root

    acc_g, acc_n, acc_s = [], [], []
    leaf_g, leaf_lo, leaf_hi, leaf_s = [], [], [], []
    while nodes.size:
        stats.nodes_visited += nodes.size
        dx = tree.node_com[nodes] - gcenters[gidx]
        shift = None
        if periodic:
            if want_shift:
                shift = np.round(dx / box)
                shift *= box
                dx -= shift
            else:
                minimum_image(dx, box, out=dx)
        dist = np.sqrt(np.einsum("ij,ij->i", dx, dx))
        half = tree.node_half[nodes]
        gr = gradii[gidx]
        keep = np.ones(nodes.size, dtype=bool)
        if rcut is not None:
            keep = dist - gr - half * sqrt3 <= rcut
        gap = dist - gr
        accept = keep & (gap > 0) & (2.0 * half < theta * gap)
        rest = keep & ~accept
        is_leaf = rest & tree.node_is_leaf[nodes]
        to_open = rest & ~tree.node_is_leaf[nodes]

        if accept.any():
            acc_g.append(gidx[accept])
            acc_n.append(nodes[accept])
            if want_shift:
                acc_s.append(shift[accept])
        if is_leaf.any():
            nl = nodes[is_leaf]
            leaf_g.append(gidx[is_leaf])
            leaf_lo.append(tree.node_lo[nl])
            leaf_hi.append(tree.node_hi[nl])
            if want_shift:
                leaf_s.append(shift[is_leaf])
        if to_open.any():
            kids = tree.node_children[nodes[to_open]]
            gk = np.repeat(gidx[to_open], kids.shape[1])
            kk = kids.ravel()
            sel = kk >= 0
            nodes = kk[sel]
            gidx = gk[sel]
        else:
            nodes = empty_idx
            gidx = empty_idx

    if acc_n:
        ag = np.concatenate(acc_g)
        an = np.concatenate(acc_n)
        ncounts = np.bincount(ag, minlength=Gn)
        order = np.argsort(ag, kind="stable")
        node_idx = an[order]
        node_shift = np.concatenate(acc_s)[order] if want_shift else None
    else:
        node_idx = empty_idx
        ncounts = np.zeros(Gn, dtype=np.int64)
        node_shift = empty_shift
    if leaf_lo:
        lg = np.concatenate(leaf_g)
        llo = np.concatenate(leaf_lo)
        lhi = np.concatenate(leaf_hi)
        # integer leaf lengths are exact as float weights (< 2**53)
        pcounts = np.bincount(lg, weights=lhi - llo, minlength=Gn)
        pcounts = pcounts.astype(np.int64)
        order = np.argsort(lg, kind="stable")
        llo = llo[order]
        lhi = lhi[order]
        part_idx = _multi_arange(llo, lhi)
        if want_shift:
            # a dumped leaf's particles all use the leaf's image
            ls = np.concatenate(leaf_s)[order]
            part_shift = np.repeat(ls, lhi - llo, axis=0)
        else:
            part_shift = None
    else:
        part_idx = empty_idx
        pcounts = np.zeros(Gn, dtype=np.int64)
        part_shift = empty_shift

    part_ptr = np.concatenate([[0], np.cumsum(pcounts)]).astype(np.int64)
    node_ptr = np.concatenate([[0], np.cumsum(ncounts)]).astype(np.int64)
    return part_ptr, part_idx, node_ptr, node_idx, part_shift, node_shift


def certify_no_wrap_numpy(tree, plan, box: float) -> np.ndarray:
    """Numpy reference for the per-group no-wrap certification.

    Compares each group's exact target bounding box against the
    bounding box of its (unshifted) list entries; when the extreme
    displacement stays within ``box/2`` minus a safety margin, the
    per-pair ``np.round`` returns exactly zero and can be skipped
    without changing a single bit.
    """
    G = plan.n_groups
    tcnt = plan.target_counts
    tpos = tree.pos_sorted[multi_arange(plan.group_lo, plan.group_hi)]
    tptr = np.concatenate([[0], np.cumsum(tcnt)])
    tmin = np.minimum.reduceat(tpos, tptr[:-1], axis=0)
    tmax = np.maximum.reduceat(tpos, tptr[:-1], axis=0)

    smin = np.full((G, 3), np.inf)
    smax = np.full((G, 3), -np.inf)
    for vals, ptr in (
        (tree.pos_sorted[plan.part_idx], plan.part_ptr),
        (tree.node_com[plan.node_idx], plan.node_ptr),
    ):
        if not len(vals):
            continue
        counts = np.diff(ptr)
        nz = np.flatnonzero(counts > 0)
        if not len(nz):
            continue
        starts = ptr[:-1][nz]
        smin[nz] = np.minimum(smin[nz], np.minimum.reduceat(vals, starts, axis=0))
        smax[nz] = np.maximum(smax[nz], np.maximum.reduceat(vals, starts, axis=0))
    # margin absorbs the few-ulp rounding of the bound arithmetic
    half_box_safe = 0.5 * box - 1e-9 * box
    ok = (smax - tmin <= half_box_safe) & (tmax - smin <= half_box_safe)
    empty = (np.diff(plan.part_ptr) + np.diff(plan.node_ptr)) == 0
    return np.all(ok, axis=1) | empty


def tree_forces(
    pos: np.ndarray,
    mass: np.ndarray,
    theta: float = 0.5,
    eps: float = 0.0,
    G: float = 1.0,
    split=None,
    box: float = 1.0,
    periodic: bool = False,
    group_size: int = 64,
    leaf_size: int = 8,
    use_quadrupole: bool = False,
    ewald_correction: bool = False,
    use_plan: bool = True,
    plan_float32: bool = False,
) -> Tuple[np.ndarray, TraversalStats]:
    """One-shot convenience wrapper around :class:`TreeSolver`."""
    solver = TreeSolver(
        box=box,
        theta=theta,
        leaf_size=leaf_size,
        group_size=group_size,
        split=split,
        eps=eps,
        G=G,
        periodic=periodic,
        use_quadrupole=use_quadrupole,
        ewald_correction=ewald_correction,
        use_plan=use_plan,
        plan_float32=plan_float32,
    )
    return solver.forces(pos, mass)
