"""Barnes-Hut octree for the short-range (PP) part of TreePM.

Implements the hierarchical oct-tree of Barnes & Hut (1986) with the
modification of Barnes (1990) used by the paper: tree traversal is done
once per *group* of particles, producing an interaction list (tree nodes
plus particles) shared by every particle of the group.  The force from
the list onto the group is then evaluated by the vectorized PP kernel,
which is exactly the work shape the paper's Phantom-GRAPE kernel
consumes.
"""

from repro.tree.morton import morton_keys, morton_sort
from repro.tree.octree import Octree
from repro.tree.traversal import (
    TraversalStats,
    TreeSolver,
    tree_forces,
)

__all__ = [
    "morton_keys",
    "morton_sort",
    "Octree",
    "TreeSolver",
    "TraversalStats",
    "tree_forces",
]
