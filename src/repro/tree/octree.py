"""Array-based linear octree.

The tree is built over a cubic root volume by sorting particles along a
Morton curve and recursively partitioning the sorted key array — the
particles of every cell form a contiguous slice, so node moments
(mass, center of mass, quadrupole) are O(1) per node via prefix sums.

The structure is immutable once built; GreeM likewise rebuilds the tree
every step ("tree construction" in Table I) rather than updating it.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.native import treebuild as _native_tree
from repro.tree.morton import MORTON_BITS, morton_keys

__all__ = ["Octree", "build_nodes_numpy"]

_OCTANT_OFFSETS = np.array(
    [
        [1.0 if c & 4 else -1.0, 1.0 if c & 2 else -1.0, 1.0 if c & 1 else -1.0]
        for c in range(8)
    ]
)


def build_nodes_numpy(
    keys_sorted: np.ndarray,
    n: int,
    origin: np.ndarray,
    size: float,
    leaf_size: int,
    max_depth: int,
) -> Tuple[np.ndarray, ...]:
    """Reference node build over sorted Morton keys.

    Level-synchronous vectorized build: every level splits ALL its
    oversized nodes at once with a single searchsorted over the Morton
    keys — no per-node Python recursion ("tree construction" is a
    Table I row; this keeps it fast even in pure Python).  The native
    kernel (:mod:`repro.native.treebuild`) reproduces the node arrays
    bit for bit; this function is its fallback and self-test reference.

    Returns ``(center, half, lo, hi, depth, is_leaf, children)``.
    """
    centers = [origin + 0.5 * size]
    halves = [size / 2.0]
    los = [0]
    his = [n]
    depths = [0]
    children: List[np.ndarray] = [np.full(8, -1, dtype=np.int64)]
    is_leaf = [True]  # flipped when a node gets split

    frontier = np.array([0], dtype=np.int64)  # node ids at this level
    depth = 0
    while frontier.size and depth < max_depth:
        lo_arr = np.array([los[i] for i in frontier], dtype=np.int64)
        hi_arr = np.array([his[i] for i in frontier], dtype=np.int64)
        split = (hi_arr - lo_arr) > leaf_size
        if not split.any():
            break
        parents = frontier[split]
        plo = lo_arr[split]

        # child boundaries for every splitting parent in one call:
        # particles sorted by key means sorted by child-level prefix
        shift = np.uint64(3 * (max_depth - depth - 1))
        pref = keys_sorted >> shift
        parent_pref = pref[plo].astype(np.uint64) >> np.uint64(3)
        targets = (
            parent_pref[:, None] * np.uint64(8)
            + np.arange(9, dtype=np.uint64)[None, :]
        )
        bounds = np.searchsorted(pref, targets)

        next_frontier: List[int] = []
        for row, parent in enumerate(parents):
            pc = centers[parent]
            ph = halves[parent]
            is_leaf[parent] = False
            kids = children[parent]
            for c in range(8):
                clo, chi = int(bounds[row, c]), int(bounds[row, c + 1])
                if chi == clo:
                    continue
                idx = len(centers)
                centers.append(pc + _OCTANT_OFFSETS[c] * ph / 2.0)
                halves.append(ph / 2.0)
                los.append(clo)
                his.append(chi)
                depths.append(depth + 1)
                children.append(np.full(8, -1, dtype=np.int64))
                is_leaf.append(True)
                kids[c] = idx
                next_frontier.append(idx)
        frontier = np.array(next_frontier, dtype=np.int64)
        depth += 1

    return (
        np.array(centers),
        np.array(halves),
        np.array(los, dtype=np.int64),
        np.array(his, dtype=np.int64),
        np.array(depths, dtype=np.int64),
        np.array(is_leaf, dtype=bool),
        np.array(children, dtype=np.int64),
    )


class Octree:
    """A static Barnes-Hut octree over ``[origin, origin+size)^3``.

    Parameters
    ----------
    pos, mass:
        Particle positions ``(N, 3)`` and masses ``(N,)``.
    size, origin:
        Root cube geometry (defaults: unit cube at the origin).
    leaf_size:
        Maximum particle count of a leaf cell.
    compute_quadrupole:
        Also compute traceless quadrupole moments per node.

    Attributes
    ----------
    perm:
        Permutation sorting the input particles into Morton order; all
        per-particle arrays inside the tree (``pos_sorted`` etc.) use
        this order.
    node_center, node_half, node_lo, node_hi, node_depth, node_is_leaf,
    node_children, node_mass, node_com, node_quad:
        Per-node arrays; node 0 is the root.  ``node_children`` is
        ``(n_nodes, 8)`` with -1 for absent children.
    """

    MAX_DEPTH = MORTON_BITS

    def __init__(
        self,
        pos: np.ndarray,
        mass: np.ndarray,
        size: float = 1.0,
        origin=0.0,
        leaf_size: int = 8,
        compute_quadrupole: bool = False,
    ) -> None:
        pos = np.asarray(pos, dtype=np.float64)
        mass = np.asarray(mass, dtype=np.float64)
        if pos.ndim != 2 or pos.shape[1] != 3:
            raise ValueError("pos must be (N, 3)")
        if len(mass) != len(pos):
            raise ValueError("mass and pos length mismatch")
        if len(pos) == 0:
            raise ValueError("cannot build a tree with zero particles")
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self.size = float(size)
        self.origin = np.broadcast_to(np.asarray(origin, dtype=np.float64), (3,))
        self.leaf_size = int(leaf_size)
        self.has_quadrupole = bool(compute_quadrupole)

        sorted_keys = _native_tree.morton_build(
            pos, self.origin, self.size, MORTON_BITS
        )
        if sorted_keys is not None:
            self._keys, self.perm = sorted_keys
        else:
            keys = morton_keys(pos, self.origin, self.size)
            self.perm = np.argsort(keys, kind="stable")
            self._keys = keys[self.perm]
        self.pos_sorted = pos[self.perm]
        self.mass_sorted = mass[self.perm]

        self._build()
        self._compute_moments()

    # -- construction ---------------------------------------------------------
    #
    # The node build runs in the native kernel when available (bitwise
    # self-tested against build_nodes_numpy) and falls back to the
    # level-synchronous vectorized numpy builder otherwise.

    _OCTANT_OFFSETS = _OCTANT_OFFSETS

    def _build(self) -> None:
        n = len(self.pos_sorted)
        nodes = _native_tree.build_nodes(
            self._keys,
            self.leaf_size,
            self.MAX_DEPTH,
            self.origin + 0.5 * self.size,
            self.size / 2.0,
        )
        if nodes is None:
            nodes = build_nodes_numpy(
                self._keys, n, self.origin, self.size, self.leaf_size, self.MAX_DEPTH
            )
        (
            self.node_center,
            self.node_half,
            self.node_lo,
            self.node_hi,
            self.node_depth,
            self.node_is_leaf,
            self.node_children,
        ) = nodes

    def _compute_moments(self) -> None:
        m = self.mass_sorted
        x = self.pos_sorted
        cm = np.concatenate([[0.0], np.cumsum(m)])
        cmx = np.vstack([np.zeros(3), np.cumsum(m[:, None] * x, axis=0)])
        lo, hi = self.node_lo, self.node_hi
        self.node_mass = cm[hi] - cm[lo]
        with np.errstate(invalid="ignore"):
            self.node_com = (cmx[hi] - cmx[lo]) / self.node_mass[:, None]
        # empty nodes never exist (children with zero particles are not
        # created), but a zero-total-mass node can: park its com at the
        # geometric center.  Only zero-mass nodes get the fallback — a
        # non-finite com on a massive node means the particle data
        # itself is corrupt (NaN positions or masses), which must
        # surface instead of being silently parked.
        bad = ~np.isfinite(self.node_com).all(axis=1)
        zero_mass = self.node_mass == 0.0
        corrupt = bad & ~zero_mass
        if corrupt.any():
            from repro.validate.errors import InvariantViolation, array_stats

            idx = int(np.flatnonzero(corrupt)[0])
            raise InvariantViolation(
                f"{int(corrupt.sum())} node(s) with nonzero mass have a "
                f"non-finite center of mass (first: node {idx}, mass "
                f"{self.node_mass[idx]!r}) — particle positions or masses "
                f"contain non-finite values",
                check="octree_moments",
                stage="tree/moments",
                stats={
                    "pos": array_stats(self.pos_sorted, "pos"),
                    "mass": array_stats(self.mass_sorted, "mass"),
                    "first_node": idx,
                },
            )
        self.node_com[bad] = self.node_center[bad]

        if self.has_quadrupole:
            pairs = [(0, 0), (1, 1), (2, 2), (0, 1), (0, 2), (1, 2)]
            second = np.stack([m * x[:, a] * x[:, b] for a, b in pairs], axis=1)
            cs = np.vstack([np.zeros(6), np.cumsum(second, axis=0)])
            s = cs[hi] - cs[lo]  # raw second moments per node
            c = self.node_com
            M = self.node_mass
            quad = np.zeros((len(lo), 3, 3))
            for i, (a, b) in enumerate(pairs):
                quad[:, a, b] = s[:, i] - M * c[:, a] * c[:, b]
                quad[:, b, a] = quad[:, a, b]
            tr = np.trace(quad, axis1=1, axis2=2)
            self.node_quad = 3.0 * quad - tr[:, None, None] * np.eye(3)
        else:
            self.node_quad = None

    # -- queries --------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self.node_half)

    @property
    def n_particles(self) -> int:
        return len(self.pos_sorted)

    def node_bounding_radius(self, idx) -> np.ndarray:
        """Radius of the sphere circumscribing node cube(s)."""
        return self.node_half[idx] * np.sqrt(3.0)

    def leaves(self) -> np.ndarray:
        """Indices of all leaf nodes."""
        return np.flatnonzero(self.node_is_leaf)

    def group_nodes(self, group_size: int) -> List[int]:
        """Nodes used as traversal groups by Barnes' modified algorithm.

        Returns the shallowest nodes holding at most ``group_size``
        particles; every particle belongs to exactly one group.
        """
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        native = _native_tree.group_nodes(
            self.node_lo,
            self.node_hi,
            self.node_children,
            self.node_is_leaf,
            group_size,
        )
        if native is not None:
            return native
        out: List[int] = []
        stack = [0]
        while stack:
            i = stack.pop()
            if (
                self.node_hi[i] - self.node_lo[i] <= group_size
                or self.node_is_leaf[i]
            ):
                out.append(i)
            else:
                stack.extend(c for c in self.node_children[i] if c >= 0)
        return out

    def stats(self) -> dict:
        """Structural summary (depths, occupancies, branching)."""
        leaves = self.leaves()
        occupancy = self.node_hi[leaves] - self.node_lo[leaves]
        n_children = (self.node_children >= 0).sum(axis=1)
        internal = ~self.node_is_leaf
        return {
            "n_nodes": self.n_nodes,
            "n_leaves": int(len(leaves)),
            "max_depth": int(self.node_depth.max()),
            "mean_leaf_depth": float(self.node_depth[leaves].mean()),
            "mean_leaf_occupancy": float(occupancy.mean()),
            "max_leaf_occupancy": int(occupancy.max()),
            "mean_branching": float(n_children[internal].mean())
            if internal.any()
            else 0.0,
            "nodes_per_particle": self.n_nodes / self.n_particles,
        }

    def validate(self) -> None:
        """Internal consistency checks (used by tests; cheap)."""
        assert self.node_lo[0] == 0 and self.node_hi[0] == self.n_particles
        for i in range(self.n_nodes):
            kids = self.node_children[i][self.node_children[i] >= 0]
            if self.node_is_leaf[i]:
                assert len(kids) == 0
            else:
                assert len(kids) > 0
                los = sorted(self.node_lo[k] for k in kids)
                his = sorted(self.node_hi[k] for k in kids)
                assert los[0] == self.node_lo[i]
                assert his[-1] == self.node_hi[i]
                # children tile the parent range
                assert all(h == l for h, l in zip(his[:-1], los[1:]))
