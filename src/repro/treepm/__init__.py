"""The TreePM force solver: the paper's core numerical method.

Combines the short-range tree solver (with the g_P3M cutoff) and the
long-range PM solver (with the S2-shaped Green's function) into the
total periodic gravitational force, equivalent to Ewald summation up to
the controlled approximation errors of each part.
"""

from repro.treepm.solver import TreePMForces, TreePMSolver

__all__ = ["TreePMSolver", "TreePMForces"]
