"""Single-process TreePM solver.

This is the serial reference for the distributed GreeM-style driver in
:mod:`repro.sim`: identical physics, no domain decomposition.  The force
on a particle is the sum of

* the PP part: tree-evaluated short-range forces with the cutoff
  ``g_P3M(2 r / rcut)`` (paper eq. 2-3), and
* the PM part: mesh-evaluated long-range forces through the S2-shaped
  Green's function (paper eq. 1),

which together reconstruct the exact periodic force (the Ewald sum)
within the method's approximation error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config import TreePMConfig
from repro.forces.cutoff import get_split
from repro.mesh.poisson import PMSolver
from repro.tree.traversal import TraversalStats, TreeSolver
from repro.utils.timer import TimingLedger

__all__ = ["TreePMSolver", "TreePMForces"]


@dataclass
class TreePMForces:
    """Result of a TreePM force evaluation."""

    total: np.ndarray
    short_range: np.ndarray
    long_range: np.ndarray
    stats: TraversalStats
    timing: TimingLedger


class TreePMSolver:
    """Serial TreePM force solver for a periodic cube.

    Parameters
    ----------
    config:
        A :class:`repro.config.TreePMConfig`; its ``pm.mesh_size``,
        ``rcut_mesh_units``, ``softening``, tree parameters and split
        choice fully determine the solver.
    box:
        Periodic box size.
    G:
        Gravitational constant.
    use_fast_rsqrt:
        Use the emulated HPC-ACE fast-rsqrt PP path.
    sdc:
        Optional :class:`repro.validate.SdcAuditor`.  When enabled,
        every ``audit_every``-th :meth:`forces` call re-sweeps a sampled
        subset of the interaction plan through the reference pipeline
        and compares bitwise; under the ``heal`` policy a miscomputed
        sweep is redone in full through the reference path before the
        result is returned.
    """

    def __init__(
        self,
        config: Optional[TreePMConfig] = None,
        box: float = 1.0,
        G: float = 1.0,
        use_fast_rsqrt: bool = False,
        validator=None,
        sdc=None,
    ) -> None:
        self.config = config if config is not None else TreePMConfig()
        self.box = float(box)
        self.G = float(G)
        #: optional repro.validate.Validator consulted by :meth:`forces`
        self.validator = validator
        #: optional repro.validate.SdcAuditor running ABFT spot-checks
        self.sdc = sdc
        self._sdc_evals = 0
        cfg = self.config
        self.split = get_split(cfg.split, cfg.rcut * box)
        self.pm = PMSolver(
            cfg.pm.mesh_size,
            box=box,
            split=self.split,
            G=G,
            assignment=cfg.pm.assignment,
            deconvolve=2 if cfg.pm.deconvolve else 0,
            differencing=cfg.pm.differencing,
        )
        self.tree = TreeSolver(
            box=box,
            theta=cfg.tree.opening_angle,
            leaf_size=cfg.tree.leaf_size,
            group_size=cfg.tree.group_size,
            split=self.split,
            eps=cfg.softening * box,
            G=G,
            periodic=True,
            use_quadrupole=cfg.tree.use_quadrupole,
            use_fast_rsqrt=use_fast_rsqrt,
            use_plan=cfg.tree.use_plan,
            plan_float32=cfg.tree.plan_float32,
        )
        if (
            sdc is not None
            and sdc.enabled
            and sdc.config.spot_check_groups > 0
        ):
            self.tree.retain_last_sweep = True

    @property
    def rcut(self) -> float:
        """Short-range cutoff radius in length units of the box."""
        return self.config.rcut * self.box

    def forces(self, pos: np.ndarray, mass: np.ndarray) -> TreePMForces:
        """Evaluate total TreePM accelerations.

        Returns a :class:`TreePMForces` carrying the two components,
        traversal statistics (``<Ni>``, ``<Nj>``, interaction counts)
        and a per-phase timing ledger using the paper's Table I names.
        """
        pos = np.asarray(pos, dtype=np.float64)
        mass = np.asarray(mass, dtype=np.float64)
        timing = TimingLedger()
        v = self.validator

        with timing.phase("PM/density assignment"):
            rho = self.pm.density_mesh(pos, mass)
        if v is not None and v.check_enabled("mass_conservation"):
            from repro.validate.checks import check_mesh_mass

            cell_vol = (self.box / self.pm.n) ** 3
            v.handle(
                check_mesh_mass(
                    float(rho.sum() * cell_vol), float(mass.sum()),
                    stage="mesh/assignment", step=v.step,
                )
            )
        with timing.phase("PM/FFT"):
            phi = self.pm.potential_mesh(rho)
        with timing.phase("PM/acceleration on mesh"):
            amesh = self.pm.acceleration_mesh(phi)
        with timing.phase("PM/force interpolation"):
            a_long = self.pm.interpolate(amesh, pos)

        with timing.phase("PP/tree construction"):
            tree = self.tree.build(pos, mass)
        if v is not None and v.check_enabled("octree_moments"):
            from repro.validate.checks import check_octree

            v.handle(check_octree(tree, step=v.step))
        with timing.phase("PP/force calculation"):
            a_short, stats = self.tree.forces(pos, mass, tree=tree)
        sdc = self.sdc
        if sdc is not None and sdc.enabled:
            self._sdc_evals += 1
            if self._sdc_evals % sdc.config.audit_every == 0:
                ev = sdc.spot_check(self.tree, step=self._sdc_evals)
                if ev is not None and sdc.config.policy == "heal":
                    # spot_check already stopped trusting the native
                    # path; redo the whole sweep through the reference
                    # pipeline so the returned forces are clean
                    with timing.phase("PP/force calculation"):
                        a_short, stats = self.tree.forces(
                            pos, mass, tree=tree
                        )
                    ev.healed = True
                    ev.detail += "; healed by reference re-sweep"
                sdc.apply_policy(None, [ev] if ev is not None else [])
        if v is not None and v.check_enabled("finite_fields"):
            from repro.validate.checks import check_finite, first_violation

            v.handle(
                first_violation(
                    check_finite("pm_acc", a_long, stage="treepm/pm", step=v.step),
                    check_finite("pp_acc", a_short, stage="treepm/pp", step=v.step),
                )
            )

        return TreePMForces(
            total=a_short + a_long,
            short_range=a_short,
            long_range=a_long,
            stats=stats,
            timing=timing,
        )

    def potential(self, pos: np.ndarray, mass: np.ndarray) -> np.ndarray:
        """Total (long + short) potential at the particle positions.

        The short-range part is evaluated by direct summation through
        the tree kernel machinery; intended for energy diagnostics on
        modest N.
        """
        from repro.pp.kernel import PPKernel

        pos = np.asarray(pos, dtype=np.float64)
        mass = np.asarray(mass, dtype=np.float64)
        phi_long = self.pm.potential_at(pos, mass)
        kern = PPKernel(
            split=self.split,
            eps=self.config.softening * self.box,
            G=self.G,
            box=self.box,
        )
        phi_short = np.empty(len(pos))
        chunk = 512
        for lo in range(0, len(pos), chunk):
            hi = min(lo + chunk, len(pos))
            phi_short[lo:hi] = kern.potential(pos[lo:hi], pos, mass)
        return phi_long + phi_short

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TreePMSolver(config={self.config!r}, box={self.box})"
