"""SPMD thread runtime: launch one thread per rank.

The runtime owns the world communicator state, the shared traffic log,
and (optionally) a torus network model whose shape defaults to a flat
1-D torus.  Failure semantics are deadlock-free: an exception in any
rank aborts the whole job (barriers break, blocked receives raise
:class:`CommAborted`), an optional watchdog converts a hung collective
into a clean abort naming the originating rank and operation, and the
raised :class:`RuntimeError` carries *every* rank's failure (plus which
ranks were aborted as secondary casualties) instead of silently keeping
only one.

Fault injection for tests comes from an attached
:class:`repro.mpi.faults.FaultPlan`; see ``docs/fault_tolerance.md``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.mpi.backend import BackendCapabilities, CommBackend
from repro.mpi.comm import Comm, CommAborted, _CommState, _JobControl
from repro.mpi.faults import FaultPlan, RankDeath
from repro.mpi.network import TorusNetwork, TrafficLog

__all__ = ["MPIRuntime", "run_spmd"]


class MPIRuntime(CommBackend):
    """Executes SPMD functions on ``n_ranks`` in-process ranks — the
    ``"thread"`` communicator backend (deterministic default).

    Parameters
    ----------
    n_ranks:
        Number of ranks (threads).
    torus_shape:
        Shape of the modeled torus; defaults to ``(n_ranks, 1, 1)``.
        Must multiply to ``n_ranks``.
    link_bandwidth, link_latency:
        Parameters of the network performance model.
    fault_plan:
        Optional :class:`repro.mpi.faults.FaultPlan` of injected
        failures (rank kills, message drop/delay/corrupt, stalled
        collectives), consulted by every communicator of the job.
    recv_timeout:
        Job-wide default timeout (seconds) for blocking receives; a
        receive that exceeds it raises
        :class:`repro.mpi.faults.CommTimeout` instead of hanging.
        ``None`` (default) waits until the job aborts.
    watchdog_timeout:
        When set, a watchdog thread monitors blocked operations and
        aborts the job once any rank has been stuck longer than this
        many seconds, naming the rank and operation in the abort
        reason.
    elastic:
        Survivable-death mode: a rank raising
        :class:`repro.mpi.faults.RankDeath` (which
        :class:`InjectedFault` subclasses) is marked dead instead of
        aborting the job.  Survivors observe a
        :class:`repro.mpi.comm.PeerFailure` from their next blocking
        operation and are expected to run the shrink-and-continue
        protocol of :mod:`repro.mpi.recovery`.  Dead ranks contribute
        ``None`` to the result list; the job only fails if a rank
        raises a non-death error, the watchdog fires, or every rank
        dies.
    retry_budget:
        Per-rank, per-step cap on "reliable"-path retransmissions
        (``Comm.send(reliable=True)`` / ``Comm.alltoall(reliable=True)``).
    """

    name = "thread"

    @classmethod
    def capabilities(cls) -> BackendCapabilities:
        return BackendCapabilities(
            true_parallelism=False,
            simulated_kill=True,
            real_process_kill=False,
            message_faults=True,
            stall_faults=True,
            network_model=True,
            heartbeat_liveness=False,
            elastic=True,
            gray_failure=True,
        )

    def __init__(
        self,
        n_ranks: int,
        torus_shape: Optional[Sequence[int]] = None,
        link_bandwidth: float = 5.0e9,
        link_latency: float = 1.0e-6,
        fault_plan: Optional[FaultPlan] = None,
        recv_timeout: Optional[float] = None,
        watchdog_timeout: Optional[float] = None,
        elastic: bool = False,
        retry_budget: int = 16,
    ) -> None:
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        shape = tuple(torus_shape) if torus_shape else (n_ranks, 1, 1)
        if shape[0] * shape[1] * shape[2] != n_ranks:
            raise ValueError("torus_shape must multiply to n_ranks")
        if recv_timeout is not None and recv_timeout <= 0:
            raise ValueError("recv_timeout must be positive")
        if watchdog_timeout is not None and watchdog_timeout <= 0:
            raise ValueError("watchdog_timeout must be positive")
        if retry_budget < 0:
            raise ValueError("retry_budget must be >= 0")
        self.n_ranks = int(n_ranks)
        self.traffic = TrafficLog()
        self.network = TorusNetwork(shape, link_bandwidth, link_latency)
        self.fault_plan = fault_plan
        self.recv_timeout = recv_timeout
        self.watchdog_timeout = watchdog_timeout
        self.elastic = bool(elastic)
        self.retry_budget = int(retry_budget)
        #: world ranks that died in the last elastic run (diagnostics)
        self.dead_ranks: List[int] = []

    def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> List[Any]:
        """Run ``fn(comm, *args, **kwargs)`` on every rank.

        Returns the per-rank return values (index = rank).  If any rank
        raises, the job is aborted and a :class:`RuntimeError` is
        raised that names every failing rank (and its thread); the
        lowest failing rank's exception is the ``__cause__``.  The
        error also records, as attributes, ``rank_errors`` (dict of
        rank -> exception), ``aborted_ranks`` (ranks that died with a
        secondary :class:`CommAborted`) and ``abort_origin`` (the rank
        whose failure aborted the job first).
        """
        control = _JobControl(
            fault_plan=self.fault_plan,
            recv_timeout=self.recv_timeout,
            elastic=self.elastic,
            world_size=self.n_ranks,
            retry_budget=self.retry_budget,
        )
        state = _CommState(
            self.n_ranks, list(range(self.n_ranks)), self.traffic, control
        )
        results: List[Any] = [None] * self.n_ranks
        failures: List[Tuple[int, BaseException]] = []
        aborted: List[Tuple[int, CommAborted]] = []
        deaths: List[Tuple[int, BaseException]] = []
        err_lock = threading.Lock()

        def worker(rank: int) -> None:
            comm = Comm(state, rank)
            try:
                results[rank] = fn(comm, *args, **kwargs)
            except CommAborted as exc:
                # secondary failure caused by another rank: recorded,
                # not reported as its own error
                with err_lock:
                    aborted.append((rank, exc))
            except RankDeath as exc:
                if control.elastic:
                    # survivable: mark dead (waking blocked survivors)
                    # and let the rest of the job shrink and continue
                    with err_lock:
                        deaths.append((rank, exc))
                    control.mark_dead(rank, exc)
                else:
                    with err_lock:
                        failures.append((rank, exc))
                    control.abort(
                        reason=f"rank {rank} failed: {type(exc).__name__}: {exc}",
                        origin=rank,
                    )
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                with err_lock:
                    failures.append((rank, exc))
                control.abort(
                    reason=f"rank {rank} failed: {type(exc).__name__}: {exc}",
                    origin=rank,
                )

        watchdog_stop = threading.Event()
        watchdog_thread: Optional[threading.Thread] = None
        if self.watchdog_timeout is not None and self.n_ranks > 1:
            control.watching = True
            limit = self.watchdog_timeout

            def watchdog() -> None:
                poll = max(min(0.05, limit / 4.0), 1e-3)
                while not control.abort_event.is_set():
                    entry = control.oldest_blocked()
                    now = time.monotonic()
                    if entry is not None and now - entry[3] > limit:
                        rank_w, op, detail, since = entry
                        where = f"{op} ({detail})" if detail else op
                        control.abort(
                            reason=(
                                f"watchdog: rank {rank_w} stuck in {where} "
                                f"for {now - since:.2f}s"
                            ),
                            origin=rank_w,
                        )
                        return
                    if watchdog_stop.wait(poll):
                        return

            watchdog_thread = threading.Thread(
                target=watchdog, name="mpi-watchdog", daemon=True
            )
            watchdog_thread.start()

        try:
            if self.n_ranks == 1:
                # run inline: keeps tracebacks simple and debugging easy
                worker(0)
            else:
                # daemon threads: a rank hung beyond every timeout can
                # never wedge interpreter shutdown
                threads = [
                    threading.Thread(
                        target=worker, args=(r,), name=f"rank-{r}", daemon=True
                    )
                    for r in range(self.n_ranks)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
        finally:
            watchdog_stop.set()
            if watchdog_thread is not None:
                watchdog_thread.join(timeout=1.0)

        failures.sort(key=lambda e: e[0])
        aborted_ranks = sorted(r for r, _ in aborted)
        self.dead_ranks = sorted(r for r, _ in deaths)
        if self.elastic and not failures and not aborted:
            if deaths and len(deaths) == self.n_ranks:
                err = RuntimeError(
                    f"elastic job lost all {self.n_ranks} rank(s): no "
                    f"survivor left to continue"
                )
                err.rank_errors = dict(deaths)
                err.aborted_ranks = []
                err.abort_origin = None
                raise err
            # dead ranks simply contribute None results
            return results
        if failures:
            rank, exc = failures[0]
            msg = f"rank {rank} (thread rank-{rank}) failed: {exc!r}"
            if len(failures) > 1:
                others = "; ".join(
                    f"rank {r}: {e!r}" for r, e in failures[1:]
                )
                msg += f"; {len(failures) - 1} more rank(s) failed: {others}"
            if aborted_ranks:
                msg += (
                    f"; rank(s) {aborted_ranks} aborted (CommAborted) after "
                    f"the first failure"
                )
            err = RuntimeError(msg)
            err.rank_errors = dict(failures)
            err.aborted_ranks = aborted_ranks
            err.abort_origin = control.abort_origin
            raise err from exc
        if aborted:
            # no rank raised a primary error, yet the job aborted: the
            # watchdog (or an injected stall) fired
            reason = control.abort_reason or "communication aborted"
            err = RuntimeError(
                f"job aborted: {reason} (CommAborted on rank(s) {aborted_ranks})"
            )
            err.rank_errors = {}
            err.aborted_ranks = aborted_ranks
            err.abort_origin = control.abort_origin
            raise err from aborted[0][1]
        return results


def run_spmd(
    n_ranks: int, fn: Callable[..., Any], *args: Any, **kwargs: Any
) -> List[Any]:
    """One-shot convenience: ``MPIRuntime(n_ranks).run(fn, ...)``."""
    return MPIRuntime(n_ranks).run(fn, *args, **kwargs)
