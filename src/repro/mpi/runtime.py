"""SPMD thread runtime: launch one thread per rank.

The runtime owns the world communicator state, the shared traffic log,
and (optionally) a torus network model whose shape defaults to a flat
1-D torus.  Exceptions in any rank abort the whole job: barriers are
broken and blocked receives raise :class:`CommAborted`, so failures
surface instead of deadlocking — the behaviour tests rely on.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.mpi.comm import Comm, CommAborted, _CommState
from repro.mpi.network import TorusNetwork, TrafficLog

__all__ = ["MPIRuntime", "run_spmd"]


class MPIRuntime:
    """Executes SPMD functions on ``n_ranks`` in-process ranks.

    Parameters
    ----------
    n_ranks:
        Number of ranks (threads).
    torus_shape:
        Shape of the modeled torus; defaults to ``(n_ranks, 1, 1)``.
        Must multiply to ``n_ranks``.
    link_bandwidth, link_latency:
        Parameters of the network performance model.
    """

    def __init__(
        self,
        n_ranks: int,
        torus_shape: Optional[Sequence[int]] = None,
        link_bandwidth: float = 5.0e9,
        link_latency: float = 1.0e-6,
    ) -> None:
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        shape = tuple(torus_shape) if torus_shape else (n_ranks, 1, 1)
        if shape[0] * shape[1] * shape[2] != n_ranks:
            raise ValueError("torus_shape must multiply to n_ranks")
        self.n_ranks = int(n_ranks)
        self.traffic = TrafficLog()
        self.network = TorusNetwork(shape, link_bandwidth, link_latency)

    def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> List[Any]:
        """Run ``fn(comm, *args, **kwargs)`` on every rank.

        Returns the per-rank return values (index = rank).  If any rank
        raises, the job is aborted and the first exception re-raised.
        """
        abort = threading.Event()
        state = _CommState(
            self.n_ranks, list(range(self.n_ranks)), self.traffic, abort
        )
        results: List[Any] = [None] * self.n_ranks
        errors: List[Tuple[int, BaseException]] = []
        err_lock = threading.Lock()

        def worker(rank: int) -> None:
            comm = Comm(state, rank)
            try:
                results[rank] = fn(comm, *args, **kwargs)
            except CommAborted:
                pass  # secondary failure caused by another rank
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                with err_lock:
                    errors.append((rank, exc))
                state.abort()

        if self.n_ranks == 1:
            # run inline: keeps tracebacks simple and debugging easy
            worker(0)
        else:
            threads = [
                threading.Thread(target=worker, args=(r,), name=f"rank-{r}")
                for r in range(self.n_ranks)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        if errors:
            rank, exc = min(errors, key=lambda e: e[0])
            raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
        return results


def run_spmd(
    n_ranks: int, fn: Callable[..., Any], *args: Any, **kwargs: Any
) -> List[Any]:
    """One-shot convenience: ``MPIRuntime(n_ranks).run(fn, ...)``."""
    return MPIRuntime(n_ranks).run(fn, *args, **kwargs)
