"""Traffic accounting and the torus network performance model.

The relay mesh method is a communication-pattern optimization: its win
comes from replacing one global all-to-all (in which every FFT process
receives from ~p^(2/3) senders, ~4000 at the paper's scale, congesting
the network) with two local exchanges.  To reproduce that effect without
82944 nodes, every message sent through :class:`repro.mpi.comm.Comm` is
logged, and :class:`TorusNetwork` converts a phase's message list into
modeled time on a 3-D torus with dimension-order routing:

    t = max(busiest-link bytes, busiest-endpoint bytes) / bandwidth
        + latency * (max messages handled by one endpoint)

This captures exactly the two effects the paper describes — endpoint
serialization at the FFT processes and link congestion near them.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

__all__ = ["Message", "PhaseTraffic", "TrafficLog", "TorusNetwork"]


@dataclass(frozen=True)
class Message:
    """One point-to-point transfer."""

    src: int
    dst: int
    nbytes: int


@dataclass
class PhaseTraffic:
    """All messages recorded during one named communication phase."""

    name: str
    messages: List[Message] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return sum(m.nbytes for m in self.messages)

    @property
    def n_messages(self) -> int:
        return len(self.messages)

    def max_senders_per_receiver(self) -> int:
        """The paper's congestion diagnostic: how many distinct sources
        target the busiest receiver (~4000 for the naive mesh
        conversion on 82944 processes)."""
        senders: Dict[int, set] = defaultdict(set)
        for m in self.messages:
            if m.src != m.dst:
                senders[m.dst].add(m.src)
        return max((len(s) for s in senders.values()), default=0)

    def bytes_per_endpoint(self) -> Tuple[Dict[int, int], Dict[int, int]]:
        """(sent_bytes_by_rank, received_bytes_by_rank), self excluded."""
        tx: Dict[int, int] = defaultdict(int)
        rx: Dict[int, int] = defaultdict(int)
        for m in self.messages:
            if m.src != m.dst:
                tx[m.src] += m.nbytes
                rx[m.dst] += m.nbytes
        return dict(tx), dict(rx)


class TrafficLog:
    """Thread-safe message recorder with named phases.

    Ranks of one runtime share a single log; phase boundaries are set
    from SPMD code between barriers (see ``Comm.traffic_phase``).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._phases: List[PhaseTraffic] = [PhaseTraffic("startup")]

    def record(self, src: int, dst: int, nbytes: int) -> None:
        with self._lock:
            self._phases[-1].messages.append(Message(src, dst, nbytes))

    def begin_phase(self, name: str) -> None:
        with self._lock:
            self._phases.append(PhaseTraffic(name))

    def phase(self, name: str) -> PhaseTraffic:
        """The most recent phase with the given name."""
        with self._lock:
            for ph in reversed(self._phases):
                if ph.name == name:
                    return ph
        raise KeyError(f"no traffic phase named {name!r}")

    def phases(self) -> List[PhaseTraffic]:
        with self._lock:
            return list(self._phases)

    def merged(self, names: Iterable[str]) -> PhaseTraffic:
        """Union of all phases whose name is in ``names``."""
        wanted = set(names)
        out = PhaseTraffic("+".join(sorted(wanted)))
        with self._lock:
            for ph in self._phases:
                if ph.name in wanted:
                    out.messages.extend(ph.messages)
        return out


class TorusNetwork:
    """3-D torus with dimension-order routing and a congestion model.

    Parameters
    ----------
    shape:
        Torus dimensions ``(nx, ny, nz)``; ranks map to coordinates in
        row-major order (rank = x * ny * nz + y * nz + z), mirroring
        how the paper aligns the domain decomposition with "the
        physical nodes of K computer".
    link_bandwidth:
        Per-link, per-direction bandwidth in bytes/s (Tofu: 5 GB/s).
    link_latency:
        Per-message software + wire latency in seconds.
    """

    def __init__(
        self,
        shape: Sequence[int],
        link_bandwidth: float = 5.0e9,
        link_latency: float = 1.0e-6,
    ) -> None:
        if len(shape) != 3 or any(s < 1 for s in shape):
            raise ValueError("shape must be three positive integers")
        if link_bandwidth <= 0 or link_latency < 0:
            raise ValueError("invalid bandwidth/latency")
        self.shape = tuple(int(s) for s in shape)
        self.link_bandwidth = float(link_bandwidth)
        self.link_latency = float(link_latency)
        self.n_nodes = self.shape[0] * self.shape[1] * self.shape[2]

    # -- geometry -------------------------------------------------------------

    def coord(self, rank: int) -> Tuple[int, int, int]:
        nx, ny, nz = self.shape
        if not 0 <= rank < self.n_nodes:
            raise ValueError(f"rank {rank} outside torus of {self.n_nodes} nodes")
        return (rank // (ny * nz), (rank // nz) % ny, rank % nz)

    def rank_of(self, coord: Sequence[int]) -> int:
        nx, ny, nz = self.shape
        x, y, z = (coord[0] % nx, coord[1] % ny, coord[2] % nz)
        return x * ny * nz + y * nz + z

    def _steps(self, a: int, b: int, n: int) -> List[Tuple[int, int]]:
        """Unit steps from a to b along one periodic dimension, taking
        the shorter way around; each step is (from, to)."""
        if a == b:
            return []
        fwd = (b - a) % n
        if fwd <= n - fwd:
            seq = [(a + i) % n for i in range(fwd + 1)]
        else:
            seq = [(a - i) % n for i in range(n - fwd + 1)]
        return list(zip(seq[:-1], seq[1:]))

    def route(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """Dimension-order (x, then y, then z) route as directed
        node-pair links."""
        if src == dst:
            return []
        sx, sy, sz = self.coord(src)
        dx, dy, dz = self.coord(dst)
        links: List[Tuple[int, int]] = []
        cur = (sx, sy, sz)
        for axis, target in ((0, dx), (1, dy), (2, dz)):
            for a, b in self._steps(cur[axis], target, self.shape[axis]):
                frm = list(cur)
                to = list(cur)
                frm[axis] = a
                to[axis] = b
                links.append((self.rank_of(frm), self.rank_of(to)))
                cur = tuple(to)
        return links

    # -- performance model -----------------------------------------------------

    def phase_time(self, phase: PhaseTraffic) -> "ModeledPhaseTime":
        """Modeled wall-clock time of a communication phase.

        All messages of the phase are assumed concurrent (the phase is
        bracketed by barriers in the algorithms that use this model).
        """
        link_bytes: Dict[Tuple[int, int], int] = defaultdict(int)
        node_tx: Dict[int, int] = defaultdict(int)
        node_rx: Dict[int, int] = defaultdict(int)
        node_msgs: Dict[int, int] = defaultdict(int)
        for m in phase.messages:
            if m.src == m.dst:
                continue  # local copy, no network involvement
            for link in self.route(m.src, m.dst):
                link_bytes[link] += m.nbytes
            node_tx[m.src] += m.nbytes
            node_rx[m.dst] += m.nbytes
            node_msgs[m.src] += 1
            node_msgs[m.dst] += 1

        max_link = max(link_bytes.values(), default=0)
        max_endpoint = max(
            max(node_tx.values(), default=0), max(node_rx.values(), default=0)
        )
        max_msgs = max(node_msgs.values(), default=0)
        bw_time = max(max_link, max_endpoint) / self.link_bandwidth
        lat_time = self.link_latency * max_msgs
        return ModeledPhaseTime(
            name=phase.name,
            bandwidth_seconds=bw_time,
            latency_seconds=lat_time,
            max_link_bytes=max_link,
            max_endpoint_bytes=max_endpoint,
            max_messages_per_node=max_msgs,
            total_bytes=phase.total_bytes,
            n_messages=phase.n_messages,
        )


@dataclass
class ModeledPhaseTime:
    """Breakdown of the modeled time of one communication phase."""

    name: str
    bandwidth_seconds: float
    latency_seconds: float
    max_link_bytes: int
    max_endpoint_bytes: int
    max_messages_per_node: int
    total_bytes: int
    n_messages: int

    @property
    def seconds(self) -> float:
        return self.bandwidth_seconds + self.latency_seconds
