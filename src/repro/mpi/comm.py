"""The communicator: MPI call surface over in-process queues.

Semantics follow mpi4py's lowercase (generic-object) API, with numpy
arrays as the intended payload.  Arrays are copied on send so SPMD code
behaves as if ranks had separate address spaces.  Collectives are
implemented on top of point-to-point transfers with realistic message
patterns (binomial trees for bcast/reduce, pairwise exchange for
alltoall), so the traffic log reflects what a real MPI would inject
into the network.
"""

from __future__ import annotations

import pickle
import queue as _queue
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.mpi.network import TrafficLog

__all__ = ["Comm", "Request", "CommAborted"]

_POLL_SECONDS = 0.05


class CommAborted(RuntimeError):
    """Raised in surviving ranks when another rank failed."""


class _CommState:
    """State shared by all ranks of one communicator."""

    def __init__(self, size: int, world_ranks: Sequence[int], traffic: TrafficLog,
                 abort_event: threading.Event) -> None:
        self.size = size
        self.world_ranks = list(world_ranks)
        self.traffic = traffic
        self.abort_event = abort_event
        self.barrier = threading.Barrier(size)
        # queues[dst][src]
        self.queues = [
            [_queue.SimpleQueue() for _ in range(size)] for _ in range(size)
        ]
        self.lock = threading.Lock()
        self.split_registry: Dict[Tuple[int, Any], "_CommState"] = {}

    def abort(self) -> None:
        self.abort_event.set()
        self.barrier.abort()


def _payload_bytes(obj: Any) -> int:
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 64  # unpicklable in-process object; count a token size


def _copy(obj: Any) -> Any:
    if isinstance(obj, np.ndarray):
        return obj.copy()
    return obj


_REDUCE_OPS: Dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "max": lambda a, b: np.maximum(a, b),
    "min": lambda a, b: np.minimum(a, b),
}


class Request:
    """Handle on a non-blocking operation (mpi4py-style)."""

    def __init__(
        self,
        comm: "Comm",
        kind: str,
        done: bool = False,
        source: int = -1,
        tag: int = 0,
    ) -> None:
        self._comm = comm
        self._kind = kind
        self._done = done
        self._source = source
        self._tag = tag
        self._payload: Any = None

    def test(self) -> Tuple[bool, Any]:
        """Non-blocking completion probe: (done, payload-or-None)."""
        if self._done:
            return True, self._payload
        st = self._comm._state
        q = st.queues[self._comm.rank][self._source]
        try:
            got_tag, payload = q.get_nowait()
        except _queue.Empty:
            return False, None
        if got_tag != self._tag:
            raise RuntimeError(
                f"tag mismatch: expected {self._tag}, got {got_tag}"
            )
        self._payload = payload
        self._done = True
        return True, payload

    def wait(self) -> Any:
        """Block until completion; returns the received object (None
        for send requests)."""
        if self._done:
            return self._payload
        self._payload = self._comm.recv(self._source, tag=self._tag)
        self._done = True
        return self._payload

    @staticmethod
    def waitall(requests: Sequence["Request"]) -> List[Any]:
        return [r.wait() for r in requests]


class Comm:
    """One rank's handle on a communicator."""

    def __init__(self, state: _CommState, rank: int) -> None:
        self._state = state
        self._rank = rank
        self._split_seq = 0

    # -- identity -------------------------------------------------------------

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._state.size

    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self._state.size

    @property
    def world_rank(self) -> int:
        """This rank's id in the world communicator (the node id used
        by the network model)."""
        return self._state.world_ranks[self._rank]

    # -- point to point ---------------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self.size:
            raise ValueError(f"invalid destination rank {dest}")
        st = self._state
        st.traffic.record(
            st.world_ranks[self._rank], st.world_ranks[dest], _payload_bytes(obj)
        )
        st.queues[dest][self._rank].put((tag, _copy(obj)))

    def recv(self, source: int, tag: int = 0) -> Any:
        if not 0 <= source < self.size:
            raise ValueError(f"invalid source rank {source}")
        q = self._state.queues[self._rank][source]
        while True:
            if self._state.abort_event.is_set():
                raise CommAborted("peer rank failed")
            try:
                got_tag, payload = q.get(timeout=_POLL_SECONDS)
            except _queue.Empty:
                continue
            if got_tag != tag:
                raise RuntimeError(
                    f"tag mismatch: expected {tag}, got {got_tag} "
                    f"(rank {self._rank} <- {source})"
                )
            return payload

    def sendrecv(
        self, sendobj: Any, dest: int, source: int, sendtag: int = 0, recvtag: int = 0
    ) -> Any:
        self.send(sendobj, dest, tag=sendtag)
        return self.recv(source, tag=recvtag)

    # -- non-blocking point to point --------------------------------------------
    #
    # The paper's footnote 4 weighs exactly this API for the mesh
    # conversion ("One may imagine replacing this communication with
    # MPI_Isend and MPI_Irecv.  However, a FFT process receives meshes
    # from ~4000 processes.  Such a large number of non-blocking
    # communications do not work concurrently.") — provided here so the
    # alternative can be expressed and its traffic analyzed.

    def isend(self, obj: Any, dest: int, tag: int = 0) -> "Request":
        """Non-blocking send.  The in-process transport buffers
        eagerly, so the send completes immediately; the Request exists
        for API parity and deferred error surfacing."""
        self.send(obj, dest, tag=tag)
        return Request(self, kind="send", done=True)

    def irecv(self, source: int, tag: int = 0) -> "Request":
        """Non-blocking receive; complete with ``req.wait()``."""
        return Request(self, kind="recv", source=source, tag=tag)

    # -- barriers ----------------------------------------------------------------

    def barrier(self) -> None:
        try:
            self._state.barrier.wait()
        except threading.BrokenBarrierError:
            raise CommAborted("barrier broken by failing rank") from None

    def traffic_phase(self, name: str) -> None:
        """Start a new named traffic phase (collective: all ranks call).

        Bracketed by barriers so no in-flight messages of the previous
        phase leak into the new one.
        """
        self.barrier()
        if self._rank == 0:
            self._state.traffic.begin_phase(name)
        self.barrier()

    # -- collectives ----------------------------------------------------------------

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Binomial-tree broadcast."""
        size, rank = self.size, self._rank
        rel = (rank - root) % size
        mask = 1
        while mask < size:
            if rel < mask:
                dst = rel + mask
                if dst < size:
                    self.send(obj, (dst + root) % size, tag=-2)
            elif rel < 2 * mask:
                obj = self.recv(((rel - mask) + root) % size, tag=-2)
            mask <<= 1
        return obj

    def reduce(self, value: Any, op: str = "sum", root: int = 0) -> Optional[Any]:
        """Binomial-tree reduction; result valid on root only."""
        fn = _REDUCE_OPS[op]
        size, rank = self.size, self._rank
        rel = (rank - root) % size
        acc = _copy(value)
        mask = 1
        while mask < size:
            if rel & mask:
                self.send(acc, ((rel - mask) + root) % size, tag=-3)
                return None
            partner = rel | mask
            if partner < size:
                other = self.recv((partner + root) % size, tag=-3)
                acc = fn(acc, other)
            mask <<= 1
        return acc if rank == root else None

    def allreduce(self, value: Any, op: str = "sum") -> Any:
        return self.bcast(self.reduce(value, op=op, root=0), root=0)

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        if self._rank != root:
            self.send(obj, root, tag=-4)
            return None
        out = [None] * self.size
        out[root] = _copy(obj)
        for src in range(self.size):
            if src != root:
                out[src] = self.recv(src, tag=-4)
        return out

    def allgather(self, obj: Any) -> List[Any]:
        return self.bcast(self.gather(obj, root=0), root=0)

    def scatter(self, objs: Optional[Sequence[Any]], root: int = 0) -> Any:
        if self._rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError("root must pass one object per rank")
            for dst in range(self.size):
                if dst != root:
                    self.send(objs[dst], dst, tag=-5)
            return _copy(objs[root])
        return self.recv(root, tag=-5)

    def alltoall(self, objs: Sequence[Any]) -> List[Any]:
        """Pairwise-exchange all-to-all; ``objs[d]`` goes to rank d."""
        if len(objs) != self.size:
            raise ValueError("need one object per rank")
        size, rank = self.size, self._rank
        out: List[Any] = [None] * size
        out[rank] = _copy(objs[rank])
        for step in range(1, size):
            dst = (rank + step) % size
            src = (rank - step) % size
            out[src] = self.sendrecv(objs[dst], dst, src, sendtag=-6, recvtag=-6)
        return out

    def alltoallv(self, arrays: Sequence[np.ndarray]) -> List[np.ndarray]:
        """All-to-all of numpy arrays (the MPI_Alltoallv workhorse).

        ``arrays[d]`` is sent to rank d; returns a list indexed by
        source rank.  Array shapes may differ per destination.
        """
        if len(arrays) != self.size:
            raise ValueError("need one array per rank")
        return self.alltoall([np.asarray(a) for a in arrays])

    # -- communicator management ---------------------------------------------------

    def split(self, color: int, key: Optional[int] = None) -> Optional["Comm"]:
        """Create sub-communicators by color (MPI_Comm_split).

        Ranks passing ``color=None`` get ``None`` back (MPI_UNDEFINED).
        Ranks are ordered by ``(key, rank)`` within each color.
        """
        seq = self._split_seq
        self._split_seq += 1
        me = (color, key if key is not None else self._rank, self._rank)
        all_entries = self.allgather(me)

        if color is None:
            self.barrier()
            return None
        members = sorted(
            (k, r) for c, k, r in all_entries if c == color
        )
        ranks = [r for _, r in members]
        new_rank = ranks.index(self._rank)
        st = self._state
        reg_key = (seq, color)
        with st.lock:
            if reg_key not in st.split_registry:
                st.split_registry[reg_key] = _CommState(
                    len(ranks),
                    [st.world_ranks[r] for r in ranks],
                    st.traffic,
                    st.abort_event,
                )
            new_state = st.split_registry[reg_key]
        self.barrier()
        return Comm(new_state, new_rank)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Comm(rank={self._rank}/{self.size})"
