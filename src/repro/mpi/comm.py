"""The communicator: MPI call surface over in-process queues.

Semantics follow mpi4py's lowercase (generic-object) API, with numpy
arrays as the intended payload.  Arrays are copied on send so SPMD code
behaves as if ranks had separate address spaces.  Collectives are
implemented on top of point-to-point transfers with realistic message
patterns (binomial trees for bcast/reduce, pairwise exchange for
alltoall), so the traffic log reflects what a real MPI would inject
into the network.

Failure semantics are deadlock-free by construction: every blocking
receive polls the shared abort flag, optionally enforces a timeout
(raising :class:`repro.mpi.faults.CommTimeout`), and registers itself
on a shared *watch board* so the runtime's watchdog can convert a hung
collective into a clean :class:`CommAborted` naming the originating
rank and operation.  A :class:`repro.mpi.faults.FaultPlan` attached to
the job is consulted on every send (drop/delay/corrupt), at every
collective entry (stalls) and at application ``fault_point`` calls
(rank kills).
"""

from __future__ import annotations

import queue as _queue
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.mpi.backend import (
    CollectiveComm,
    Request,
    _copy,
    payload_bytes as _payload_bytes,
)
from repro.mpi.faults import (
    CommTimeout,
    InjectedFault,
    MessageDropped,
    PeerFailure,
    corrupt_payload,
    retry_with_backoff,
)
from repro.mpi.network import TrafficLog

__all__ = ["Comm", "Request", "CommAborted", "CommTimeout", "PeerFailure"]

_POLL_SECONDS = 0.05

#: retry caps of the "reliable" transport path (per individual call);
#: the per-rank, per-step total is bounded by ``_JobControl.retry_budget``.
_RELIABLE_SEND_RETRIES = 3
_RELIABLE_RECV_RETRIES = 2
_RETRY_BASE_DELAY = 0.002


class CommAborted(RuntimeError):
    """Raised in surviving ranks when another rank failed."""


class _JobControl:
    """Failure-control state shared by *every* communicator of one job.

    Sub-communicators created with ``split`` get their own
    :class:`_CommState` (queues, barrier) but share this object, so an
    abort anywhere reaches ranks blocked in any communicator — including
    barriers of sub-communicators, which are all registered here and
    broken on abort.
    """

    def __init__(
        self,
        fault_plan=None,
        recv_timeout: Optional[float] = None,
        elastic: bool = False,
        world_size: Optional[int] = None,
        retry_budget: int = 16,
    ) -> None:
        self.abort_event = threading.Event()
        self.fault_plan = fault_plan
        self.recv_timeout = recv_timeout
        #: watch-board registration is enabled only when a watchdog runs,
        #: keeping the per-receive overhead at a single attribute check.
        self.watching = False
        # RLock: abort()/register_barrier() are reachable from code paths
        # that already hold the lock (consensus, shrunk-state creation)
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self.abort_reason: Optional[str] = None
        self.abort_origin: Optional[int] = None
        self._blocked: Dict[int, Tuple[str, str, float]] = {}
        self._barriers: List[threading.Barrier] = []
        self._event_seq: Dict[Any, int] = {}
        # -- elastic recovery state (see repro.mpi.recovery) ------------------
        #: survivable death is opt-in; without it a RankDeath aborts the job
        self.elastic = bool(elastic)
        self.world_size = world_size
        #: world ranks that died (monotonically growing; never resurrected)
        self.dead_ranks: set = set()
        self.dead_errors: Dict[int, BaseException] = {}
        #: current epoch: bumped by each sealed consensus round
        self.epoch = 0
        self._consensus_votes: Dict[int, set] = {}
        self._consensus_result: Dict[int, Tuple[frozenset, Tuple[int, ...]]] = {}
        #: one shared _CommState per post-recovery epoch
        self.epoch_states: Dict[int, "_CommState"] = {}
        #: last step each world rank passed to ``comm.fault_point``
        self.rank_step: Dict[int, int] = {}
        #: per-rank, per-step cap on reliable-path retransmissions
        self.retry_budget = int(retry_budget)
        self._retry_left: Dict[int, Tuple[int, int]] = {}

    def register_barrier(self, barrier: threading.Barrier) -> None:
        with self._lock:
            self._barriers.append(barrier)

    def abort(self, reason: Optional[str] = None, origin: Optional[int] = None) -> None:
        """Abort the job; the first recorded reason/origin wins."""
        with self._lock:
            if self.abort_reason is None and reason is not None:
                self.abort_reason = reason
                self.abort_origin = origin
            barriers = list(self._barriers)
            self._cond.notify_all()
        self.abort_event.set()
        for b in barriers:
            b.abort()

    # -- elastic death tracking ------------------------------------------------

    def mark_dead(self, world_rank: int, exc: BaseException) -> None:
        """Record a rank death (elastic mode) and wake every blocked rank.

        Unlike :meth:`abort` the job keeps running: barriers are broken
        so survivors blocked in them observe the death *now*, but the
        abort flag stays clear — survivors turn the resulting
        :class:`PeerFailure` into a consensus round instead of dying.
        """
        with self._lock:
            self.dead_ranks.add(int(world_rank))
            self.dead_errors[int(world_rank)] = exc
            barriers = list(self._barriers)
            self._cond.notify_all()
        for b in barriers:
            b.abort()

    def new_dead(self, known: frozenset) -> frozenset:
        """Dead world ranks not in ``known`` (snapshot under the lock)."""
        with self._lock:
            return frozenset(self.dead_ranks - known)

    def record_step(self, world_rank: int, step: int) -> None:
        with self._lock:
            self.rank_step[world_rank] = int(step)

    def step_of(self, world_rank: int) -> Optional[int]:
        with self._lock:
            return self.rank_step.get(world_rank)

    # -- reliable-path retry budget --------------------------------------------

    def try_consume_retry(self, world_rank: int) -> bool:
        """Take one retransmission from this rank's per-step budget.

        The budget resets whenever the rank's recorded step advances, so
        a long run cannot starve later steps, while a pathological storm
        of injected faults within one step is bounded instead of retried
        forever.  Returns ``False`` when the budget is exhausted.
        """
        with self._lock:
            step = self.rank_step.get(world_rank, -1)
            entry = self._retry_left.get(world_rank)
            left = self.retry_budget if entry is None or entry[0] != step else entry[1]
            if left <= 0:
                return False
            self._retry_left[world_rank] = (step, left - 1)
            return True

    # -- survivor consensus ------------------------------------------------------

    def survivor_consensus(
        self, world_rank: int, timeout: float = 30.0
    ) -> Tuple[set, List[int], int]:
        """One ULFM-``agree``-style round: block until every live rank
        has voted, then return the agreed ``(dead set, survivor world
        ranks, new epoch)`` — identical on every caller.

        The round targeting epoch ``current + 1`` seals when the set of
        voters covers every rank not currently marked dead; the sealing
        rank records the result and bumps the epoch, late arrivals read
        the cached result.  A rank that dies mid-round shrinks the
        expected voter set, so the round re-evaluates rather than hangs.
        Expiry of ``timeout`` aborts the whole job (a survivor that
        never joins is indistinguishable from a hang).
        """
        if self.world_size is None:
            raise RuntimeError("survivor consensus needs a job world size")
        deadline = time.monotonic() + timeout
        with self._cond:
            rnd = self.epoch + 1
            votes = self._consensus_votes.setdefault(rnd, set())
            votes.add(int(world_rank))
            self._cond.notify_all()
            while True:
                cached = self._consensus_result.get(rnd)
                if cached is not None:
                    dead, survivors = cached
                    return set(dead), list(survivors), rnd
                dead = set(self.dead_ranks)
                expected = set(range(self.world_size)) - dead
                if expected and expected <= votes:
                    survivors = tuple(sorted(expected))
                    self._consensus_result[rnd] = (frozenset(dead), survivors)
                    self.epoch = rnd
                    self._cond.notify_all()
                    return set(dead), list(survivors), rnd
                if self.abort_event.is_set():
                    raise CommAborted(
                        self.abort_reason or "job aborted during survivor consensus"
                    )
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self.abort(
                        reason=(
                            f"survivor consensus for epoch {rnd} timed out "
                            f"after {timeout:.3g}s on rank {world_rank} "
                            f"({len(votes)}/{len(expected)} votes)"
                        ),
                        origin=world_rank,
                    )
                    raise CommAborted(self.abort_reason)
                self._cond.wait(min(remaining, _POLL_SECONDS))

    def shrunk_state(
        self,
        epoch: int,
        survivor_world_ranks: Sequence[int],
        dead: Sequence[int],
        traffic: TrafficLog,
    ) -> "_CommState":
        """Create-or-get the shared communicator state of ``epoch``.

        The first survivor to arrive builds it (fresh queues, fresh
        barrier, ``known_dead`` frozen to the agreed dead set); the rest
        reuse it.  Old-epoch queues are simply abandoned — any straggler
        message parked there is never routed into the new state, and the
        epoch stamp on every message rejects cross-state leaks.
        """
        with self._lock:
            st = self.epoch_states.get(epoch)
            if st is None:
                st = _CommState(
                    len(survivor_world_ranks),
                    list(survivor_world_ranks),
                    traffic,
                    self,
                    epoch=epoch,
                    known_dead=frozenset(dead),
                )
                self.epoch_states[epoch] = st
            return st

    # -- watch board (who is blocked where, for the watchdog) -----------------

    def block(self, world_rank: int, op: str, detail: str) -> bool:
        if not self.watching:
            return False
        with self._lock:
            self._blocked[world_rank] = (op, detail, time.monotonic())
        return True

    def unblock(self, world_rank: int) -> None:
        with self._lock:
            self._blocked.pop(world_rank, None)

    def oldest_blocked(self) -> Optional[Tuple[int, str, str, float]]:
        """(world_rank, op, detail, since) of the longest-blocked rank."""
        with self._lock:
            if not self._blocked:
                return None
            rank = min(self._blocked, key=lambda r: self._blocked[r][2])
            op, detail, since = self._blocked[rank]
        return rank, op, detail, since

    def next_event_seq(self, key: Any) -> int:
        """Monotonic per-key sequence counter (fault-event matching)."""
        with self._lock:
            seq = self._event_seq.get(key, 0)
            self._event_seq[key] = seq + 1
        return seq


class _CommState:
    """State shared by all ranks of one communicator."""

    def __init__(
        self,
        size: int,
        world_ranks: Sequence[int],
        traffic: TrafficLog,
        control: _JobControl,
        epoch: int = 0,
        known_dead: frozenset = frozenset(),
    ) -> None:
        self.size = size
        self.world_ranks = list(world_ranks)
        self.traffic = traffic
        self.control = control
        #: epoch stamp carried by every message sent through this state;
        #: receives reject other-epoch stragglers instead of delivering them
        self.epoch = int(epoch)
        #: deaths this state already excludes — only *new* deaths beyond
        #: this set raise PeerFailure on its members
        self.known_dead = frozenset(known_dead)
        self.barrier = threading.Barrier(size)
        control.register_barrier(self.barrier)
        # queues[dst][src]
        self.queues = [
            [_queue.SimpleQueue() for _ in range(size)] for _ in range(size)
        ]
        self.lock = threading.Lock()
        self.split_registry: Dict[Tuple[int, Any], "_CommState"] = {}

    @property
    def abort_event(self) -> threading.Event:
        return self.control.abort_event

    def abort(self, reason: Optional[str] = None, origin: Optional[int] = None) -> None:
        self.control.abort(reason, origin)


class Comm(CollectiveComm):
    """One rank's handle on a communicator (thread backend).

    The collective surface (bcast/reduce/gather/scatter/alltoall/...)
    comes from :class:`repro.mpi.backend.CollectiveComm`; this class
    provides the in-process transport — per-pair queues, the shared
    barrier, fault injection and the failure-detection machinery.
    """

    def __init__(self, state: _CommState, rank: int) -> None:
        self._state = state
        self._rank = rank
        self._split_seq = 0
        self._current_op: Optional[str] = None
        #: stragglers from another epoch this rank discarded on receive
        self.stale_rejected = 0
        #: cumulative seconds this rank spent blocked in communication
        #: (collectives, barriers, receive waits); straggler detection
        #: subtracts it from wall time to get *work* time — in
        #: lock-step collectives every rank's wall time equals the
        #: straggler's, and only the work/wait split tells them apart
        self._wait_seconds = 0.0
        self._wait_depth = 0
        self._wait_t0 = 0.0

    @property
    def wait_seconds(self) -> float:
        return self._wait_seconds

    def _wait_enter(self) -> None:
        self._wait_depth += 1
        if self._wait_depth == 1:
            self._wait_t0 = time.perf_counter()

    def _wait_exit(self) -> None:
        self._wait_depth -= 1
        if self._wait_depth == 0:
            self._wait_seconds += time.perf_counter() - self._wait_t0

    # -- identity -------------------------------------------------------------

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._state.size

    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self._state.size

    @property
    def world_rank(self) -> int:
        """This rank's id in the world communicator (the node id used
        by the network model)."""
        return self._state.world_ranks[self._rank]

    @property
    def epoch(self) -> int:
        """Recovery epoch of this communicator (0 before any failure)."""
        return self._state.epoch

    @property
    def fault_plan(self):
        """The job's :class:`~repro.mpi.faults.FaultPlan` (None when no
        faults are scheduled).  Application layers consult it for the
        state-corruption rules (``flip_bits`` / ``rot_checkpoint``) that
        fire outside the transport."""
        return self._state.control.fault_plan

    @property
    def recv_timeout(self):
        """The job-wide default receive deadline (seconds, or None)."""
        return self._state.control.recv_timeout

    def set_recv_timeout(self, seconds) -> None:
        """Retune the job-wide default receive deadline at runtime —
        the hook the health layer uses to derive collective deadlines
        from *observed* step times instead of a fixed constant.  The
        control block is shared, so every rank of the job sees the new
        deadline (callers set it collectively with an identical value)."""
        self._state.control.recv_timeout = (
            None if seconds is None else float(seconds)
        )

    # -- fault injection --------------------------------------------------------

    def fault_point(self, step: int) -> None:
        """Application hook: raise :class:`InjectedFault` if the job's
        fault plan kills this rank at ``step``.  A no-op (one attribute
        check) when no plan is attached.

        Also records ``step`` as this rank's current application step —
        the value structured :class:`CommTimeout` errors carry and the
        boundary at which the reliable-path retry budget refills.
        """
        ctl = self._state.control
        ctl.record_step(self.world_rank, step)
        plan = ctl.fault_plan
        if plan is None:
            return
        if plan.should_kill(self.world_rank, step):
            raise InjectedFault(
                f"rank {self.world_rank} killed by fault plan at step {step}"
            )
        self._injected_sleep(plan.slow_delay(self.world_rank, step))

    def _injected_sleep(self, delay: float) -> None:
        """Pay an injected gray-failure delay, staying abortable: the
        rank is *slow*, not wedged — a job abort still frees it."""
        if delay <= 0.0:
            return
        ctl = self._state.control
        deadline = time.monotonic() + delay
        while time.monotonic() < deadline:
            if ctl.abort_event.is_set():
                raise CommAborted(self._abort_reason("peer rank failed"))
            time.sleep(min(_POLL_SECONDS, delay))

    def _check_peer_failure(self) -> None:
        """Elastic mode: surface deaths this communicator does not
        already exclude as :class:`PeerFailure` (cheap: one attribute
        test on the common path)."""
        st = self._state
        ctl = st.control
        if not ctl.elastic:
            return
        delta = ctl.new_dead(st.known_dead)
        if delta:
            raise PeerFailure(
                f"rank {self.world_rank}: peer rank(s) {sorted(delta)} died "
                f"(epoch {st.epoch})",
                dead_ranks=ctl.new_dead(frozenset()),
                epoch=st.epoch,
            )

    def _abort_reason(self, fallback: str) -> str:
        return self._state.control.abort_reason or fallback

    @contextmanager
    def _collective(self, name: str):
        """Label the current collective (for watchdog reports) and apply
        any scheduled stall for this rank at this call."""
        ctl = self._state.control
        prev = self._current_op
        self._current_op = name
        self._wait_enter()
        try:
            plan = ctl.fault_plan
            if plan is not None:
                seq = ctl.next_event_seq(("collective", self.world_rank, name))
                if plan.should_stall(self.world_rank, name, seq):
                    registered = ctl.block(
                        self.world_rank, name, "stalled by fault plan"
                    )
                    try:
                        while not ctl.abort_event.is_set():
                            time.sleep(_POLL_SECONDS)
                    finally:
                        if registered:
                            ctl.unblock(self.world_rank)
                    raise CommAborted(
                        self._abort_reason(f"{name} stalled by fault plan")
                    )
                self._injected_sleep(
                    plan.collective_delay(
                        self.world_rank, name,
                        ctl.step_of(self.world_rank) or 0,
                    )
                )
            yield
        finally:
            self._wait_exit()
            self._current_op = prev

    # -- point to point ---------------------------------------------------------

    def _send_attempt(self, obj: Any, dest: int, tag: int) -> bool:
        """One transmission attempt; returns ``False`` when the fault
        plan dropped the message (the bytes left this rank but never
        arrive)."""
        st = self._state
        ctl = st.control
        src_w = st.world_ranks[self._rank]
        dst_w = st.world_ranks[dest]
        st.traffic.record(src_w, dst_w, _payload_bytes(obj))
        payload = _copy(obj)
        plan = ctl.fault_plan
        if plan is not None:
            drop = False
            delay = 0.0
            for ev in plan.message_events(src_w, dst_w):
                seq = ctl.next_event_seq(("message", id(ev)))
                if not ev.hits(seq, plan.seed, src_w, dst_w):
                    continue
                if ev.kind == "drop":
                    drop = True
                elif ev.kind == "delay":
                    delay += ev.seconds
                elif ev.kind == "corrupt":
                    payload = corrupt_payload(payload, key=ev.key)
            if delay > 0.0:
                deadline = time.monotonic() + delay
                while time.monotonic() < deadline:
                    if ctl.abort_event.is_set():
                        raise CommAborted(self._abort_reason("peer rank failed"))
                    time.sleep(min(_POLL_SECONDS, delay))
            if drop:
                return False
        st.queues[dest][self._rank].put((st.epoch, tag, payload))
        return True

    def send(self, obj: Any, dest: int, tag: int = 0, reliable: bool = False) -> None:
        """Send ``obj`` to ``dest``.

        With ``reliable=True`` the send models transport-level
        retransmission: an injected drop is *observed at the sender*
        (this runtime's stand-in for a missing ack) and the transfer is
        retried with exponential backoff, consuming one unit of the
        job's per-rank, per-step retry budget per retransmission.  Each
        retry consults the fault plan afresh, so a finite drop rule is
        absorbed; a persistent one (or an exhausted budget) raises
        :class:`repro.mpi.faults.MessageDropped`.
        """
        if not 0 <= dest < self.size:
            raise ValueError(f"invalid destination rank {dest}")
        if not reliable:
            self._send_attempt(obj, dest, tag)
            return
        st = self._state
        ctl = st.control
        me_w = st.world_ranks[self._rank]
        dst_w = st.world_ranks[dest]

        def attempt() -> None:
            if not self._send_attempt(obj, dest, tag):
                raise MessageDropped(
                    f"rank {me_w}: send to rank {dst_w} (tag {tag}) dropped "
                    f"by fault plan",
                    rank=me_w,
                    source=dst_w,
                    tag=tag,
                    step=ctl.step_of(me_w),
                    op="send",
                )

        def on_retry(attempt_idx: int, exc: BaseException) -> None:
            if not ctl.try_consume_retry(me_w):
                raise exc  # budget exhausted: surface the drop now

        retry_with_backoff(
            attempt,
            retries=_RELIABLE_SEND_RETRIES,
            base_delay=_RETRY_BASE_DELAY,
            # per-rank, per-step seed: simultaneous drops on N ranks
            # back off on diverging (but reproducible) schedules
            seed=(me_w, max(0, ctl.step_of(me_w) or 0)),
            exceptions=(MessageDropped,),
            on_retry=on_retry,
        )

    def recv(self, source: int, tag: int = 0, timeout: Optional[float] = None) -> Any:
        """Blocking receive.

        ``timeout`` (seconds) bounds the wait; ``None`` falls back to
        the job-wide default (``MPIRuntime(recv_timeout=...)``), and a
        job with neither waits until the message arrives or the job
        aborts.  Expiry raises :class:`CommTimeout` naming this rank,
        the awaited source and the enclosing operation — a hung peer
        can therefore never deadlock the caller.  In an elastic job a
        peer death raises :class:`PeerFailure` instead of letting the
        wait run out.  Messages stamped with another epoch (stragglers
        of a pre-recovery send) are discarded, counted in
        ``self.stale_rejected``.
        """
        if not 0 <= source < self.size:
            raise ValueError(f"invalid source rank {source}")
        st = self._state
        ctl = st.control
        if timeout is None:
            timeout = ctl.recv_timeout
        t0 = time.monotonic()
        deadline = t0 + timeout if timeout is not None else None
        q = st.queues[self._rank][source]
        me_w = st.world_ranks[self._rank]
        src_w = st.world_ranks[source]
        op = self._current_op or "recv"
        registered = ctl.block(me_w, op, f"from rank {src_w}, tag {tag}")
        self._wait_enter()
        try:
            while True:
                # drain the queue before looking at failure signals: a
                # message that was already delivered must win over a
                # concurrent peer-death mark (otherwise a survivor could
                # spuriously lose e.g. its buddy copy to a PeerFailure
                # raised while the data sat in its queue)
                try:
                    got_epoch, got_tag, payload = q.get_nowait()
                except _queue.Empty:
                    if ctl.abort_event.is_set():
                        raise CommAborted(self._abort_reason("peer rank failed"))
                    self._check_peer_failure()
                    if deadline is not None and time.monotonic() > deadline:
                        elapsed = time.monotonic() - t0
                        raise CommTimeout(
                            f"rank {me_w}: {op} from rank {src_w} (tag {tag}) "
                            f"timed out after {timeout:.3g}s",
                            rank=me_w,
                            source=src_w,
                            tag=tag,
                            step=ctl.step_of(me_w),
                            elapsed=elapsed,
                            op=op,
                        )
                    try:
                        got_epoch, got_tag, payload = q.get(timeout=_POLL_SECONDS)
                    except _queue.Empty:
                        continue
                if got_epoch != st.epoch:
                    self.stale_rejected += 1
                    continue
                if got_tag != tag:
                    raise RuntimeError(
                        f"tag mismatch: expected {tag}, got {got_tag} "
                        f"(rank {self._rank} <- {source})"
                    )
                return payload
        finally:
            self._wait_exit()
            if registered:
                ctl.unblock(me_w)

    def _recv_reliable(self, source: int, tag: int = 0) -> Any:
        """Receive with timeout-absorbing retries (the delay-fault
        counterpart of ``send(reliable=True)``): each expired wait costs
        one unit of the per-step retry budget and re-enters the wait, so
        a transiently delayed message is delivered instead of failing
        the step."""
        ctl = self._state.control
        me_w = self.world_rank

        def on_retry(attempt_idx: int, exc: BaseException) -> None:
            if not ctl.try_consume_retry(me_w):
                raise exc

        return retry_with_backoff(
            lambda: self.recv(source, tag=tag),
            retries=_RELIABLE_RECV_RETRIES,
            base_delay=0.0,
            exceptions=(CommTimeout,),
            on_retry=on_retry,
        )

    def _try_recv(self, source: int, tag: int) -> Tuple[bool, Any]:
        """Non-blocking receive probe (backs ``Request.test``)."""
        st = self._state
        q = st.queues[self.rank][source]
        while True:
            try:
                got_epoch, got_tag, payload = q.get_nowait()
            except _queue.Empty:
                return False, None
            if got_epoch != st.epoch:
                self.stale_rejected += 1
                continue
            break
        if got_tag != tag:
            raise RuntimeError(
                f"tag mismatch: expected {tag}, got {got_tag}"
            )
        return True, payload

    # -- barriers ----------------------------------------------------------------

    def barrier(self) -> None:
        ctl = self._state.control
        me_w = self.world_rank
        registered = ctl.block(me_w, self._current_op or "barrier", "")
        self._wait_enter()
        try:
            self._state.barrier.wait()
        except threading.BrokenBarrierError:
            # elastic death breaks barriers without aborting the job:
            # classify before reporting a (fatal) CommAborted
            self._check_peer_failure()
            raise CommAborted(
                self._abort_reason("barrier broken by failing rank")
            ) from None
        finally:
            self._wait_exit()
            if registered:
                ctl.unblock(me_w)

    def traffic_phase(self, name: str) -> None:
        """Start a new named traffic phase (collective: all ranks call).

        Bracketed by barriers so no in-flight messages of the previous
        phase leak into the new one.
        """
        self.barrier()
        if self._rank == 0:
            self._state.traffic.begin_phase(name)
        self.barrier()

    # -- communicator management ---------------------------------------------------

    def _make_split_comm(
        self, seq: int, color: int, member_ranks: Sequence[int], new_rank: int
    ) -> "Comm":
        """Split hook: share one :class:`_CommState` per ``(seq,
        color)`` among the member ranks (first to arrive creates it)."""
        st = self._state
        reg_key = (seq, color)
        with st.lock:
            if reg_key not in st.split_registry:
                st.split_registry[reg_key] = _CommState(
                    len(member_ranks),
                    [st.world_ranks[r] for r in member_ranks],
                    st.traffic,
                    st.control,
                    epoch=st.epoch,
                    known_dead=st.known_dead,
                )
            new_state = st.split_registry[reg_key]
        return Comm(new_state, new_rank)

    # -- elastic recovery ----------------------------------------------------------

    def shrink(self, timeout: float = 30.0) -> Tuple["Comm", List[int], int]:
        """One survivor-consensus round; see
        :func:`repro.mpi.recovery.shrink_after_failure` (the public
        entry point) for the contract."""
        st = self._state
        ctl = st.control
        if not ctl.elastic:
            raise RuntimeError(
                "shrink_after_failure requires an elastic job "
                "(MPIRuntime(elastic=True))"
            )
        dead, survivors, epoch = ctl.survivor_consensus(
            self.world_rank, timeout=timeout
        )
        if self.world_rank not in survivors:
            # cannot happen for a live caller: the round only seals once
            # every non-dead rank (including us) has voted
            raise PeerFailure(
                f"rank {self.world_rank} was declared dead by consensus",
                dead_ranks=dead,
                epoch=epoch,
            )
        new_state = ctl.shrunk_state(epoch, survivors, dead, st.traffic)
        new_comm = Comm(new_state, survivors.index(self.world_rank))
        newly_dead = sorted(set(dead) - set(st.known_dead))
        return new_comm, newly_dead, epoch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Comm(rank={self._rank}/{self.size})"
