"""Elastic shrink-and-continue recovery: consensus, buddies, shrunk comms.

The paper's headline runs occupy up to 82944 nodes for many hours — a
regime where losing a rank is an expected event, not an anomaly.  GreeM's
sampling-based multisection decomposition recomputes domains every step
anyway, which is exactly what makes *continuing on fewer ranks* cheap:
nothing about the decomposition is tied to the original rank count.
This module provides the runtime half of that ULFM-style protocol for
``MPIRuntime(elastic=True)`` jobs:

* **Survivor consensus** — after a death surfaces (as
  :class:`~repro.mpi.faults.PeerFailure` from a blocking operation, or
  :class:`~repro.mpi.faults.CommTimeout` when a message silently never
  arrived), every live rank calls :func:`shrink_after_failure`.  The
  shared consensus board (the in-process analog of ``MPIX_Comm_agree``)
  blocks until all live ranks voted, then returns the identical
  ``(dead set, survivors, epoch)`` everywhere.
* **Shrunk communicator** — the survivors get a fresh communicator
  state for the new epoch: new queues, a new barrier, ranks renumbered
  ``0..len(survivors)-1`` in world-rank order.  Every message carries
  its epoch, so a straggler sent before the failure can never be
  delivered into post-recovery traffic (it is counted in
  ``comm.stale_rejected`` instead).
* **Buddy replication** — :class:`BuddyStore` keeps, in memory, a
  checksummed copy of each rank's particle block on its ring successor
  (refreshed every K steps at the exchange boundary), plus each rank's
  own snapshot of the same boundary.  After a failure the survivors
  roll back to that consistent boundary and the dead rank's particles
  are recovered from the buddy copy without touching disk; only when
  owner *and* buddy died does recovery fall back to the distributed
  disk checkpoint.

The simulation-level wiring (re-decomposition over the survivor set,
step re-execution, the post-recovery validation sweep) lives in
:mod:`repro.sim.elastic`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.mpi.comm import Comm
from repro.mpi.faults import PeerFailure

__all__ = [
    "RecoveryError",
    "RecoveryEvent",
    "BuddySnapshot",
    "BuddyStore",
    "shrink_after_failure",
    "BUDDY_TAG",
]

#: message tag of the buddy-replication ring exchange
BUDDY_TAG = -17


class RecoveryError(RuntimeError):
    """In-run recovery is impossible (or produced an invalid state).

    Raised when the in-memory path cannot proceed — buddy and owner
    both dead, inconsistent snapshot steps, a checksum mismatch, or a
    failed post-recovery validation sweep — so the caller can fall back
    to the disk checkpoint, or give up loudly."""


@dataclass
class RecoveryEvent:
    """One completed recovery, as reported by the elastic run loop."""

    epoch: int
    dead_ranks: Tuple[int, ...]
    n_survivors: int
    #: ``"buddy"`` (in-memory), ``"disk"`` (checkpoint fallback) or
    #: ``"rollback"`` (no deaths — a transient failure exhausted its
    #: retries; same consistent boundary, same rank count)
    mode: str
    #: step the survivors resumed from (the rolled-back boundary)
    resumed_step: int
    #: step at which the failure surfaced on this rank
    failed_step: int
    #: wall-clock seconds from failure detection to a validated state
    duration: float
    detail: str = ""


def _digest(arr: np.ndarray) -> str:
    """sha256 over dtype, shape and bytes (buddy-copy integrity)."""
    arr = np.ascontiguousarray(arr)
    h = hashlib.sha256()
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


@dataclass
class BuddySnapshot:
    """One rank's particle block frozen at a step boundary."""

    owner_world_rank: int
    step: int
    epoch: int
    arrays: Dict[str, np.ndarray]
    checksums: Dict[str, str]
    #: global conservation reference of the snapshot boundary
    #: (identical on every rank: computed by one allreduce)
    reference: Dict[str, Any] = field(default_factory=dict)

    def verify(self) -> bool:
        """Recompute every array digest against the stored checksums."""
        if set(self.checksums) != set(self.arrays):
            return False
        return all(
            _digest(self.arrays[k]) == want for k, want in self.checksums.items()
        )


class BuddyStore:
    """In-memory buddy replication over a ring.

    Every ``refresh`` (collective) freezes this rank's particle block —
    its *self copy*, the rollback boundary — and ships a checksummed
    duplicate to the ring successor ``(rank + 1) % size`` while
    receiving the predecessor's.  After a rank dies, its block survives
    on its buddy; :meth:`plan_recovery` decides collectively whether
    every dead rank is covered by a live, checksum-clean, step-consistent
    copy, and :meth:`recovered_arrays` hands each survivor its rollback
    block (with any adopted dead-rank particles appended).

    The refresh cadence K trades overhead for staleness: each refresh
    costs one ring message of the full particle block (plus one small
    allreduce for the conservation reference), and a failure loses at
    most K steps of progress — exactly a checkpoint-interval trade-off,
    but at memory speed and without touching the filesystem.
    """

    #: keys every snapshot must carry (the exchange payload minus the
    #: force accumulators, which are recomputed after recovery anyway)
    REQUIRED_KEYS = ("pos", "mom", "mass", "ids")

    def __init__(self) -> None:
        self.self_copy: Optional[BuddySnapshot] = None
        self.peer_copy: Optional[BuddySnapshot] = None

    @property
    def step(self) -> Optional[int]:
        return None if self.self_copy is None else self.self_copy.step

    def refresh(self, comm: Comm, arrays: Dict[str, np.ndarray], step: int) -> None:
        """Collective: snapshot ``arrays`` at boundary ``step`` and
        exchange buddy copies around the ring."""
        for key in self.REQUIRED_KEYS:
            if key not in arrays:
                raise ValueError(f"buddy snapshot needs array {key!r}")
        mass = np.asarray(arrays["mass"], dtype=np.float64)
        mom = np.asarray(arrays["mom"], dtype=np.float64)
        mp = mass[:, None] * mom if len(mass) else np.zeros((0, 3))
        totals = comm.allreduce(
            np.array(
                [
                    float(len(mass)),
                    float(mass.sum()),
                    *mp.sum(axis=0),
                    float(np.abs(mp).sum()),
                ]
            ),
            op="sum",
        )
        reference = {
            "count": int(round(totals[0])),
            "mass": float(totals[1]),
            "momentum": totals[2:5].copy(),
            "mom_scale": float(totals[5]),
        }
        copies = {k: np.array(arrays[k], copy=True) for k in arrays}
        snap = BuddySnapshot(
            owner_world_rank=comm.world_rank,
            step=int(step),
            epoch=comm.epoch,
            arrays=copies,
            checksums={k: _digest(a) for k, a in copies.items()},
            reference=reference,
        )
        self.self_copy = snap
        if comm.size == 1:
            self.peer_copy = None
            return
        succ = (comm.rank + 1) % comm.size
        pred = (comm.rank - 1) % comm.size
        comm.send(snap, succ, tag=BUDDY_TAG, reliable=True)
        self.peer_copy = comm.recv(pred, tag=BUDDY_TAG)

    # -- recovery ---------------------------------------------------------------

    def _peer_report(self) -> Dict[str, Any]:
        peer = self.peer_copy
        return {
            "self_step": self.step,
            "peer_owner": None if peer is None else peer.owner_world_rank,
            "peer_step": None if peer is None else peer.step,
            "peer_valid": peer is not None and peer.verify(),
        }

    def plan_recovery(
        self, new_comm: Comm, dead_ranks: Sequence[int]
    ) -> Tuple[bool, int, str]:
        """Collective (on the shrunk comm): can the dead set be
        recovered in memory?

        Returns ``(feasible, boundary_step, reason)`` — identical on
        every survivor, because the verdict is a pure function of the
        allgathered per-rank reports.
        """
        reports = new_comm.allgather(self._peer_report())
        steps = {r["self_step"] for r in reports}
        if None in steps:
            return False, -1, "a survivor holds no self snapshot"
        if len(steps) != 1:
            return False, -1, f"survivor snapshots disagree on the boundary: {sorted(steps)}"
        boundary = int(steps.pop())
        for d in sorted(int(r) for r in dead_ranks):
            holders = [
                r
                for r in reports
                if r["peer_owner"] == d and r["peer_step"] == boundary
            ]
            if not holders:
                return False, boundary, (
                    f"no live buddy holds rank {d}'s block at step {boundary} "
                    f"(owner and buddy both lost)"
                )
            if not any(r["peer_valid"] for r in holders):
                return False, boundary, (
                    f"buddy copy of rank {d}'s block failed its checksum"
                )
        return True, boundary, ""

    def recovered_arrays(
        self, dead_ranks: Sequence[int]
    ) -> Tuple[Dict[str, np.ndarray], List[int]]:
        """This survivor's rollback block: its own snapshot, plus the
        particles of any dead rank whose buddy copy it holds.  Returns
        ``(arrays, adopted_dead_ranks)``.  The first post-recovery
        domain update redistributes everything, so *where* the adopted
        block lands does not matter — only that exactly one survivor
        contributes it.
        """
        if self.self_copy is None:
            raise RecoveryError("no self snapshot to roll back to")
        if not self.self_copy.verify():
            raise RecoveryError("own rollback snapshot failed its checksum")
        arrays = {k: a.copy() for k, a in self.self_copy.arrays.items()}
        adopted: List[int] = []
        peer = self.peer_copy
        dead = {int(r) for r in dead_ranks}
        if peer is not None and peer.owner_world_rank in dead:
            if not peer.verify():
                raise RecoveryError(
                    f"buddy copy of rank {peer.owner_world_rank} failed its checksum"
                )
            if set(peer.arrays) != set(arrays):
                raise RecoveryError(
                    f"buddy copy of rank {peer.owner_world_rank} carries keys "
                    f"{sorted(peer.arrays)}, expected {sorted(arrays)}"
                )
            for k in arrays:
                arrays[k] = np.concatenate([arrays[k], peer.arrays[k]], axis=0)
            adopted.append(peer.owner_world_rank)
        return arrays, adopted


def shrink_after_failure(
    comm: Comm, timeout: float = 30.0
) -> Tuple[Comm, List[int], int]:
    """Run one survivor-consensus round and return the shrunk world.

    Every live rank of an elastic job calls this after observing a
    failure (:class:`PeerFailure` or :class:`CommTimeout`); the call
    blocks until all live ranks joined, then returns
    ``(new_comm, dead_world_ranks, epoch)`` — identical everywhere, the
    communicator renumbered over the survivors in world-rank order.
    ``dead_world_ranks`` holds only the ranks that died *since the
    previous epoch* (the ones this recovery must restore); earlier
    casualties were already handled.  An empty dead set means the failure
    was transient (e.g. a dropped message whose retries ran out): the
    fresh epoch still quarantines every in-flight straggler of the
    broken step, and the caller re-executes from its last boundary on
    the same rank count.
    """
    st = comm._state
    ctl = st.control
    if not ctl.elastic:
        raise RuntimeError(
            "shrink_after_failure requires an elastic job "
            "(MPIRuntime(elastic=True))"
        )
    dead, survivors, epoch = ctl.survivor_consensus(
        comm.world_rank, timeout=timeout
    )
    if comm.world_rank not in survivors:
        # cannot happen for a live caller: the round only seals once
        # every non-dead rank (including us) has voted
        raise PeerFailure(
            f"rank {comm.world_rank} was declared dead by consensus",
            dead_ranks=dead,
            epoch=epoch,
        )
    new_state = ctl.shrunk_state(epoch, survivors, dead, st.traffic)
    new_comm = Comm(new_state, survivors.index(comm.world_rank))
    newly_dead = sorted(set(dead) - set(st.known_dead))
    return new_comm, newly_dead, epoch
