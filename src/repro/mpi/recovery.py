"""Elastic shrink-and-continue recovery: consensus, buddies, shrunk comms.

The paper's headline runs occupy up to 82944 nodes for many hours — a
regime where losing a rank is an expected event, not an anomaly.  GreeM's
sampling-based multisection decomposition recomputes domains every step
anyway, which is exactly what makes *continuing on fewer ranks* cheap:
nothing about the decomposition is tied to the original rank count.
This module provides the runtime half of that ULFM-style protocol for
``MPIRuntime(elastic=True)`` jobs:

* **Survivor consensus** — after a death surfaces (as
  :class:`~repro.mpi.faults.PeerFailure` from a blocking operation, or
  :class:`~repro.mpi.faults.CommTimeout` when a message silently never
  arrived), every live rank calls :func:`shrink_after_failure`.  The
  shared consensus board (the in-process analog of ``MPIX_Comm_agree``)
  blocks until all live ranks voted, then returns the identical
  ``(dead set, survivors, epoch)`` everywhere.
* **Shrunk communicator** — the survivors get a fresh communicator
  state for the new epoch: new queues, a new barrier, ranks renumbered
  ``0..len(survivors)-1`` in world-rank order.  Every message carries
  its epoch, so a straggler sent before the failure can never be
  delivered into post-recovery traffic (it is counted in
  ``comm.stale_rejected`` instead).
* **Buddy replication** — :class:`BuddyStore` keeps, in memory, a
  checksummed copy of each rank's particle block on its ring successor
  (refreshed every K steps at the exchange boundary), plus each rank's
  own snapshot of the same boundary.  After a failure the survivors
  roll back to that consistent boundary and the dead rank's particles
  are recovered from the buddy copy without touching disk; only when
  owner *and* buddy died does recovery fall back to the distributed
  disk checkpoint.

The simulation-level wiring (re-decomposition over the survivor set,
step re-execution, the post-recovery validation sweep) lives in
:mod:`repro.sim.elastic`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.mpi.comm import Comm

__all__ = [
    "RecoveryError",
    "RecoveryEvent",
    "BuddySnapshot",
    "BuddyStore",
    "shrink_after_failure",
    "BUDDY_TAG",
]

#: message tag of the buddy-replication ring exchange
BUDDY_TAG = -17


class RecoveryError(RuntimeError):
    """In-run recovery is impossible (or produced an invalid state).

    Raised when the in-memory path cannot proceed — buddy and owner
    both dead, inconsistent snapshot steps, a checksum mismatch, or a
    failed post-recovery validation sweep — so the caller can fall back
    to the disk checkpoint, or give up loudly."""


@dataclass
class RecoveryEvent:
    """One completed recovery, as reported by the elastic run loop."""

    epoch: int
    dead_ranks: Tuple[int, ...]
    n_survivors: int
    #: ``"buddy"`` (in-memory), ``"disk"`` (checkpoint fallback) or
    #: ``"rollback"`` (no deaths — a transient failure exhausted its
    #: retries; same consistent boundary, same rank count)
    mode: str
    #: step the survivors resumed from (the rolled-back boundary)
    resumed_step: int
    #: step at which the failure surfaced on this rank
    failed_step: int
    #: wall-clock seconds from failure detection to a validated state
    duration: float
    detail: str = ""


def _digest(arr: np.ndarray) -> str:
    """sha256 over dtype, shape and bytes (buddy-copy integrity)."""
    arr = np.ascontiguousarray(arr)
    h = hashlib.sha256()
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


@dataclass
class BuddySnapshot:
    """One rank's particle block frozen at a step boundary."""

    owner_world_rank: int
    step: int
    epoch: int
    arrays: Dict[str, np.ndarray]
    checksums: Dict[str, str]
    #: global conservation reference of the snapshot boundary
    #: (identical on every rank: computed by one allreduce)
    reference: Dict[str, Any] = field(default_factory=dict)

    def verify(self) -> bool:
        """Recompute every array digest against the stored checksums."""
        if set(self.checksums) != set(self.arrays):
            return False
        return all(
            _digest(self.arrays[k]) == want for k, want in self.checksums.items()
        )


class BuddyStore:
    """In-memory buddy replication over a ring.

    Every ``refresh`` (collective) freezes this rank's particle block —
    its *self copy*, the rollback boundary — and ships a checksummed
    duplicate to the ring successor ``(rank + 1) % size`` while
    receiving the predecessor's.  After a rank dies, its block survives
    on its buddy; :meth:`plan_recovery` decides collectively whether
    every dead rank is covered by a live, checksum-clean, step-consistent
    copy, and :meth:`recovered_arrays` hands each survivor its rollback
    block (with any adopted dead-rank particles appended).

    The refresh cadence K trades overhead for staleness: each refresh
    costs one ring message of the full particle block (plus one small
    allreduce for the conservation reference), and a failure loses at
    most K steps of progress — exactly a checkpoint-interval trade-off,
    but at memory speed and without touching the filesystem.

    The store keeps the last :data:`HISTORY_DEPTH` boundaries, not just
    the newest.  On backends with real processes a rank can be killed
    *mid-refresh*: its own send may never leave the dying process, so
    some survivors finish the exchange at the new boundary while others
    still hold the previous one.  The newest boundary is then
    inconsistent across the ring, but the one before it — whose copies
    are provably delivered, FIFO-ordered behind a full step of traffic —
    still is; :meth:`plan_recovery` picks the newest boundary every
    survivor can serve.
    """

    #: keys every snapshot must carry (the exchange payload minus the
    #: force accumulators, which are recomputed after recovery anyway)
    REQUIRED_KEYS = ("pos", "mom", "mass", "ids")

    #: boundaries retained; 2 covers a single mid-refresh crash per
    #: round (the store is rebuilt fresh after every recovery)
    HISTORY_DEPTH = 2

    def __init__(self) -> None:
        #: step -> snapshot, oldest first (insertion order)
        self._self_copies: Dict[int, BuddySnapshot] = {}
        self._peer_copies: Dict[int, BuddySnapshot] = {}

    @property
    def self_copy(self) -> Optional[BuddySnapshot]:
        """The newest own snapshot (None before the first refresh)."""
        if not self._self_copies:
            return None
        return self._self_copies[max(self._self_copies)]

    @property
    def peer_copy(self) -> Optional[BuddySnapshot]:
        """The newest received buddy copy (None before the first)."""
        if not self._peer_copies:
            return None
        return self._peer_copies[max(self._peer_copies)]

    @property
    def step(self) -> Optional[int]:
        return None if not self._self_copies else max(self._self_copies)

    def _trim(self) -> None:
        for copies in (self._self_copies, self._peer_copies):
            while len(copies) > self.HISTORY_DEPTH:
                copies.pop(min(copies))

    def refresh(self, comm: Comm, arrays: Dict[str, np.ndarray], step: int) -> None:
        """Collective: snapshot ``arrays`` at boundary ``step`` and
        exchange buddy copies around the ring."""
        for key in self.REQUIRED_KEYS:
            if key not in arrays:
                raise ValueError(f"buddy snapshot needs array {key!r}")
        mass = np.asarray(arrays["mass"], dtype=np.float64)
        mom = np.asarray(arrays["mom"], dtype=np.float64)
        mp = mass[:, None] * mom if len(mass) else np.zeros((0, 3))
        totals = comm.allreduce(
            np.array(
                [
                    float(len(mass)),
                    float(mass.sum()),
                    *mp.sum(axis=0),
                    float(np.abs(mp).sum()),
                ]
            ),
            op="sum",
        )
        reference = {
            "count": int(round(totals[0])),
            "mass": float(totals[1]),
            "momentum": totals[2:5].copy(),
            "mom_scale": float(totals[5]),
        }
        copies = {k: np.array(arrays[k], copy=True) for k in arrays}
        snap = BuddySnapshot(
            owner_world_rank=comm.world_rank,
            step=int(step),
            epoch=comm.epoch,
            arrays=copies,
            checksums={k: _digest(a) for k, a in copies.items()},
            reference=reference,
        )
        self._self_copies[snap.step] = snap
        self._trim()
        if comm.size == 1:
            self._peer_copies.clear()
            return
        succ = (comm.rank + 1) % comm.size
        pred = (comm.rank - 1) % comm.size
        comm.send(snap, succ, tag=BUDDY_TAG, reliable=True)
        got = comm.recv(pred, tag=BUDDY_TAG)
        self._peer_copies[int(got.step)] = got
        self._trim()

    # -- recovery ---------------------------------------------------------------

    def _peer_report(self) -> Dict[str, Any]:
        return {
            "self_steps": sorted(self._self_copies),
            "peers": [
                {"owner": s.owner_world_rank, "step": s.step, "valid": s.verify()}
                for s in self._peer_copies.values()
            ],
        }

    def reference_at(self, step: int) -> Dict[str, Any]:
        """The conservation reference frozen at boundary ``step``."""
        snap = self._self_copies.get(int(step))
        if snap is None:
            raise RecoveryError(f"no self snapshot at step {step}")
        return dict(snap.reference)

    def plan_recovery(
        self, new_comm: Comm, dead_ranks: Sequence[int]
    ) -> Tuple[bool, int, str]:
        """Collective (on the shrunk comm): can the dead set be
        recovered in memory, and from which boundary?

        Returns ``(feasible, boundary_step, reason)`` — identical on
        every survivor, because the verdict is a pure function of the
        allgathered per-rank reports.  The boundary is the newest step
        every survivor snapshotted *and* at which every dead rank's
        block survives on a live, checksum-clean buddy; a mid-refresh
        crash that split the ring across two boundaries resolves to the
        older, fully-delivered one.
        """
        reports = new_comm.allgather(self._peer_report())
        if any(not r["self_steps"] for r in reports):
            return False, -1, "a survivor holds no self snapshot"
        common = set(reports[0]["self_steps"])
        for r in reports[1:]:
            common &= set(r["self_steps"])
        if not common:
            steps = sorted({s for r in reports for s in r["self_steps"]})
            return False, -1, (
                f"survivor snapshots share no boundary: {steps}"
            )
        dead = sorted(int(r) for r in dead_ranks)
        reason = ""
        for boundary in sorted(common, reverse=True):
            covered = True
            for d in dead:
                holders = [
                    p
                    for r in reports
                    for p in r["peers"]
                    if p["owner"] == d and p["step"] == boundary
                ]
                if not holders:
                    covered = False
                    if not reason:
                        reason = (
                            f"no live buddy holds rank {d}'s block at step "
                            f"{boundary} (owner and buddy both lost)"
                        )
                    break
                if not any(p["valid"] for p in holders):
                    covered = False
                    if not reason:
                        reason = (
                            f"buddy copy of rank {d}'s block failed its checksum"
                        )
                    break
            if covered:
                return True, boundary, ""
        return False, max(common), reason

    def recovered_arrays(
        self, dead_ranks: Sequence[int], boundary: Optional[int] = None
    ) -> Tuple[Dict[str, np.ndarray], List[int]]:
        """This survivor's rollback block at ``boundary`` (default: its
        newest snapshot): its own snapshot, plus the particles of any
        dead rank whose buddy copy *at that boundary* it holds.  Returns
        ``(arrays, adopted_dead_ranks)``.  The first post-recovery
        domain update redistributes everything, so *where* the adopted
        block lands does not matter — only that exactly one survivor
        contributes it.
        """
        if not self._self_copies:
            raise RecoveryError("no self snapshot to roll back to")
        if boundary is None:
            boundary = max(self._self_copies)
        own = self._self_copies.get(int(boundary))
        if own is None:
            raise RecoveryError(f"no self snapshot at step {boundary}")
        if not own.verify():
            raise RecoveryError("own rollback snapshot failed its checksum")
        arrays = {k: a.copy() for k, a in own.arrays.items()}
        adopted: List[int] = []
        peer = self._peer_copies.get(int(boundary))
        dead = {int(r) for r in dead_ranks}
        if peer is not None and peer.owner_world_rank in dead:
            if not peer.verify():
                raise RecoveryError(
                    f"buddy copy of rank {peer.owner_world_rank} failed its checksum"
                )
            if set(peer.arrays) != set(arrays):
                raise RecoveryError(
                    f"buddy copy of rank {peer.owner_world_rank} carries keys "
                    f"{sorted(peer.arrays)}, expected {sorted(arrays)}"
                )
            for k in arrays:
                arrays[k] = np.concatenate([arrays[k], peer.arrays[k]], axis=0)
            adopted.append(peer.owner_world_rank)
        return arrays, adopted


def shrink_after_failure(
    comm: Comm, timeout: float = 30.0
) -> Tuple[Comm, List[int], int]:
    """Run one survivor-consensus round and return the shrunk world.

    Every live rank of an elastic job calls this after observing a
    failure (:class:`PeerFailure` or :class:`CommTimeout`); the call
    blocks until all live ranks joined, then returns
    ``(new_comm, dead_world_ranks, epoch)`` — identical everywhere, the
    communicator renumbered over the survivors in world-rank order.
    ``dead_world_ranks`` holds only the ranks that died *since the
    previous epoch* (the ones this recovery must restore); earlier
    casualties were already handled.  An empty dead set means the failure
    was transient (e.g. a dropped message whose retries ran out): the
    fresh epoch still quarantines every in-flight straggler of the
    broken step, and the caller re-executes from its last boundary on
    the same rank count.

    Backend-generic: the round is coordinated by the in-process
    consensus board on the thread backend and by the supervisor process
    on the multiprocess backend — both through ``comm.shrink``.
    """
    return comm.shrink(timeout=timeout)
