"""Elastic shrink-and-continue recovery: consensus, buddies, shrunk comms.

The paper's headline runs occupy up to 82944 nodes for many hours — a
regime where losing a rank is an expected event, not an anomaly.  GreeM's
sampling-based multisection decomposition recomputes domains every step
anyway, which is exactly what makes *continuing on fewer ranks* cheap:
nothing about the decomposition is tied to the original rank count.
This module provides the runtime half of that ULFM-style protocol for
``MPIRuntime(elastic=True)`` jobs:

* **Survivor consensus** — after a death surfaces (as
  :class:`~repro.mpi.faults.PeerFailure` from a blocking operation, or
  :class:`~repro.mpi.faults.CommTimeout` when a message silently never
  arrived), every live rank calls :func:`shrink_after_failure`.  The
  shared consensus board (the in-process analog of ``MPIX_Comm_agree``)
  blocks until all live ranks voted, then returns the identical
  ``(dead set, survivors, epoch)`` everywhere.
* **Shrunk communicator** — the survivors get a fresh communicator
  state for the new epoch: new queues, a new barrier, ranks renumbered
  ``0..len(survivors)-1`` in world-rank order.  Every message carries
  its epoch, so a straggler sent before the failure can never be
  delivered into post-recovery traffic (it is counted in
  ``comm.stale_rejected`` instead).
* **Buddy replication** — :class:`BuddyStore` keeps, in memory, a
  checksummed copy of each rank's particle block on its ring successor
  (refreshed every K steps at the exchange boundary), plus each rank's
  own snapshot of the same boundary.  After a failure the survivors
  roll back to that consistent boundary and the dead rank's particles
  are recovered from the buddy copy without touching disk; only when
  owner *and* buddy died does recovery fall back to the distributed
  disk checkpoint.

The simulation-level wiring (re-decomposition over the survivor set,
step re-execution, the post-recovery validation sweep) lives in
:mod:`repro.sim.elastic`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.mpi.comm import Comm
from repro.utils.integrity import array_digest as _digest

__all__ = [
    "RecoveryError",
    "RecoveryEvent",
    "BuddySnapshot",
    "BuddyStore",
    "shrink_after_failure",
    "BUDDY_TAG",
    "AUDIT_OWN_TAG",
    "AUDIT_PEER_TAG",
    "HEAL_TAG",
]

#: message tag of the buddy-replication ring exchange
BUDDY_TAG = -17

#: SDC audit: owner -> buddy digest report about the owner's own block
AUDIT_OWN_TAG = -19
#: SDC audit: buddy -> owner digest report about the replica it holds
AUDIT_PEER_TAG = -21
#: SDC healing: clean-copy block transfer between owner and buddy
HEAL_TAG = -23


class RecoveryError(RuntimeError):
    """In-run recovery is impossible (or produced an invalid state).

    Raised when the in-memory path cannot proceed — buddy and owner
    both dead, inconsistent snapshot steps, a checksum mismatch, or a
    failed post-recovery validation sweep — so the caller can fall back
    to the disk checkpoint, or give up loudly."""


@dataclass
class RecoveryEvent:
    """One completed recovery, as reported by the elastic run loop."""

    epoch: int
    dead_ranks: Tuple[int, ...]
    n_survivors: int
    #: ``"buddy"`` (in-memory), ``"disk"`` (checkpoint fallback) or
    #: ``"rollback"`` (no deaths — a transient failure exhausted its
    #: retries; same consistent boundary, same rank count)
    mode: str
    #: step the survivors resumed from (the rolled-back boundary)
    resumed_step: int
    #: step at which the failure surfaced on this rank
    failed_step: int
    #: wall-clock seconds from failure detection to a validated state
    duration: float
    detail: str = ""
    #: what initiated the shrink: ``"failure"`` (crash / timeout /
    #: corruption — the classic path) or ``"eviction"`` (a planned,
    #: cooperative drain of a confirmed straggler by the health layer)
    trigger: str = "failure"


@dataclass
class BuddySnapshot:
    """One rank's particle block frozen at a step boundary."""

    owner_world_rank: int
    step: int
    epoch: int
    arrays: Dict[str, np.ndarray]
    checksums: Dict[str, str]
    #: global conservation reference of the snapshot boundary
    #: (identical on every rank: computed by one allreduce)
    reference: Dict[str, Any] = field(default_factory=dict)
    #: digests the *receiver* recomputed the moment the replica arrived
    #: (buddy side only; empty on self copies).  Lets the SDC audit
    #: split "corrupted in flight" from "rotted in the buddy's memory".
    received_checksums: Dict[str, str] = field(default_factory=dict)

    def verify(self) -> bool:
        """Recompute every array digest against the stored checksums."""
        if set(self.checksums) != set(self.arrays):
            return False
        return all(
            _digest(self.arrays[k]) == want for k, want in self.checksums.items()
        )


class BuddyStore:
    """In-memory buddy replication over a ring.

    Every ``refresh`` (collective) freezes this rank's particle block —
    its *self copy*, the rollback boundary — and ships a checksummed
    duplicate to the ring successor ``(rank + 1) % size`` while
    receiving the predecessor's.  After a rank dies, its block survives
    on its buddy; :meth:`plan_recovery` decides collectively whether
    every dead rank is covered by a live, checksum-clean, step-consistent
    copy, and :meth:`recovered_arrays` hands each survivor its rollback
    block (with any adopted dead-rank particles appended).

    The refresh cadence K trades overhead for staleness: each refresh
    costs one ring message of the full particle block (plus one small
    allreduce for the conservation reference), and a failure loses at
    most K steps of progress — exactly a checkpoint-interval trade-off,
    but at memory speed and without touching the filesystem.

    The store keeps the last :data:`HISTORY_DEPTH` boundaries, not just
    the newest.  On backends with real processes a rank can be killed
    *mid-refresh*: its own send may never leave the dying process, so
    some survivors finish the exchange at the new boundary while others
    still hold the previous one.  The newest boundary is then
    inconsistent across the ring, but the one before it — whose copies
    are provably delivered, FIFO-ordered behind a full step of traffic —
    still is; :meth:`plan_recovery` picks the newest boundary every
    survivor can serve.
    """

    #: keys every snapshot must carry (the exchange payload minus the
    #: force accumulators, which are recomputed after recovery anyway)
    REQUIRED_KEYS = ("pos", "mom", "mass", "ids")

    #: boundaries retained; 2 covers a single mid-refresh crash per
    #: round (the store is rebuilt fresh after every recovery)
    HISTORY_DEPTH = 2

    def __init__(self) -> None:
        #: step -> snapshot, oldest first (insertion order)
        self._self_copies: Dict[int, BuddySnapshot] = {}
        self._peer_copies: Dict[int, BuddySnapshot] = {}

    @property
    def self_copy(self) -> Optional[BuddySnapshot]:
        """The newest own snapshot (None before the first refresh)."""
        if not self._self_copies:
            return None
        return self._self_copies[max(self._self_copies)]

    @property
    def peer_copy(self) -> Optional[BuddySnapshot]:
        """The newest received buddy copy (None before the first)."""
        if not self._peer_copies:
            return None
        return self._peer_copies[max(self._peer_copies)]

    @property
    def step(self) -> Optional[int]:
        return None if not self._self_copies else max(self._self_copies)

    def _trim(self) -> None:
        for copies in (self._self_copies, self._peer_copies):
            while len(copies) > self.HISTORY_DEPTH:
                copies.pop(min(copies))

    def refresh(self, comm: Comm, arrays: Dict[str, np.ndarray], step: int) -> None:
        """Collective: snapshot ``arrays`` at boundary ``step`` and
        exchange buddy copies around the ring."""
        for key in self.REQUIRED_KEYS:
            if key not in arrays:
                raise ValueError(f"buddy snapshot needs array {key!r}")
        mass = np.asarray(arrays["mass"], dtype=np.float64)
        mom = np.asarray(arrays["mom"], dtype=np.float64)
        mp = mass[:, None] * mom if len(mass) else np.zeros((0, 3))
        totals = comm.allreduce(
            np.array(
                [
                    float(len(mass)),
                    float(mass.sum()),
                    *mp.sum(axis=0),
                    float(np.abs(mp).sum()),
                ]
            ),
            op="sum",
        )
        reference = {
            "count": int(round(totals[0])),
            "mass": float(totals[1]),
            "momentum": totals[2:5].copy(),
            "mom_scale": float(totals[5]),
        }
        copies = {k: np.array(arrays[k], copy=True) for k in arrays}
        snap = BuddySnapshot(
            owner_world_rank=comm.world_rank,
            step=int(step),
            epoch=comm.epoch,
            arrays=copies,
            checksums={k: _digest(a) for k, a in copies.items()},
            reference=reference,
        )
        self._self_copies[snap.step] = snap
        self._trim()
        if comm.size == 1:
            self._peer_copies.clear()
            return
        succ = (comm.rank + 1) % comm.size
        pred = (comm.rank - 1) % comm.size
        comm.send(snap, succ, tag=BUDDY_TAG, reliable=True)
        got = comm.recv(pred, tag=BUDDY_TAG)
        # in-process backends deliver by reference: materialize an
        # independent replica, as a real network transfer would — the
        # whole point of the copy is surviving damage to the original
        # (and the SDC audit's attribution vote assumes the two copies
        # can disagree)
        got = BuddySnapshot(
            owner_world_rank=got.owner_world_rank,
            step=int(got.step),
            epoch=got.epoch,
            arrays={k: np.array(a, copy=True) for k, a in got.arrays.items()},
            checksums=dict(got.checksums),
            reference=dict(got.reference),
        )
        got.received_checksums = {k: _digest(a) for k, a in got.arrays.items()}
        self._peer_copies[int(got.step)] = got
        self._trim()

    # -- recovery ---------------------------------------------------------------

    def _peer_report(self) -> Dict[str, Any]:
        return {
            "self_steps": sorted(self._self_copies),
            "peers": [
                {"owner": s.owner_world_rank, "step": s.step, "valid": s.verify()}
                for s in self._peer_copies.values()
            ],
        }

    def reference_at(self, step: int) -> Dict[str, Any]:
        """The conservation reference frozen at boundary ``step``."""
        snap = self._self_copies.get(int(step))
        if snap is None:
            raise RecoveryError(f"no self snapshot at step {step}")
        return dict(snap.reference)

    def plan_recovery(
        self, new_comm: Comm, dead_ranks: Sequence[int]
    ) -> Tuple[bool, int, str]:
        """Collective (on the shrunk comm): can the dead set be
        recovered in memory, and from which boundary?

        Returns ``(feasible, boundary_step, reason)`` — identical on
        every survivor, because the verdict is a pure function of the
        allgathered per-rank reports.  The boundary is the newest step
        every survivor snapshotted *and* at which every dead rank's
        block survives on a live, checksum-clean buddy; a mid-refresh
        crash that split the ring across two boundaries resolves to the
        older, fully-delivered one.
        """
        reports = new_comm.allgather(self._peer_report())
        if any(not r["self_steps"] for r in reports):
            return False, -1, "a survivor holds no self snapshot"
        common = set(reports[0]["self_steps"])
        for r in reports[1:]:
            common &= set(r["self_steps"])
        if not common:
            steps = sorted({s for r in reports for s in r["self_steps"]})
            return False, -1, (
                f"survivor snapshots share no boundary: {steps}"
            )
        dead = sorted(int(r) for r in dead_ranks)
        reason = ""
        for boundary in sorted(common, reverse=True):
            covered = True
            for d in dead:
                holders = [
                    p
                    for r in reports
                    for p in r["peers"]
                    if p["owner"] == d and p["step"] == boundary
                ]
                if not holders:
                    covered = False
                    if not reason:
                        reason = (
                            f"no live buddy holds rank {d}'s block at step "
                            f"{boundary} (owner and buddy both lost)"
                        )
                    break
                if not any(p["valid"] for p in holders):
                    covered = False
                    if not reason:
                        reason = (
                            f"buddy copy of rank {d}'s block failed its checksum"
                        )
                    break
            if covered:
                return True, boundary, ""
        return False, max(common), reason

    def recovered_arrays(
        self, dead_ranks: Sequence[int], boundary: Optional[int] = None
    ) -> Tuple[Dict[str, np.ndarray], List[int]]:
        """This survivor's rollback block at ``boundary`` (default: its
        newest snapshot): its own snapshot, plus the particles of any
        dead rank whose buddy copy *at that boundary* it holds.  Returns
        ``(arrays, adopted_dead_ranks)``.  The first post-recovery
        domain update redistributes everything, so *where* the adopted
        block lands does not matter — only that exactly one survivor
        contributes it.
        """
        if not self._self_copies:
            raise RecoveryError("no self snapshot to roll back to")
        if boundary is None:
            boundary = max(self._self_copies)
        own = self._self_copies.get(int(boundary))
        if own is None:
            raise RecoveryError(f"no self snapshot at step {boundary}")
        if not own.verify():
            raise RecoveryError("own rollback snapshot failed its checksum")
        arrays = {k: a.copy() for k, a in own.arrays.items()}
        adopted: List[int] = []
        peer = self._peer_copies.get(int(boundary))
        dead = {int(r) for r in dead_ranks}
        if peer is not None and peer.owner_world_rank in dead:
            if not peer.verify():
                raise RecoveryError(
                    f"buddy copy of rank {peer.owner_world_rank} failed its checksum"
                )
            if set(peer.arrays) != set(arrays):
                raise RecoveryError(
                    f"buddy copy of rank {peer.owner_world_rank} carries keys "
                    f"{sorted(peer.arrays)}, expected {sorted(arrays)}"
                )
            for k in arrays:
                arrays[k] = np.concatenate([arrays[k], peer.arrays[k]], axis=0)
            adopted.append(peer.owner_world_rank)
        return arrays, adopted


    # -- silent-data-corruption audit & in-place healing -------------------------

    @staticmethod
    def _attribute(a, b, c, r, shipped) -> str:
        """Two-out-of-three vote over one array's digests.

        ``a`` — owner's recompute over its stored self copy, now;
        ``b`` — the checksum frozen on the owner at refresh time (the
        reference record); ``c`` — the buddy's recompute over the
        replica, now; ``r`` — the buddy's recompute at receipt time;
        ``shipped`` — the checksum record as it arrived at the buddy.
        Whoever disagrees with the two-vote majority is the culprit;
        receipt-time evidence splits in-flight corruption (transport)
        from replica rot in the buddy's memory (buddy).
        """
        own_ok = a == b
        bud_ok = c == b
        if own_ok and bud_ok and shipped == b:
            return "clean"
        if not own_ok and bud_ok:
            return "owner"
        if own_ok and not bud_ok:
            if shipped != b or (r is not None and r != b):
                return "transport"
            return "buddy"
        if not own_ok and a == c:
            # both stored copies agree with each other but not with the
            # record: the checksum itself is the odd one out
            return "checksum"
        return "unrecoverable"

    def _digest_reports(self):
        own = {
            step: {
                "live": {k: _digest(s.arrays[k]) for k in s.arrays},
                "frozen": dict(s.checksums),
            }
            for step, s in self._self_copies.items()
        }
        peer = {
            step: {
                "live": {k: _digest(s.arrays[k]) for k in s.arrays},
                "recv": dict(s.received_checksums),
                "shipped": dict(s.checksums),
            }
            for step, s in self._peer_copies.items()
        }
        return own, peer

    def snapshot_audit(self, comm: Comm) -> List[Dict[str, Any]]:
        """Collective: cross-check every retained boundary's array
        digests around the ring and *attribute* each mismatch.

        Each rank recomputes digests over the copies it physically
        holds, exchanges the evidence with its ring neighbours, and runs
        the same :meth:`_attribute` vote on both ends of every
        owner/buddy pair — so the two holders of a block always agree on
        the verdict without any extra round.  Returns this rank's
        findings: one dict per corrupted ``(boundary step, array)`` with
        ``role`` (``"owner"`` — my block is involved; ``"buddy"`` — a
        replica I hold is involved), the vote's ``attribution``
        (owner / buddy / transport / checksum / unrecoverable) and
        whether :meth:`heal_in_place` can repair it from the surviving
        clean copy.
        """
        findings: List[Dict[str, Any]] = []
        own_report, peer_report = self._digest_reports()
        if comm.size == 1:
            for step, mine in sorted(own_report.items()):
                for k in sorted(mine["live"]):
                    if mine["live"][k] != mine["frozen"].get(k):
                        findings.append({
                            "step": int(step),
                            "owner": comm.world_rank,
                            "array": k,
                            "role": "owner",
                            "attribution": "owner",
                            "healable": False,  # no replica exists
                        })
            return findings
        succ = (comm.rank + 1) % comm.size
        pred = (comm.rank - 1) % comm.size
        comm.send(own_report, succ, tag=AUDIT_OWN_TAG, reliable=True)
        comm.send(peer_report, pred, tag=AUDIT_PEER_TAG, reliable=True)
        pred_own = comm.recv(pred, tag=AUDIT_OWN_TAG)
        succ_peer = comm.recv(succ, tag=AUDIT_PEER_TAG)

        def judge(step, key, owner_side, replica_side):
            a = owner_side["live"].get(key)
            b = owner_side["frozen"].get(key)
            if replica_side is None:
                return "owner" if a != b else "clean", False
            verdict = self._attribute(
                a,
                b,
                replica_side["live"].get(key),
                replica_side["recv"].get(key),
                replica_side["shipped"].get(key),
            )
            healable = verdict in ("owner", "buddy", "transport")
            return verdict, healable

        # my blocks, judged with the replica evidence from my successor
        for step, mine in sorted(own_report.items()):
            for k in sorted(mine["live"]):
                verdict, healable = judge(step, k, mine, succ_peer.get(step))
                if verdict != "clean":
                    findings.append({
                        "step": int(step),
                        "owner": comm.world_rank,
                        "array": k,
                        "role": "owner",
                        "attribution": verdict,
                        "healable": healable,
                    })
        # the replicas I hold, judged with my predecessor's evidence
        for step, held in sorted(peer_report.items()):
            owner_side = pred_own.get(step)
            if owner_side is None:
                continue  # the owner no longer retains this boundary
            for k in sorted(held["live"]):
                verdict, healable = judge(step, k, owner_side, held)
                if verdict != "clean":
                    snap = self._peer_copies[step]
                    findings.append({
                        "step": int(step),
                        "owner": snap.owner_world_rank,
                        "array": k,
                        "role": "buddy",
                        "attribution": verdict,
                        "healable": healable,
                    })
        return findings

    def heal_in_place(
        self, comm: Comm, findings: Sequence[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Collective (with :meth:`snapshot_audit`'s findings): restore
        every healable corrupted block from its surviving clean copy —
        **without shrinking the communicator**.

        Owner-side corruption pulls the clean replica back from the
        buddy; buddy-side or transport corruption re-replicates the
        owner's clean copy forward.  Both ends of each pair derived
        identical verdicts from the audit exchange, so the transfers
        pair up deterministically (sends first, receives second — the
        transports are non-blocking on the send side).  Each finding
        gains ``healed``; a repaired block is re-verified against the
        frozen checksum before being declared healed.
        """
        findings = [dict(f) for f in findings]
        if comm.size > 1:
            succ = (comm.rank + 1) % comm.size
            pred = (comm.rank - 1) % comm.size
            order = sorted(
                (f for f in findings if f["healable"]),
                key=lambda f: (f["step"], f["array"], f["role"]),
            )
            # phase 1: every clean copy leaves its holder (whose own
            # finding merely *reports* the partner's damage — shipping
            # the clean block is the heal it asked for)
            for f in order:
                step, k = f["step"], f["array"]
                if f["role"] == "buddy" and f["attribution"] == "owner":
                    comm.send(
                        self._peer_copies[step].arrays[k], pred,
                        tag=HEAL_TAG, reliable=True,
                    )
                    f["healed"] = True
                elif f["role"] == "owner" and f["attribution"] in ("buddy", "transport"):
                    comm.send(
                        self._self_copies[step].arrays[k], succ,
                        tag=HEAL_TAG, reliable=True,
                    )
                    f["healed"] = True
            # phase 2: every damaged copy is replaced and re-verified
            for f in order:
                step, k = f["step"], f["array"]
                if f["role"] == "owner" and f["attribution"] == "owner":
                    snap = self._self_copies[step]
                    clean = np.array(comm.recv(succ, tag=HEAL_TAG), copy=True)
                    snap.arrays[k] = clean
                    f["healed"] = _digest(clean) == snap.checksums.get(k)
                elif f["role"] == "buddy" and f["attribution"] in ("buddy", "transport"):
                    snap = self._peer_copies[step]
                    clean = np.array(comm.recv(pred, tag=HEAL_TAG), copy=True)
                    snap.arrays[k] = clean
                    d = _digest(clean)
                    snap.checksums[k] = d
                    snap.received_checksums[k] = d
                    f["healed"] = True
        for f in findings:
            f.setdefault("healed", False)
        return findings


def shrink_after_failure(
    comm: Comm, timeout: float = 30.0
) -> Tuple[Comm, List[int], int]:
    """Run one survivor-consensus round and return the shrunk world.

    Every live rank of an elastic job calls this after observing a
    failure (:class:`PeerFailure` or :class:`CommTimeout`); the call
    blocks until all live ranks joined, then returns
    ``(new_comm, dead_world_ranks, epoch)`` — identical everywhere, the
    communicator renumbered over the survivors in world-rank order.
    ``dead_world_ranks`` holds only the ranks that died *since the
    previous epoch* (the ones this recovery must restore); earlier
    casualties were already handled.  An empty dead set means the failure
    was transient (e.g. a dropped message whose retries ran out): the
    fresh epoch still quarantines every in-flight straggler of the
    broken step, and the caller re-executes from its last boundary on
    the same rank count.

    Backend-generic: the round is coordinated by the in-process
    consensus board on the thread backend and by the supervisor process
    on the multiprocess backend — both through ``comm.shrink``.
    """
    return comm.shrink(timeout=timeout)
