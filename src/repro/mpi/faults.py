"""Deterministic fault injection for the SPMD runtime.

Production campaigns like the paper's month-long 24576-node run survive
because the code's failure paths work: a killed process must not corrupt
the checkpoint set, and a hung collective must surface as an error
instead of wedging the job.  This module provides a :class:`FaultPlan`
— a declarative, seedable schedule of failures — that
:class:`repro.mpi.runtime.MPIRuntime` and :class:`repro.mpi.comm.Comm`
consult at well-defined points:

* **rank kills** — ``kill_rank(rank, step)`` makes that rank raise
  :class:`InjectedFault` at its next ``comm.fault_point(step)``;
* **message faults** — ``drop_messages`` / ``delay_messages`` /
  ``corrupt_messages`` act on point-to-point sends matching a
  ``(src, dst)`` filter, by match index (``nth``/``count``) or with a
  seeded Bernoulli ``probability``;
* **stalled collectives** — ``stall_collective(op, rank)`` makes that
  rank hang inside the named collective until the job aborts, which is
  what the runtime's watchdog is for.

Every decision is a pure function of the plan and a per-event sequence
number, so a plan with pinned ``src``/``dst`` filters reproduces the
same failures run after run (wildcard filters match in cross-thread
arrival order, which is scheduler-dependent).
"""

from __future__ import annotations

import errno
import time
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

import numpy as np

__all__ = [
    "FaultPlan",
    "RankDeath",
    "InjectedFault",
    "CommTimeout",
    "MessageDropped",
    "PeerFailure",
    "backoff_delays",
    "retry_with_backoff",
    "flip_array_bits",
    "flip_file_bits",
    "apply_scheduled_flips",
]


class RankDeath(RuntimeError):
    """A rank is dead and will never execute another statement.

    Under ``MPIRuntime(elastic=True)`` a death is *survivable*: the
    runtime marks the rank dead instead of aborting the job, and the
    surviving ranks observe a :class:`PeerFailure` from their next
    blocking operation.  In a non-elastic job it is an ordinary fatal
    rank failure.  Applications may raise it deliberately to simulate a
    node loss; the fault plan's :class:`InjectedFault` subclasses it.
    """


class InjectedFault(RankDeath):
    """Raised on a rank killed by a :class:`FaultPlan` schedule."""


class CommTimeout(RuntimeError):
    """A blocking receive exceeded its timeout (deadlock-free failure).

    Unlike :class:`repro.mpi.comm.CommAborted` (a *secondary* casualty
    of some other rank's failure), a timeout is a primary failure of the
    rank that was waiting, and is reported as such by the runtime.

    Structured fields (all ``None`` when unknown) let recovery code and
    test assertions dispatch without parsing the message string:

    ``rank``
        World rank of the waiting (failing) rank.
    ``source``
        World rank of the peer that never delivered.
    ``tag``
        Message tag of the expected transfer.
    ``step``
        Application step (the last ``comm.fault_point(step)`` value
        this rank passed), if the application reports steps.
    ``elapsed``
        Seconds actually spent waiting when the timeout fired.
    ``op``
        The enclosing operation label (``"recv"``, ``"alltoall"``, ...).
    """

    def __init__(
        self,
        message: str,
        *,
        rank: Optional[int] = None,
        source: Optional[int] = None,
        tag: Optional[int] = None,
        step: Optional[int] = None,
        elapsed: Optional[float] = None,
        op: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.rank = rank
        self.source = source
        self.tag = tag
        self.step = step
        self.elapsed = elapsed
        self.op = op


class MessageDropped(CommTimeout):
    """A reliable send exhausted its retry budget against injected drops.

    Subclasses :class:`CommTimeout` because at the application level a
    lost message and an expired wait are the same failure shape: the
    data never made it, and the same recovery path (elastic rollback or
    job abort) applies.
    """


class PeerFailure(RuntimeError):
    """A peer rank died while this rank was communicating with it.

    Raised (elastic mode only) from blocking receives, barriers and
    collectives when the shared dead-set gained members this
    communicator does not already exclude.  Carries the world ranks of
    *all* known-dead peers at detection time — the input to the
    survivor-consensus round in :mod:`repro.mpi.recovery`.
    """

    def __init__(self, message: str, dead_ranks=(), epoch: Optional[int] = None) -> None:
        super().__init__(message)
        self.dead_ranks = frozenset(int(r) for r in dead_ranks)
        self.epoch = epoch


@dataclass(frozen=True)
class _MessageFault:
    """One message-level fault rule (internal)."""

    kind: str  # "drop" | "delay" | "corrupt"
    src: Optional[int]
    dst: Optional[int]
    nth: int
    count: int
    seconds: float
    probability: float
    key: Optional[str] = None  # corrupt only this entry of dict payloads

    def matches(self, src: int, dst: int) -> bool:
        return (self.src is None or self.src == src) and (
            self.dst is None or self.dst == dst
        )

    def hits(self, seq: int, seed: int, src: int, dst: int) -> bool:
        """Does the seq-th matching message trigger this fault?"""
        if not self.nth <= seq < self.nth + self.count:
            return False
        if self.probability >= 1.0:
            return True
        draw = np.random.default_rng((seed, self.nth, src, dst, seq)).random()
        return bool(draw < self.probability)


@dataclass(frozen=True)
class _KillFault:
    rank: int
    step: int
    #: ``None`` — backend default (thread: raise InjectedFault;
    #: multiprocess: SIGKILL the worker process).  ``True`` — demand a
    #: real OS-level kill (backends without real processes fall back to
    #: the raise).  ``False`` — always the in-rank raise, even where a
    #: real kill is possible.
    real: Optional[bool] = None


@dataclass(frozen=True)
class _StallFault:
    op: str
    rank: int
    nth: int


@dataclass(frozen=True)
class _FlipFault:
    """One scheduled in-memory bit flip (silent data corruption)."""

    rank: int
    array: str
    step: int
    nbits: int = 1
    #: which copy of the array to damage: ``"live"`` (the working
    #: particle arrays), ``"self_copy"`` (the owner's frozen rollback
    #: snapshot) or ``"peer_copy"`` (the buddy's replica of the
    #: predecessor's block)
    target: str = "self_copy"


@dataclass(frozen=True)
class _RotFault:
    """One scheduled on-disk bit-rot event against a checkpoint file."""

    rank: int
    step: int
    nbits: int = 1


@dataclass(frozen=True)
class _SlowFault:
    """A gray failure: the rank is alive but runs at ``1/factor`` speed."""

    rank: int
    factor: float
    start_step: int
    #: steps affected; 0 = until the run ends
    duration: int
    #: nominal healthy step seconds the factor stretches
    base: float

    def active(self, step: int) -> bool:
        if step < self.start_step:
            return False
        return self.duration <= 0 or step < self.start_step + self.duration


@dataclass(frozen=True)
class _DegradeFault:
    """A degraded collective: every matching call pays ``seconds``."""

    op: str  # collective name, "*" = any
    seconds: float
    rank: Optional[int]  # None = every rank
    start_step: int
    duration: int  # steps affected; 0 = until the run ends

    def active(self, rank: int, op: str, step: int) -> bool:
        if self.rank is not None and self.rank != rank:
            return False
        if self.op not in ("*", op):
            return False
        if step < self.start_step:
            return False
        return self.duration <= 0 or step < self.start_step + self.duration


@dataclass(frozen=True)
class _DiskFullFault:
    """The filesystem fills up after ``after_bytes`` further writes."""

    path: str  # substring filter on the target path ("" = any)
    after_bytes: int
    rank: Optional[int]  # None = every rank


class FaultPlan:
    """A declarative, reproducible schedule of injected failures.

    Builder methods return ``self`` so plans read as one chained
    expression::

        plan = (FaultPlan(seed=7)
                .kill_rank(1, step=2)
                .drop_messages(src=0, dst=1, nth=0)
                .stall_collective("bcast", rank=3))

    Pass the plan to :class:`repro.mpi.runtime.MPIRuntime`; ranks and
    steps refer to *world* ranks and whatever step indices the
    application passes to ``comm.fault_point``.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._kills: List[_KillFault] = []
        self._messages: List[_MessageFault] = []
        self._stalls: List[_StallFault] = []
        self._flips: List[_FlipFault] = []
        self._rots: List[_RotFault] = []
        self._slows: List[_SlowFault] = []
        self._degrades: List[_DegradeFault] = []
        self._disk_fulls: List[_DiskFullFault] = []
        #: cumulative bytes written against each disk_full rule, keyed
        #: ``(rule index, rank)``
        self._disk_written: Dict[Tuple[int, int], int] = {}
        # one-shot bookkeeping for state faults: a rollback replays the
        # step indices the faults are keyed on, and a cosmic ray does
        # not strike twice just because the application re-executed
        self._fired: set = set()

    # -- builders ---------------------------------------------------------------

    def kill_rank(
        self, rank: int, step: int, real: Optional[bool] = None
    ) -> "FaultPlan":
        """Kill ``rank`` when it reaches ``comm.fault_point(step)``.

        ``real`` selects *how* the rank dies on backends with real OS
        processes: ``None`` uses the backend default (the multiprocess
        backend SIGKILLs the worker — no cleanup, no goodbye message —
        while the thread backend raises :class:`InjectedFault`);
        ``True`` demands the SIGKILL where possible; ``False`` forces
        the in-rank raise everywhere (the death is then *announced* to
        the supervisor instead of being discovered by liveness
        monitoring).
        """
        self._kills.append(_KillFault(int(rank), int(step), real))
        return self

    def _add_message(
        self,
        kind: str,
        src: Optional[int],
        dst: Optional[int],
        nth: int,
        count: int,
        seconds: float,
        probability: float,
    ) -> "FaultPlan":
        if count < 1:
            raise ValueError("count must be >= 1")
        if nth < 0:
            raise ValueError("nth must be >= 0")
        if not 0.0 < probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        self._messages.append(
            _MessageFault(kind, src, dst, int(nth), int(count), seconds, probability)
        )
        return self

    def drop_messages(
        self,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        nth: int = 0,
        count: int = 1,
        probability: float = 1.0,
    ) -> "FaultPlan":
        """Silently lose matching messages (the receiver never sees them;
        recover via receive timeouts / the watchdog)."""
        return self._add_message("drop", src, dst, nth, count, 0.0, probability)

    def delay_messages(
        self,
        seconds: float,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        nth: int = 0,
        count: int = 1,
        probability: float = 1.0,
    ) -> "FaultPlan":
        """Hold matching messages for ``seconds`` before delivery."""
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        return self._add_message("delay", src, dst, nth, count, seconds, probability)

    def corrupt_messages(
        self,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        nth: int = 0,
        count: int = 1,
        probability: float = 1.0,
        key: Optional[str] = None,
    ) -> "FaultPlan":
        """Flip bits in matching payloads (arrays get every byte of
        their first element inverted; other objects are replaced by a
        marker string).  With ``key``, dict payloads have only that
        entry damaged — the shape of realistic silent data corruption,
        where a flipped bit garbles one field of a structured message
        without making the message undeliverable."""
        plan = self._add_message("corrupt", src, dst, nth, count, 0.0, probability)
        if key is not None:
            # dataclass is frozen; rebuild the just-appended rule with the key
            ev = self._messages.pop()
            self._messages.append(
                _MessageFault(
                    ev.kind, ev.src, ev.dst, ev.nth, ev.count,
                    ev.seconds, ev.probability, str(key),
                )
            )
        return plan

    def flip_bits(
        self,
        rank: int,
        array: str,
        step: int,
        nbits: int = 1,
        target: str = "self_copy",
    ) -> "FaultPlan":
        """Flip ``nbits`` random bits of ``array`` on ``rank`` at
        ``step`` — the canonical silent-data-corruption event (a cosmic
        ray in DRAM flips a mantissa bit; nothing crashes, nothing logs).

        ``target`` picks which copy is damaged: ``"self_copy"`` (the
        rank's frozen rollback snapshot in its :class:`BuddyStore` —
        detected and healed in place by the SDC snapshot audit),
        ``"peer_copy"`` (the buddy replica it holds for its ring
        predecessor — attributed to the buddy and re-replicated), or
        ``"live"`` (the working particle arrays; flips in conserved
        arrays like ``ids``/``mass`` are caught by the fingerprint
        audit and healed by a boundary rollback).  Bit positions are a
        pure function of ``(plan seed, rank, array, step)``.
        """
        if nbits < 1:
            raise ValueError("nbits must be >= 1")
        if target not in ("live", "self_copy", "peer_copy"):
            raise ValueError(f"unknown flip target {target!r}")
        self._flips.append(
            _FlipFault(int(rank), str(array), int(step), int(nbits), target)
        )
        return self

    def corrupt_shm(
        self,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        nth: int = 0,
        count: int = 1,
        probability: float = 1.0,
    ) -> "FaultPlan":
        """Flip bits inside the SharedMemory frame of a matching
        multiprocess message *after* its CRC32 was computed — transport
        corruption the receiver must catch by checksum, not by
        structure.  The receiver discards the mangled frame (logged as
        transport corruption), so the message is effectively lost and
        the usual timeout/rollback machinery takes over.  On backends
        without SharedMemory transport the rule is inert.
        """
        return self._add_message("corrupt_shm", src, dst, nth, count, 0.0, probability)

    def rot_checkpoint(self, rank: int, step: int, nbits: int = 1) -> "FaultPlan":
        """Flip ``nbits`` bits of ``rank``'s on-disk checkpoint file for
        the epoch written at ``step`` — bit-rot at rest.  Detected by
        manifest digest verification (``repro ckpt scrub``, checkpoint
        validation on restore); recovery skips to the newest epoch that
        still verifies.
        """
        if nbits < 1:
            raise ValueError("nbits must be >= 1")
        self._rots.append(_RotFault(int(rank), int(step), int(nbits)))
        return self

    def slow_rank(
        self,
        rank: int,
        factor: float,
        duration: int = 0,
        start_step: int = 0,
        base: float = 0.05,
    ) -> "FaultPlan":
        """Make ``rank`` a *straggler*: alive, beating, answering — but
        running at roughly ``1/factor`` speed for ``duration`` steps
        starting at ``start_step`` (``duration=0`` = until the run
        ends).  The canonical gray failure: a thermally-throttled CPU, a
        neighbour saturating the memory bus, a swapping node.

        Implemented as a deterministic per-step delay of
        ``(factor - 1) * base`` seconds at the rank's ``fault_point``
        (``base`` is the nominal healthy step time the factor
        stretches).  Each ``(rule, step)`` fires exactly once — a
        rollback replaying the step does not pay the delay twice.
        """
        if factor < 1.0:
            raise ValueError("factor must be >= 1")
        if base <= 0.0:
            raise ValueError("base must be > 0")
        self._slows.append(
            _SlowFault(int(rank), float(factor), int(start_step), int(duration), float(base))
        )
        return self

    def degrade_collective(
        self,
        op: str,
        delay: float,
        rank: Optional[int] = None,
        start_step: int = 0,
        duration: int = 0,
    ) -> "FaultPlan":
        """Degrade collective ``op`` (``"*"`` = any): every matching
        call on ``rank`` (None = all ranks) pays ``delay`` extra seconds
        while active — a congested link or oversubscribed switch, not a
        wedge.  One-shot per ``(rule, rank, op, step)``, so a replayed
        step pays the toll once."""
        if delay < 0.0:
            raise ValueError("delay must be >= 0")
        self._degrades.append(
            _DegradeFault(
                str(op), float(delay),
                None if rank is None else int(rank),
                int(start_step), int(duration),
            )
        )
        return self

    def disk_full(
        self, path: str = "", after_bytes: int = 0, rank: Optional[int] = None
    ) -> "FaultPlan":
        """Fill the disk under the checkpoint writer: after
        ``after_bytes`` further bytes are written to paths containing
        ``path`` (``""`` = any path) on ``rank`` (None = all ranks), the
        next write raises ``OSError(ENOSPC)`` — exactly once per rule
        and rank, like a transient full filesystem later cleared by
        retention pruning.  Consulted by the checkpoint write path via
        :meth:`check_disk`."""
        if after_bytes < 0:
            raise ValueError("after_bytes must be >= 0")
        self._disk_fulls.append(
            _DiskFullFault(str(path), int(after_bytes), None if rank is None else int(rank))
        )
        return self

    def stall_collective(self, op: str, rank: int, nth: int = 0) -> "FaultPlan":
        """Hang ``rank`` inside its ``nth``-th call of collective ``op``
        (``"bcast"``, ``"reduce"``, ``"gather"``, ...) until the job
        aborts.  Pair with the runtime's ``watchdog_timeout`` so the
        hang is converted into a clean abort."""
        self._stalls.append(_StallFault(str(op), int(rank), int(nth)))
        return self

    # -- queries (used by Comm / MPIRuntime) -------------------------------------

    def should_kill(self, rank: int, step: int) -> bool:
        return any(k.rank == rank and k.step == step for k in self._kills)

    def kill_action(self, rank: int, step: int) -> Optional[_KillFault]:
        """The kill rule hitting ``rank`` at ``step`` (None if none);
        backends use ``.real`` to pick raise-vs-SIGKILL semantics."""
        for k in self._kills:
            if k.rank == rank and k.step == step:
                return k
        return None

    def message_events(self, src: int, dst: int) -> List[_MessageFault]:
        """All message rules whose filter matches ``src -> dst``."""
        return [ev for ev in self._messages if ev.matches(src, dst)]

    def should_stall(self, rank: int, op: str, seq: int) -> bool:
        return any(
            s.rank == rank and s.op == op and s.nth == seq for s in self._stalls
        )

    def flip_events(self, rank: int, step: int, target: Optional[str] = None) -> List[_FlipFault]:
        """Bit-flip rules hitting ``rank`` at ``step`` (optionally only
        those aimed at one ``target`` copy)."""
        return [
            f
            for f in self._flips
            if f.rank == rank and f.step == step
            and (target is None or f.target == target)
        ]

    def rot_events(self, rank: int, step: int) -> List[_RotFault]:
        """Checkpoint bit-rot rules hitting ``rank``'s epoch at ``step``."""
        return [r for r in self._rots if r.rank == rank and r.step == step]

    def slow_delay(self, rank: int, step: int) -> float:
        """Total injected straggler delay for ``rank`` at ``step``
        (0.0 when no ``slow_rank`` rule is active).  One-shot per
        ``(rule, step)``: a rollback replaying the step pays nothing."""
        total = 0.0
        for idx, ev in enumerate(self._slows):
            if ev.rank != rank or not ev.active(step):
                continue
            if self.fire_once(("slow", idx, rank, step)):
                total += (ev.factor - 1.0) * ev.base
        return total

    def collective_delay(self, rank: int, op: str, step: int) -> float:
        """Total injected degradation delay for ``rank``'s collective
        ``op`` at ``step`` (0.0 when no rule is active).  One-shot per
        ``(rule, rank, op, step)``."""
        total = 0.0
        for idx, ev in enumerate(self._degrades):
            if not ev.active(rank, op, step):
                continue
            if self.fire_once(("degrade", idx, rank, op, step)):
                total += ev.seconds
        return total

    def check_disk(self, rank: int, path, nbytes: int) -> None:
        """Account ``nbytes`` about to be written to ``path`` on
        ``rank`` against every matching ``disk_full`` rule; raise
        ``OSError(ENOSPC)`` the first time a rule's byte budget is
        exhausted (once per rule and rank — the failure is transient,
        like a filesystem later cleared by pruning)."""
        for idx, ev in enumerate(self._disk_fulls):
            if ev.rank is not None and ev.rank != rank:
                continue
            if ev.path and ev.path not in str(path):
                continue
            written = self._disk_written.get((idx, rank), 0) + int(nbytes)
            self._disk_written[(idx, rank)] = written
            if written > ev.after_bytes and self.fire_once(("disk_full", idx, rank)):
                raise OSError(
                    errno.ENOSPC,
                    f"injected disk_full: {written} bytes written against a "
                    f"budget of {ev.after_bytes}",
                    str(path),
                )

    def fire_once(self, key) -> bool:
        """True exactly once per ``key`` — the guard that keeps a
        state fault (flip / rot) from re-striking when a rollback
        replays the step it was keyed on.  Keys include the rank, so
        concurrent rank threads never contend for the same entry."""
        if key in self._fired:
            return False
        self._fired.add(key)
        return True

    @property
    def empty(self) -> bool:
        return not (
            self._kills or self._messages or self._stalls
            or self._flips or self._rots
            or self._slows or self._degrades or self._disk_fulls
        )

    def describe(self) -> str:
        """Human-readable summary of the scheduled faults."""
        lines = [f"FaultPlan(seed={self.seed})"]
        for k in self._kills:
            how = "" if k.real is None else (" [real]" if k.real else " [raise]")
            lines.append(f"  kill rank {k.rank} at step {k.step}{how}")
        for m in self._messages:
            where = f"{'any' if m.src is None else m.src}->" \
                    f"{'any' if m.dst is None else m.dst}"
            extra = f", {m.seconds}s" if m.kind == "delay" else ""
            prob = f", p={m.probability}" if m.probability < 1.0 else ""
            field = f", key={m.key!r}" if m.key is not None else ""
            lines.append(
                f"  {m.kind} {where} messages "
                f"[{m.nth}, {m.nth + m.count}){extra}{prob}{field}"
            )
        for s in self._stalls:
            lines.append(f"  stall {s.op} #{s.nth} on rank {s.rank}")
        for f in self._flips:
            lines.append(
                f"  flip {f.nbits} bit(s) of {f.array!r} ({f.target}) "
                f"on rank {f.rank} at step {f.step}"
            )
        for r in self._rots:
            lines.append(
                f"  rot {r.nbits} bit(s) of rank {r.rank}'s checkpoint "
                f"at step {r.step}"
            )
        for sl in self._slows:
            until = "end" if sl.duration <= 0 else sl.start_step + sl.duration
            lines.append(
                f"  slow rank {sl.rank} x{sl.factor:g} over steps "
                f"[{sl.start_step}, {until})"
            )
        for d in self._degrades:
            who = "any rank" if d.rank is None else f"rank {d.rank}"
            until = "end" if d.duration <= 0 else d.start_step + d.duration
            lines.append(
                f"  degrade {d.op} on {who} by {d.seconds}s over steps "
                f"[{d.start_step}, {until})"
            )
        for df in self._disk_fulls:
            who = "any rank" if df.rank is None else f"rank {df.rank}"
            where = f" under {df.path!r}" if df.path else ""
            lines.append(
                f"  disk full on {who} after {df.after_bytes} bytes{where}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


def corrupt_payload(obj: Any, key: Optional[str] = None) -> Any:
    """Deterministically damage a message payload (first element's
    bytes inverted for arrays; non-array objects become a marker
    string).

    With ``key``, a dict payload has only ``obj[key]`` damaged (the
    message stays structurally valid, its data silently wrong); dicts
    missing the key — and non-dict payloads — pass through untouched,
    so a keyed rule targets exactly one kind of structured message.
    """
    if key is not None:
        target = obj.get(key) if isinstance(obj, dict) else None
        if isinstance(target, np.ndarray) and target.size:
            out = dict(obj)
            out[key] = corrupt_payload(target)
            return out
        return obj
    if isinstance(obj, np.ndarray) and obj.size:
        raw = bytearray(obj.tobytes())
        span = max(obj.itemsize, 1)
        for i in range(min(span, len(raw))):
            raw[i] ^= 0xFF
        return np.frombuffer(bytes(raw), dtype=obj.dtype).reshape(obj.shape).copy()
    return "<corrupted payload>"


def flip_array_bits(arr: np.ndarray, nbits: int = 1, seed: int = 0) -> List[int]:
    """Flip ``nbits`` deterministically-chosen bits of ``arr`` in place.

    Bit positions are drawn without replacement from a generator seeded
    with ``seed``, so the same call damages the same bits run after run.
    Returns the flipped global bit indices (empty for zero-size arrays —
    there is nothing to corrupt).  The array must own contiguous memory
    (the working particle arrays and snapshot copies all do).
    """
    if nbits < 1:
        raise ValueError("nbits must be >= 1")
    if arr.size == 0:
        return []
    if not arr.flags.c_contiguous:
        raise ValueError("can only flip bits of C-contiguous arrays in place")
    raw = arr.view(np.uint8).reshape(-1)
    total_bits = raw.size * 8
    rng = np.random.default_rng(seed)
    chosen = rng.choice(total_bits, size=min(nbits, total_bits), replace=False)
    for bit in chosen:
        raw[int(bit) // 8] ^= np.uint8(1 << (int(bit) % 8))
    return sorted(int(b) for b in chosen)


def flip_file_bits(path, nbits: int = 1, seed: int = 0) -> List[int]:
    """Flip ``nbits`` deterministically-chosen bits of the file at
    ``path`` in place (on-disk bit-rot).  Returns the flipped global
    bit indices (empty for an empty file)."""
    if nbits < 1:
        raise ValueError("nbits must be >= 1")
    with open(path, "r+b") as fh:
        data = bytearray(fh.read())
        if not data:
            return []
        total_bits = len(data) * 8
        rng = np.random.default_rng(seed)
        chosen = rng.choice(total_bits, size=min(nbits, total_bits), replace=False)
        for bit in chosen:
            data[int(bit) // 8] ^= 1 << (int(bit) % 8)
        fh.seek(0)
        fh.write(bytes(data))
    return sorted(int(b) for b in chosen)


def apply_scheduled_flips(
    plan: Optional["FaultPlan"],
    rank: int,
    step: int,
    arrays,
    target: str = "live",
) -> List[str]:
    """Apply every matching ``flip_bits`` rule of ``plan`` to the named
    ``arrays`` (a mapping ``name -> ndarray``, damaged in place) and
    return the names actually flipped.  The per-rule seed mixes the plan
    seed with ``(rank, array, step)`` so each rule is independently
    reproducible.  Rules naming arrays absent from ``arrays`` are
    ignored (they may target a different copy holder).  Each rule fires
    at most once per plan instance (:meth:`FaultPlan.fire_once`): after
    a rollback the application replays the step the rule is keyed on,
    and the point of the exercise is healing the *first* strike.
    """
    flipped: List[str] = []
    if plan is None:
        return flipped
    for ev in plan.flip_events(rank, step, target=target):
        arr = arrays.get(ev.array) if hasattr(arrays, "get") else None
        if arr is None:
            continue
        if not plan.fire_once(("flip", ev.rank, ev.array, ev.step, ev.target)):
            continue
        seed = (plan.seed, zlib.crc32(ev.array.encode()), ev.rank, ev.step)
        if flip_array_bits(arr, ev.nbits, seed=seed):
            flipped.append(ev.array)
    return flipped


def backoff_delays(
    retries: int,
    base_delay: float = 0.01,
    factor: float = 2.0,
    max_delay: float = 1.0,
    jitter: bool = True,
    seed=None,
) -> List[float]:
    """The sleep schedule :func:`retry_with_backoff` would use.

    With ``jitter`` (the default) delays follow *decorrelated jitter*:
    each delay is drawn uniformly from ``[base_delay, prev * factor]``
    and capped at ``max_delay``, so N ranks that hit the same transient
    at the same instant spread out instead of re-colliding in lock-step
    retry storms.  The draw sequence is a pure function of ``seed`` —
    pass a per-rank value (e.g. the world rank) so schedules are
    reproducible *and* diverge across ranks.  Without jitter the
    schedule is the classic capped exponential
    ``min(max_delay, base_delay * factor**attempt)``.
    """
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if base_delay < 0:
        raise ValueError("base_delay must be >= 0")
    if max_delay < base_delay:
        raise ValueError("max_delay must be >= base_delay")
    if not jitter:
        return [
            min(max_delay, base_delay * factor**attempt)
            for attempt in range(retries)
        ]
    rng = np.random.default_rng(0xB0FF if seed is None else seed)
    delays: List[float] = []
    prev = base_delay
    for _ in range(retries):
        prev = min(
            max_delay,
            float(rng.uniform(base_delay, max(base_delay, prev) * factor)),
        )
        delays.append(prev)
    return delays


def retry_with_backoff(
    fn: Callable[[], Any],
    retries: int = 3,
    base_delay: float = 0.01,
    factor: float = 2.0,
    max_delay: float = 1.0,
    jitter: bool = True,
    seed=None,
    exceptions: Tuple[Type[BaseException], ...] = (CommTimeout,),
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
) -> Any:
    """Call ``fn`` and retry transient failures with capped, jittered
    exponential backoff.

    Retries up to ``retries`` times (so at most ``retries + 1`` calls),
    and only on the given ``exceptions`` (default: receive timeouts, the
    shape an injected transient fault takes).  The final failure
    propagates.  Sleeps follow :func:`backoff_delays`: decorrelated
    jitter capped at ``max_delay``, deterministic per ``seed`` — callers
    pass a per-rank seed so simultaneous failures on N ranks fan out
    instead of resynchronizing into a retry storm, while each rank's
    schedule stays reproducible run after run.
    """
    delays = backoff_delays(
        retries, base_delay=base_delay, factor=factor,
        max_delay=max_delay, jitter=jitter, seed=seed,
    )
    attempt = 0
    while True:
        try:
            return fn()
        except exceptions as exc:
            if attempt >= retries:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            time.sleep(delays[attempt])
            attempt += 1
