"""Thin adapter running the SPMD functions under a real MPI (mpi4py).

Gated on ``import mpi4py``: registering and listing the backend needs
nothing, but instantiating it without mpi4py installed raises an
ImportError with an actionable message.  Under ``mpiexec`` every MPI
process executes the driver script; :meth:`MPI4PyBackend.run` then runs
``fn`` on this process's rank of ``MPI.COMM_WORLD`` and returns the
gathered per-rank results on every rank (so driver code that looks at
``results[0]`` keeps working unchanged).

The adapter maps the repro communicator surface onto mpi4py's
lowercase (generic-object) API nearly 1:1 — the collective *algorithms*
are the MPI library's own, so results are not guaranteed bit-identical
with the in-tree backends (MPI may reduce in a different association
order).  Fault injection, the epoch/elastic machinery and the traffic
model are unavailable; ``fault_point`` only records the step, and
``abort`` maps to ``MPI.COMM_WORLD.Abort``.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.mpi.backend import BackendCapabilities, CollectiveComm, CommBackend

__all__ = ["MPI4PyBackend", "MPI4PyComm"]


def _require_mpi4py():
    try:
        from mpi4py import MPI  # noqa: PLC0415 - optional dependency
    except ImportError as exc:  # pragma: no cover - exercised without mpi4py
        raise ImportError(
            "the 'mpi4py' communicator backend needs the mpi4py package "
            "(and an MPI library); install it with `pip install mpi4py` "
            "and launch with `mpiexec -n <ranks> python ...`, or use the "
            "'thread' or 'multiprocess' backend"
        ) from exc
    return MPI


class MPI4PyComm(CollectiveComm):
    """repro communicator surface over an ``mpi4py`` communicator."""

    def __init__(self, mpi_comm, world_comm=None) -> None:
        self._mpi = mpi_comm
        self._world = world_comm if world_comm is not None else mpi_comm
        self._split_seq = 0
        self._current_op: Optional[str] = None
        self._step = -1
        #: the in-tree backends count post-recovery stragglers here; a
        #: real MPI has no epoch quarantine, so this stays 0
        self.stale_rejected = 0

    # -- identity ---------------------------------------------------------------

    @property
    def rank(self) -> int:
        return self._mpi.Get_rank()

    @property
    def size(self) -> int:
        return self._mpi.Get_size()

    @property
    def world_rank(self) -> int:
        return self._world.Get_rank()

    @property
    def epoch(self) -> int:
        return 0

    # -- point to point -----------------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0, reliable: bool = False) -> None:
        # MPI's transport is already reliable; the flag is accepted for
        # call-site compatibility
        self._mpi.send(obj, dest=dest, tag=self._map_tag(tag))

    def recv(self, source: int, tag: int = 0, timeout: Optional[float] = None) -> Any:
        # no receive timeout under a real MPI: MPI's own fault handling
        # (or the scheduler's) bounds a lost peer
        return self._mpi.recv(source=source, tag=self._map_tag(tag))

    def _recv_reliable(self, source: int, tag: int = 0) -> Any:
        return self.recv(source, tag=tag)

    def _try_recv(self, source: int, tag: int) -> Tuple[bool, Any]:
        MPI = _require_mpi4py()
        status = MPI.Status()
        if not self._mpi.iprobe(source=source, tag=self._map_tag(tag), status=status):
            return False, None
        return True, self._mpi.recv(source=source, tag=self._map_tag(tag))

    @staticmethod
    def _map_tag(tag: int) -> int:
        """repro uses small negative tags for collectives; MPI requires
        non-negative tags, so shift into a reserved band."""
        tag = int(tag)
        return tag if tag >= 0 else 32768 - tag

    # -- collectives: delegate to the MPI library --------------------------------

    def barrier(self) -> None:
        self._mpi.barrier()

    def bcast(self, obj: Any, root: int = 0) -> Any:
        return self._mpi.bcast(obj, root=root)

    def reduce(self, value: Any, op: str = "sum", root: int = 0):
        return self._mpi.reduce(value, op=self._map_op(op), root=root)

    def allreduce(self, value: Any, op: str = "sum") -> Any:
        return self._mpi.allreduce(value, op=self._map_op(op))

    def gather(self, obj: Any, root: int = 0):
        return self._mpi.gather(obj, root=root)

    def allgather(self, obj: Any):
        return self._mpi.allgather(obj)

    def scatter(self, objs, root: int = 0):
        return self._mpi.scatter(objs, root=root)

    def alltoall(self, objs: Sequence[Any], reliable: bool = False):
        return self._mpi.alltoall(list(objs))

    @staticmethod
    def _map_op(op: str):
        MPI = _require_mpi4py()
        return {"sum": MPI.SUM, "max": MPI.MAX, "min": MPI.MIN}[op]

    # -- communicator management ---------------------------------------------------

    def split(self, color: Optional[int], key: Optional[int] = None):
        MPI = _require_mpi4py()
        mpi_color = MPI.UNDEFINED if color is None else int(color)
        sub = self._mpi.Split(mpi_color, key if key is not None else self.rank)
        if color is None:
            return None
        return MPI4PyComm(sub, world_comm=self._world)

    def _make_split_comm(self, seq, color, member_ranks, new_rank):
        raise NotImplementedError  # split() is overridden above

    # -- hooks the SPMD code calls --------------------------------------------------

    def fault_point(self, step: int) -> None:
        self._step = int(step)

    def traffic_phase(self, name: str) -> None:
        self._mpi.barrier()

    def shrink(self, timeout: float = 30.0):
        raise RuntimeError(
            "elastic shrink-and-continue is not available on the mpi4py "
            "backend (it needs ULFM extensions); use the 'thread' or "
            "'multiprocess' backend for elastic runs"
        )

    def abort(self, reason: Optional[str] = None, origin: Optional[int] = None) -> None:
        self._world.Abort(1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MPI4PyComm(rank={self.rank}/{self.size})"


class MPI4PyBackend(CommBackend):
    """Run the SPMD function on this process's rank of MPI.COMM_WORLD.

    Unlike the in-tree backends, this one does not *launch* ranks — the
    MPI launcher (``mpiexec -n N``) already did; ``run`` therefore
    executes ``fn`` once, on the local rank, and allgathers the per-rank
    results so the caller sees the same ``List[Any]`` contract.
    """

    name = "mpi4py"

    @classmethod
    def is_available(cls) -> bool:
        try:
            import mpi4py  # noqa: F401, PLC0415 - optional dependency

            return True
        except ImportError:
            return False

    @classmethod
    def capabilities(cls) -> BackendCapabilities:
        return BackendCapabilities(
            true_parallelism=True,
            simulated_kill=False,
            real_process_kill=False,
            message_faults=False,
            stall_faults=False,
            network_model=False,
            heartbeat_liveness=False,
            elastic=False,
            gray_failure=False,
        )

    def __init__(self, n_ranks: Optional[int] = None, **kwargs: Any) -> None:
        MPI = _require_mpi4py()
        self._MPI = MPI
        world = MPI.COMM_WORLD
        if n_ranks is not None and int(n_ranks) != world.Get_size():
            raise ValueError(
                f"requested {n_ranks} ranks but the MPI job has "
                f"{world.Get_size()}; the rank count is fixed by mpiexec"
            )
        self.n_ranks = world.Get_size()
        self.world = world

    def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> List[Any]:
        comm = MPI4PyComm(self.world)
        result = fn(comm, *args, **kwargs)
        return self.world.allgather(result)
