"""Supervision of multiprocess SPMD jobs: liveness, consensus, cleanup.

The multiprocess backend's parent process runs one :class:`Supervisor`
thread per job.  It is the job's failure detector and control plane:

* **Liveness** — every worker beats a shared heartbeat board
  (``time.time()`` per rank) from a daemon thread; the supervisor
  combines heartbeat age with ``Process.exitcode`` to classify each
  rank as live, *suspect* (silent beyond ``suspect_timeout``) or dead.
  A rank silent beyond ``heartbeat_timeout`` is SIGKILLed and declared
  dead — a wedged process is indistinguishable from a lost node, and
  the paper's operational regime (month-long runs on 24576 nodes)
  demands that both become *detected* failures, not hangs.
* **Death propagation** — a dead rank flips its cell in the shared
  ``dead_flags`` array; every surviving rank's blocking receive polls
  the array and raises :class:`repro.mpi.faults.PeerFailure` (elastic)
  or :class:`repro.mpi.comm.CommAborted` (after the supervisor aborts a
  non-elastic job) — the same exceptions the thread backend produces,
  so the recovery stack consumes real process deaths unchanged.
* **Survivor consensus** — the supervisor doubles as the coordinator of
  the ULFM-``agree``-style round (:meth:`repro.mpi.comm.Comm.shrink`'s
  cross-process analog): workers vote through the control queue; the
  round seals when every rank not known dead has voted, and the
  identical ``(dead, survivors, epoch)`` verdict is posted to every
  voter's reply queue.  The supervisor's authoritative dead set means a
  rank dying *mid-round* shrinks the expected voter set instead of
  hanging the round.
* **Cleanup** — the parent registers an ``atexit`` hook and a SIGTERM
  guard for every live job, and workers watch their parent pid: no
  matter which side dies first (parent SIGKILLed included), worker
  processes exit and leftover ``SharedMemory`` segments are unlinked.
"""

from __future__ import annotations

import atexit
import os
import signal
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Supervisor", "RankStatus", "sweep_shm_segments"]

#: exit code a worker uses for an announced (simulated) elastic death
DEATH_EXIT_CODE = 21

_POLL = 0.02
#: grace period between a clean (0) exit and its result arriving
_RESULT_GRACE = 10.0

_SHM_DIR = "/dev/shm"


def sweep_shm_segments(prefix: str) -> List[str]:
    """Unlink every POSIX shared-memory segment named ``prefix*``.

    Returns the names removed.  Best-effort: on platforms without a
    visible ``/dev/shm`` the transport's receiver-side unlink plus the
    queue-drain pass is the only cleanup (leaks are then bounded by the
    OS session), and this sweep is a no-op.
    """
    removed: List[str] = []
    try:
        names = os.listdir(_SHM_DIR)
    except OSError:
        return removed
    for name in names:
        if name.startswith(prefix):
            try:
                os.unlink(os.path.join(_SHM_DIR, name))
                removed.append(name)
            except OSError:
                pass
    return removed


class RankStatus:
    """Supervisor-side view of one worker (liveness report row)."""

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.alive = True
        self.suspect = False
        self.dead = False
        self.done = False
        self.exitcode: Optional[int] = None
        self.last_beat_age: Optional[float] = None
        self.reason: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rank": self.rank,
            "alive": self.alive,
            "suspect": self.suspect,
            "dead": self.dead,
            "done": self.done,
            "exitcode": self.exitcode,
            "last_beat_age": self.last_beat_age,
            "reason": self.reason,
        }


# -- parent-death / interpreter-exit guards -------------------------------------

_ACTIVE_JOBS: "set[Supervisor]" = set()
_GUARD_LOCK = threading.Lock()
_GUARD_INSTALLED = False
_PREV_SIGTERM: Any = None


def _cleanup_all_jobs() -> None:
    for sup in list(_ACTIVE_JOBS):
        try:
            sup.emergency_cleanup()
        except Exception:
            pass


def _sigterm_guard(signum, frame):  # pragma: no cover - signal path
    _cleanup_all_jobs()
    handler = _PREV_SIGTERM
    signal.signal(signal.SIGTERM, handler if callable(handler) else signal.SIG_DFL)
    os.kill(os.getpid(), signal.SIGTERM)


def _register_job(sup: "Supervisor") -> None:
    """Arm the atexit + SIGTERM guards for ``sup`` (idempotent)."""
    global _GUARD_INSTALLED, _PREV_SIGTERM
    with _GUARD_LOCK:
        _ACTIVE_JOBS.add(sup)
        if not _GUARD_INSTALLED:
            atexit.register(_cleanup_all_jobs)
            try:
                prev = signal.getsignal(signal.SIGTERM)
                # leave custom application handlers alone; only the
                # default disposition (terminate without cleanup) is
                # replaced by the guarded one
                if prev in (signal.SIG_DFL, None):
                    _PREV_SIGTERM = prev
                    signal.signal(signal.SIGTERM, _sigterm_guard)
            except (ValueError, OSError):
                pass  # not the main thread, or an embedded interpreter
            _GUARD_INSTALLED = True


def _unregister_job(sup: "Supervisor") -> None:
    with _GUARD_LOCK:
        _ACTIVE_JOBS.discard(sup)


class Supervisor:
    """Monitors one multiprocess job from the parent process.

    Parameters
    ----------
    job:
        The shared-state bundle (:class:`repro.mpi.mp_backend._MPJob`):
        queues, heartbeat board, dead flags, abort event.
    processes:
        The per-rank ``multiprocessing.Process`` objects (started by
        the backend before the supervisor thread runs).
    elastic:
        Death handling: elastic jobs mark the rank dead and keep the
        job running; non-elastic jobs abort on the first death.
    suspect_timeout / heartbeat_timeout:
        Heartbeat-age thresholds (seconds): past ``suspect_timeout``
        a rank is flagged suspect in the liveness report; past
        ``heartbeat_timeout`` it is SIGKILLed and declared dead.
        ``heartbeat_timeout=None`` disables the kill (exitcode
        detection still runs).
    adaptive_liveness:
        Derive the escalation thresholds from each rank's *observed*
        inter-beat gaps instead of the fixed constants: once enough
        gaps are sampled, the suspect threshold becomes
        ``adaptive_factor`` times the 90th-percentile gap (clamped to
        ``[adaptive_floor, adaptive_ceil]``) and the kill threshold
        keeps the configured suspect/kill ratio.  Slow fleets (a
        loaded machine stretching every gap) are then not mass-killed
        by a constant tuned for a fast one, and fast fleets detect a
        genuine wedge sooner.  The configured constants remain the
        prior until the sample window fills.

    Heartbeat ages are measured on the *supervisor's* clock: a beat
    counts from the moment the supervisor observes the board value
    change, not from the timestamp the worker wrote.  A worker whose
    clock is skewed (board values in the past or future) is therefore
    judged only by whether it keeps beating — clock skew can neither
    hide a wedge nor get a healthy rank killed.
    """

    #: inter-beat gap samples retained per rank (adaptive thresholds)
    GAP_WINDOW = 64
    #: gap samples required before adaptive thresholds replace the
    #: configured constants
    GAP_MIN_SAMPLES = 8

    def __init__(
        self,
        job,
        processes,
        elastic: bool,
        suspect_timeout: float = 5.0,
        heartbeat_timeout: Optional[float] = 60.0,
        adaptive_liveness: bool = False,
        adaptive_factor: float = 8.0,
        adaptive_floor: float = 0.5,
        adaptive_ceil: float = 300.0,
    ) -> None:
        self.job = job
        self.processes = processes
        self.elastic = bool(elastic)
        self.suspect_timeout = float(suspect_timeout)
        self.heartbeat_timeout = (
            None if heartbeat_timeout is None else float(heartbeat_timeout)
        )
        self.adaptive_liveness = bool(adaptive_liveness)
        self.adaptive_factor = float(adaptive_factor)
        self.adaptive_floor = float(adaptive_floor)
        self.adaptive_ceil = float(adaptive_ceil)
        if self.adaptive_ceil < self.adaptive_floor:
            raise ValueError("adaptive_ceil must be >= adaptive_floor")
        #: per rank: (last board value seen, supervisor time it changed)
        self._beat_seen: Dict[int, Tuple[float, float]] = {}
        #: per rank: observed inter-beat gaps, oldest first (bounded)
        self._beat_gaps: Dict[int, List[float]] = {}
        n = job.n_ranks
        self.status = [RankStatus(r) for r in range(n)]
        self.results: Dict[int, Tuple[str, Any]] = {}
        self.dead: Dict[int, str] = {}
        self.abort_origin: Optional[int] = None
        self.abort_reason: Optional[str] = None
        self.epoch = 0
        self._votes: Dict[int, set] = {}
        self._sealed: Dict[int, Tuple[List[int], List[int]]] = {}
        self._zero_exit_since: Dict[int, float] = {}
        self.finished = threading.Event()
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._cleaned = False

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        _register_job(self)
        self._thread = threading.Thread(
            target=self._loop, name="mp-supervisor", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    # -- the monitoring loop ----------------------------------------------------

    def _loop(self) -> None:
        try:
            while not self._stop.is_set():
                self._drain_control()
                self._drain_results()
                self._check_processes()
                self._check_heartbeats()
                self._try_seal_consensus()
                if self._all_accounted():
                    self.finished.set()
                    return
                time.sleep(_POLL)
        except Exception as exc:  # pragma: no cover - supervisor bug guard
            self._abort(f"supervisor failed: {type(exc).__name__}: {exc}", None)
            self.finished.set()

    def _all_accounted(self) -> bool:
        for st in self.status:
            if not (st.done or st.dead):
                return False
        return True

    # -- control / result queues -------------------------------------------------

    def _drain_control(self) -> None:
        import queue as _q

        while True:
            try:
                msg = self.job.ctrl_queue.get_nowait()
            except (_q.Empty, OSError, EOFError):
                return
            kind = msg[0]
            if kind == "abort":
                _, rank, reason = msg
                self._abort(reason, rank)
            elif kind == "death":
                _, rank, reason = msg
                self._mark_dead(rank, reason)
            elif kind == "vote":
                _, rank, rnd = msg
                rank, rnd = int(rank), int(rnd)
                sealed = self._sealed.get(rnd)
                if sealed is not None:
                    # round already sealed (this voter was marked dead
                    # and resurrected its vote late): resend the verdict
                    dead, survivors = sealed
                    try:
                        self.job.reply_queues[rank].put((rnd, dead, survivors))
                    except Exception:
                        pass
                else:
                    self._votes.setdefault(rnd, set()).add(rank)

    def _drain_results(self) -> None:
        import queue as _q

        while True:
            try:
                msg = self.job.result_queue.get_nowait()
            except (_q.Empty, OSError, EOFError):
                return
            kind, rank = msg[0], int(msg[1])
            with self._lock:
                self.results[rank] = (kind, msg[2])
                self.status[rank].done = True

    # -- process & heartbeat liveness ---------------------------------------------

    def _check_processes(self) -> None:
        now = time.time()
        for rank, proc in enumerate(self.processes):
            st = self.status[rank]
            if st.done or st.dead:
                # already classified; still record the exit code once
                # the process is reaped (liveness-report completeness)
                if st.exitcode is None and proc.exitcode is not None:
                    st.exitcode = proc.exitcode
                    st.alive = False
                continue
            ec = proc.exitcode
            if ec is None:
                continue
            st.alive = False
            st.exitcode = ec
            if ec == 0:
                # clean exit: the result is in flight through the queue
                # feeder; give it a grace period before calling it a death
                since = self._zero_exit_since.setdefault(rank, now)
                self._drain_results()
                if st.done:
                    self._zero_exit_since.pop(rank, None)
                elif now - since > _RESULT_GRACE:
                    self._rank_died(
                        rank, "exited cleanly without delivering a result"
                    )
                continue
            if ec == DEATH_EXIT_CODE:
                # announced simulated death; the ctrl message normally
                # arrives first, but the exitcode alone is sufficient
                self._mark_dead(rank, "announced rank death")
            elif ec < 0:
                sig = -ec
                signame = signal.Signals(sig).name if sig < 65 else str(sig)
                self._rank_died(rank, f"killed by signal {signame}")
            else:
                self._rank_died(rank, f"process exited with code {ec}")

    def _beat_age(self, rank: int, now: float) -> Optional[float]:
        """Seconds since the supervisor last *observed* rank's board
        value change, or ``None`` if the rank has not started beating.

        The board value itself is worker-written ``time.time()`` and is
        treated as opaque: only a *change* proves liveness, and the age
        runs on the supervisor's clock, so worker clock skew (past or
        future timestamps) cannot hide a wedge or kill a healthy rank.
        """
        beat = float(self.job.hb_board[rank])
        if beat <= 0.0:
            return None
        prev = self._beat_seen.get(rank)
        if prev is None or beat != prev[0]:
            if prev is not None:
                gaps = self._beat_gaps.setdefault(rank, [])
                gaps.append(now - prev[1])
                if len(gaps) > self.GAP_WINDOW:
                    del gaps[0]
            self._beat_seen[rank] = (beat, now)
            return 0.0
        return now - prev[1]

    def effective_timeouts(self, rank: int) -> Tuple[float, Optional[float]]:
        """(suspect, kill) thresholds in effect for ``rank``.

        Fixed constants unless ``adaptive_liveness`` is on and the gap
        window has filled; then the suspect threshold tracks the
        observed 90th-percentile inter-beat gap scaled by
        ``adaptive_factor`` (clamped to the declared floor/ceil bounds)
        and the kill threshold keeps the configured suspect:kill ratio.
        """
        suspect = self.suspect_timeout
        kill = self.heartbeat_timeout
        if not self.adaptive_liveness:
            return suspect, kill
        gaps = self._beat_gaps.get(rank)
        if not gaps or len(gaps) < self.GAP_MIN_SAMPLES:
            return suspect, kill
        q90 = sorted(gaps)[int(0.9 * (len(gaps) - 1))]
        ratio = None if kill is None else kill / suspect
        suspect = min(
            self.adaptive_ceil, max(self.adaptive_floor, self.adaptive_factor * q90)
        )
        kill = None if ratio is None else suspect * ratio
        return suspect, kill

    def _check_heartbeats(self) -> None:
        now = time.time()
        for rank, proc in enumerate(self.processes):
            st = self.status[rank]
            if st.done or st.dead or not st.alive:
                continue
            age = self._beat_age(rank, now)
            if age is None:
                continue  # not started beating yet
            suspect_limit, kill_limit = self.effective_timeouts(rank)
            st.last_beat_age = age
            st.suspect = age > suspect_limit
            if kill_limit is not None and age > kill_limit:
                try:
                    proc.kill()
                except Exception:
                    pass
                self._rank_died(
                    rank,
                    f"no heartbeat for {age:.1f}s "
                    f"(limit {kill_limit:.1f}s); killed",
                )

    def _rank_died(self, rank: int, reason: str) -> None:
        """A rank is gone without announcing: elastic jobs absorb it,
        non-elastic jobs abort (mirroring the thread runtime)."""
        if self.elastic:
            self._mark_dead(rank, reason)
        else:
            self._abort(f"rank {rank} died: {reason}", rank)
            self._mark_dead(rank, reason)

    def _mark_dead(self, rank: int, reason: str) -> None:
        rank = int(rank)
        with self._lock:
            if rank in self.dead:
                return
            self.dead[rank] = reason
            st = self.status[rank]
            st.dead = True
            st.alive = False
            st.reason = reason
        # the flag wakes every peer's blocking receive (PeerFailure)
        self.job.dead_flags[rank] = 1

    def _abort(self, reason: str, origin: Optional[int]) -> None:
        with self._lock:
            if self.abort_reason is None:
                self.abort_reason = reason
                self.abort_origin = origin
                buf = reason.encode("utf-8", "replace")[
                    : len(self.job.reason_buf) - 1
                ]
                self.job.reason_buf[: len(buf)] = buf
        self.job.abort_event.set()

    # -- survivor consensus -------------------------------------------------------

    def _try_seal_consensus(self) -> None:
        rnd = self.epoch + 1
        votes = self._votes.get(rnd)
        if not votes or rnd in self._sealed:
            return
        dead = set(self.dead)
        expected = set(range(self.job.n_ranks)) - dead
        if not expected or not expected <= votes:
            return
        survivors = sorted(expected)
        self._sealed[rnd] = (sorted(dead), survivors)
        self.epoch = rnd
        verdict = (rnd, sorted(dead), survivors)
        for r in survivors:
            try:
                self.job.reply_queues[r].put(verdict)
            except Exception:  # a survivor dying right now; next round
                pass

    # -- reporting ---------------------------------------------------------------

    def liveness_report(self) -> List[Dict[str, Any]]:
        """Per-rank liveness snapshot (rank, alive/suspect/dead/done,
        exitcode, heartbeat age, death reason)."""
        now = time.time()
        with self._lock:
            rows = []
            for rank, st in enumerate(self.status):
                if st.alive:
                    age = self._beat_age(rank, now)
                    if age is not None:
                        st.last_beat_age = age
                        st.suspect = age > self.effective_timeouts(rank)[0]
                rows.append(st.as_dict())
            return rows

    # -- cleanup ------------------------------------------------------------------

    def shutdown(self, drain_blobs=None) -> None:
        """Orderly end-of-job cleanup: stop the loop, reap workers,
        drain queues (freeing in-flight shared-memory segments via
        ``drain_blobs``), sweep leftover segments."""
        if self._cleaned:
            return
        self._cleaned = True
        self.stop()
        for proc in self.processes:
            if proc.is_alive():
                proc.terminate()
        deadline = time.time() + 2.0
        for proc in self.processes:
            proc.join(timeout=max(0.0, deadline - time.time()))
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=2.0)
        if drain_blobs is not None:
            try:
                drain_blobs()
            except Exception:
                pass
        for q in [
            *self.job.data_queues,
            self.job.ctrl_queue,
            self.job.result_queue,
            *self.job.reply_queues,
        ]:
            try:
                q.cancel_join_thread()
                q.close()
            except Exception:
                pass
        sweep_shm_segments(self.job.shm_prefix)
        _unregister_job(self)

    def emergency_cleanup(self) -> None:
        """Interpreter-exit / SIGTERM path: kill every worker now and
        unlink every segment; never blocks for long."""
        for proc in self.processes:
            try:
                if proc.is_alive():
                    proc.kill()
            except Exception:
                pass
        for proc in self.processes:
            try:
                proc.join(timeout=1.0)
            except Exception:
                pass
        sweep_shm_segments(self.job.shm_prefix)
        _unregister_job(self)
