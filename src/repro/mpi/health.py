"""Gray-failure health layer: straggler detection and graceful degradation.

The recovery stack so far handles the *binary* failures — fail-stop
crashes (:mod:`repro.mpi.recovery`) and silent corruption
(:mod:`repro.validate.sdc`).  This module closes the gap between "fully
alive" and "dead": the gray failures that dominated operations on the
paper's 82,944-node lock-step runs, where a node that is merely *slow*
stalls every collective behind it, yet killing it on a fixed heartbeat
deadline murders a healthy-but-loaded rank.

Three cooperating pieces, all policy-driven by
:class:`repro.config.HealthConfig`:

:class:`HealthMonitor`
    Per-rank health scoring fed by per-step timings (the same numbers
    the :class:`repro.utils.timer.TimingLedger` accumulates) allgathered
    each step, optionally folded with heartbeat ages from the
    supervisor's board.  A rank is *suspect* when its step time exceeds
    the robust fleet median by ``straggler_factor``; it is a *confirmed
    straggler* after ``straggler_patience`` consecutive suspect steps.
    Every rank runs the identical verdict function on the identical
    allgathered samples, so verdicts are deterministic and collective —
    no extra agreement round is needed.
:class:`AdaptiveDeadline`
    Collective deadlines derived from the observed step-time
    distribution (``deadline_quantile`` scaled by ``deadline_factor``,
    clamped to the declared floor/ceil) instead of a fixed
    ``recv_timeout`` constant: slow fleets aren't mass-timed-out, fast
    fleets detect wedges sooner.
:class:`DegradationPolicy`
    The explicit degraded-mode engine: under sustained pressure it
    stretches SDC-audit and checkpoint cadence within the declared
    ``audit_stretch_max`` bound, drops non-essential derived outputs
    (the cross-rank snapshot audit), and falls back native→numpy when a
    kernel's bitwise self-test starts failing mid-run.  Every
    transition is emitted as a structured :class:`HealthEvent`.

Eviction itself is *cooperative*: the confirmed straggler flushes its
buddy replica at the current boundary along with everyone else (the
drain), then raises :class:`StragglerEvicted` — an announced
:class:`repro.mpi.faults.RankDeath` that the elastic runtime converts
into the ordinary shrink-and-continue path with **zero replayed steps**
and no hard-timeout SIGKILL.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import HealthConfig
from repro.mpi.faults import RankDeath

__all__ = [
    "HealthEvent",
    "HealthMonitor",
    "AdaptiveDeadline",
    "DegradationPolicy",
    "StragglerEvicted",
    "recheck_native_kernels",
]

#: native kernel stages whose self-test gate the degradation engine can
#: re-run mid-flight (module names under ``repro.native``)
NATIVE_STAGES = ("treebuild", "traverse", "meshops", "update", "certify")


class StragglerEvicted(RankDeath):
    """Voluntary exit of a confirmed straggler (cooperative eviction).

    Subclasses :class:`RankDeath`, so the elastic runtime treats it as
    an *announced* death: the rank is marked dead, the survivors shrink
    through the ordinary consensus path, and — because the drain flushed
    the buddy replica at the current boundary first — recovery replays
    zero steps.
    """


@dataclass(frozen=True)
class HealthEvent:
    """One structured health-state transition.

    ``kind`` is one of: ``straggler_suspect``, ``straggler_confirmed``,
    ``drain``, ``evict``, ``evict_shrink``, ``degrade_enter``,
    ``audit_stretch``, ``deadline_widen``, ``native_fallback``,
    ``checkpoint_skipped``, ``recovered``.

    ``rank`` is the *subject* world rank (the straggler, the healed
    rank, ...); the emitting rank records the event in its own log, and
    verdict-derived events are identical on every rank.
    """

    step: int
    rank: int
    kind: str
    detail: str = ""
    data: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "step": self.step,
            "rank": self.rank,
            "kind": self.kind,
            "detail": self.detail,
            "data": dict(self.data),
        }


class AdaptiveDeadline:
    """Collective deadline from the observed step-time distribution.

    Tracks the fleet-wide *maximum* step time (the straggler defines
    how long a healthy rank may legitimately block in a collective) in
    a bounded window and proposes
    ``clamp(factor * quantile, floor, ceil)`` once ``min_samples``
    ticks have been observed.
    """

    WINDOW = 64

    def __init__(self, config: HealthConfig) -> None:
        self.config = config
        self._samples: List[float] = []

    def observe(self, fleet_max_seconds: float) -> None:
        self._samples.append(float(fleet_max_seconds))
        if len(self._samples) > self.WINDOW:
            del self._samples[0]

    def deadline(self) -> Optional[float]:
        """Proposed collective deadline in seconds, or ``None`` until
        enough samples exist."""
        cfg = self.config
        if len(self._samples) < cfg.min_samples:
            return None
        q = float(np.quantile(self._samples, cfg.deadline_quantile))
        return min(cfg.deadline_ceil, max(cfg.deadline_floor, cfg.deadline_factor * q))


class HealthMonitor:
    """Deterministic per-rank health scoring and straggler verdicts.

    Feed :meth:`observe` once per step with the allgathered
    ``(world_rank, step_seconds)`` samples; it returns the world rank of
    a newly *confirmed* straggler (or ``None``) and appends the
    corresponding :class:`HealthEvent`\\ s to :attr:`events`.  The
    verdict function is a pure function of the sample history, so every
    rank that feeds it the same allgathered rows reaches the same
    verdict on the same step — detection is collective by construction.
    """

    #: EWMA smoothing of the per-rank slowdown score
    EWMA = 0.5

    def __init__(self, config: HealthConfig, world_rank: int) -> None:
        self.config = config
        self.world_rank = int(world_rank)
        self.events: List[HealthEvent] = []
        self.deadline = AdaptiveDeadline(config)
        self._ticks = 0
        #: consecutive over-threshold steps per world rank
        self._streak: Dict[int, int] = {}
        #: EWMA of step-time / fleet-median per world rank
        self._slowdown: Dict[int, float] = {}
        #: ranks already confirmed in the current episode (suppresses
        #: repeat confirmations until the rank recovers)
        self._confirmed: set = set()
        #: most recent heartbeat ages, if a supervisor feeds them
        self._beat_age: Dict[int, float] = {}

    # -- scoring ------------------------------------------------------------------

    def record_beat_age(self, rank: int, age_seconds: float) -> None:
        """Fold a supervisor-observed heartbeat age into the score."""
        self._beat_age[int(rank)] = float(age_seconds)

    def score(self, rank: int) -> float:
        """Health score in ``(0, 1]``: 1 is healthy, → 0 as the rank's
        smoothed slowdown grows or its heartbeat goes quiet."""
        slowdown = max(1.0, self._slowdown.get(int(rank), 1.0))
        s = 1.0 / slowdown
        age = self._beat_age.get(int(rank))
        if age is not None and age > 0.0:
            s /= 1.0 + age
        return s

    def scores(self) -> Dict[int, float]:
        ranks = set(self._slowdown) | set(self._beat_age)
        return {r: self.score(r) for r in sorted(ranks)}

    # -- verdicts -----------------------------------------------------------------

    def observe(
        self,
        step: int,
        samples: Iterable[Tuple[int, float]],
        deadline_seconds: Optional[float] = None,
    ) -> Optional[int]:
        """Ingest one step's fleet samples; return a newly confirmed
        straggler's world rank, or ``None``.

        ``samples`` should be per-rank *work* times (wall minus time
        blocked in communication): in lock-step collectives every
        rank's wall time equals the straggler's, and only the
        work/wait split attributes the slowness.  ``deadline_seconds``
        feeds the adaptive-deadline distribution (normally the fleet's
        max *wall* time — how long a collective may legitimately
        block); it defaults to the largest sample.
        """
        rows = sorted((int(r), float(t)) for r, t in samples)
        if not rows:
            return None
        times = np.array([t for _, t in rows])
        median = float(np.median(times))
        self.deadline.observe(
            float(times.max()) if deadline_seconds is None else deadline_seconds
        )
        self._ticks += 1
        if median <= 0.0:
            return None
        threshold = self.config.straggler_factor * median
        confirmed: List[int] = []
        for rank, t in rows:
            ratio = t / median
            self._slowdown[rank] = (
                self.EWMA * ratio
                + (1.0 - self.EWMA) * self._slowdown.get(rank, 1.0)
            )
            if t > threshold:
                streak = self._streak.get(rank, 0) + 1
                self._streak[rank] = streak
                if streak == 1:
                    self.events.append(
                        HealthEvent(
                            step=step,
                            rank=rank,
                            kind="straggler_suspect",
                            detail=(
                                f"step time {t:.3f}s > "
                                f"{self.config.straggler_factor:g}x fleet "
                                f"median {median:.3f}s"
                            ),
                            data={"seconds": t, "median": median},
                        )
                    )
                if (
                    streak >= self.config.straggler_patience
                    and self._ticks >= self.config.min_samples
                    and rank not in self._confirmed
                ):
                    confirmed.append(rank)
            else:
                if self._streak.pop(rank, 0):
                    self._confirmed.discard(rank)
                    self.events.append(
                        HealthEvent(
                            step=step,
                            rank=rank,
                            kind="recovered",
                            detail="step time back under threshold",
                            data={"seconds": t, "median": median},
                        )
                    )
        if not confirmed:
            return None
        # one eviction at a time: the lowest confirmed rank (identical
        # choice on every rank — the verdict is collective)
        rank = min(confirmed)
        self._confirmed.add(rank)
        self._streak[rank] = 0
        self.events.append(
            HealthEvent(
                step=step,
                rank=rank,
                kind="straggler_confirmed",
                detail=(
                    f"{self.config.straggler_patience} consecutive steps over "
                    f"{self.config.straggler_factor:g}x fleet median"
                ),
                data={"slowdown": self._slowdown.get(rank, 1.0)},
            )
        )
        return rank


def recheck_native_kernels() -> Dict[str, bool]:
    """Re-run the bitwise self-test of every *loaded* native kernel.

    The compile-time gate runs each self-test once and caches the
    verdict; a kernel that starts mis-computing mid-run (bad memory,
    clock instability) would keep its stale pass.  This re-runs the
    test and **writes the fresh verdict back into the gate**, so a
    failing kernel flips its ``get_lib()`` to ``None`` and every later
    call takes the bitwise-identical numpy path.

    Returns ``{stage: verdict}`` for the stages that had a loaded
    library to test; stages never loaded (or disabled by environment)
    are omitted.
    """
    results: Dict[str, bool] = {}
    for stage in NATIVE_STAGES:
        try:
            mod = importlib.import_module(f"repro.native.{stage}")
        except Exception:
            continue
        verified = getattr(mod, "_verified", None)
        if not verified:
            continue  # gate never evaluated: nothing is using this kernel
        lib = mod.get_lib()
        if lib is None:
            results[stage] = False
            continue
        try:
            ok = bool(mod._self_test(lib))
        except Exception:
            ok = False
        verified[id(lib)] = ok
        results[stage] = ok
    return results


class DegradationPolicy:
    """Explicit degraded-mode engine (the "tolerate" half of eviction).

    Levels escalate under sustained pressure and de-escalate when the
    pressure clears; the current level maps onto concrete sheddings:

    * ``audit_stretch`` — multiply the SDC-audit and checkpoint cadence
      by ``min(2**level, audit_stretch_max)``.  The declared bound keeps
      "stretch the cadence" from becoming "silently disable audits".
    * ``skip_derived`` — at level >= 2 drop non-essential derived
      outputs (the cross-rank snapshot audit; checkpoints and the
      fingerprint audit are essential and never skipped).
    * every :meth:`escalate` re-runs the native kernel self-tests
      (:func:`recheck_native_kernels`): a kernel failing its bitwise
      gate falls back native→numpy and emits a ``native_fallback``
      event.

    Every transition appends a structured :class:`HealthEvent` to
    :attr:`events`.
    """

    MAX_LEVEL = 8

    def __init__(self, config: HealthConfig, world_rank: int) -> None:
        self.config = config
        self.world_rank = int(world_rank)
        self.level = 0
        self.events: List[HealthEvent] = []
        self._fallen_back: set = set()

    @property
    def active(self) -> bool:
        return self.level > 0

    @property
    def audit_stretch(self) -> int:
        """Cadence multiplier in effect (1 = no degradation)."""
        if self.level <= 0:
            return 1
        return min(2 ** self.level, self.config.audit_stretch_max)

    @property
    def skip_derived(self) -> bool:
        return self.level >= 2

    def escalate(self, step: int, rank: int, reason: str) -> None:
        """Raise the degradation level by one (bounded) and emit the
        transition events; idempotent at the ceiling."""
        if self.level < self.MAX_LEVEL:
            self.level += 1
            self.events.append(
                HealthEvent(
                    step=step,
                    rank=rank,
                    kind="degrade_enter",
                    detail=reason,
                    data={"level": float(self.level)},
                )
            )
            self.events.append(
                HealthEvent(
                    step=step,
                    rank=rank,
                    kind="audit_stretch",
                    detail=(
                        f"audit/checkpoint cadence x{self.audit_stretch} "
                        f"(bound {self.config.audit_stretch_max})"
                    ),
                    data={"stretch": float(self.audit_stretch)},
                )
            )
        self.recheck_kernels(step)

    def relax(self, step: int, rank: int, reason: str) -> None:
        """Lower the degradation level by one when pressure clears."""
        if self.level <= 0:
            return
        self.level -= 1
        self.events.append(
            HealthEvent(
                step=step,
                rank=rank,
                kind="recovered",
                detail=reason,
                data={"level": float(self.level)},
            )
        )

    def recheck_kernels(self, step: int) -> Dict[str, bool]:
        """Re-run native self-tests; record a ``native_fallback`` event
        for every stage that newly fails its gate."""
        results = recheck_native_kernels()
        for stage, ok in results.items():
            if not ok and stage not in self._fallen_back:
                self._fallen_back.add(stage)
                self.events.append(
                    HealthEvent(
                        step=step,
                        rank=self.world_rank,
                        kind="native_fallback",
                        detail=(
                            f"native {stage} kernel failed its bitwise "
                            f"self-test; falling back to numpy"
                        ),
                    )
                )
        return results
