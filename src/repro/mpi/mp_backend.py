"""Supervised multiprocess communicator backend.

One OS process per rank, a supervising parent, and a shared-memory
transport: the ``"multiprocess"`` backend runs the *same* SPMD functions
as the thread backend with true parallelism (one GIL per rank) and fault
tolerance across real process boundaries — a SIGKILLed worker surfaces
to the survivors as the same :class:`repro.mpi.faults.PeerFailure` an
injected thread death produces, so the elastic shrink-and-continue
recovery of :mod:`repro.mpi.recovery` works unchanged against genuinely
dead processes.

Architecture (fork start method by default; override with
``REPRO_MP_START_METHOD=spawn``, which additionally requires the SPMD
function to be picklable):

* **Transport** — one inbound ``multiprocessing.Queue`` per world rank;
  every message is ``(comm_key, epoch, src_world, tag, blob)``.  A rank
  has exactly one queue consumer (its :class:`_Mailbox`) that routes
  messages to whichever communicator — world, split, or shrunk — is
  receiving, stashing out-of-order arrivals by ``(comm_key, epoch,
  src, tag)`` and discarding other-epoch stragglers exactly like the
  thread backend (counted in ``comm.stale_rejected``).
* **Large arrays** ride POSIX shared memory instead of the queue pipe:
  a custom pickler externalizes every C-contiguous numpy array above a
  size threshold into a ``SharedMemory`` segment (job-unique name
  prefix), and the receiver copies out and unlinks it.  The pipe then
  carries only metadata, and a particle block crosses process
  boundaries with one copy in and one copy out.
* **Collectives** come from :class:`repro.mpi.backend.CollectiveComm`
  — the identical binomial-tree / pairwise-exchange message patterns as
  every other backend, so results are bit-identical across backends.
  Barriers are dissemination barriers built from the same transport
  (internal token messages, exempt from fault injection — the thread
  backend's ``threading.Barrier`` is equally exempt).
* **Liveness** — every worker heartbeats a shared board and watches its
  parent pid (orphan protection); the parent-side
  :class:`repro.mpi.supervisor.Supervisor` turns exit codes, missing
  heartbeats and announced deaths into the shared ``dead_flags`` array
  that peers poll from every blocking receive.
* **Fault injection** — the same :class:`repro.mpi.faults.FaultPlan`
  drives message drop/delay/corrupt and collective stalls (per-process
  event counters), and ``kill_rank`` kills *for real*: the victim
  SIGKILLs itself at the scheduled ``fault_point`` — no cleanup, no
  goodbye message — so what the survivors and the supervisor observe is
  a genuine process death, not a simulation of one.
"""

from __future__ import annotations

import io
import multiprocessing as mp
import os
import pickle
import queue as _queue
import signal
import threading
import time
import uuid
import zlib
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.mpi.backend import (
    BackendCapabilities,
    CollectiveComm,
    CommBackend,
    payload_bytes as _payload_bytes,
)
from repro.mpi.comm import CommAborted
from repro.mpi.faults import (
    CommTimeout,
    InjectedFault,
    MessageDropped,
    PeerFailure,
    RankDeath,
    corrupt_payload,
    retry_with_backoff,
)
from repro.mpi.network import TrafficLog
from repro.mpi.supervisor import DEATH_EXIT_CODE, Supervisor

__all__ = [
    "MultiprocessBackend",
    "MPComm",
    "UnpicklableResult",
    "ShmFrameCorrupted",
    "DEFAULT_SHM_THRESHOLD",
]

_POLL_SECONDS = 0.02

#: payload size (bytes) above which arrays ride shared memory
DEFAULT_SHM_THRESHOLD = 1 << 16

# mirror the thread backend's reliable-path caps (repro.mpi.comm)
_RELIABLE_SEND_RETRIES = 3
_RELIABLE_RECV_RETRIES = 2
_RETRY_BASE_DELAY = 0.002

#: comm_key of the world communicator
_WORLD_KEY: Tuple[Any, ...] = ("w",)


# ---------------------------------------------------------------------------
# shared-memory transport
# ---------------------------------------------------------------------------


def _untrack_shm(shm) -> None:
    """Detach a segment from this process's resource tracker: ownership
    moved to the receiver (who attaches, copies and unlinks), with the
    supervisor's prefix sweep as the backstop for undelivered blobs."""
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


class ShmFrameCorrupted(pickle.UnpicklingError):
    """A SharedMemory frame failed its CRC32 — transport-level silent
    data corruption.  Receivers treat the whole message as undelivered
    (the sender's reliable path or the elastic rollback covers the
    loss), never as data."""


class _ShmPickler(pickle.Pickler):
    """Externalizes large contiguous arrays into SharedMemory segments.

    Every frame carries a CRC32 of its payload bytes, computed *before*
    the segment leaves the sender, so a frame corrupted in shared memory
    (or by the fault plan's ``corrupt_shm`` rule, which flips segment
    bytes after the CRC is taken) is caught at rehydration instead of
    being consumed as data.  ``sabotage=True`` is that injection hook.
    """

    def __init__(
        self, file, prefix: str, threshold: int, sabotage: bool = False
    ) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._prefix = prefix
        self._threshold = threshold
        self._sabotage = sabotage

    def persistent_id(self, obj: Any):
        if (
            isinstance(obj, np.ndarray)
            and obj.size
            and obj.nbytes >= self._threshold
            and not obj.dtype.hasobject
            and obj.dtype.names is None
        ):
            from multiprocessing import shared_memory

            arr = np.ascontiguousarray(obj)
            name = f"{self._prefix}{uuid.uuid4().hex[:12]}"
            shm = shared_memory.SharedMemory(
                create=True, size=arr.nbytes, name=name
            )
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
            view[...] = arr
            del view
            crc = zlib.crc32(shm.buf[: arr.nbytes])
            if self._sabotage:
                # flip one payload byte *after* the checksum was taken:
                # exactly what a DMA or DRAM bit-flip in flight looks like
                shm.buf[0] ^= 0xFF
            shm.close()
            _untrack_shm(shm)
            return ("repro-shm", name, arr.dtype.str, arr.shape, crc)
        return None


class _ShmUnpickler(pickle.Unpickler):
    """Rehydrates externalized arrays (CRC-check, copy out, unlink)."""

    def persistent_load(self, pid):
        kind, name, dtstr, shape = pid[0], pid[1], pid[2], pid[3]
        crc = pid[4] if len(pid) > 4 else None
        if kind != "repro-shm":  # pragma: no cover - format guard
            raise pickle.UnpicklingError(f"unknown persistent id {kind!r}")
        from multiprocessing import shared_memory

        seg = shared_memory.SharedMemory(name=name)
        try:
            arr = np.ndarray(shape, dtype=np.dtype(dtstr), buffer=seg.buf)
            if crc is not None:
                got = zlib.crc32(seg.buf[: arr.nbytes])
                if got != crc:
                    raise ShmFrameCorrupted(
                        f"shared-memory frame {name!r} failed its CRC32 "
                        f"(stored {crc:#010x}, computed {got:#010x})"
                    )
            arr = arr.copy()
        finally:
            seg.close()
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - double free race
                pass
        return arr


class _ShmScrubber(pickle.Unpickler):
    """Unpickler that only *unlinks* referenced segments (discarding an
    undelivered message without leaking its shared memory)."""

    def persistent_load(self, pid):
        try:
            from multiprocessing import shared_memory

            seg = shared_memory.SharedMemory(name=pid[1])
            seg.close()
            seg.unlink()
        except Exception:
            pass
        return None


def shm_dumps(
    obj: Any, prefix: str, threshold: int, sabotage: bool = False
) -> bytes:
    buf = io.BytesIO()
    _ShmPickler(buf, prefix, threshold, sabotage=sabotage).dump(obj)
    return buf.getvalue()


def has_shm_frames(obj: Any, threshold: int) -> bool:
    """True when serializing ``obj`` would externalize at least one
    array into a SharedMemory frame (same eligibility rules as
    :meth:`_ShmPickler.persistent_id`).  ``corrupt_shm`` fault rules
    count *frames*, not messages, so array-free control traffic must
    not advance their sequence window."""
    if isinstance(obj, np.ndarray):
        return bool(
            obj.size
            and obj.nbytes >= threshold
            and not obj.dtype.hasobject
            and obj.dtype.names is None
        )
    if isinstance(obj, dict):
        return any(has_shm_frames(v, threshold) for v in obj.values())
    if isinstance(obj, (tuple, list, set, frozenset)):
        return any(has_shm_frames(v, threshold) for v in obj)
    return False


def shm_loads(blob: bytes) -> Any:
    return _ShmUnpickler(io.BytesIO(blob)).load()


def free_blob(blob: bytes) -> None:
    """Release the shared-memory segments of an undelivered message."""
    try:
        _ShmScrubber(io.BytesIO(blob)).load()
    except Exception:
        pass


# ---------------------------------------------------------------------------
# shared job state (built in the parent, inherited/passed to workers)
# ---------------------------------------------------------------------------


class _MPJob:
    """Everything the parent and all workers share for one job."""

    def __init__(
        self,
        ctx,
        n_ranks: int,
        elastic: bool,
        fault_plan,
        recv_timeout: Optional[float],
        retry_budget: int,
        shm_threshold: int,
        heartbeat_interval: float,
    ) -> None:
        self.n_ranks = n_ranks
        self.jobid = uuid.uuid4().hex[:8]
        self.shm_prefix = f"rpmp{self.jobid}"
        self.elastic = elastic
        self.fault_plan = fault_plan
        self.recv_timeout = recv_timeout
        self.retry_budget = retry_budget
        self.shm_threshold = shm_threshold
        self.heartbeat_interval = heartbeat_interval
        #: inbound message queue per world rank
        self.data_queues = [ctx.Queue() for _ in range(n_ranks)]
        #: workers -> supervisor (votes, announced deaths, aborts)
        self.ctrl_queue = ctx.Queue()
        #: workers -> parent (per-rank results)
        self.result_queue = ctx.Queue()
        #: supervisor -> worker (consensus verdicts)
        self.reply_queues = [ctx.Queue() for _ in range(n_ranks)]
        self.abort_event = ctx.Event()
        #: per-rank death flags, polled by every blocking receive
        self.dead_flags = ctx.Array("i", n_ranks, lock=False)
        #: per-rank heartbeat board (time.time() of the last beat)
        self.hb_board = ctx.Array("d", n_ranks, lock=False)
        #: abort reason, written once by the supervisor
        self.reason_buf = ctx.Array("c", 1024, lock=False)

    def abort_reason(self, fallback: str) -> str:
        raw = bytes(self.reason_buf[:])
        msg = raw.split(b"\x00", 1)[0].decode("utf-8", "replace")
        return msg or fallback


# ---------------------------------------------------------------------------
# worker-side runtime state
# ---------------------------------------------------------------------------


class _LocalControl:
    """Per-process fault/config state (worker-side analog of
    ``repro.mpi.comm._JobControl``; no locking — one process, and the
    communicator is only ever driven from the rank's main thread)."""

    def __init__(self, job: _MPJob) -> None:
        self.job = job
        self.fault_plan = job.fault_plan
        self.recv_timeout = job.recv_timeout
        self.retry_budget = job.retry_budget
        self.epoch = 0
        self.step = -1
        self._event_seq: Dict[Any, int] = {}
        self._retry_left: Optional[Tuple[int, int]] = None

    def record_step(self, step: int) -> None:
        self.step = int(step)

    def next_event_seq(self, key: Any) -> int:
        seq = self._event_seq.get(key, 0)
        self._event_seq[key] = seq + 1
        return seq

    def try_consume_retry(self) -> bool:
        step = self.step
        entry = self._retry_left
        left = self.retry_budget if entry is None or entry[0] != step else entry[1]
        if left <= 0:
            return False
        self._retry_left = (step, left - 1)
        return True


class _Mailbox:
    """The single consumer of this rank's inbound queue.

    Routes each message to the communicator receive that wants it;
    arrivals for other ``(comm_key, epoch, src, tag)`` keys are stashed
    (out-of-order delivery across interleaved communicators), and
    messages stamped with an epoch older than the newest one registered
    for their communicator are discarded as post-recovery stragglers —
    freeing their shared-memory blobs — exactly like the thread
    backend's epoch quarantine.
    """

    def __init__(self, job: _MPJob, world_rank: int) -> None:
        self.q = job.data_queues[world_rank]
        self.stash: Dict[Tuple[Any, int, int, Any], deque] = {}
        self.epoch_of: Dict[Any, int] = {}
        self.stale_drops = 0

    def register_epoch(self, comm_key: Any, epoch: int) -> None:
        cur = self.epoch_of.get(comm_key, -1)
        if epoch <= cur:
            return
        self.epoch_of[comm_key] = epoch
        for key in [k for k in self.stash if k[0] == comm_key and k[1] < epoch]:
            for blob in self.stash.pop(key):
                free_blob(blob)
                self.stale_drops += 1

    def _classify(self, msg, want) -> Tuple[bool, Any]:
        """Deliver, stash, or drop one raw message; returns
        ``(matched, blob)``."""
        comm_key, epoch, src_w, tag, blob = msg
        key = (comm_key, epoch, src_w, tag)
        if key == want:
            return True, blob
        reg = self.epoch_of.get(comm_key)
        if reg is not None and epoch < reg:
            free_blob(blob)
            self.stale_drops += 1
            return False, None
        self.stash.setdefault(key, deque()).append(blob)
        return False, None

    def try_take(self, want) -> Tuple[bool, Any]:
        """Non-blocking: stash first, then drain whatever the queue
        already holds."""
        d = self.stash.get(want)
        if d:
            blob = d.popleft()
            if not d:
                del self.stash[want]
            return True, blob
        while True:
            try:
                msg = self.q.get_nowait()
            except _queue.Empty:
                return False, None
            matched, blob = self._classify(msg, want)
            if matched:
                return True, blob

    def wait_next(self, timeout: float):
        """Block up to ``timeout`` for one raw message (None on expiry)."""
        try:
            return self.q.get(timeout=timeout)
        except _queue.Empty:
            return None


# ---------------------------------------------------------------------------
# the communicator
# ---------------------------------------------------------------------------


class MPComm(CollectiveComm):
    """One rank's communicator handle on the multiprocess backend.

    The collective surface comes from
    :class:`repro.mpi.backend.CollectiveComm`; this class provides the
    cross-process transport: queue + shared-memory sends, mailbox
    receives with epoch quarantine, dissemination barriers, fault
    injection, and failure detection against the shared death flags.
    """

    def __init__(
        self,
        job: _MPJob,
        ctl: _LocalControl,
        mailbox: _Mailbox,
        comm_key: Tuple[Any, ...],
        epoch: int,
        world_ranks: Sequence[int],
        rank: int,
        known_dead: frozenset,
        traffic: TrafficLog,
    ) -> None:
        self._job = job
        self._ctl = ctl
        self._mailbox = mailbox
        self._comm_key = comm_key
        self._epoch = int(epoch)
        self._world_ranks = list(world_ranks)
        self._rank = int(rank)
        self._known_dead = frozenset(known_dead)
        self.traffic = traffic
        self._split_seq = 0
        self._barrier_seq = 0
        self._current_op: Optional[str] = None
        #: cumulative seconds blocked in communication (collectives and
        #: receive waits; the barrier rides on ``recv``) — straggler
        #: detection subtracts it from wall time to get work time
        self._wait_seconds = 0.0
        self._wait_depth = 0
        self._wait_t0 = 0.0
        mailbox.register_epoch(comm_key, epoch)
        #: stragglers discarded since this communicator was created
        self._stale_offset = mailbox.stale_drops
        #: messages discarded because a SharedMemory frame failed CRC32
        self.shm_crc_failures = 0

    # -- identity ---------------------------------------------------------------

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return len(self._world_ranks)

    @property
    def world_rank(self) -> int:
        return self._world_ranks[self._rank]

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def stale_rejected(self) -> int:
        """Other-epoch stragglers this rank's mailbox discarded since
        this communicator was created."""
        return self._mailbox.stale_drops - self._stale_offset

    @property
    def fault_plan(self):
        """The job's :class:`~repro.mpi.faults.FaultPlan` (None when no
        faults are scheduled); application layers consult it for the
        state-corruption rules that fire outside the transport."""
        return self._ctl.fault_plan

    @property
    def recv_timeout(self):
        """This rank's default receive deadline (seconds, or None)."""
        return self._ctl.recv_timeout

    def set_recv_timeout(self, seconds) -> None:
        """Retune the default receive deadline at runtime (health-layer
        hook; per-process control, so callers set it collectively with
        an identical value on every rank)."""
        self._ctl.recv_timeout = None if seconds is None else float(seconds)

    def _loads_checked(self, blob: bytes) -> Tuple[bool, Any]:
        """Rehydrate a matched message; a CRC32 failure discards it as
        transport corruption (``(False, None)``) instead of delivering
        damaged data — the loss then surfaces through the normal
        timeout/retry machinery, same as a dropped message."""
        try:
            return True, shm_loads(blob)
        except ShmFrameCorrupted:
            free_blob(blob)
            self.shm_crc_failures += 1
            return False, None

    # -- fault injection & failure detection -------------------------------------

    def fault_point(self, step: int) -> None:
        """Application hook: die here if the fault plan says so.

        On this backend the default death is *real*: the worker SIGKILLs
        itself — no cleanup, no goodbye message — so the supervisor must
        discover the loss through liveness monitoring, exactly like a
        crashed node.  ``kill_rank(..., real=False)`` forces the thread
        backend's in-rank :class:`InjectedFault` raise instead (an
        *announced* death).
        """
        self._ctl.record_step(step)
        plan = self._ctl.fault_plan
        if plan is None:
            return
        k = plan.kill_action(self.world_rank, step)
        if k is not None:
            if k.real is not False:
                os.kill(os.getpid(), signal.SIGKILL)
                time.sleep(60)  # pragma: no cover - SIGKILL is immediate
            raise InjectedFault(
                f"rank {self.world_rank} killed by fault plan at step {step}"
            )
        self._injected_sleep(plan.slow_delay(self.world_rank, step))

    def _injected_sleep(self, delay: float) -> None:
        """Pay an injected gray-failure delay, staying abortable.  The
        heartbeat thread keeps beating throughout — a slow rank is
        *alive*, which is exactly what distinguishes it from a wedge."""
        if delay <= 0.0:
            return
        deadline = time.monotonic() + delay
        while time.monotonic() < deadline:
            if self._job.abort_event.is_set():
                raise CommAborted(self._job.abort_reason("peer rank failed"))
            time.sleep(min(_POLL_SECONDS, delay))

    def _check_peer_failure(self) -> None:
        if not self._job.elastic:
            return
        flags = self._job.dead_flags
        dead = frozenset(i for i in range(self._job.n_ranks) if flags[i])
        delta = dead - self._known_dead
        if delta:
            raise PeerFailure(
                f"rank {self.world_rank}: peer rank(s) {sorted(delta)} died "
                f"(epoch {self._epoch})",
                dead_ranks=dead,
                epoch=self._epoch,
            )

    def _poll_failure_signals(self) -> None:
        if self._job.abort_event.is_set():
            raise CommAborted(self._job.abort_reason("peer rank failed"))
        self._check_peer_failure()

    @property
    def wait_seconds(self) -> float:
        return self._wait_seconds

    def _wait_enter(self) -> None:
        self._wait_depth += 1
        if self._wait_depth == 1:
            self._wait_t0 = time.perf_counter()

    def _wait_exit(self) -> None:
        self._wait_depth -= 1
        if self._wait_depth == 0:
            self._wait_seconds += time.perf_counter() - self._wait_t0

    @contextmanager
    def _collective(self, name: str):
        ctl = self._ctl
        prev = self._current_op
        self._current_op = name
        self._wait_enter()
        try:
            plan = ctl.fault_plan
            if plan is not None:
                seq = ctl.next_event_seq(("collective", self.world_rank, name))
                if plan.should_stall(self.world_rank, name, seq):
                    while not self._job.abort_event.is_set():
                        time.sleep(_POLL_SECONDS)
                    raise CommAborted(
                        self._job.abort_reason(f"{name} stalled by fault plan")
                    )
                self._injected_sleep(
                    plan.collective_delay(self.world_rank, name, ctl.step or 0)
                )
            yield
        finally:
            self._wait_exit()
            self._current_op = prev

    # -- point to point -----------------------------------------------------------

    def _put_raw(self, obj: Any, dest: int, tag: Any) -> None:
        """Transport put without fault injection or traffic accounting
        (barrier tokens; the thread backend's ``threading.Barrier`` is
        equally exempt from both)."""
        dst_w = self._world_ranks[dest]
        blob = shm_dumps(obj, self._job.shm_prefix, self._job.shm_threshold)
        self._job.data_queues[dst_w].put(
            (self._comm_key, self._epoch, self.world_rank, tag, blob)
        )

    def _send_attempt(self, obj: Any, dest: int, tag: Any) -> bool:
        """One transmission attempt; ``False`` when the fault plan
        dropped it (same per-event sequence logic as the thread
        backend, with per-process counters)."""
        ctl = self._ctl
        src_w = self.world_rank
        dst_w = self._world_ranks[dest]
        self.traffic.record(src_w, dst_w, _payload_bytes(obj))
        payload = obj
        plan = ctl.fault_plan
        sabotage_shm = False
        if plan is not None:
            drop = False
            delay = 0.0
            for ev in plan.message_events(src_w, dst_w):
                if ev.kind == "corrupt_shm" and not has_shm_frames(
                    payload, self._job.shm_threshold
                ):
                    # the rule targets SHM *frames*: a message carrying
                    # none (small control traffic) is outside its
                    # sequence window and must not consume a slot
                    continue
                seq = ctl.next_event_seq(("message", id(ev)))
                if not ev.hits(seq, plan.seed, src_w, dst_w):
                    continue
                if ev.kind == "drop":
                    drop = True
                elif ev.kind == "delay":
                    delay += ev.seconds
                elif ev.kind == "corrupt":
                    payload = corrupt_payload(payload, key=ev.key)
                elif ev.kind == "corrupt_shm":
                    sabotage_shm = True
            if delay > 0.0:
                deadline = time.monotonic() + delay
                while time.monotonic() < deadline:
                    if self._job.abort_event.is_set():
                        raise CommAborted(self._job.abort_reason("peer rank failed"))
                    time.sleep(min(_POLL_SECONDS, delay))
            if drop:
                return False
        blob = shm_dumps(
            payload,
            self._job.shm_prefix,
            self._job.shm_threshold,
            sabotage=sabotage_shm,
        )
        self._job.data_queues[dst_w].put(
            (self._comm_key, self._epoch, src_w, tag, blob)
        )
        return True

    def send(self, obj: Any, dest: int, tag: Any = 0, reliable: bool = False) -> None:
        if not 0 <= dest < self.size:
            raise ValueError(f"invalid destination rank {dest}")
        if not reliable:
            self._send_attempt(obj, dest, tag)
            return
        ctl = self._ctl
        me_w = self.world_rank
        dst_w = self._world_ranks[dest]

        def attempt() -> None:
            if not self._send_attempt(obj, dest, tag):
                raise MessageDropped(
                    f"rank {me_w}: send to rank {dst_w} (tag {tag}) dropped "
                    f"by fault plan",
                    rank=me_w,
                    source=dst_w,
                    tag=tag if isinstance(tag, int) else None,
                    step=ctl.step,
                    op="send",
                )

        def on_retry(attempt_idx: int, exc: BaseException) -> None:
            if not ctl.try_consume_retry():
                raise exc

        retry_with_backoff(
            attempt,
            retries=_RELIABLE_SEND_RETRIES,
            base_delay=_RETRY_BASE_DELAY,
            # per-rank, per-step seed: simultaneous drops on N ranks
            # back off on diverging (but reproducible) schedules
            seed=(me_w, max(0, ctl.step or 0)),
            exceptions=(MessageDropped,),
            on_retry=on_retry,
        )

    def recv(self, source: int, tag: Any = 0, timeout: Optional[float] = None) -> Any:
        if not 0 <= source < self.size:
            raise ValueError(f"invalid source rank {source}")
        ctl = self._ctl
        if timeout is None:
            timeout = ctl.recv_timeout
        t0 = time.monotonic()
        deadline = t0 + timeout if timeout is not None else None
        me_w = self.world_rank
        src_w = self._world_ranks[source]
        want = (self._comm_key, self._epoch, src_w, tag)
        mb = self._mailbox
        op = self._current_op or "recv"
        self._wait_enter()
        try:
            while True:
                # drain what already arrived before looking at failure
                # signals: a delivered message must win over a concurrent
                # peer-death flag (thread-backend parity)
                matched, blob = mb.try_take(want)
                if matched:
                    ok, obj = self._loads_checked(blob)
                    if ok:
                        return obj
                self._poll_failure_signals()
                if deadline is not None and time.monotonic() > deadline:
                    elapsed = time.monotonic() - t0
                    raise CommTimeout(
                        f"rank {me_w}: {op} from rank {src_w} (tag {tag}) "
                        f"timed out after {timeout:.3g}s",
                        rank=me_w,
                        source=src_w,
                        tag=tag if isinstance(tag, int) else None,
                        step=ctl.step,
                        elapsed=elapsed,
                        op=op,
                    )
                msg = mb.wait_next(_POLL_SECONDS)
                if msg is not None:
                    matched, blob = mb._classify(msg, want)
                    if matched:
                        ok, obj = self._loads_checked(blob)
                        if ok:
                            return obj
        finally:
            self._wait_exit()

    def _recv_reliable(self, source: int, tag: Any = 0) -> Any:
        ctl = self._ctl

        def on_retry(attempt_idx: int, exc: BaseException) -> None:
            if not ctl.try_consume_retry():
                raise exc

        return retry_with_backoff(
            lambda: self.recv(source, tag=tag),
            retries=_RELIABLE_RECV_RETRIES,
            base_delay=0.0,
            exceptions=(CommTimeout,),
            on_retry=on_retry,
        )

    def _try_recv(self, source: int, tag: Any) -> Tuple[bool, Any]:
        src_w = self._world_ranks[source]
        want = (self._comm_key, self._epoch, src_w, tag)
        matched, blob = self._mailbox.try_take(want)
        if not matched:
            return False, None
        return self._loads_checked(blob)

    # -- barriers ------------------------------------------------------------------

    def barrier(self) -> None:
        """Dissemination barrier over the regular transport: round k
        sends a token to ``(rank + 2**k) % size`` and waits for one from
        ``(rank - 2**k) % size`` — log2(size) rounds, deadlock-free, and
        automatically failure-aware because the token receive polls the
        same abort/death signals as every other receive."""
        self._barrier_seq += 1
        if self.size == 1:
            self._poll_failure_signals()
            return
        seq = self._barrier_seq
        n, r = self.size, self._rank
        mask, k = 1, 0
        while mask < n:
            dst = (r + mask) % n
            src = (r - mask) % n
            self._put_raw(None, dst, ("bar", seq, k))
            self.recv(src, tag=("bar", seq, k))
            mask <<= 1
            k += 1

    def traffic_phase(self, name: str) -> None:
        """Start a new named traffic phase (collective).  Each worker
        logs its own traffic, so the phase is opened in every rank's
        local log (the thread backend opens it once in the shared log)."""
        self.barrier()
        self.traffic.begin_phase(name)
        self.barrier()

    # -- communicator management -----------------------------------------------------

    def _make_split_comm(
        self, seq: int, color: int, member_ranks: Sequence[int], new_rank: int
    ) -> "MPComm":
        """Split hook: the child's identity is the deterministic key
        ``parent_key + ("s", seq, color)`` — every member process
        derives the same key independently, no registry needed."""
        child_key = self._comm_key + (("s", seq, color),)
        world_ranks = [self._world_ranks[r] for r in member_ranks]
        return MPComm(
            self._job,
            self._ctl,
            self._mailbox,
            child_key,
            self._epoch,
            world_ranks,
            new_rank,
            self._known_dead,
            self.traffic,
        )

    # -- elastic recovery --------------------------------------------------------------

    def shrink(self, timeout: float = 30.0) -> Tuple["MPComm", List[int], int]:
        """One survivor-consensus round, coordinated by the supervisor
        (the cross-process analog of the thread backend's consensus
        board); see :func:`repro.mpi.recovery.shrink_after_failure` for
        the contract."""
        job = self._job
        if not job.elastic:
            raise RuntimeError(
                "shrink_after_failure requires an elastic job "
                "(MultiprocessBackend(elastic=True))"
            )
        ctl = self._ctl
        me_w = self.world_rank
        rnd = ctl.epoch + 1
        job.ctrl_queue.put(("vote", me_w, rnd))
        deadline = time.monotonic() + timeout
        while True:
            try:
                verdict = job.reply_queues[me_w].get(timeout=_POLL_SECONDS)
            except _queue.Empty:
                if job.abort_event.is_set():
                    raise CommAborted(
                        job.abort_reason("job aborted during survivor consensus")
                    )
                if time.monotonic() > deadline:
                    reason = (
                        f"survivor consensus for epoch {rnd} timed out "
                        f"after {timeout:.3g}s on rank {me_w}"
                    )
                    job.ctrl_queue.put(("abort", me_w, reason))
                    raise CommAborted(reason)
                continue
            vrnd, dead, survivors = verdict
            if vrnd == rnd:
                break
        ctl.epoch = rnd
        if me_w not in survivors:  # pragma: no cover - live voters survive
            raise PeerFailure(
                f"rank {me_w} was declared dead by consensus",
                dead_ranks=dead,
                epoch=rnd,
            )
        new_comm = MPComm(
            job,
            ctl,
            self._mailbox,
            self._comm_key,
            rnd,
            survivors,
            survivors.index(me_w),
            frozenset(dead),
            self.traffic,
        )
        newly_dead = sorted(set(dead) - set(self._known_dead))
        return new_comm, newly_dead, rnd

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MPComm(rank={self._rank}/{self.size}, world={self.world_rank}, "
            f"epoch={self._epoch})"
        )


# ---------------------------------------------------------------------------
# worker process entry point
# ---------------------------------------------------------------------------


class UnpicklableResult:
    """Placeholder for a rank result that could not cross the process
    boundary (carries ``repr()`` of the original)."""

    def __init__(self, text: str) -> None:
        self.text = text

    def __repr__(self) -> str:
        return f"UnpicklableResult({self.text!r})"


def _safe_exc(exc: BaseException) -> BaseException:
    """An exception safe to ship through a queue (falls back to a
    RuntimeError carrying type and message)."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _worker_main(job: _MPJob, world_rank: int, fn, args, kwargs) -> None:
    # the child must not inherit the parent's job-guard state: it has no
    # jobs of its own, and the guard would try to reap its own siblings
    from repro.mpi import supervisor as _sup

    _sup._ACTIVE_JOBS.clear()
    try:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):  # pragma: no cover
        pass

    job.hb_board[world_rank] = time.time()
    parent_pid = os.getppid()
    stop_beat = threading.Event()

    def beat() -> None:
        while not stop_beat.wait(job.heartbeat_interval):
            job.hb_board[world_rank] = time.time()
            if os.getppid() != parent_pid:
                # orphaned: the parent died without cleaning up
                os._exit(3)

    threading.Thread(target=beat, name="heartbeat", daemon=True).start()

    ctl = _LocalControl(job)
    mailbox = _Mailbox(job, world_rank)
    comm = MPComm(
        job,
        ctl,
        mailbox,
        _WORLD_KEY,
        0,
        list(range(job.n_ranks)),
        world_rank,
        frozenset(),
        TrafficLog(),
    )
    exit_code = 0
    try:
        result = fn(comm, *args, **kwargs)
        try:
            blob = shm_dumps(result, job.shm_prefix, job.shm_threshold)
            job.result_queue.put(("ok", world_rank, blob))
        except Exception:
            job.result_queue.put(("unpicklable", world_rank, repr(result)))
    except CommAborted as exc:
        job.result_queue.put(("aborted", world_rank, str(exc)))
    except RankDeath as exc:
        if job.elastic:
            # announced simulated death: no result, a dedicated exit code
            job.ctrl_queue.put(
                ("death", world_rank, f"{type(exc).__name__}: {exc}")
            )
            exit_code = DEATH_EXIT_CODE
        else:
            job.ctrl_queue.put(
                (
                    "abort",
                    world_rank,
                    f"rank {world_rank} failed: {type(exc).__name__}: {exc}",
                )
            )
            job.result_queue.put(("error", world_rank, _safe_exc(exc)))
            exit_code = 1
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        job.ctrl_queue.put(
            (
                "abort",
                world_rank,
                f"rank {world_rank} failed: {type(exc).__name__}: {exc}",
            )
        )
        job.result_queue.put(("error", world_rank, _safe_exc(exc)))
        exit_code = 1
    finally:
        stop_beat.set()
    # normal Process teardown flushes the queue feeders before exit
    if exit_code:
        raise SystemExit(exit_code)


# ---------------------------------------------------------------------------
# the backend
# ---------------------------------------------------------------------------


class MultiprocessBackend(CommBackend):
    """One OS process per rank under a supervising parent — the
    ``"multiprocess"`` communicator backend.

    Accepts the thread backend's constructor signature (``torus_shape``
    and the network-model parameters are accepted and ignored — traffic
    is logged per worker, and no torus model runs — so driver code can
    switch backends without changing call sites), plus:

    shm_threshold:
        Payload size (bytes) above which arrays cross process
        boundaries through POSIX shared memory instead of the queue
        pipe.
    heartbeat_interval / suspect_timeout / heartbeat_timeout:
        Liveness cadence and thresholds (see
        :class:`repro.mpi.supervisor.Supervisor`); a worker silent for
        ``heartbeat_timeout`` seconds is killed and treated as dead.
    adaptive_liveness:
        Derive escalation thresholds from observed inter-beat gaps
        instead of the fixed constants (see
        :meth:`repro.mpi.supervisor.Supervisor.effective_timeouts`).
    start_method:
        ``"fork"`` (default; SPMD closures allowed) or ``"spawn"``
        (requires picklable ``fn``); overridable with the
        ``REPRO_MP_START_METHOD`` environment variable.
    """

    name = "multiprocess"

    #: hard cap on worker processes (sanity bound, not a tuning knob)
    MAX_RANKS = 128

    @classmethod
    def capabilities(cls) -> BackendCapabilities:
        return BackendCapabilities(
            true_parallelism=True,
            simulated_kill=True,
            real_process_kill=True,
            message_faults=True,
            stall_faults=True,
            network_model=False,
            heartbeat_liveness=True,
            elastic=True,
            gray_failure=True,
        )

    def __init__(
        self,
        n_ranks: int,
        torus_shape: Optional[Sequence[int]] = None,
        link_bandwidth: float = 5.0e9,
        link_latency: float = 1.0e-6,
        fault_plan=None,
        recv_timeout: Optional[float] = None,
        watchdog_timeout: Optional[float] = None,
        elastic: bool = False,
        retry_budget: int = 16,
        shm_threshold: int = DEFAULT_SHM_THRESHOLD,
        heartbeat_interval: float = 0.1,
        suspect_timeout: float = 5.0,
        heartbeat_timeout: Optional[float] = 60.0,
        adaptive_liveness: bool = False,
        start_method: Optional[str] = None,
    ) -> None:
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        if n_ranks > self.MAX_RANKS:
            raise ValueError(f"n_ranks must be <= {self.MAX_RANKS}")
        if recv_timeout is not None and recv_timeout <= 0:
            raise ValueError("recv_timeout must be positive")
        if retry_budget < 0:
            raise ValueError("retry_budget must be >= 0")
        if shm_threshold < 1:
            raise ValueError("shm_threshold must be >= 1")
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        self.n_ranks = int(n_ranks)
        self.fault_plan = fault_plan
        self.recv_timeout = recv_timeout
        self.elastic = bool(elastic)
        self.retry_budget = int(retry_budget)
        self.shm_threshold = int(shm_threshold)
        self.heartbeat_interval = float(heartbeat_interval)
        self.suspect_timeout = float(suspect_timeout)
        self.heartbeat_timeout = heartbeat_timeout
        self.adaptive_liveness = bool(adaptive_liveness)
        self.start_method = (
            start_method
            or os.environ.get("REPRO_MP_START_METHOD")
            or "fork"
        )
        #: parent-side traffic log (stays empty: workers log their own)
        self.traffic = TrafficLog()
        #: world ranks that died in the last elastic run (diagnostics)
        self.dead_ranks: List[int] = []
        #: liveness snapshot taken when the last run finished
        self.last_liveness: List[Dict[str, Any]] = []
        self._supervisor: Optional[Supervisor] = None

    # -- the launcher ------------------------------------------------------------

    def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> List[Any]:
        """Run ``fn(comm, *args, **kwargs)`` on every rank, each in its
        own supervised OS process; same result/failure contract as
        :meth:`repro.mpi.runtime.MPIRuntime.run`."""
        ctx = mp.get_context(self.start_method)
        job = _MPJob(
            ctx,
            self.n_ranks,
            elastic=self.elastic,
            fault_plan=self.fault_plan,
            recv_timeout=self.recv_timeout,
            retry_budget=self.retry_budget,
            shm_threshold=self.shm_threshold,
            heartbeat_interval=self.heartbeat_interval,
        )
        procs = [
            ctx.Process(
                target=_worker_main,
                args=(job, r, fn, args, kwargs),
                name=f"mp-rank-{r}",
                daemon=True,
            )
            for r in range(self.n_ranks)
        ]
        for p in procs:
            p.start()
        sup = Supervisor(
            job,
            procs,
            elastic=self.elastic,
            suspect_timeout=self.suspect_timeout,
            heartbeat_timeout=self.heartbeat_timeout,
            adaptive_liveness=self.adaptive_liveness,
        )
        self._supervisor = sup
        sup.start()
        try:
            while not sup.finished.wait(timeout=0.2):
                pass
            return self._assemble(sup)
        finally:
            sup.shutdown(drain_blobs=lambda: self._drain_data_queues(job))
            # after shutdown every worker is reaped, so the snapshot
            # carries final exit codes (not None for a mid-reap rank)
            for rank, proc in enumerate(sup.processes):
                st = sup.status[rank]
                if st.exitcode is None and proc.exitcode is not None:
                    st.exitcode = proc.exitcode
            self.last_liveness = sup.liveness_report()

    def liveness_report(self) -> List[Dict[str, Any]]:
        """Live per-rank liveness snapshot of the current (or most
        recent) job."""
        if self._supervisor is None:
            return []
        return self._supervisor.liveness_report()

    @staticmethod
    def _drain_data_queues(job: _MPJob) -> None:
        for q in [*job.data_queues, *job.reply_queues]:
            while True:
                try:
                    msg = q.get_nowait()
                except Exception:
                    break
                if isinstance(msg, tuple) and len(msg) == 5:
                    free_blob(msg[4])

    # -- result assembly (mirrors MPIRuntime.run's failure contract) -------------

    def _assemble(self, sup: Supervisor) -> List[Any]:
        n = self.n_ranks
        results: List[Any] = [None] * n
        failures: List[Tuple[int, BaseException]] = []
        aborted_ranks: List[int] = []
        abort_texts: List[str] = []
        for rank in sorted(sup.results):
            kind, payload = sup.results[rank]
            if kind == "ok":
                results[rank] = shm_loads(payload)
            elif kind == "unpicklable":
                results[rank] = UnpicklableResult(payload)
            elif kind == "error":
                failures.append((rank, payload))
            elif kind == "aborted":
                aborted_ranks.append(rank)
                abort_texts.append(payload)
        deaths = dict(sup.dead)
        self.dead_ranks = sorted(deaths)
        failures.sort(key=lambda e: e[0])

        if self.elastic and not failures and not aborted_ranks:
            if deaths and len(deaths) == n:
                err = RuntimeError(
                    f"elastic job lost all {n} rank(s): no survivor left "
                    f"to continue"
                )
                err.rank_errors = {
                    r: RuntimeError(reason) for r, reason in deaths.items()
                }
                err.aborted_ranks = []
                err.abort_origin = None
                raise err
            return results
        if failures:
            rank, exc = failures[0]
            msg = f"rank {rank} (process mp-rank-{rank}) failed: {exc!r}"
            if len(failures) > 1:
                others = "; ".join(f"rank {r}: {e!r}" for r, e in failures[1:])
                msg += f"; {len(failures) - 1} more rank(s) failed: {others}"
            if aborted_ranks:
                msg += (
                    f"; rank(s) {aborted_ranks} aborted (CommAborted) after "
                    f"the first failure"
                )
            err = RuntimeError(msg)
            err.rank_errors = dict(failures)
            err.aborted_ranks = aborted_ranks
            err.abort_origin = sup.abort_origin
            raise err from exc
        if aborted_ranks or (deaths and not self.elastic):
            reason = sup.abort_reason or "communication aborted"
            err = RuntimeError(
                f"job aborted: {reason} (CommAborted on rank(s) {aborted_ranks})"
            )
            err.rank_errors = {}
            err.aborted_ranks = aborted_ranks
            err.abort_origin = sup.abort_origin
            raise err
        return results
