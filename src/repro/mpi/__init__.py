"""SPMD message-passing runtime (the MPI substitute), with pluggable
communicator backends.

The paper runs on MPI over the K computer's Tofu interconnect; neither
is available here, so this package provides a faithful substitute with
interchangeable backends behind one interface:

* ``"thread"`` (:class:`MPIRuntime`, the deterministic default) runs an
  SPMD function on N in-process ranks, with the full fault-injection
  surface, traffic logging and the :class:`TorusNetwork` model;
* ``"multiprocess"`` (:class:`~repro.mpi.mp_backend.MultiprocessBackend`)
  runs one supervised OS process per rank: true parallelism,
  shared-memory transport for large arrays, heartbeat liveness
  monitoring, and elastic recovery against *real* process deaths;
* ``"mpi4py"`` (gated on import) adapts the same SPMD functions to a
  real MPI under ``mpiexec``.

Every backend hands ranks a communicator implementing the MPI call
surface GreeM uses — Send/Recv, Sendrecv, Barrier, Bcast, Gather(v),
Scatter, Allgather, Reduce, Allreduce, Alltoall(v) and ``Comm_split`` —
with numpy-buffer payloads; the in-tree backends share the collective
algorithms of :class:`~repro.mpi.backend.CollectiveComm`, so results
are bit-identical across them.  Select a backend by name through
:func:`create_backend` (or the drivers' ``backend=`` parameters).
"""

from repro.mpi.backend import (
    BackendCapabilities,
    CommBackend,
    available_backends,
    backend_capabilities,
    create_backend,
    register_backend,
    resolve_backend,
)
from repro.mpi.runtime import MPIRuntime, run_spmd
from repro.mpi.comm import Comm, CommAborted, Request
from repro.mpi.faults import (
    CommTimeout,
    FaultPlan,
    InjectedFault,
    MessageDropped,
    PeerFailure,
    RankDeath,
    backoff_delays,
    retry_with_backoff,
)
from repro.mpi.health import (
    AdaptiveDeadline,
    DegradationPolicy,
    HealthEvent,
    HealthMonitor,
    StragglerEvicted,
)
from repro.mpi.network import TorusNetwork, TrafficLog, PhaseTraffic
from repro.mpi.recovery import (
    BuddyStore,
    RecoveryError,
    RecoveryEvent,
    shrink_after_failure,
)

__all__ = [
    "BackendCapabilities",
    "CommBackend",
    "available_backends",
    "backend_capabilities",
    "create_backend",
    "register_backend",
    "resolve_backend",
    "MPIRuntime",
    "run_spmd",
    "Comm",
    "CommAborted",
    "CommTimeout",
    "FaultPlan",
    "InjectedFault",
    "MessageDropped",
    "PeerFailure",
    "RankDeath",
    "backoff_delays",
    "retry_with_backoff",
    "AdaptiveDeadline",
    "DegradationPolicy",
    "HealthEvent",
    "HealthMonitor",
    "StragglerEvicted",
    "BuddyStore",
    "RecoveryError",
    "RecoveryEvent",
    "shrink_after_failure",
    "Request",
    "TorusNetwork",
    "TrafficLog",
    "PhaseTraffic",
]
