"""In-process SPMD message-passing runtime (the MPI substitute).

The paper runs on MPI over the K computer's Tofu interconnect; neither
is available here, so this package provides a faithful in-process
substitute:

* :class:`MPIRuntime` executes an SPMD function on N ranks (threads),
  each receiving a :class:`Comm` handle;
* :class:`Comm` implements the MPI call surface GreeM uses — Send/Recv,
  Sendrecv, Barrier, Bcast, Gather(v), Scatter, Allgather, Reduce,
  Allreduce, Alltoall(v) and ``Comm_split`` — with numpy-buffer payloads;
* every point-to-point message is recorded in a :class:`TrafficLog`,
  and :class:`TorusNetwork` converts a phase's traffic into modeled
  communication time on a 3-D torus with dimension-order routing and
  link-level congestion, which is what makes the relay-mesh experiment
  reproducible at paper scale.
"""

from repro.mpi.runtime import MPIRuntime, run_spmd
from repro.mpi.comm import Comm, CommAborted, Request
from repro.mpi.faults import (
    CommTimeout,
    FaultPlan,
    InjectedFault,
    MessageDropped,
    PeerFailure,
    RankDeath,
    retry_with_backoff,
)
from repro.mpi.network import TorusNetwork, TrafficLog, PhaseTraffic
from repro.mpi.recovery import (
    BuddyStore,
    RecoveryError,
    RecoveryEvent,
    shrink_after_failure,
)

__all__ = [
    "MPIRuntime",
    "run_spmd",
    "Comm",
    "CommAborted",
    "CommTimeout",
    "FaultPlan",
    "InjectedFault",
    "MessageDropped",
    "PeerFailure",
    "RankDeath",
    "retry_with_backoff",
    "BuddyStore",
    "RecoveryError",
    "RecoveryEvent",
    "shrink_after_failure",
    "Request",
    "TorusNetwork",
    "TrafficLog",
    "PhaseTraffic",
]
