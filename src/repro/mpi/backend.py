"""Pluggable communicator backends for the SPMD runtime.

The paper's SPMD code is written against MPI; this reproduction runs the
identical rank code against interchangeable *backends* behind one
interface (chainermn's ``CommunicatorBase``-over-``mpi4py`` shape):

* ``"thread"`` — the original in-process runtime
  (:class:`repro.mpi.runtime.MPIRuntime`): deterministic scheduling,
  full fault injection, traffic logging and the torus network model.
  GIL-bound, so it cannot speed up numpy-heavy rank code.
* ``"multiprocess"`` — one OS process per rank with a supervising
  parent (:class:`repro.mpi.mp_backend.MultiprocessBackend`): true
  parallelism, ``SharedMemory`` transport for large arrays, heartbeat
  liveness monitoring, and fault tolerance against *real* process
  deaths (SIGKILL included).
* ``"mpi4py"`` — a thin adapter over ``mpi4py`` (gated on import) so
  the same SPMD functions run under a real MPI on clusters.

Two layers live here:

:class:`CommBackend`
    The launcher contract: ``run(fn, *args)`` executes ``fn(comm, ...)``
    on every rank and returns the per-rank results, with the failure
    semantics of :class:`repro.mpi.runtime.MPIRuntime` (one
    ``RuntimeError`` naming every failing rank; elastic jobs return
    ``None`` for dead ranks).

:class:`CollectiveComm`
    The communicator contract, as a mixin: every backend provides the
    point-to-point primitives (``send``/``recv``/``barrier``/
    ``_collective``/``_try_recv``), the liveness hooks (``fault_point``,
    ``abort``) and identity properties; the mixin derives the entire
    collective surface (bcast/reduce/allreduce/gather/allgather/
    scatter/alltoall(v)/split/sendrecv/isend/irecv) from them with the
    *same* message patterns on every backend — binomial trees and
    pairwise exchanges in identical order, so results are bit-identical
    across backends.
"""

from __future__ import annotations

import pickle
from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "BackendCapabilities",
    "CommBackend",
    "CollectiveComm",
    "Request",
    "available_backends",
    "backend_capabilities",
    "create_backend",
    "register_backend",
    "resolve_backend",
]


# ---------------------------------------------------------------------------
# capability descriptors
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can and cannot do (documented per backend in
    ``docs/fault_tolerance.md``)."""

    #: ranks execute concurrently on separate GILs / separate hosts
    true_parallelism: bool = False
    #: ``FaultPlan.kill_rank`` raises :class:`InjectedFault` in-rank
    simulated_kill: bool = False
    #: ``FaultPlan.kill_rank(real=True)`` SIGKILLs a live OS process
    real_process_kill: bool = False
    #: drop/delay/corrupt message faults at the transport layer
    message_faults: bool = False
    #: ``FaultPlan.stall_collective`` hangs a rank inside a collective
    stall_faults: bool = False
    #: per-message traffic log + torus network model
    network_model: bool = False
    #: supervisor-side heartbeat liveness detection of dead/stuck ranks
    heartbeat_liveness: bool = False
    #: elastic shrink-and-continue recovery (survivor consensus)
    elastic: bool = False
    #: gray-failure tolerance: per-rank work/wait attribution
    #: (``Comm.wait_seconds``) plus slow-rank / collective-delay /
    #: disk-full fault injection for the health layer
    gray_failure: bool = False


# ---------------------------------------------------------------------------
# the launcher contract
# ---------------------------------------------------------------------------


class CommBackend(ABC):
    """Executes SPMD functions on ``n_ranks`` ranks.

    Concrete backends own rank creation (threads, processes, an MPI
    launcher), the transport between ranks, and failure detection; they
    agree on the contract of :meth:`run` so drivers and tests are
    backend-agnostic.
    """

    #: registry key; subclasses override
    name: str = "abstract"

    @classmethod
    @abstractmethod
    def capabilities(cls) -> BackendCapabilities:
        """Static description of what this backend supports."""

    @classmethod
    def is_available(cls) -> bool:
        """Whether the backend can actually be instantiated here —
        backends with optional dependencies (mpi4py) override this to
        probe the import without raising."""
        return True

    @abstractmethod
    def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> List[Any]:
        """Run ``fn(comm, *args, **kwargs)`` on every rank and return
        the per-rank results (index = world rank).

        Any rank failure aborts the job and raises a ``RuntimeError``
        carrying ``rank_errors`` / ``aborted_ranks`` / ``abort_origin``
        attributes; an elastic job survives :class:`RankDeath` failures
        and returns ``None`` for dead ranks instead.
        """


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, Callable[[], type]] = {}


def register_backend(name: str, loader: Callable[[], type]) -> None:
    """Register a backend class under ``name``.

    ``loader`` is a zero-argument callable returning the class, so
    backends with heavy or optional imports (mpi4py) stay lazy.
    """
    _REGISTRY[str(name)] = loader


def resolve_backend(name: str) -> type:
    """Return the backend class registered under ``name``.

    Raises ``ValueError`` for unknown names and ``ImportError`` (with
    an actionable message) when the backend's dependencies are missing.
    """
    _ensure_builtins()
    try:
        loader = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown communicator backend {name!r}; available: "
            f"{sorted(_REGISTRY)}"
        ) from None
    return loader()


def create_backend(name_or_backend, n_ranks: int, **kwargs) -> CommBackend:
    """Instantiate a backend from a registry name (or pass an existing
    :class:`CommBackend` instance through unchanged)."""
    if isinstance(name_or_backend, CommBackend):
        return name_or_backend
    cls = resolve_backend(name_or_backend)
    return cls(n_ranks, **kwargs)


def available_backends() -> Dict[str, bool]:
    """Map of registered backend name -> usable right now (the class
    resolves *and* its dependencies import)."""
    _ensure_builtins()
    out: Dict[str, bool] = {}
    for name in sorted(_REGISTRY):
        try:
            out[name] = bool(resolve_backend(name).is_available())
        except Exception:
            out[name] = False
    return out


def backend_capabilities(name: str) -> BackendCapabilities:
    return resolve_backend(name).capabilities()


def _ensure_builtins() -> None:
    """Populate the registry with the in-tree backends (idempotent)."""
    if "thread" not in _REGISTRY:

        def _thread() -> type:
            from repro.mpi.runtime import MPIRuntime

            return MPIRuntime

        register_backend("thread", _thread)
    if "multiprocess" not in _REGISTRY:

        def _mp() -> type:
            from repro.mpi.mp_backend import MultiprocessBackend

            return MultiprocessBackend

        register_backend("multiprocess", _mp)
    if "mpi4py" not in _REGISTRY:

        def _mpi4py() -> type:
            from repro.mpi.mpi4py_backend import MPI4PyBackend

            return MPI4PyBackend

        register_backend("mpi4py", _mpi4py)


# ---------------------------------------------------------------------------
# the communicator contract: shared collective algorithms
# ---------------------------------------------------------------------------


def _copy(obj: Any) -> Any:
    if isinstance(obj, np.ndarray):
        return obj.copy()
    return obj


def payload_bytes(obj: Any) -> int:
    """Approximate wire size of a payload (traffic accounting)."""
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 64  # unpicklable in-process object; count a token size


REDUCE_OPS: Dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "max": lambda a, b: np.maximum(a, b),
    "min": lambda a, b: np.minimum(a, b),
}


class Request:
    """Handle on a non-blocking operation (mpi4py-style)."""

    def __init__(
        self,
        comm: "CollectiveComm",
        kind: str,
        done: bool = False,
        source: int = -1,
        tag: int = 0,
    ) -> None:
        self._comm = comm
        self._kind = kind
        self._done = done
        self._source = source
        self._tag = tag
        self._payload: Any = None

    def test(self) -> Tuple[bool, Any]:
        """Non-blocking completion probe: (done, payload-or-None)."""
        if self._done:
            return True, self._payload
        ok, payload = self._comm._try_recv(self._source, self._tag)
        if not ok:
            return False, None
        self._payload = payload
        self._done = True
        return True, payload

    def wait(self) -> Any:
        """Block until completion; returns the received object (None
        for send requests)."""
        if self._done:
            return self._payload
        self._payload = self._comm.recv(self._source, tag=self._tag)
        self._done = True
        return self._payload

    @staticmethod
    def waitall(requests: Sequence["Request"]) -> List[Any]:
        return [r.wait() for r in requests]


class CollectiveComm:
    """Backend-independent collective algorithms over point-to-point
    primitives.

    Subclasses provide: ``rank``/``size``/``world_rank``/``epoch``
    properties, ``send(obj, dest, tag, reliable=False)``,
    ``recv(source, tag, timeout=None)``, ``_recv_reliable(source,
    tag)``, ``_try_recv(source, tag) -> (bool, payload)``,
    ``barrier()``, the ``_collective(name)`` context manager (watchdog
    labeling + stall injection) and ``_make_split_comm(...)``.

    The message patterns — binomial trees for bcast/reduce, a pairwise
    ring exchange for alltoall — are identical on every backend, in the
    same order, so collective results are bit-identical across
    backends (floating-point reduction order included).
    """

    # -- identity (subclass-provided; declared for documentation) ---------------

    rank: int
    size: int

    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.size

    # -- derived point-to-point ----------------------------------------------------

    def sendrecv(
        self, sendobj: Any, dest: int, source: int, sendtag: int = 0, recvtag: int = 0
    ) -> Any:
        self.send(sendobj, dest, tag=sendtag)
        return self.recv(source, tag=recvtag)

    # -- non-blocking point to point --------------------------------------------
    #
    # The paper's footnote 4 weighs exactly this API for the mesh
    # conversion ("One may imagine replacing this communication with
    # MPI_Isend and MPI_Irecv.  However, a FFT process receives meshes
    # from ~4000 processes.  Such a large number of non-blocking
    # communications do not work concurrently.") — provided here so the
    # alternative can be expressed and its traffic analyzed.

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send.  Every backend's transport buffers
        eagerly, so the send completes immediately; the Request exists
        for API parity and deferred error surfacing."""
        self.send(obj, dest, tag=tag)
        return Request(self, kind="send", done=True)

    def irecv(self, source: int, tag: int = 0) -> Request:
        """Non-blocking receive; complete with ``req.wait()``."""
        return Request(self, kind="recv", source=source, tag=tag)

    # -- collectives ----------------------------------------------------------------

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Binomial-tree broadcast."""
        with self._collective("bcast"):
            size, rank = self.size, self.rank
            rel = (rank - root) % size
            mask = 1
            while mask < size:
                if rel < mask:
                    dst = rel + mask
                    if dst < size:
                        self.send(obj, (dst + root) % size, tag=-2)
                elif rel < 2 * mask:
                    obj = self.recv(((rel - mask) + root) % size, tag=-2)
                mask <<= 1
            return obj

    def reduce(self, value: Any, op: str = "sum", root: int = 0) -> Optional[Any]:
        """Binomial-tree reduction; result valid on root only."""
        with self._collective("reduce"):
            fn = REDUCE_OPS[op]
            size, rank = self.size, self.rank
            rel = (rank - root) % size
            acc = _copy(value)
            mask = 1
            while mask < size:
                if rel & mask:
                    self.send(acc, ((rel - mask) + root) % size, tag=-3)
                    return None
                partner = rel | mask
                if partner < size:
                    other = self.recv((partner + root) % size, tag=-3)
                    acc = fn(acc, other)
                mask <<= 1
            return acc if rank == root else None

    def allreduce(self, value: Any, op: str = "sum") -> Any:
        return self.bcast(self.reduce(value, op=op, root=0), root=0)

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        with self._collective("gather"):
            if self.rank != root:
                self.send(obj, root, tag=-4)
                return None
            out = [None] * self.size
            out[root] = _copy(obj)
            for src in range(self.size):
                if src != root:
                    out[src] = self.recv(src, tag=-4)
            return out

    def allgather(self, obj: Any) -> List[Any]:
        return self.bcast(self.gather(obj, root=0), root=0)

    def scatter(self, objs: Optional[Sequence[Any]], root: int = 0) -> Any:
        with self._collective("scatter"):
            if self.rank == root:
                if objs is None or len(objs) != self.size:
                    raise ValueError("root must pass one object per rank")
                for dst in range(self.size):
                    if dst != root:
                        self.send(objs[dst], dst, tag=-5)
                return _copy(objs[root])
            return self.recv(root, tag=-5)

    def alltoall(self, objs: Sequence[Any], reliable: bool = False) -> List[Any]:
        """Pairwise-exchange all-to-all; ``objs[d]`` goes to rank d.

        ``reliable=True`` routes every pairwise transfer through the
        retransmitting send / retrying receive path, so transient
        injected drops and delays are absorbed (within the per-step
        retry budget) instead of failing the collective — the mode the
        particle exchange and the relay-mesh conversions run in.
        """
        with self._collective("alltoall"):
            if len(objs) != self.size:
                raise ValueError("need one object per rank")
            size, rank = self.size, self.rank
            out: List[Any] = [None] * size
            out[rank] = _copy(objs[rank])
            for step in range(1, size):
                dst = (rank + step) % size
                src = (rank - step) % size
                if reliable:
                    self.send(objs[dst], dst, tag=-6, reliable=True)
                    out[src] = self._recv_reliable(src, tag=-6)
                else:
                    out[src] = self.sendrecv(
                        objs[dst], dst, src, sendtag=-6, recvtag=-6
                    )
            return out

    def alltoallv(self, arrays: Sequence[np.ndarray]) -> List[np.ndarray]:
        """All-to-all of numpy arrays (the MPI_Alltoallv workhorse).

        ``arrays[d]`` is sent to rank d; returns a list indexed by
        source rank.  Array shapes may differ per destination.
        """
        if len(arrays) != self.size:
            raise ValueError("need one array per rank")
        return self.alltoall([np.asarray(a) for a in arrays])

    # -- communicator management ---------------------------------------------------

    def split(self, color: Optional[int], key: Optional[int] = None):
        """Create sub-communicators by color (MPI_Comm_split).

        Ranks passing ``color=None`` get ``None`` back (MPI_UNDEFINED).
        Ranks are ordered by ``(key, rank)`` within each color.
        """
        seq = self._next_split_seq()
        me = (color, key if key is not None else self.rank, self.rank)
        all_entries = self.allgather(me)
        if color is None:
            self.barrier()
            return None
        members = sorted((k, r) for c, k, r in all_entries if c == color)
        ranks = [r for _, r in members]
        new_rank = ranks.index(self.rank)
        new_comm = self._make_split_comm(seq, color, ranks, new_rank)
        self.barrier()
        return new_comm

    def _next_split_seq(self) -> int:
        seq = getattr(self, "_split_seq", 0)
        self._split_seq = seq + 1
        return seq

    # -- hooks subclasses must provide -------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0, reliable: bool = False) -> None:
        raise NotImplementedError

    def recv(self, source: int, tag: int = 0, timeout: Optional[float] = None) -> Any:
        raise NotImplementedError

    def _recv_reliable(self, source: int, tag: int = 0) -> Any:
        raise NotImplementedError

    def _try_recv(self, source: int, tag: int) -> Tuple[bool, Any]:
        raise NotImplementedError

    def barrier(self) -> None:
        raise NotImplementedError

    @contextmanager
    def _collective(self, name: str):
        yield

    def _make_split_comm(
        self, seq: int, color: int, member_ranks: Sequence[int], new_rank: int
    ):
        raise NotImplementedError
