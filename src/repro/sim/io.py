"""Snapshot and checkpoint I/O.

Compressed-npz snapshots carrying the particle state plus a structured
header; checkpointing a :class:`repro.sim.serial.SerialSimulation` and
resuming reproduces the original trajectory bit-for-bit (tested), which
is how production runs like the paper's month-long 24576-node campaign
survive machine time limits.

Writes are **atomic** (the snapshot is assembled in a temporary file in
the destination directory and moved into place with ``os.replace``) and
**checksummed** (a sha256 digest per array, verified on load), so a
writer killed mid-snapshot can never leave a half-written file that
loads silently — the failure mode the fault-tolerance tests exercise.
The distributed equivalent lives in :mod:`repro.sim.checkpoint`.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, Tuple

import numpy as np

__all__ = [
    "SnapshotHeader",
    "save_snapshot",
    "load_snapshot",
    "atomic_write",
    "fsync_directory",
]

#: Version 2 added per-array sha256 checksums; version-1 files (no
#: checksums) still load.
_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


@dataclass(frozen=True)
class SnapshotHeader:
    """Metadata stored alongside the particle arrays."""

    time: float
    n_particles: int
    box: float = 1.0
    cosmological: bool = False
    step: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def redshift(self) -> float:
        """For cosmological snapshots ``time`` is the scale factor."""
        if not self.cosmological:
            raise ValueError("not a cosmological snapshot")
        return 1.0 / self.time - 1.0


# Canonical implementation lives in repro.utils.integrity so snapshot,
# checkpoint and buddy-replica digests are always comparable.
from repro.utils.integrity import array_digest  # noqa: E402  (re-export)


def _json_buffer(obj: Any) -> np.ndarray:
    return np.frombuffer(json.dumps(obj).encode(), dtype=np.uint8)


def _with_npz_suffix(path: Path) -> Path:
    """Mirror numpy's behaviour of appending ``.npz`` when missing."""
    return path if str(path).endswith(".npz") else Path(str(path) + ".npz")


def fsync_directory(path) -> None:
    """fsync a directory, making a just-renamed entry durable.

    ``os.replace`` makes a rename *atomic*, not *durable*: after a
    power loss the directory may still replay to its pre-rename state
    unless the directory inode itself was synced.  Best-effort on
    platforms whose directories cannot be opened/fsynced.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write(path, writer, fsync_parent: bool = False) -> Path:
    """Call ``writer(file_object)`` on a temp file in ``path``'s
    directory, fsync it, then atomically move it to ``path``.

    A crash at any point leaves either the previous file or no file —
    never a torn one.  With ``fsync_parent`` the parent directory is
    fsynced after the rename, so the rename is also *durable* — a
    crash cannot roll the directory entry back to the previous file.
    Returns ``path``.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent or Path("."), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            writer(fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    if fsync_parent:
        fsync_directory(path.parent or Path("."))
    return path


def save_snapshot(
    path,
    pos: np.ndarray,
    mom: np.ndarray,
    mass: np.ndarray,
    header: SnapshotHeader,
) -> None:
    """Atomically write a checksummed snapshot to ``path`` (.npz)."""
    pos = np.asarray(pos, dtype=np.float64)
    mom = np.asarray(mom, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    if not (len(pos) == len(mom) == len(mass) == header.n_particles):
        raise ValueError("array lengths do not match the header")
    arrays = {"pos": pos, "mom": mom, "mass": mass}
    checksums = {name: array_digest(a) for name, a in arrays.items()}
    final = _with_npz_suffix(Path(path))

    def write(fh) -> None:
        np.savez_compressed(
            fh,
            format_version=np.int64(_FORMAT_VERSION),
            header_json=_json_buffer(asdict(header)),
            checksums_json=_json_buffer(checksums),
            **arrays,
        )

    atomic_write(final, write)


def load_snapshot(
    path, strict: bool = False
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, SnapshotHeader]:
    """Read a snapshot written by :func:`save_snapshot`.

    ``path`` may omit the ``.npz`` suffix (numpy appends it on write);
    if neither candidate exists a :class:`FileNotFoundError` naming
    both is raised.  Array checksums are verified, so a corrupted or
    torn snapshot raises instead of loading silently.  ``strict``
    additionally sweeps pos/mom/mass for non-finite values — checksums
    catch corruption *of* the file, the sweep catches a state that was
    corrupt when written.
    """
    path = Path(path)
    candidate = _with_npz_suffix(path)
    if not path.exists():
        if candidate != path and candidate.exists():
            path = candidate
        else:
            raise FileNotFoundError(
                f"no snapshot at '{path}'"
                + (f" or '{candidate}'" if candidate != path else "")
            )
    with np.load(path) as data:
        version = int(data["format_version"])
        if version not in _SUPPORTED_VERSIONS:
            raise ValueError(f"unsupported snapshot format {version}")
        hdr = json.loads(bytes(data["header_json"]).decode())
        header = SnapshotHeader(**hdr)
        checksums = (
            json.loads(bytes(data["checksums_json"]).decode())
            if "checksums_json" in data
            else {}
        )
        arrays = {}
        for name in ("pos", "mom", "mass"):
            arr = data[name]
            expected = checksums.get(name)
            if expected is not None and array_digest(arr) != expected:
                raise ValueError(
                    f"corrupt snapshot '{path}': checksum mismatch for "
                    f"array '{name}'"
                )
            arrays[name] = arr
    if len(arrays["pos"]) != header.n_particles:
        raise ValueError("corrupt snapshot: particle count mismatch")
    if strict:
        from repro.validate.checks import check_finite

        for name in ("pos", "mom", "mass"):
            violation = check_finite(name, arrays[name], stage="snapshot/load")
            if violation is not None:
                raise ValueError(f"corrupt snapshot '{path}': {violation}")
    return arrays["pos"], arrays["mom"], arrays["mass"], header
