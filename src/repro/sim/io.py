"""Snapshot and checkpoint I/O.

Compressed-npz snapshots carrying the particle state plus a structured
header; checkpointing a :class:`repro.sim.serial.SerialSimulation` and
resuming reproduces the original trajectory bit-for-bit (tested), which
is how production runs like the paper's month-long 24576-node campaign
survive machine time limits.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, Tuple

import numpy as np

__all__ = ["SnapshotHeader", "save_snapshot", "load_snapshot"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class SnapshotHeader:
    """Metadata stored alongside the particle arrays."""

    time: float
    n_particles: int
    box: float = 1.0
    cosmological: bool = False
    step: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def redshift(self) -> float:
        """For cosmological snapshots ``time`` is the scale factor."""
        if not self.cosmological:
            raise ValueError("not a cosmological snapshot")
        return 1.0 / self.time - 1.0


def save_snapshot(
    path,
    pos: np.ndarray,
    mom: np.ndarray,
    mass: np.ndarray,
    header: SnapshotHeader,
) -> None:
    """Write a snapshot to ``path`` (.npz)."""
    pos = np.asarray(pos, dtype=np.float64)
    mom = np.asarray(mom, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    if not (len(pos) == len(mom) == len(mass) == header.n_particles):
        raise ValueError("array lengths do not match the header")
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        header_json=np.frombuffer(
            json.dumps(asdict(header)).encode(), dtype=np.uint8
        ),
        pos=pos,
        mom=mom,
        mass=mass,
    )


def load_snapshot(path) -> Tuple[np.ndarray, np.ndarray, np.ndarray, SnapshotHeader]:
    """Read a snapshot written by :func:`save_snapshot`."""
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported snapshot format {version}")
        hdr = json.loads(bytes(data["header_json"]).decode())
        header = SnapshotHeader(**hdr)
        pos = data["pos"]
        mom = data["mom"]
        mass = data["mass"]
    if len(pos) != header.n_particles:
        raise ValueError("corrupt snapshot: particle count mismatch")
    return pos, mom, mass, header
