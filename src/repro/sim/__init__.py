"""Simulation drivers: the GreeM-equivalent orchestration layer.

:class:`SerialSimulation` runs the TreePM step cycle in one process;
:class:`ParallelSimulation` is the SPMD driver combining dynamic domain
decomposition, ghost exchange, the distributed tree solver and the
relay-mesh PM — the full per-step pipeline whose cost breakdown is the
paper's Table I.
"""

from repro.sim.ghosts import distance_to_domain, exchange_ghosts
from repro.sim.io import SnapshotHeader, load_snapshot, save_snapshot
from repro.sim.checkpoint import (
    CheckpointError,
    latest_checkpoint,
    load_distributed_checkpoint,
    validate_checkpoint,
)
from repro.sim.serial import SerialSimulation
from repro.sim.parallel import (
    ParallelSimulation,
    resume_parallel_simulation,
    run_parallel_simulation,
)

__all__ = [
    "distance_to_domain",
    "exchange_ghosts",
    "SnapshotHeader",
    "load_snapshot",
    "save_snapshot",
    "CheckpointError",
    "latest_checkpoint",
    "load_distributed_checkpoint",
    "validate_checkpoint",
    "SerialSimulation",
    "ParallelSimulation",
    "resume_parallel_simulation",
    "run_parallel_simulation",
]
