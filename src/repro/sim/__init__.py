"""Simulation drivers: the GreeM-equivalent orchestration layer.

:class:`SerialSimulation` runs the TreePM step cycle in one process;
:class:`ParallelSimulation` is the SPMD driver combining dynamic domain
decomposition, ghost exchange, the distributed tree solver and the
relay-mesh PM — the full per-step pipeline whose cost breakdown is the
paper's Table I.
"""

from repro.sim.ghosts import distance_to_domain, exchange_ghosts
from repro.sim.io import SnapshotHeader, load_snapshot, save_snapshot
from repro.sim.serial import SerialSimulation
from repro.sim.parallel import ParallelSimulation, run_parallel_simulation

__all__ = [
    "distance_to_domain",
    "exchange_ghosts",
    "SnapshotHeader",
    "load_snapshot",
    "save_snapshot",
    "SerialSimulation",
    "ParallelSimulation",
    "run_parallel_simulation",
]
