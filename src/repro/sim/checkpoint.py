"""Distributed checkpoint/restart for the SPMD simulation.

The paper's month-long 24576-node campaign survived machine time limits
and node failures because GreeM could dump its distributed particle
state and resume.  This module provides the same capability for
:class:`repro.sim.parallel.ParallelSimulation`:

* every rank writes an **atomic, checksummed** per-rank file
  (``rank_00003_of_00008.npz``: particle arrays, force accumulators,
  decomposition history, per-array sha256 digests);
* rank 0 then writes a **manifest** (``manifest.json``) recording the
  format version, step, schedule, a config hash and the sha256 digest
  of every rank file — written last, so an interrupted checkpoint is
  detected as *torn* (missing manifest / missing files / digest
  mismatch) instead of loading silently;
* finally rank 0 atomically updates a ``LATEST`` pointer in the parent
  checkpoint directory, so resume always finds the newest *complete*
  set even if a later checkpoint attempt was cut down mid-write.

Restore validates the whole set before touching simulation state, and
supports a *different* rank count by merging the per-rank states (in
global particle-id order) and re-decomposing.  Same-rank restore is
bit-for-bit: every field a step depends on (force accumulators, the
boundary moving-average history, the decomposer's step counter) is
captured, so a resumed trajectory is byte-identical to an uninterrupted
one (tested).

Layout::

    ckpt_dir/
      LATEST                 <- name of the newest complete step dir
      step_00002/
        manifest.json
        rank_00000_of_00002.npz
        rank_00001_of_00002.npz
"""

from __future__ import annotations

import errno
import hashlib
import io as _io
import json
import os
import shutil
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.sim.io import atomic_write, fsync_directory
from repro.utils.integrity import array_digest

__all__ = [
    "CheckpointError",
    "CheckpointSpaceError",
    "checkpoint_size",
    "check_free_space",
    "MANIFEST_NAME",
    "LATEST_NAME",
    "CHECKPOINT_VERSION",
    "rank_filename",
    "step_dirname",
    "write_rank_file",
    "read_rank_file",
    "write_manifest",
    "read_manifest",
    "validate_checkpoint",
    "latest_checkpoint",
    "newest_valid_checkpoint",
    "list_checkpoints",
    "prune_checkpoints",
    "scrub_checkpoints",
    "load_distributed_checkpoint",
    "STRICT_FINITE_KEYS",
]

CHECKPOINT_VERSION = 1
MANIFEST_NAME = "manifest.json"
LATEST_NAME = "LATEST"

_ARRAY_KEYS = ("pos", "mom", "mass", "ids", "pp_acc", "pm_acc", "decomp", "history")


class CheckpointError(RuntimeError):
    """A checkpoint set is missing, torn, corrupt, or incompatible."""


class CheckpointSpaceError(CheckpointError):
    """The disk cannot hold a checkpoint (preflight shortfall or an
    ``ENOSPC`` during the write).  The write path guarantees the
    partial temp file is removed and the ``LATEST`` pointer still names
    the last *complete* set, so callers may skip the epoch and keep
    running."""


def checkpoint_size(step_dir) -> int:
    """Total on-disk bytes of one checkpoint epoch (best effort)."""
    total = 0
    try:
        for p in Path(step_dir).iterdir():
            if p.is_file():
                total += p.stat().st_size
    except OSError:
        pass
    return total


def check_free_space(ckpt_dir, required_bytes: int, margin: float = 1.25) -> None:
    """Preflight: raise :class:`CheckpointSpaceError` when the
    filesystem holding ``ckpt_dir`` has less than
    ``required_bytes * margin`` free.

    ``required_bytes`` is normally the measured size of the *previous*
    checkpoint epoch — the best predictor of the next one.  Best
    effort: platforms without ``statvfs`` (or a not-yet-created
    directory) skip the check and let the write path handle ``ENOSPC``.
    """
    if required_bytes <= 0:
        return
    try:
        st = os.statvfs(str(ckpt_dir))
    except (AttributeError, OSError):
        return
    free = st.f_bavail * st.f_frsize
    need = int(required_bytes * margin)
    if free < need:
        raise CheckpointSpaceError(
            f"insufficient disk space under '{ckpt_dir}': {free} bytes free, "
            f"next checkpoint needs ~{need} (last epoch was "
            f"{required_bytes} bytes)"
        )


def rank_filename(rank: int, size: int) -> str:
    return f"rank_{rank:05d}_of_{size:05d}.npz"


def step_dirname(next_step: int) -> str:
    """Directory name for the checkpoint taken *before* ``next_step``."""
    return f"step_{next_step:05d}"


# -- per-rank files ------------------------------------------------------------


def write_rank_file(
    path,
    arrays: Dict[str, np.ndarray],
    meta: Dict[str, Any],
    disk_guard: Optional[Callable[[Any, int], None]] = None,
) -> str:
    """Atomically write one rank's state; returns the file's sha256.

    The digest is computed over the complete serialized file, so the
    manifest entry detects any later corruption of any byte.

    ``disk_guard(path, nbytes)`` is called with the serialized size
    just before the bytes touch disk — the injection point for
    ``FaultPlan.disk_full`` schedules.  A guard-raised or real
    ``ENOSPC`` surfaces as :class:`CheckpointSpaceError`; either way
    :func:`repro.sim.io.atomic_write` has already removed the partial
    temp file, so the directory never holds a torn rank file.
    """
    checksums = {name: array_digest(a) for name, a in arrays.items()}
    buf = _io.BytesIO()
    np.savez_compressed(
        buf,
        checkpoint_version=np.int64(CHECKPOINT_VERSION),
        meta_json=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        checksums_json=np.frombuffer(json.dumps(checksums).encode(), dtype=np.uint8),
        **arrays,
    )
    raw = buf.getvalue()
    digest = hashlib.sha256(raw).hexdigest()
    try:
        if disk_guard is not None:
            disk_guard(path, len(raw))
        atomic_write(path, lambda fh: fh.write(raw))
    except OSError as exc:
        if exc.errno == errno.ENOSPC:
            raise CheckpointSpaceError(
                f"disk full writing '{path}': {exc}"
            ) from exc
        raise
    return digest


def file_digest(path) -> str:
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


#: arrays strict mode sweeps for finite values.  Force accumulators are
#: deliberately excluded: a ``dump``-policy diagnostic checkpoint may
#: legitimately hold the garbage that triggered the dump in ``pp_acc``
#: / ``pm_acc``, and must still load for offline analysis.
STRICT_FINITE_KEYS = ("pos", "mom", "mass")


def _strict_finite_sweep(arrays: Dict[str, np.ndarray], path) -> None:
    from repro.validate.checks import check_finite

    for name in STRICT_FINITE_KEYS:
        if name not in arrays:
            continue
        violation = check_finite(name, arrays[name], stage="checkpoint/load")
        if violation is not None:
            raise CheckpointError(
                f"corrupt checkpoint '{path}': {violation}"
            ) from violation


def read_rank_file(
    path, strict: bool = False
) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Read one rank's state, verifying per-array checksums.

    ``strict`` additionally sweeps the particle state arrays
    (:data:`STRICT_FINITE_KEYS`) for non-finite values — checksums catch
    on-disk corruption, the sweep catches states that were *written*
    corrupted.
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"missing checkpoint rank file '{path}'")
    try:
        with np.load(path) as data:
            version = int(data["checkpoint_version"])
            if version != CHECKPOINT_VERSION:
                raise CheckpointError(
                    f"unsupported checkpoint version {version} in '{path}'"
                )
            meta = json.loads(bytes(data["meta_json"]).decode())
            checksums = json.loads(bytes(data["checksums_json"]).decode())
            arrays = {}
            for name, expected in checksums.items():
                arr = data[name]
                if array_digest(arr) != expected:
                    raise CheckpointError(
                        f"corrupt checkpoint '{path}': checksum mismatch "
                        f"for array '{name}'"
                    )
                arrays[name] = arr
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointError(f"unreadable checkpoint rank file '{path}': {exc}") from exc
    if strict:
        _strict_finite_sweep(arrays, path)
    return arrays, meta


# -- manifest ------------------------------------------------------------------


def write_manifest(step_dir, manifest: Dict[str, Any]) -> None:
    step_dir = Path(step_dir)
    payload = json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    atomic_write(step_dir / MANIFEST_NAME, lambda fh: fh.write(payload.encode()))


def read_manifest(step_dir) -> Dict[str, Any]:
    step_dir = Path(step_dir)
    path = step_dir / MANIFEST_NAME
    if not path.exists():
        raise CheckpointError(
            f"no checkpoint manifest at '{path}' (torn or missing checkpoint)"
        )
    try:
        manifest = json.loads(path.read_text())
    except Exception as exc:
        raise CheckpointError(f"unreadable manifest '{path}': {exc}") from exc
    version = manifest.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint manifest version {version!r} in '{path}'"
        )
    for key in ("n_ranks", "files", "config_hash", "steps_taken", "schedule"):
        if key not in manifest:
            raise CheckpointError(f"manifest '{path}' is missing key '{key}'")
    return manifest


def validate_checkpoint(step_dir) -> Dict[str, Any]:
    """Validate a complete checkpoint set; returns its manifest.

    Detects torn sets (missing rank files), corruption (whole-file
    digest mismatch vs the manifest) and unreadable manifests, raising
    :class:`CheckpointError` naming the offending file.
    """
    step_dir = Path(step_dir)
    manifest = read_manifest(step_dir)
    for entry in manifest["files"]:
        path = step_dir / entry["name"]
        if not path.exists():
            raise CheckpointError(
                f"torn checkpoint '{step_dir}': missing rank file '{entry['name']}'"
            )
        if file_digest(path) != entry["sha256"]:
            raise CheckpointError(
                f"corrupt checkpoint '{step_dir}': digest mismatch for "
                f"'{entry['name']}'"
            )
    return manifest


def latest_checkpoint(ckpt_dir) -> Path:
    """Resolve the newest complete checkpoint step directory."""
    ckpt_dir = Path(ckpt_dir)
    pointer = ckpt_dir / LATEST_NAME
    if pointer.exists():
        name = pointer.read_text().strip()
        step_dir = ckpt_dir / name
        if not step_dir.is_dir():
            raise CheckpointError(
                f"'{pointer}' points to missing checkpoint '{step_dir}'"
            )
        return step_dir
    # no pointer (e.g. hand-assembled directory): newest step_* dir
    candidates = sorted(p for p in ckpt_dir.glob("step_*") if p.is_dir())
    if candidates:
        return candidates[-1]
    if (ckpt_dir / MANIFEST_NAME).exists():
        return ckpt_dir  # a bare step dir was passed directly
    raise CheckpointError(f"no checkpoints found under '{ckpt_dir}'")


def list_checkpoints(ckpt_dir) -> List[Path]:
    """Every ``step_*`` checkpoint directory under ``ckpt_dir``, oldest
    first (the zero-padded names sort chronologically)."""
    ckpt_dir = Path(ckpt_dir)
    return sorted(p for p in ckpt_dir.glob("step_*") if p.is_dir())


def newest_valid_checkpoint(ckpt_dir) -> Path:
    """The newest checkpoint set that passes full digest validation.

    Bit-rot defense for restore: where :func:`latest_checkpoint` trusts
    the ``LATEST`` pointer, this walks epochs newest-to-oldest and
    returns the first one whose manifest and every rank-file digest
    verify — so a rotted newest epoch costs one interval of progress
    instead of the run.  Raises :class:`CheckpointError` (naming each
    rejected epoch) when nothing validates.
    """
    ckpt_dir = Path(ckpt_dir)
    candidates = list_checkpoints(ckpt_dir)
    if not candidates and (ckpt_dir / MANIFEST_NAME).exists():
        candidates = [ckpt_dir]  # a bare step dir was passed directly
    rejected = []
    for step_dir in reversed(candidates):
        try:
            validate_checkpoint(step_dir)
            return step_dir
        except CheckpointError as exc:
            rejected.append(f"{step_dir.name}: {exc}")
    if rejected:
        raise CheckpointError(
            f"no valid checkpoint under '{ckpt_dir}'; rejected "
            + "; ".join(rejected)
        )
    raise CheckpointError(f"no checkpoints found under '{ckpt_dir}'")


def prune_checkpoints(ckpt_dir, keep_last: int) -> List[Path]:
    """Delete all but the newest ``keep_last`` checkpoint epochs.

    Deletion ordering is crash-safe: the epoch the durable ``LATEST``
    pointer names is never deleted (even if ``keep_last`` newer-named
    directories exist — a newer epoch whose pointer flip has not
    committed yet is not yet the restart point), and within an epoch the
    manifest is removed *first*, so a crash mid-delete leaves a set that
    is recognizably torn rather than one that validates against missing
    files.  Call only after the newest manifest (and pointer) are
    durable — the checkpoint writer does.  Returns the deleted paths.
    """
    if keep_last < 1:
        raise ValueError("keep_last must be >= 1")
    ckpt_dir = Path(ckpt_dir)
    epochs = list_checkpoints(ckpt_dir)
    if len(epochs) <= keep_last:
        return []
    pointer = ckpt_dir / LATEST_NAME
    protected = None
    if pointer.exists():
        protected = pointer.read_text().strip()
    doomed = [
        p for p in epochs[:-keep_last] if p.name != protected
    ]
    for step_dir in doomed:
        manifest = step_dir / MANIFEST_NAME
        try:
            manifest.unlink()
        except FileNotFoundError:
            pass
        fsync_directory(step_dir)
        shutil.rmtree(step_dir, ignore_errors=True)
    if doomed:
        fsync_directory(ckpt_dir)
    return doomed


def scrub_checkpoints(ckpt_dir) -> List[Dict[str, Any]]:
    """Re-verify every stored checkpoint epoch's digests on disk.

    For each epoch: the manifest's whole-file sha256 of every rank file
    (:func:`validate_checkpoint`) and every per-array checksum inside
    every rank file (:func:`read_rank_file`) — the full at-rest
    integrity surface.  Returns one report dict per epoch
    (``{"step_dir", "ok", "error"}``), oldest first; bit-rot shows up as
    ``ok=False`` with the offending file named in ``error``.
    """
    ckpt_dir = Path(ckpt_dir)
    epochs = list_checkpoints(ckpt_dir)
    if not epochs and (ckpt_dir / MANIFEST_NAME).exists():
        epochs = [ckpt_dir]
    reports: List[Dict[str, Any]] = []
    for step_dir in epochs:
        try:
            manifest = validate_checkpoint(step_dir)
            for entry in manifest["files"]:
                read_rank_file(step_dir / entry["name"])
            reports.append(
                {"step_dir": step_dir, "ok": True, "error": ""}
            )
        except CheckpointError as exc:
            reports.append(
                {"step_dir": step_dir, "ok": False, "error": str(exc)}
            )
    return reports


def update_latest(ckpt_dir, step_dir_name: str) -> None:
    """Flip the ``LATEST`` pointer to ``step_dir_name``, durably.

    The pointer flip is the commit point of a checkpoint: everything it
    references must survive a crash that happens the instant after.  So
    the step directory is fsynced first (making its rank files' renames
    durable), the pointer itself is written via fsynced temp file +
    atomic rename, and finally the checkpoint directory is fsynced so
    the rename cannot roll back to the previous pointer on power loss.
    """
    ckpt_dir = Path(ckpt_dir)
    fsync_directory(ckpt_dir / step_dir_name)
    atomic_write(
        ckpt_dir / LATEST_NAME,
        lambda fh: fh.write((step_dir_name + "\n").encode()),
        fsync_parent=True,
    )


# -- merged (rank-count independent) load --------------------------------------


def load_distributed_checkpoint(
    step_dir, verify: bool = True, strict: bool = False
) -> Dict[str, Any]:
    """Merge a checkpoint set into global id-ordered particle arrays.

    Returns ``{"pos", "mom", "mass", "ids", "manifest"}`` with arrays
    sorted by global particle id — the rank-count-independent form used
    to resume on a different decomposition (and by analysis tools).
    ``strict`` sweeps the particle state of every rank file for
    non-finite values (see :func:`read_rank_file`).
    """
    step_dir = Path(step_dir)
    manifest = validate_checkpoint(step_dir) if verify else read_manifest(step_dir)
    pos: List[np.ndarray] = []
    mom: List[np.ndarray] = []
    mass: List[np.ndarray] = []
    ids: List[np.ndarray] = []
    for entry in manifest["files"]:
        arrays, _meta = read_rank_file(step_dir / entry["name"], strict=strict)
        pos.append(arrays["pos"])
        mom.append(arrays["mom"])
        mass.append(arrays["mass"])
        ids.append(arrays["ids"])
    all_ids = np.concatenate(ids)
    order = np.argsort(all_ids, kind="stable")
    merged = {
        "pos": np.vstack(pos)[order],
        "mom": np.vstack(mom)[order],
        "mass": np.concatenate(mass)[order],
        "ids": all_ids[order],
        "manifest": manifest,
    }
    if len(merged["ids"]) != manifest["total_particles"]:
        raise CheckpointError(
            f"checkpoint '{step_dir}' holds {len(merged['ids'])} particles, "
            f"manifest says {manifest['total_particles']}"
        )
    return merged
