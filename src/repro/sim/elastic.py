"""Elastic shrink-and-continue simulation loop.

:class:`ElasticRunner` wraps a :class:`repro.sim.parallel.ParallelSimulation`
in the recovery state machine of :mod:`repro.mpi.recovery`:

.. code-block:: text

   detect ──> consensus ──> restore ──> re-decompose ──> validate ──> continue
   (PeerFailure/     (survivor vote:   (buddy copy,      (multisection   (count/mass/
    CommTimeout       dead set + new    else disk         over the        momentum sweep
    from any           epoch)           checkpoint)       survivor set)   gates the run)
    collective)

Detection costs nothing extra: the existing timeout/watchdog machinery
already converts a dead or wedged peer into an exception on every
survivor.  The runner catches it, joins the consensus round, restores
the last buddy boundary (every survivor rolls back; the dead rank's
block is adopted by its ring buddy), rebuilds the simulation over the
shrunk communicator — the sampling multisection decomposition
re-bootstraps at the new rank count on the next step — and re-executes
from the boundary.  Only when a rank *and* its buddy died together does
recovery fall back to the newest complete disk checkpoint.

Elastic jobs should run with a finite ``recv_timeout``: a survivor
blocked on a rank that already entered the consensus round escapes its
dead receive through the timeout and joins the round too.
"""

from __future__ import annotations

import time
from dataclasses import replace as _dc_replace
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro.config import SimulationConfig
from repro.decomp.multisection import divisions_for_ranks
from repro.mpi.faults import (
    CommTimeout,
    PeerFailure,
    apply_scheduled_flips,
    flip_file_bits,
)
from repro.mpi.health import (
    DegradationPolicy,
    HealthEvent,
    HealthMonitor,
    StragglerEvicted,
)
from repro.mpi.recovery import BuddyStore, RecoveryError, RecoveryEvent, shrink_after_failure
from repro.mpi.backend import create_backend
from repro.sim import checkpoint as _ckpt
from repro.sim.checkpoint import CheckpointError, CheckpointSpaceError
from repro.sim.parallel import ParallelSimulation
from repro.validate import check_recovery_totals
from repro.validate.sdc import SdcAuditor, SdcEvent, SdcViolation

__all__ = [
    "ElasticRunner",
    "ElasticRankReport",
    "run_elastic_simulation",
    "config_for_ranks",
]


def config_for_ranks(config: SimulationConfig, n_ranks: int) -> SimulationConfig:
    """Re-target ``config`` at ``n_ranks`` ranks.

    The domain divisions become the most compact factorization of the
    new rank count (boundaries re-bootstrap from the sampling method on
    the next step) and the relay group count is clamped so the root
    group keeps at least one FFT process.  Everything the physics
    depends on is untouched — ``config_hash(include_layout=False)`` is
    invariant, so disk checkpoints stay loadable across the change.
    """
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    kwargs = {
        "domain": _dc_replace(
            config.domain, divisions=divisions_for_ranks(n_ranks)
        )
    }
    if config.relay.n_groups > n_ranks:
        kwargs["relay"] = _dc_replace(config.relay, n_groups=n_ranks)
    return config.with_(**kwargs)


class ElasticRunner:
    """Drives one rank of an elastic (fault-surviving) simulation.

    Parameters
    ----------
    comm:
        World communicator of an ``MPIRuntime(elastic=True)`` job.
    config, pos, mom, mass, stepper, ids:
        As for :class:`ParallelSimulation` (this rank's slice).
    buddy_every:
        Buddy-replication cadence K: the in-memory rollback boundary is
        refreshed every K completed steps.  A failure replays at most K
        steps; each refresh ships one full particle-block copy to the
        ring buddy.
    checkpoint_dir, checkpoint_every:
        Disk checkpointing, as for :meth:`ParallelSimulation.run`.
        When a directory is given, an initial checkpoint is written at
        the starting boundary so the disk-fallback path always has a
        complete set to restore, even for failures before the first
        cadence point.
    consensus_timeout:
        Seconds a survivor waits for the consensus round to seal before
        declaring the job lost.
    max_recoveries:
        Total recoveries (of any mode) after which the runner gives up
        with :class:`RecoveryError` instead of thrashing.
    """

    def __init__(
        self,
        comm,
        config: SimulationConfig,
        pos: np.ndarray,
        mom: np.ndarray,
        mass: np.ndarray,
        stepper=None,
        ids: Optional[np.ndarray] = None,
        buddy_every: int = 1,
        checkpoint_dir=None,
        checkpoint_every: Optional[int] = None,
        consensus_timeout: float = 30.0,
        max_recoveries: int = 8,
    ) -> None:
        if buddy_every < 1:
            raise ValueError("buddy_every must be >= 1")
        if max_recoveries < 1:
            raise ValueError("max_recoveries must be >= 1")
        if checkpoint_every is not None and checkpoint_dir is None:
            raise ValueError("checkpoint_every requires checkpoint_dir")
        self.comm = comm
        self.stepper = stepper
        self.buddy_every = int(buddy_every)
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.consensus_timeout = float(consensus_timeout)
        self.max_recoveries = int(max_recoveries)
        self.sim = ParallelSimulation(
            comm, config, pos, mom, mass, stepper=stepper, ids=ids
        )
        self.buddy = BuddyStore()
        #: completed recoveries, in order (identical shape on every
        #: survivor; per-rank latencies differ)
        self.events: List[RecoveryEvent] = []
        self._recover_attempts = 0
        #: the SDC audit engine (detect -> attribute -> heal); cadence
        #: and policy come from ``config.sdc``
        self.sdc = SdcAuditor(config=config.sdc, world_rank=comm.world_rank)
        self._crc_seen = 0
        self._arm_sdc()
        #: gray-failure layer: straggler verdicts + adaptive deadlines
        #: (``config.health``); verdicts are collective by construction
        self.monitor = HealthMonitor(config.health, world_rank=comm.world_rank)
        #: explicit degraded-mode engine (the "tolerate" response)
        self.degrade = DegradationPolicy(config.health, world_rank=comm.world_rank)
        #: (world_rank, boundary) of a straggler this rank expects to
        #: vanish after a cooperative drain; labels the next recovery
        #: as an eviction rather than a crash
        self._pending_eviction: Optional[tuple] = None
        self._applied_deadline: Optional[float] = None

    # -- pieces ------------------------------------------------------------------

    def _particle_arrays(self):
        s = self.sim
        return {"pos": s.pos, "mom": s.mom, "mass": s.mass, "ids": s.ids}

    def _refresh_buddy(self, boundary: int) -> None:
        self.buddy.refresh(self.comm, self._particle_arrays(), boundary)

    def _health_tick(
        self, step: int, work_seconds: float, wall_seconds: float, n_steps: int
    ) -> None:
        """Collective health round after each completed step: allgather
        this step's *work* time (wall minus time blocked in
        communication), run the (deterministic, identical on every
        rank) straggler verdict, apply adaptive deadlines, and act on a
        confirmed straggler per ``config.health.policy``.

        In ``evict`` mode the confirmed straggler participates in one
        last cooperative drain — a buddy refresh at the just-completed
        boundary — then raises :class:`StragglerEvicted`; survivors
        label the resulting shrink an eviction.  The drain means the
        shrink replays zero steps.
        """
        policy = self.monitor.config.policy
        rows = self.comm.allgather(
            (self.comm.world_rank, float(work_seconds), float(wall_seconds))
        )
        verdict = self.monitor.observe(
            step,
            [(r, work) for r, work, _ in rows],
            deadline_seconds=max(wall for _, _, wall in rows),
        )
        self._apply_deadline(step)
        if verdict is None:
            return
        if policy == "evict" and self.comm.size > 1 and step < n_steps:
            self.monitor.events.append(
                HealthEvent(
                    step=step,
                    rank=verdict,
                    kind="drain",
                    detail="flushing buddy replica before cooperative eviction",
                )
            )
            self._refresh_buddy(step)
            if self.comm.world_rank == verdict:
                self.monitor.events.append(
                    HealthEvent(
                        step=step,
                        rank=verdict,
                        kind="evict",
                        detail="voluntary exit after cooperative drain",
                    )
                )
                raise StragglerEvicted(
                    f"rank {verdict} evicted as a confirmed straggler "
                    f"at step {step} (cooperative drain complete)"
                )
            self._pending_eviction = (verdict, step)
        elif policy == "degrade":
            self.degrade.escalate(
                step,
                verdict,
                f"tolerating confirmed straggler rank {verdict} "
                f"(eviction disabled)",
            )
        # "monitor": verdicts and scores are logged, no action taken

    def _apply_deadline(self, step: int) -> None:
        """Adopt the adaptive collective deadline once it departs
        materially (>25%) from the one in effect — observed step-time
        distribution instead of the fixed ``recv_timeout`` constant."""
        if not self.monitor.config.enabled:
            return
        deadline = self.monitor.deadline.deadline()
        if deadline is None or not hasattr(self.comm, "set_recv_timeout"):
            return
        current = self._applied_deadline
        if current is not None and abs(deadline - current) <= 0.25 * current:
            return
        self.comm.set_recv_timeout(deadline)
        self._applied_deadline = deadline
        self.monitor.events.append(
            HealthEvent(
                step=step,
                rank=self.comm.world_rank,
                kind="deadline_widen",
                detail=(
                    f"collective deadline {deadline:.2f}s from observed "
                    f"step-time distribution"
                ),
                data={"deadline": deadline},
            )
        )

    def _checkpoint_step(
        self, step: int, schedule: dict, inject_rot: bool = True
    ) -> None:
        """Durable checkpoint at ``step``, tolerant of a full disk: on
        a collective :class:`CheckpointSpaceError` the epoch is skipped
        (the ``LATEST`` pointer stays on the last complete set), a
        ``checkpoint_skipped`` :class:`HealthEvent` is recorded, and
        the run continues degraded instead of crashing."""
        try:
            self.sim.checkpoint(
                self.checkpoint_dir,
                schedule={**schedule, "next_step": step},
            )
        except CheckpointSpaceError as exc:
            self.monitor.events.append(
                HealthEvent(
                    step=step,
                    rank=self.comm.world_rank,
                    kind="checkpoint_skipped",
                    detail=str(exc),
                )
            )
            if self.monitor.config.enabled:
                self.degrade.escalate(
                    step, self.comm.world_rank, f"disk pressure: {exc}"
                )
            return
        # retention (config.sdc.keep_last) is applied inside
        # sim.checkpoint, before the rot injection here
        if inject_rot:
            self._inject_rot(step)

    def _arm_sdc(self) -> None:
        """(Re-)enable sweep retention on the current solver when ABFT
        spot-checks are on (a recovery rebuilds the simulation, and
        with it the tree solver)."""
        if self.sdc.enabled and self.sdc.config.spot_check_groups > 0:
            self.sim.tree.retain_last_sweep = True

    def _inject_state_faults(self, step: int) -> None:
        """Apply the fault plan's SDC events keyed on the just-completed
        step: bit flips in the live particle arrays and in the frozen
        buddy-store copies.  Test machinery — a no-op without a plan."""
        plan = getattr(self.comm, "fault_plan", None)
        if plan is None or plan.empty:
            return
        wr = self.comm.world_rank
        apply_scheduled_flips(
            plan, wr, step, self._particle_arrays(), target="live"
        )
        for target, store in (
            ("self_copy", self.buddy._self_copies),
            ("peer_copy", self.buddy._peer_copies),
        ):
            if not store:
                continue
            newest = max(store)
            apply_scheduled_flips(
                plan, wr, step, store[newest].arrays, target=target
            )

    def _inject_rot(self, step: int) -> None:
        """Apply scheduled on-disk bit-rot to the checkpoint epoch this
        rank just wrote at ``step`` (after the manifest recorded the
        clean digests, so validation catches the damage)."""
        plan = getattr(self.comm, "fault_plan", None)
        if plan is None or self.checkpoint_dir is None:
            return
        for ev in plan.rot_events(self.comm.world_rank, step):
            if not plan.fire_once(("rot", ev.rank, ev.step)):
                continue
            path = (
                Path(self.checkpoint_dir)
                / _ckpt.step_dirname(step)
                / _ckpt.rank_filename(self.comm.rank, self.comm.size)
            )
            if path.exists():
                flip_file_bits(
                    path, nbits=ev.nbits, seed=(plan.seed, ev.rank, ev.step)
                )

    def _sweep(self, reference, boundary: int) -> None:
        """Post-recovery validation sweep (collective): the restored
        global totals must match the rollback boundary's reference.
        A violation is raised on every rank — recovery does not count
        as successful until the restored state proves consistent."""
        s = self.sim
        mp = s.mass[:, None] * s.mom if len(s.mass) else np.zeros((0, 3))
        totals = self.comm.allreduce(
            np.array([float(len(s.mass)), float(s.mass.sum()), *mp.sum(axis=0)]),
            op="sum",
        )
        violation = check_recovery_totals(
            int(round(totals[0])),
            float(totals[1]),
            totals[2:5],
            reference,
            step=boundary,
            rank=self.comm.rank,
        )
        if violation is not None:
            raise violation

    def _recover(self, exc: BaseException, failed_step: int) -> int:
        """The shrink-and-continue state machine; returns the step to
        resume from."""
        t0 = time.perf_counter()
        crc = getattr(self.comm, "shm_crc_failures", 0)
        if crc > self._crc_seen:
            # checksum-failed SHM frames were discarded as undelivered;
            # the timeout that brought us here is their symptom
            self.sdc.record(
                SdcEvent(
                    step=failed_step,
                    kind="transport",
                    array="shm_frame",
                    owner_world_rank=self.comm.world_rank,
                    attribution="transport",
                    healed=True,
                    detail=(
                        f"{crc - self._crc_seen} SharedMemory frame(s) "
                        f"failed CRC32 and were dropped"
                    ),
                )
            )
        self._recover_attempts += 1
        if self._recover_attempts > self.max_recoveries:
            raise RecoveryError(
                f"giving up after {self._recover_attempts - 1} recovery "
                f"attempt(s) ({len(self.events)} completed; last failure: "
                f"{type(exc).__name__}: {exc})"
            )
        new_comm, dead, epoch = shrink_after_failure(
            self.comm, timeout=self.consensus_timeout
        )
        # a cooperative drain preceded this shrink: the straggler's exit
        # was planned, its block is current in the buddy store, and the
        # recovery is an eviction rather than a crash response
        trigger = "failure"
        pending = self._pending_eviction
        if pending is not None and pending[0] in dead:
            trigger = "eviction"
            self._pending_eviction = None
        self.comm = new_comm
        self._crc_seen = getattr(self.comm, "shm_crc_failures", 0)
        config = (
            config_for_ranks(self.sim.config, new_comm.size)
            if dead
            else self.sim.config
        )

        feasible, boundary, reason = self.buddy.plan_recovery(new_comm, dead)
        if feasible:
            arrays, adopted = self.buddy.recovered_arrays(dead, boundary)
            self.sim = ParallelSimulation(
                new_comm,
                config,
                arrays["pos"],
                arrays["mom"],
                arrays["mass"],
                stepper=self.stepper,
                ids=arrays["ids"],
            )
            self.sim.steps_taken = boundary
            mode = "buddy" if dead else "rollback"
            detail = (
                f"adopted rank(s) {adopted} from buddy copies" if adopted else ""
            )
            # the sweep validates against the conservation totals frozen
            # at the *chosen* boundary (which may be one refresh behind
            # this rank's newest snapshot after a mid-refresh death)
            reference = self.buddy.reference_at(boundary)
        else:
            # disk fallback: owner and buddy both died (or no consistent
            # in-memory boundary exists)
            if self.checkpoint_dir is None:
                raise RecoveryError(
                    f"in-memory recovery impossible ({reason}) and no "
                    f"checkpoint directory configured"
                )
            try:
                step_dir = _ckpt.newest_valid_checkpoint(self.checkpoint_dir)
            except CheckpointError as ckpt_exc:
                raise RecoveryError(
                    f"in-memory recovery impossible ({reason}) and no "
                    f"valid disk checkpoint found: {ckpt_exc}"
                ) from ckpt_exc
            try:
                pointed = _ckpt.latest_checkpoint(self.checkpoint_dir)
            except CheckpointError:
                pointed = None
            if pointed is not None and Path(pointed) != Path(step_dir):
                # the LATEST epoch failed digest validation: on-disk
                # bit-rot, healed by falling back an interval
                self.sdc.record(
                    SdcEvent(
                        step=failed_step,
                        kind="checkpoint",
                        array=Path(pointed).name,
                        owner_world_rank=self.comm.world_rank,
                        attribution="disk",
                        healed=True,
                        detail=(
                            f"epoch {Path(pointed).name} failed digest "
                            f"validation; restored {Path(step_dir).name}"
                        ),
                    )
                )
            manifest = _ckpt.read_manifest(step_dir)
            self.sim = ParallelSimulation.restore(
                new_comm, config, step_dir, stepper=self.stepper
            )
            boundary = self.sim.steps_taken
            mode = "disk"
            detail = f"restored {step_dir} ({reason})"
            reference = {"count": int(manifest["total_particles"])}

        self._arm_sdc()
        self._sweep(reference, boundary)
        # re-arm replication on the new communicator at the restored
        # boundary, so a follow-up failure rolls back here, not further
        self.buddy = BuddyStore()
        self._refresh_buddy(boundary)
        self.events.append(
            RecoveryEvent(
                epoch=epoch,
                dead_ranks=tuple(dead),
                n_survivors=new_comm.size,
                mode=mode,
                resumed_step=boundary,
                failed_step=failed_step,
                duration=time.perf_counter() - t0,
                detail=detail,
                trigger=trigger,
            )
        )
        if trigger == "eviction":
            self.monitor.events.append(
                HealthEvent(
                    step=boundary,
                    rank=pending[0],
                    kind="evict_shrink",
                    detail=(
                        f"cooperative shrink to {new_comm.size} rank(s) "
                        f"at epoch {epoch}; zero steps replayed"
                        if boundary == failed_step
                        else f"cooperative shrink to {new_comm.size} rank(s) "
                        f"at epoch {epoch}"
                    ),
                    data={"epoch": float(epoch)},
                )
            )
        return boundary

    # -- the loop ----------------------------------------------------------------

    def run(
        self, t_start: float, t_end: float, n_steps: int, first_step: int = 0
    ) -> None:
        """Integrate ``n_steps`` equal steps, surviving rank deaths.

        Failures observed as :class:`PeerFailure` or
        :class:`CommTimeout` trigger the recovery state machine; the
        loop then resumes from the restored boundary.  On a rank killed
        by the fault plan the injected :class:`RankDeath` propagates to
        the elastic runtime, which marks the rank dead.
        """
        edges = np.linspace(t_start, t_end, n_steps + 1)
        schedule = {
            "t_start": float(t_start),
            "t_end": float(t_end),
            "n_steps": int(n_steps),
        }
        i = int(first_step)
        # On backends with real processes ranks are not in lockstep: a
        # peer's death can surface while this rank is still inside the
        # initial checkpoint / replication exchanges, so initialization
        # runs under the same recovery handler as the step loop (a
        # recovery re-arms replication itself).
        initialized = False
        while True:
            try:
                if not initialized:
                    if self.checkpoint_dir is not None:
                        self._checkpoint_step(i, schedule, inject_rot=False)
                    self._refresh_buddy(i)
                    if self.sdc.enabled and self.sdc._reference_fp is None:
                        self.sdc.set_reference(
                            self.comm, self.sim.ids, self.sim.mass
                        )
                    initialized = True
                if i >= n_steps:
                    return
                t_step = time.perf_counter()
                wait0 = getattr(self.comm, "wait_seconds", 0.0)
                self.comm.fault_point(i)
                self.sim.step(float(edges[i]), float(edges[i + 1]))
                wall_seconds = time.perf_counter() - t_step
                # in lock-step collectives every rank's wall time equals
                # the straggler's; only work = wall - blocked-in-comm
                # identifies *which* rank is slow
                wait_seconds = getattr(self.comm, "wait_seconds", 0.0) - wait0
                work_seconds = max(wall_seconds - wait_seconds, 1e-9)
                i += 1
                self._inject_state_faults(i)
                if self.monitor.config.enabled:
                    self._health_tick(i, work_seconds, wall_seconds, n_steps)
                # degraded mode stretches the audit/checkpoint cadence
                # within the declared audit_stretch_max bound
                stretch = self.degrade.audit_stretch
                audit_due = self.sdc.due(i - first_step) and (
                    (i - first_step) % stretch == 0
                )
                refresh_due = (
                    (i - first_step) % self.buddy_every == 0 and i < n_steps
                )
                # the fingerprint guards every replication boundary (not
                # just audit steps): a boundary whose conserved arrays
                # don't fingerprint-clean must never be frozen, or a
                # later rollback would "restore" corrupted state
                if audit_due or (refresh_due and self.sdc.enabled):
                    found = []
                    ev = self.sdc.fingerprint_audit(
                        self.comm, self.sim.ids, self.sim.mass, step=i
                    )
                    if ev is not None:
                        found.append(ev)
                    if audit_due:
                        ev = self.sdc.spot_check(self.sim.tree, step=i)
                        if ev is not None:
                            found.append(ev)
                    self.sdc.apply_policy(self.comm, found)
                if self.checkpoint_every and (
                    (i - first_step) % (self.checkpoint_every * stretch) == 0
                    or i == n_steps
                ):
                    self._checkpoint_step(i, schedule)
                if refresh_due:
                    self._refresh_buddy(i)
                if audit_due and i < n_steps and not self.degrade.skip_derived:
                    # the snapshot audit is the non-essential derived
                    # output the degraded mode sheds; the fingerprint
                    # audit above stays on
                    found = self.sdc.snapshot_audit(self.comm, self.buddy, step=i)
                    self.sdc.apply_policy(self.comm, found)
            except (PeerFailure, CommTimeout, SdcViolation) as exc:
                if (
                    isinstance(exc, SdcViolation)
                    and self.sdc.config.policy == "abort"
                ):
                    raise
                # a further failure *during* recovery (another rank died
                # mid-consensus or mid-restore) starts another round;
                # max_recoveries bounds the cascade
                first = exc
                while True:
                    try:
                        i = self._recover(exc, failed_step=i)
                        initialized = True
                        if isinstance(first, SdcViolation):
                            # the rollback restored (and re-verified)
                            # state from before the corruption
                            self.sdc.mark_rolled_back(first.events, i)
                        break
                    except (PeerFailure, CommTimeout) as again:
                        exc = again

    def gather_state(self):
        return self.sim.gather_state()

    def report(self) -> "ElasticRankReport":
        """Picklable per-rank summary (what a multiprocess rank returns
        instead of the live — unpicklable — runner object)."""
        return ElasticRankReport(
            world_rank=self.comm.world_rank,
            final_rank=self.comm.rank,
            final_size=self.comm.size,
            epoch=self.comm.epoch,
            events=list(self.events),
            steps_taken=int(self.sim.steps_taken),
            timing=self.sim.timing.as_dict(),
            sdc_events=[ev.summary() for ev in self.sdc.events],
            health_events=self.health_events(),
            degraded_level=self.degrade.level,
        )

    def health_events(self) -> List[dict]:
        """The merged health log, in step order: monitor verdicts and
        degradation transitions as :meth:`HealthEvent.as_dict` rows."""
        merged = self.monitor.events + self.degrade.events
        return [ev.as_dict() for ev in sorted(merged, key=lambda e: e.step)]


class ElasticRankReport:
    """Per-rank elastic-run summary that crosses process boundaries.

    Carries what callers consume from a surviving
    :class:`ElasticRunner`: the recovery ``events``
    (:class:`repro.mpi.recovery.RecoveryEvent` instances), the final
    shrunk-communicator identity, and the per-phase timings.
    """

    def __init__(
        self,
        world_rank: int,
        final_rank: int,
        final_size: int,
        epoch: int,
        events: List[RecoveryEvent],
        steps_taken: int,
        timing,
        sdc_events: Optional[List[dict]] = None,
        health_events: Optional[List[dict]] = None,
        degraded_level: int = 0,
    ) -> None:
        self.world_rank = world_rank
        self.final_rank = final_rank
        self.final_size = final_size
        self.epoch = epoch
        self.events = events
        self.steps_taken = steps_taken
        self.timing = timing
        #: :meth:`repro.validate.sdc.SdcEvent.summary` dicts, in
        #: detection order
        self.sdc_events = list(sdc_events or [])
        #: :meth:`repro.mpi.health.HealthEvent.as_dict` rows, in step
        #: order (straggler verdicts, drains, degradation transitions)
        self.health_events = list(health_events or [])
        #: final degradation level (0 = never degraded)
        self.degraded_level = int(degraded_level)

    def table1_rows(self):
        return dict(self.timing)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ElasticRankReport(world={self.world_rank}, "
            f"final={self.final_rank}/{self.final_size}, "
            f"epoch={self.epoch}, recoveries={len(self.events)})"
        )


def run_elastic_simulation(
    config: SimulationConfig,
    pos: np.ndarray,
    mom: np.ndarray,
    mass: np.ndarray,
    t_start: float,
    t_end: float,
    n_steps: int,
    stepper=None,
    torus_shape=None,
    fault_plan=None,
    buddy_every: int = 1,
    checkpoint_every: Optional[int] = None,
    checkpoint_dir=None,
    recv_timeout: float = 5.0,
    consensus_timeout: float = 30.0,
    watchdog_timeout: Optional[float] = None,
    retry_budget: int = 16,
    max_recoveries: int = 8,
    backend="thread",
):
    """Driver: like :func:`repro.sim.parallel.run_parallel_simulation`
    but on an elastic runtime that survives rank deaths.

    Returns ``(pos, mom, mass, runners, runtime)``.  ``runners`` holds
    the surviving ranks' :class:`ElasticRunner` objects (recovery
    events, timings); dead ranks contribute ``None``.  The gathered
    state comes from the shrunk communicator's root — the lowest
    surviving world rank.  ``recv_timeout`` must be finite: it is the
    detector that frees survivors blocked on a failed peer.

    ``backend`` selects the communicator backend (``"thread"`` or
    ``"multiprocess"``; both are elastic-capable — on the multiprocess
    backend the same fault plan kills *real* OS processes and this
    recovery path restores the survivors).  Out-of-process ranks
    return a picklable :class:`ElasticRankReport` in ``runners``
    instead of the live runner object.
    """
    if recv_timeout is None or recv_timeout <= 0:
        raise ValueError("elastic runs need a finite recv_timeout")
    n_ranks = config.domain.n_domains
    runtime = create_backend(
        backend,
        n_ranks,
        torus_shape=torus_shape,
        fault_plan=fault_plan,
        recv_timeout=recv_timeout,
        watchdog_timeout=watchdog_timeout,
        elastic=True,
        retry_budget=retry_budget,
    )
    in_process = runtime.name == "thread"

    def spmd(comm):
        n = len(pos)
        lo = n * comm.rank // comm.size
        hi = n * (comm.rank + 1) // comm.size
        runner = ElasticRunner(
            comm,
            config,
            pos[lo:hi],
            mom[lo:hi],
            mass[lo:hi],
            stepper=stepper,
            buddy_every=buddy_every,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            consensus_timeout=consensus_timeout,
            max_recoveries=max_recoveries,
        )
        runner.run(t_start, t_end, n_steps)
        return (runner if in_process else runner.report()), runner.gather_state()

    results = runtime.run(spmd)
    runners = [None if r is None else r[0] for r in results]
    state = next(
        r[1] for r in results if r is not None and r[1] is not None
    )
    return state[0], state[1], state[2], runners, runtime
