"""Single-process TreePM simulation (the examples' workhorse).

Runs the paper's step cycle — one PM force per step, ``pp_subcycles``
short-range KDK cycles inside it — against the serial
:class:`repro.treepm.TreePMSolver`.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.config import SimulationConfig
from repro.integrate.leapfrog import TwoLevelKDK
from repro.integrate.stepper import StaticStepper
from repro.treepm.solver import TreePMSolver
from repro.utils.timer import TimingLedger
from repro.validate import (
    EnergyDriftMonitor,
    LayzerIrvineMonitor,
    MomentumDriftMonitor,
    Validator,
    check_finite,
    check_mesh_mass,
    check_octree,
    first_violation,
)

__all__ = ["SerialSimulation"]


class SerialSimulation:
    """Serial TreePM time integration.

    Parameters
    ----------
    config:
        Simulation configuration (TreePM parameters, subcycles).
    pos, mom, mass:
        Initial particle state.  ``mom`` is the canonical momentum
        (velocity for static runs, ``a^2 dx/dt`` for cosmological).
    stepper:
        Kick/drift coefficient provider; default static Newtonian.
    """

    def __init__(
        self,
        config: SimulationConfig,
        pos: np.ndarray,
        mom: np.ndarray,
        mass: np.ndarray,
        stepper=None,
    ) -> None:
        self.config = config
        self.pos = np.array(pos, dtype=np.float64)
        self.mom = np.array(mom, dtype=np.float64)
        self.mass = np.array(mass, dtype=np.float64)
        if not (len(self.pos) == len(self.mom) == len(self.mass)):
            raise ValueError("pos/mom/mass length mismatch")
        self.stepper = stepper if stepper is not None else StaticStepper()
        self.solver = TreePMSolver(config.treepm)
        self.timing = TimingLedger()
        self.last_stats = None
        self._kdk = TwoLevelKDK(
            pm_force=self._pm_force,
            pp_force=self._pp_force,
            stepper=self.stepper,
            n_sub=config.pp_subcycles,
            ledger=self.timing,
        )
        self.steps_taken = 0
        self._last_time = 0.0
        self.validator = Validator(
            config.validation, dump_fn=self._diagnostic_dump
        )
        if self.validator.enabled:
            self.solver.validator = self.validator
            # comoving energy drifts under a perfect integrator, so
            # cosmological runs are judged by the Layzer-Irvine equation
            self.energy_monitor = (
                LayzerIrvineMonitor(config.validation.energy_tol)
                if self.stepper.cosmological
                else EnergyDriftMonitor(config.validation.energy_tol)
            )
            self._mom_monitor = MomentumDriftMonitor(
                config.validation.momentum_tol
            )
        else:
            self.energy_monitor = None
            self._mom_monitor = None

    def _diagnostic_dump(self, violation) -> str:
        """``dump``-policy hook: checkpoint the current state with the
        violation in the header; returns the written path."""
        from pathlib import Path

        dump_dir = Path(self.config.validation.dump_dir or "diagnostics")
        dump_dir.mkdir(parents=True, exist_ok=True)
        path = dump_dir / f"violation_step_{self.steps_taken:05d}.npz"
        self.save_checkpoint(
            path, self._last_time, extra={"violation": violation.summary()}
        )
        return str(path)

    def _pm_force(self, pos: np.ndarray) -> np.ndarray:
        v = self.validator
        rho = None
        with self.timing.phase("PM/density assignment"):
            rho = self.solver.pm.density_mesh(pos, self.mass)
        if v.check_enabled("mass_conservation"):
            cell_vol = (self.solver.box / self.solver.pm.n) ** 3
            v.handle(
                check_mesh_mass(
                    float(rho.sum() * cell_vol),
                    float(self.mass.sum()),
                    stage="mesh/assignment",
                    step=v.step,
                )
            )
        with self.timing.phase("PM/FFT"):
            phi = self.solver.pm.potential_mesh(rho)
        with self.timing.phase("PM/acceleration on mesh"):
            amesh = self.solver.pm.acceleration_mesh(phi)
        with self.timing.phase("PM/force interpolation"):
            acc = self.solver.pm.interpolate(amesh, pos)
        if v.check_enabled("finite_fields"):
            v.handle(
                check_finite("pm_acc", acc, stage="treepm/pm", step=v.step)
            )
        return acc

    def _pp_force(self, pos: np.ndarray) -> np.ndarray:
        v = self.validator
        with self.timing.phase("PP/tree construction"):
            tree = self.solver.tree.build(pos, self.mass)
        if v.check_enabled("octree_moments"):
            v.handle(check_octree(tree, step=v.step))
        acc, stats = self.solver.tree.forces(
            pos, self.mass, tree=tree, ledger=self.timing
        )
        self.last_stats = stats
        if v.check_enabled("finite_fields"):
            v.handle(
                check_finite("pp_acc", acc, stage="treepm/pp", step=v.step)
            )
        return acc

    def step(self, t1: float, t2: float) -> None:
        """Advance one full PM step."""
        self.validator.begin_step(self.steps_taken)
        self._last_time = t1
        with self.timing.phase("Domain Decomposition/position update"):
            pass  # serial run: bookkeeping row kept for report parity
        self.pos, self.mom = self._kdk.step(self.pos, self.mom, t1, t2)
        self.steps_taken += 1
        self._last_time = t2
        self._post_step_monitors(t2)

    def _post_step_monitors(self, t: float) -> None:
        """Momentum/energy drift monitors after a completed step.

        The energy monitor costs an O(N^2) potential evaluation, so it
        runs only every ``validation.energy_interval`` steps (0 = off);
        the momentum monitor is O(N) and follows the ordinary sampling
        interval.
        """
        v = self.validator
        if self._mom_monitor is not None and v.check_enabled("momentum_drift"):
            mp = self.mass[:, None] * self.mom
            v.handle(
                self._mom_monitor.update(
                    mp.sum(axis=0),
                    float(np.abs(mp).sum()),
                    step=self.steps_taken,
                )
            )
        every = self.config.validation.energy_interval
        if (
            self.energy_monitor is not None
            and every > 0
            and self.steps_taken % every == 0
            and v.policy_for("energy_drift") != "off"
        ):
            if self.stepper.cosmological:
                v.handle(
                    self.energy_monitor.update(
                        t,
                        self.kinetic_energy(t),
                        self.potential_energy(),
                        step=self.steps_taken,
                    )
                )
            else:
                v.handle(
                    self.energy_monitor.update(
                        self.total_energy(), step=self.steps_taken
                    )
                )

    def run(
        self,
        t_start: float,
        t_end: float,
        n_steps: int,
        on_step: Optional[Callable[["SerialSimulation", float], None]] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_path=None,
        first_step: int = 0,
    ) -> None:
        """Integrate from ``t_start`` to ``t_end`` in ``n_steps`` equal
        steps (equal in the stepper's independent variable: time for
        static runs, scale factor for cosmological ones).

        ``checkpoint_every`` writes an atomic rolling checkpoint to
        ``checkpoint_path`` every that many completed steps (and after
        the last).  ``first_step`` skips already-completed steps of the
        same schedule, as stored by :meth:`save_checkpoint` — the edges
        are recomputed from the full schedule, so a resumed trajectory
        is bit-for-bit the uninterrupted one.
        """
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ValueError("checkpoint_every must be >= 1")
            if checkpoint_path is None:
                raise ValueError("checkpoint_every requires checkpoint_path")
        edges = np.linspace(t_start, t_end, n_steps + 1)
        for i in range(int(first_step), n_steps):
            t1, t2 = float(edges[i]), float(edges[i + 1])
            self.step(t1, t2)
            if on_step is not None:
                on_step(self, t2)
            if checkpoint_every and (
                (i + 1) % checkpoint_every == 0 or i + 1 == n_steps
            ):
                self.save_checkpoint(checkpoint_path, t2)

    # -- checkpoint / restore ---------------------------------------------------

    def save_checkpoint(self, path, time: float, extra: Optional[dict] = None) -> None:
        """Write an atomic, checksummed checkpoint of the current state
        (a snapshot whose header records the step count and a config
        hash, so :meth:`from_checkpoint` can refuse mismatched runs)."""
        from repro.sim.io import SnapshotHeader, save_snapshot

        merged = {"config_hash": self.config.config_hash()}
        if extra:
            merged.update(extra)
        save_snapshot(
            path,
            self.pos,
            self.mom,
            self.mass,
            SnapshotHeader(
                time=float(time),
                n_particles=len(self.pos),
                cosmological=bool(self.stepper.cosmological),
                step=self.steps_taken,
                extra=merged,
            ),
        )

    @classmethod
    def from_checkpoint(cls, config: SimulationConfig, path, stepper=None):
        """Rebuild a simulation from :meth:`save_checkpoint` output.

        Returns ``(sim, header)``; raises ``ValueError`` when the
        checkpoint was written by a different configuration.
        """
        from repro.sim.io import load_snapshot

        pos, mom, mass, header = load_snapshot(
            path, strict=config.validation.strict_load
        )
        stored = header.extra.get("config_hash")
        if stored is not None and stored != config.config_hash():
            raise ValueError(
                f"checkpoint '{path}' was written by a different "
                f"configuration (hash {stored[:12]}...)"
            )
        sim = cls(config, pos, mom, mass, stepper=stepper)
        sim.steps_taken = int(header.step)
        return sim, header

    def run_adaptive(
        self,
        t_start: float,
        t_end: float,
        controller,
        max_steps: int = 10000,
        on_step: Optional[Callable[["SerialSimulation", float], None]] = None,
    ) -> int:
        """Integrate with adaptive steps from a
        :class:`repro.integrate.timestep.StepController`.

        The controller sizes each step from the current accelerations
        (the multiple-stepsize criterion); returns the number of steps
        taken.
        """
        t = t_start
        steps = 0
        while t < t_end:
            acc = self.solver.forces(self.pos, self.mass).total
            t_next = controller.next_step(t, acc, t_end)
            if not t_next > t:
                raise RuntimeError("step controller failed to advance")
            self.step(t, t_next)
            t = t_next
            steps += 1
            if on_step is not None:
                on_step(self, t)
            if steps >= max_steps:
                raise RuntimeError(f"exceeded max_steps={max_steps}")
        return steps

    def kinetic_energy(self, a: float = 1.0) -> float:
        """Kinetic energy; for cosmological runs pass the current a
        (peculiar velocity is p / a)."""
        # peculiar velocity: v = a dx/dt = p / a for cosmological runs
        v = self.mom / a if self.stepper.cosmological else self.mom
        return float(0.5 * np.sum(self.mass * np.einsum("ij,ij->i", v, v)))

    def potential_energy(self) -> float:
        """Total TreePM potential energy (O(N^2) diagnostic)."""
        phi = self.solver.potential(self.pos, self.mass)
        return float(0.5 * np.sum(self.mass * phi))

    def total_energy(self, a: float = 1.0) -> float:
        return self.kinetic_energy(a) + self.potential_energy()
