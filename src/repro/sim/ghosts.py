"""Ghost-particle exchange for the distributed short-range solver.

The PP force is compactly supported (zero beyond ``rcut``), so each
rank only needs copies of remote particles within ``rcut`` of its
domain — the "local tree" / "communication" rows of Table I.  Every
rank selects, for each destination, its particles within ``rcut`` of
that destination's rectangular domain (periodic metric) and ships them
with one all-to-all.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.decomp.multisection import MultisectionDecomposition

__all__ = ["distance_to_domain", "exchange_ghosts"]


def distance_to_domain(
    pos: np.ndarray, lo: np.ndarray, hi: np.ndarray, box: float = 1.0
) -> np.ndarray:
    """Periodic Euclidean distance from points to an axis-aligned box.

    Zero for points inside the domain (or inside any periodic image of
    it).
    """
    pos = np.asarray(pos, dtype=np.float64)
    gaps = np.empty_like(pos)
    for d in range(3):
        best = np.full(len(pos), np.inf)
        for shift in (-box, 0.0, box):
            x = pos[:, d] + shift
            g = np.maximum(lo[d] - x, x - hi[d])
            best = np.minimum(best, np.maximum(g, 0.0))
        gaps[:, d] = best
    return np.sqrt(np.einsum("ij,ij->i", gaps, gaps))


def exchange_ghosts(
    comm,
    decomp: MultisectionDecomposition,
    pos: np.ndarray,
    mass: np.ndarray,
    rcut: float,
    box: float = 1.0,
    ledger=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Collect remote particles within ``rcut`` of this rank's domain.

    Returns ``(ghost_pos, ghost_mass)``.  Own particles are never
    included (the local set already has them).  With a ledger, the
    selection work is recorded as "PP/local tree" and the exchange as
    "PP/communication" (Table I naming).
    """
    import time as _time

    if rcut <= 0:
        raise ValueError("rcut must be positive")
    pos = np.asarray(pos, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    t0 = _time.perf_counter()
    sends = []
    for dst in range(comm.size):
        if dst == comm.rank:
            sends.append((np.zeros((0, 3)), np.zeros(0)))
            continue
        lo, hi = decomp.domain_bounds(dst)
        sel = distance_to_domain(pos, lo, hi, box) <= rcut
        sends.append((pos[sel], mass[sel]))
    t1 = _time.perf_counter()
    received = comm.alltoall(sends)
    t2 = _time.perf_counter()
    if ledger is not None:
        ledger.add("PP/local tree", t1 - t0)
        ledger.add("PP/communication", t2 - t1)
    ghost_pos = np.vstack([p for p, _ in received])
    ghost_mass = np.concatenate([m for _, m in received])
    return ghost_pos, ghost_mass
