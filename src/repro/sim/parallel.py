"""The distributed GreeM-style simulation driver (SPMD).

One :class:`ParallelSimulation` instance runs on each rank and executes
the paper's full per-step pipeline:

* **Domain decomposition** — position update bookkeeping, the sampling
  method (cost-proportional rates, boundary smoothing), particle
  exchange;
* **PP** — ghost ("local tree") selection and exchange, local tree
  construction, Barnes-modified traversal, the PP force kernel;
* **PM** — local density assignment, the (relay) mesh conversion,
  slab FFT, back conversion, finite differences, interpolation;

with the step structure "a cycle of the PM and ``pp_subcycles`` cycles
of the PP and the domain decomposition", and a timing ledger whose rows
are exactly Table I's.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

from repro.config import SimulationConfig
from repro.decomp.exchange import exchange_particles
from repro.decomp.multisection import MultisectionDecomposition
from repro.decomp.sampling import SamplingDecomposer
from repro.forces.cutoff import get_split
from repro.integrate.stepper import StaticStepper
from repro.meshcomm.parallel_pm import ParallelPM
from repro.mpi.backend import create_backend
from repro.native import update as _native_update
from repro.pp.kernel import InteractionCounter
from repro.sim import checkpoint as _ckpt
from repro.sim.checkpoint import CheckpointError, CheckpointSpaceError
from repro.sim.ghosts import exchange_ghosts
from repro.tree.traversal import TreeSolver
from repro.utils.periodic import wrap_positions
from repro.utils.timer import TimingLedger
from repro.validate import (
    MomentumDriftMonitor,
    Validator,
    check_domain_containment,
    check_domain_partition,
    check_finite,
    check_momentum,
    check_octree,
    first_violation,
)

__all__ = [
    "ParallelSimulation",
    "run_parallel_simulation",
    "resume_parallel_simulation",
]


@dataclass
class StepStatistics:
    """Per-rank accumulated statistics over the run.

    Streams the per-evaluation :class:`InteractionCounter` sums instead
    of keeping per-step lists, so memory stays constant over a long run;
    the resulting ``<Ni>``/``<Nj>`` are the per-kernel-call means over
    all evaluations (each call weighted equally).
    """

    counter: InteractionCounter = field(default_factory=InteractionCounter)

    @property
    def interactions(self) -> int:
        return self.counter.interactions

    @property
    def mean_group_size(self) -> float:
        return self.counter.mean_group_size

    @property
    def mean_list_length(self) -> float:
        return self.counter.mean_list_length


class ParallelSimulation:
    """Per-rank simulation state and step logic.

    Parameters
    ----------
    comm:
        World communicator.
    config:
        Simulation configuration; ``config.domain.divisions`` must
        multiply to ``comm.size``.
    pos, mom, mass:
        This rank's initial particles (any spatial distribution: the
        first decomposition update redistributes them).
    stepper:
        Kick/drift coefficients (static or cosmological).
    """

    def __init__(
        self,
        comm,
        config: SimulationConfig,
        pos: np.ndarray,
        mom: np.ndarray,
        mass: np.ndarray,
        stepper=None,
        ids: Optional[np.ndarray] = None,
    ) -> None:
        if config.domain.n_domains != comm.size:
            raise ValueError(
                f"domain divisions {config.domain.divisions} do not match "
                f"{comm.size} ranks"
            )
        self.comm = comm
        self.config = config
        self.stepper = stepper if stepper is not None else StaticStepper()
        self.pos = np.array(pos, dtype=np.float64)
        self.mom = np.array(mom, dtype=np.float64)
        self.mass = np.array(mass, dtype=np.float64)
        if ids is None:
            # globally unique default ids: offset by a rank-exclusive scan
            starts = np.concatenate([[0], np.cumsum(comm.allgather(len(self.pos)))])
            ids = np.arange(starts[comm.rank], starts[comm.rank] + len(self.pos))
        self.ids = np.array(ids, dtype=np.int64)

        tp = config.treepm
        self.split = get_split(tp.split, tp.rcut)
        self.tree = TreeSolver(
            box=1.0,
            theta=tp.tree.opening_angle,
            leaf_size=tp.tree.leaf_size,
            group_size=tp.tree.group_size,
            split=self.split,
            eps=tp.softening,
            G=1.0,
            periodic=True,
            use_quadrupole=tp.tree.use_quadrupole,
            use_plan=tp.tree.use_plan,
            plan_float32=tp.tree.plan_float32,
        )
        if tp.pm.fft_backend == "pencil":
            from repro.meshcomm.parallel_pencil_pm import ParallelPencilPM

            self.pm = ParallelPencilPM(
                comm,
                tp.pm.mesh_size,
                split=self.split,
                assignment=tp.pm.assignment,
                deconvolve=2 if tp.pm.deconvolve else 0,
                differencing=tp.pm.differencing,
            )
        else:
            self.pm = ParallelPM(
                comm,
                tp.pm.mesh_size,
                split=self.split,
                # the FFT processes must fit inside the relay root group
                n_fft=min(comm.size // config.relay.n_groups, tp.pm.mesh_size),
                n_groups=config.relay.n_groups,
                assignment=tp.pm.assignment,
                deconvolve=2 if tp.pm.deconvolve else 0,
                differencing=tp.pm.differencing,
            )
        self.decomposer = SamplingDecomposer(
            config.domain.divisions,
            sample_rate=config.domain.sample_rate,
            window=config.domain.smoothing_window,
            cost_balance=config.domain.cost_balance,
            seed=config.seed,
        )
        self.decomp: MultisectionDecomposition = MultisectionDecomposition.uniform(
            config.domain.divisions
        )
        self.timing = TimingLedger()
        self.stats = StepStatistics()
        self.steps_taken = 0
        self._pp_cost = 1.0e-6  # last measured PP seconds (for sampling)
        self._pm_acc: Optional[np.ndarray] = None
        self._pp_acc: Optional[np.ndarray] = None
        self.validator = Validator(
            config.validation, rank=comm.rank, dump_fn=self._diagnostic_dump
        )
        self._mom_monitor = (
            MomentumDriftMonitor(config.validation.momentum_tol)
            if self.validator.enabled
            else None
        )

    # -- validation hooks --------------------------------------------------------

    def _diagnostic_dump(self, violation) -> str:
        """``dump``-policy hook: write a distributed diagnostic
        checkpoint (collective — the Validator invokes it on every rank)
        recording the violation in the manifest, and return its path."""
        dump_dir = self.config.validation.dump_dir or "diagnostics"
        step_dir = self.checkpoint(dump_dir, extra={"violation": violation.summary()})
        return str(step_dir)

    def _momentum_totals(self) -> np.ndarray:
        """Local ``[sum(m p), sum(m |p|)]`` as one 4-vector (one
        allreduce summand for conservation and drift checks)."""
        mp = self.mass[:, None] * self.mom
        return np.concatenate([mp.sum(axis=0), [np.abs(mp).sum()]])

    # -- pipeline pieces ---------------------------------------------------------

    def _domain_update(self) -> None:
        """Sampling method + particle exchange (carrying the PP force)."""
        v = self.validator
        check_mom = v.check_enabled("momentum_conservation")
        before = self._momentum_totals() if check_mom else None
        with self.timing.phase("Domain Decomposition/sampling method"):
            self.decomp = self.decomposer.update(self.comm, self.pos, self._pp_cost)
        if v.check_enabled("domain_partition"):
            v.handle(
                check_domain_partition(
                    self.decomp, step=v.step, rank=self.comm.rank
                )
            )
        with self.timing.phase("Domain Decomposition/particle exchange"):
            payload = {
                "pos": self.pos,
                "mom": self.mom,
                "mass": self.mass,
                "ids": self.ids,
            }
            if self._pp_acc is not None:
                payload["pp_acc"] = self._pp_acc
            out = exchange_particles(
                self.comm, self.decomp, payload, step=self.steps_taken
            )
        self.pos = out["pos"]
        self.mom = out["mom"]
        self.mass = out["mass"]
        self.ids = out["ids"]
        self._pp_acc = out.get("pp_acc")
        if check_mom:
            # one allreduce carries before+after; the broadcast result is
            # bit-identical everywhere, so every rank reaches the same
            # verdict and the serial handle path is collective-safe
            totals = self.comm.allreduce(
                np.concatenate([before, self._momentum_totals()]), op="sum"
            )
            v.handle(
                check_momentum(
                    totals[0:3],
                    totals[4:7],
                    stage="decomp/exchange",
                    scale=max(float(totals[3]), 1.0e-300),
                    step=v.step,
                    rank=self.comm.rank,
                )
            )
        if v.check_enabled("domain_containment"):
            v.handle_collective(
                self.comm,
                check_domain_containment(
                    self.pos, self.decomp, self.comm.rank, step=v.step
                ),
            )
        if v.check_enabled("finite_fields"):
            v.handle_collective(
                self.comm,
                first_violation(
                    check_finite(
                        "pos", self.pos, stage="decomp/exchange",
                        step=v.step, rank=self.comm.rank,
                    ),
                    check_finite(
                        "mom", self.mom, stage="decomp/exchange",
                        step=v.step, rank=self.comm.rank,
                    ),
                    check_finite(
                        "mass", self.mass, stage="decomp/exchange",
                        step=v.step, rank=self.comm.rank,
                    ),
                ),
            )

    def _pp_force(self) -> np.ndarray:
        """Ghost exchange + local tree + kernel; updates ``_pp_cost``."""
        import time as _time

        t_start = _time.perf_counter()
        self.comm.traffic_phase("pp:ghosts")
        gpos, gmass = exchange_ghosts(
            self.comm,
            self.decomp,
            self.pos,
            self.mass,
            rcut=self.split.cutoff_radius,
            ledger=self.timing,
        )
        all_pos = np.vstack([self.pos, gpos])
        all_mass = np.concatenate([self.mass, gmass])
        mask = np.zeros(len(all_pos), dtype=bool)
        mask[: len(self.pos)] = True
        v = self.validator
        tree = None
        if len(all_pos) == 0:
            self._pp_cost = 1.0e-6
            acc_local = np.zeros((0, 3))
        else:
            with self.timing.phase("PP/tree construction"):
                tree = self.tree.build(all_pos, all_mass)
            acc, stats = self.tree.forces(
                all_pos, all_mass, tree=tree, targets_mask=mask, ledger=self.timing
            )
            self.stats.counter.merge(stats.counter)
            self._pp_cost = max(_time.perf_counter() - t_start, 1.0e-9)
            acc_local = acc[: len(self.pos)]
        # collective verdicts even when this rank is empty — every rank
        # must enter the same allgathers or the job deadlocks
        if v.check_enabled("finite_fields"):
            v.handle_collective(
                self.comm,
                first_violation(
                    check_finite(
                        "ghost_pos", gpos, stage="pp/ghosts",
                        step=v.step, rank=self.comm.rank,
                    ),
                    check_finite(
                        "ghost_mass", gmass, stage="pp/ghosts",
                        step=v.step, rank=self.comm.rank,
                    ),
                    check_finite(
                        "pp_acc", acc_local, stage="treepm/pp",
                        step=v.step, rank=self.comm.rank,
                    ),
                ),
            )
        if v.check_enabled("octree_moments"):
            v.handle_collective(
                self.comm,
                check_octree(tree, step=v.step, rank=self.comm.rank)
                if tree is not None
                else None,
            )
        return acc_local

    def _pm_force(self) -> np.ndarray:
        lo, hi = self.decomp.domain_bounds(self.comm.rank)
        return self.pm.forces(
            self.pos, self.mass, lo, hi, timing=self.timing,
            validator=self.validator if self.validator.enabled else None,
        )

    # -- the step -------------------------------------------------------------------

    def initialize_forces(self) -> None:
        """Bootstrap: first decomposition, PP and PM forces."""
        self._domain_update()
        self._pp_acc = self._pp_force()
        self._pm_acc = self._pm_force()

    def _kick(self, acc: np.ndarray, coeff: float) -> None:
        """``self.mom += acc * coeff`` through the native update kernel
        when available (bitwise-identical numpy arithmetic otherwise)."""
        if not _native_update.kick(self.mom, acc, coeff):
            self.mom += acc * coeff

    def _drift(self, coeff: float) -> None:
        """``self.pos = wrap_positions(self.pos + self.mom * coeff)``."""
        pos = np.array(self.pos, dtype=np.float64)
        if _native_update.drift_wrap(pos, self.mom, coeff, 1.0):
            self.pos = pos
        else:
            self.pos = wrap_positions(self.pos + self.mom * coeff)

    def step(self, t1: float, t2: float) -> None:
        """One full step: 1 PM cycle + ``pp_subcycles`` PP/DD cycles."""
        self.validator.begin_step(self.steps_taken)
        if self._pm_acc is None:
            self.initialize_forces()
        st = self.stepper
        tm = 0.5 * (t1 + t2)
        n_sub = self.config.pp_subcycles

        self._kick(self._pm_acc, st.kick_coeff(t1, tm))

        edges = np.linspace(t1, t2, n_sub + 1)
        for s in range(n_sub):
            s1, s2 = float(edges[s]), float(edges[s + 1])
            sm = 0.5 * (s1 + s2)
            if self.steps_taken > 0 or s > 0:
                # the bootstrap already decomposed and computed PP at
                # the very first substep
                self._domain_update()
                if self._pp_acc is None:
                    self._pp_acc = self._pp_force()
            self._kick(self._pp_acc, st.kick_coeff(s1, sm))
            with self.timing.phase("Domain Decomposition/position update"):
                self._drift(st.drift_coeff(s1, s2))
            self._pp_acc = self._pp_force()
            self._kick(self._pp_acc, st.kick_coeff(sm, s2))

        self._pm_acc = self._pm_force()
        self._kick(self._pm_acc, st.kick_coeff(tm, t2))
        self.steps_taken += 1
        if self._mom_monitor is not None and self.validator.check_enabled(
            "momentum_drift"
        ):
            totals = self.comm.allreduce(self._momentum_totals(), op="sum")
            self.validator.handle(
                self._mom_monitor.update(
                    totals[:3],
                    float(totals[3]),
                    step=self.steps_taken,
                    rank=self.comm.rank,
                )
            )

    def run(
        self,
        t_start: float,
        t_end: float,
        n_steps: int,
        checkpoint_every: Optional[int] = None,
        checkpoint_dir=None,
        first_step: int = 0,
    ) -> None:
        """Integrate ``n_steps`` equal steps from ``t_start`` to
        ``t_end``, optionally writing a distributed checkpoint every
        ``checkpoint_every`` completed steps (and after the last one).

        ``first_step`` resumes a stored schedule: the step edges are
        recomputed from the *full* schedule so a resumed run hits
        bit-identical step boundaries, then steps before ``first_step``
        are skipped.  Each step begins with a ``comm.fault_point``, the
        hook a :class:`repro.mpi.faults.FaultPlan` uses to kill ranks.
        """
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ValueError("checkpoint_every must be >= 1")
            if checkpoint_dir is None:
                raise ValueError("checkpoint_every requires checkpoint_dir")
        edges = np.linspace(t_start, t_end, n_steps + 1)
        schedule = {
            "t_start": float(t_start),
            "t_end": float(t_end),
            "n_steps": int(n_steps),
        }
        for i in range(int(first_step), n_steps):
            self.comm.fault_point(i)
            self.step(float(edges[i]), float(edges[i + 1]))
            if checkpoint_every and (
                (i + 1) % checkpoint_every == 0 or i + 1 == n_steps
            ):
                self.checkpoint(
                    checkpoint_dir, schedule={**schedule, "next_step": i + 1}
                )

    # -- checkpoint / restore -----------------------------------------------------

    def checkpoint(
        self,
        checkpoint_dir,
        schedule: Optional[Dict[str, Any]] = None,
        extra: Optional[Dict[str, Any]] = None,
    ):
        """Write a distributed checkpoint set (collective).

        Every rank writes an atomic, checksummed per-rank file; rank 0
        then writes the manifest (with every file's digest) and flips
        the ``LATEST`` pointer — in that order, so an interrupted
        checkpoint can never be mistaken for a complete one.  ``extra``
        entries are merged into the manifest (diagnostic dumps record
        the triggering violation there).  Returns the step directory.

        Disk exhaustion is handled collectively: rank 0 preflights the
        free space against the previous epoch's measured size, each
        rank's ``ENOSPC`` (real or injected via
        ``FaultPlan.disk_full``) is caught locally, and the gathered
        verdict is broadcast — on any shortfall every rank raises
        :class:`repro.sim.checkpoint.CheckpointSpaceError` together,
        the partial step directory is removed, and the ``LATEST``
        pointer still names the last complete set.
        """
        comm = self.comm
        next_step = (
            int(schedule["next_step"]) if schedule and "next_step" in schedule
            else self.steps_taken
        )
        step_name = _ckpt.step_dirname(next_step)
        checkpoint_dir = Path(checkpoint_dir)
        step_dir = checkpoint_dir / step_name
        preflight = None
        if comm.rank == 0:
            step_dir.mkdir(parents=True, exist_ok=True)
            try:
                prev = _ckpt.latest_checkpoint(checkpoint_dir)
                _ckpt.check_free_space(
                    checkpoint_dir, _ckpt.checkpoint_size(prev)
                )
            except CheckpointSpaceError as exc:
                preflight = str(exc)
            except CheckpointError:
                pass  # first epoch: no size estimate, write and see
        preflight = comm.bcast(preflight, root=0)
        if preflight is not None:
            comm.barrier()
            raise CheckpointSpaceError(preflight)
        comm.barrier()

        history = self.decomposer._history._history
        decomp_flat = self.decomp.flatten()
        arrays = {
            "pos": self.pos,
            "mom": self.mom,
            "mass": self.mass,
            "ids": self.ids,
            "pp_acc": (
                self._pp_acc if self._pp_acc is not None else np.zeros((0, 3))
            ),
            "pm_acc": (
                self._pm_acc if self._pm_acc is not None else np.zeros((0, 3))
            ),
            "decomp": np.asarray(decomp_flat, dtype=np.float64),
            "history": (
                np.stack(history)
                if history
                else np.zeros((0, len(decomp_flat)))
            ),
        }
        meta = {
            "rank": comm.rank,
            "size": comm.size,
            "steps_taken": self.steps_taken,
            "pp_cost": self._pp_cost,
            "decomp_step": self.decomposer._step,
            "has_pp_acc": self._pp_acc is not None,
            "has_pm_acc": self._pm_acc is not None,
        }
        name = _ckpt.rank_filename(comm.rank, comm.size)
        plan = getattr(comm, "fault_plan", None)
        disk_guard = None
        if plan is not None and not plan.empty:
            wr = getattr(comm, "world_rank", comm.rank)
            disk_guard = lambda p, n: plan.check_disk(wr, p, n)
        write_error = None
        digest = ""
        try:
            digest = _ckpt.write_rank_file(
                step_dir / name, arrays, meta, disk_guard=disk_guard
            )
        except CheckpointSpaceError as exc:
            # stay in the collective: the verdict is agreed below
            write_error = str(exc)
        entries = comm.gather(
            {"rank": comm.rank, "name": name, "sha256": digest,
             "n_particles": len(self.pos), "error": write_error},
            root=0,
        )
        verdict = None
        if comm.rank == 0:
            failed = [e for e in entries if e.get("error")]
            if failed:
                verdict = (
                    f"checkpoint {step_name} abandoned: "
                    + "; ".join(
                        f"rank {e['rank']}: {e['error']}" for e in failed
                    )
                )
        verdict = comm.bcast(verdict, root=0)
        if verdict is not None:
            if comm.rank == 0:
                # remove the partial epoch; LATEST was never flipped,
                # so restore still finds the last complete set
                shutil.rmtree(step_dir, ignore_errors=True)
            comm.barrier()
            raise CheckpointSpaceError(verdict)
        if comm.rank == 0:
            manifest = {
                "version": _ckpt.CHECKPOINT_VERSION,
                "n_ranks": comm.size,
                "divisions": list(self.config.domain.divisions),
                "steps_taken": self.steps_taken,
                "schedule": schedule or {"next_step": next_step},
                "config_hash": self.config.config_hash(include_layout=False),
                "config": self.config.to_dict(),
                "total_particles": int(sum(e["n_particles"] for e in entries)),
                "files": entries,
            }
            if extra:
                manifest.update(extra)
            _ckpt.write_manifest(step_dir, manifest)
            _ckpt.update_latest(checkpoint_dir, step_name)
            keep_last = int(self.config.sdc.keep_last)
            if keep_last:
                # retention: the pointer is durable, so older epochs
                # beyond the window can go
                _ckpt.prune_checkpoints(checkpoint_dir, keep_last)
        # no rank may leave before the manifest exists: a kill after this
        # barrier always finds a complete set on disk
        comm.barrier()
        return step_dir

    @classmethod
    def restore(cls, comm, config: SimulationConfig, step_dir, stepper=None):
        """Rebuild per-rank state from a checkpoint set (collective).

        With the checkpoint's original rank count every rank reloads
        its own file — including force accumulators and the boundary
        history — so the resumed trajectory is bit-for-bit identical to
        an uninterrupted run.  With a different rank count the merged,
        id-ordered particle state is re-scattered and the decomposition
        bootstraps afresh (forces are then recomputed on the first
        step).
        """
        step_dir = Path(step_dir)
        manifest = _ckpt.read_manifest(step_dir)
        want = config.config_hash(include_layout=False)
        if manifest["config_hash"] != want:
            raise CheckpointError(
                f"checkpoint '{step_dir}' was written by a different "
                f"configuration (hash {manifest['config_hash'][:12]}..., "
                f"ours {want[:12]}...)"
            )
        if int(manifest["n_ranks"]) == comm.size:
            entry = manifest["files"][comm.rank]
            path = step_dir / entry["name"]
            if not path.exists():
                raise CheckpointError(
                    f"torn checkpoint '{step_dir}': missing rank file "
                    f"'{entry['name']}'"
                )
            if _ckpt.file_digest(path) != entry["sha256"]:
                raise CheckpointError(
                    f"corrupt checkpoint '{step_dir}': digest mismatch for "
                    f"'{entry['name']}'"
                )
            arrays, meta = _ckpt.read_rank_file(
                path, strict=config.validation.strict_load
            )
            sim = cls(
                comm, config, arrays["pos"], arrays["mom"], arrays["mass"],
                stepper=stepper, ids=arrays["ids"],
            )
            sim.steps_taken = int(manifest["steps_taken"])
            sim._pp_cost = float(meta["pp_cost"])
            if meta["has_pp_acc"]:
                sim._pp_acc = arrays["pp_acc"]
            if meta["has_pm_acc"]:
                sim._pm_acc = arrays["pm_acc"]
            sim.decomp = MultisectionDecomposition.unflatten(
                arrays["decomp"], config.domain.divisions, 1.0
            )
            sim.decomposer._step = int(meta["decomp_step"])
            sim.decomposer._history._history = [
                h.copy() for h in arrays["history"]
            ]
            return sim

        # different rank count: merge (validating the whole set), then
        # re-scatter contiguous id-ordered slices
        if comm.rank == 0:
            merged = _ckpt.load_distributed_checkpoint(
                step_dir, strict=config.validation.strict_load
            )
            n = len(merged["ids"])
            chunks = []
            for r in range(comm.size):
                lo = n * r // comm.size
                hi = n * (r + 1) // comm.size
                chunks.append(
                    {k: merged[k][lo:hi] for k in ("pos", "mom", "mass", "ids")}
                )
        else:
            chunks = None
        part = comm.scatter(chunks, root=0)
        sim = cls(
            comm, config, part["pos"], part["mom"], part["mass"],
            stepper=stepper, ids=part["ids"],
        )
        sim.steps_taken = int(manifest["steps_taken"])
        return sim

    # -- output ------------------------------------------------------------------------

    def gather_state(self):
        """Gather (pos, mom, mass) on rank 0, sorted by particle id
        (i.e. the original global ordering); None elsewhere."""
        parts = self.comm.gather((self.pos, self.mom, self.mass, self.ids), root=0)
        if self.comm.rank != 0:
            return None
        pos = np.vstack([p for p, _, _, _ in parts])
        mom = np.vstack([m for _, m, _, _ in parts])
        mass = np.concatenate([w for _, _, w, _ in parts])
        ids = np.concatenate([i for _, _, _, i in parts])
        order = np.argsort(ids)
        return pos[order], mom[order], mass[order]

    def table1_rows(self) -> Dict[str, float]:
        """This rank's accumulated per-phase seconds, Table I naming."""
        return self.timing.as_dict()

    def report(self) -> "RankReport":
        """Picklable per-rank summary (what a multiprocess rank returns
        instead of the live — unpicklable — simulation object)."""
        return RankReport(
            rank=self.comm.rank,
            size=self.comm.size,
            world_rank=self.comm.world_rank,
            steps_taken=int(self.steps_taken),
            n_local=int(len(self.pos)),
            timing=self.timing.as_dict(),
            interactions=int(self.stats.interactions),
        )


class RankReport:
    """Per-rank run summary that crosses process boundaries.

    Duck-types the result surface drivers and benchmarks consume from a
    :class:`ParallelSimulation` (``timing`` via :meth:`table1_rows`,
    ``steps_taken``); backends whose ranks live in other processes
    return these instead of simulation objects.
    """

    def __init__(
        self,
        rank: int,
        size: int,
        world_rank: int,
        steps_taken: int,
        n_local: int,
        timing: Dict[str, float],
        interactions: int = 0,
    ) -> None:
        self.rank = rank
        self.size = size
        self.world_rank = world_rank
        self.steps_taken = steps_taken
        self.n_local = n_local
        self.timing = timing
        self.interactions = interactions

    def table1_rows(self) -> Dict[str, float]:
        return dict(self.timing)

    @property
    def stats(self) -> "RankReport":
        """Duck-types ``ParallelSimulation.stats.interactions``."""
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RankReport(rank={self.rank}/{self.size}, "
            f"steps={self.steps_taken}, n_local={self.n_local})"
        )


def run_parallel_simulation(
    config: SimulationConfig,
    pos: np.ndarray,
    mom: np.ndarray,
    mass: np.ndarray,
    t_start: float,
    t_end: float,
    n_steps: int,
    stepper=None,
    torus_shape=None,
    checkpoint_every: Optional[int] = None,
    checkpoint_dir=None,
    fault_plan=None,
    recv_timeout: Optional[float] = None,
    watchdog_timeout: Optional[float] = None,
    backend="thread",
):
    """Convenience driver: scatter global arrays, run, gather results.

    Returns ``(pos, mom, mass, sims, runtime)`` where ``sims`` is the
    list of per-rank :class:`ParallelSimulation` objects (timings,
    statistics) and ``runtime`` exposes the traffic log / network model.
    ``checkpoint_every``/``checkpoint_dir`` enable distributed
    checkpoints; ``fault_plan``/``recv_timeout``/``watchdog_timeout``
    are forwarded to the backend.

    ``backend`` selects the communicator backend by registry name
    (``"thread"``, ``"multiprocess"``, ``"mpi4py"``) or accepts a
    pre-built :class:`repro.mpi.backend.CommBackend`.  Ranks that run
    in other processes return a picklable :class:`RankReport` in
    ``sims`` instead of the live simulation object.
    """
    n_ranks = config.domain.n_domains
    runtime = create_backend(
        backend,
        n_ranks,
        torus_shape=torus_shape,
        fault_plan=fault_plan,
        recv_timeout=recv_timeout,
        watchdog_timeout=watchdog_timeout,
    )
    in_process = runtime.name == "thread"

    def spmd(comm):
        n = len(pos)
        lo = n * comm.rank // comm.size
        hi = n * (comm.rank + 1) // comm.size
        sim = ParallelSimulation(
            comm, config, pos[lo:hi], mom[lo:hi], mass[lo:hi], stepper=stepper
        )
        sim.run(
            t_start, t_end, n_steps,
            checkpoint_every=checkpoint_every, checkpoint_dir=checkpoint_dir,
        )
        return (sim if in_process else sim.report()), sim.gather_state()

    results = runtime.run(spmd)
    sims = [r[0] for r in results]
    state = results[0][1]
    return state[0], state[1], state[2], sims, runtime


def resume_parallel_simulation(
    config: SimulationConfig,
    checkpoint_dir,
    stepper=None,
    torus_shape=None,
    checkpoint_every: Optional[int] = None,
    fault_plan=None,
    recv_timeout: Optional[float] = None,
    watchdog_timeout: Optional[float] = None,
    backend="thread",
):
    """Resume the schedule stored in the newest complete checkpoint.

    The rank count comes from ``config.domain.n_domains`` — it may
    differ from the count the checkpoint was written with, in which
    case the merged particle state is re-decomposed.  Passing
    ``checkpoint_every`` keeps checkpointing into the same directory.
    Returns the same tuple as :func:`run_parallel_simulation`;
    ``backend`` selects the communicator backend the same way.
    """
    step_dir = _ckpt.latest_checkpoint(checkpoint_dir)
    manifest = _ckpt.read_manifest(step_dir)
    schedule = manifest["schedule"]
    for key in ("t_start", "t_end", "n_steps", "next_step"):
        if key not in schedule:
            raise CheckpointError(
                f"checkpoint '{step_dir}' stores no resumable schedule "
                f"(missing '{key}'); pass the schedule to ParallelSimulation.run"
            )
    n_ranks = config.domain.n_domains
    runtime = create_backend(
        backend,
        n_ranks,
        torus_shape=torus_shape,
        fault_plan=fault_plan,
        recv_timeout=recv_timeout,
        watchdog_timeout=watchdog_timeout,
    )
    in_process = runtime.name == "thread"

    def spmd(comm):
        sim = ParallelSimulation.restore(comm, config, step_dir, stepper=stepper)
        sim.run(
            float(schedule["t_start"]),
            float(schedule["t_end"]),
            int(schedule["n_steps"]),
            checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir if checkpoint_every else None,
            first_step=int(schedule["next_step"]),
        )
        return (sim if in_process else sim.report()), sim.gather_state()

    results = runtime.run(spmd)
    sims = [r[0] for r in results]
    state = results[0][1]
    return state[0], state[1], state[2], sims, runtime
