"""The distributed GreeM-style simulation driver (SPMD).

One :class:`ParallelSimulation` instance runs on each rank and executes
the paper's full per-step pipeline:

* **Domain decomposition** — position update bookkeeping, the sampling
  method (cost-proportional rates, boundary smoothing), particle
  exchange;
* **PP** — ghost ("local tree") selection and exchange, local tree
  construction, Barnes-modified traversal, the PP force kernel;
* **PM** — local density assignment, the (relay) mesh conversion,
  slab FFT, back conversion, finite differences, interpolation;

with the step structure "a cycle of the PM and ``pp_subcycles`` cycles
of the PP and the domain decomposition", and a timing ledger whose rows
are exactly Table I's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.config import SimulationConfig
from repro.decomp.exchange import exchange_particles
from repro.decomp.multisection import MultisectionDecomposition
from repro.decomp.sampling import SamplingDecomposer
from repro.forces.cutoff import get_split
from repro.integrate.stepper import StaticStepper
from repro.meshcomm.parallel_pm import ParallelPM
from repro.mpi.runtime import MPIRuntime
from repro.sim.ghosts import exchange_ghosts
from repro.tree.traversal import TreeSolver
from repro.utils.periodic import wrap_positions
from repro.utils.timer import TimingLedger

__all__ = ["ParallelSimulation", "run_parallel_simulation"]


@dataclass
class StepStatistics:
    """Per-rank accumulated statistics over the run."""

    interactions: int = 0
    group_sizes: List[float] = field(default_factory=list)
    list_lengths: List[float] = field(default_factory=list)

    @property
    def mean_group_size(self) -> float:
        return float(np.mean(self.group_sizes)) if self.group_sizes else 0.0

    @property
    def mean_list_length(self) -> float:
        return float(np.mean(self.list_lengths)) if self.list_lengths else 0.0


class ParallelSimulation:
    """Per-rank simulation state and step logic.

    Parameters
    ----------
    comm:
        World communicator.
    config:
        Simulation configuration; ``config.domain.divisions`` must
        multiply to ``comm.size``.
    pos, mom, mass:
        This rank's initial particles (any spatial distribution: the
        first decomposition update redistributes them).
    stepper:
        Kick/drift coefficients (static or cosmological).
    """

    def __init__(
        self,
        comm,
        config: SimulationConfig,
        pos: np.ndarray,
        mom: np.ndarray,
        mass: np.ndarray,
        stepper=None,
        ids: Optional[np.ndarray] = None,
    ) -> None:
        if config.domain.n_domains != comm.size:
            raise ValueError(
                f"domain divisions {config.domain.divisions} do not match "
                f"{comm.size} ranks"
            )
        self.comm = comm
        self.config = config
        self.stepper = stepper if stepper is not None else StaticStepper()
        self.pos = np.array(pos, dtype=np.float64)
        self.mom = np.array(mom, dtype=np.float64)
        self.mass = np.array(mass, dtype=np.float64)
        if ids is None:
            # globally unique default ids: offset by a rank-exclusive scan
            starts = np.concatenate([[0], np.cumsum(comm.allgather(len(self.pos)))])
            ids = np.arange(starts[comm.rank], starts[comm.rank] + len(self.pos))
        self.ids = np.array(ids, dtype=np.int64)

        tp = config.treepm
        self.split = get_split(tp.split, tp.rcut)
        self.tree = TreeSolver(
            box=1.0,
            theta=tp.tree.opening_angle,
            leaf_size=tp.tree.leaf_size,
            group_size=tp.tree.group_size,
            split=self.split,
            eps=tp.softening,
            G=1.0,
            periodic=True,
            use_quadrupole=tp.tree.use_quadrupole,
        )
        if tp.pm.fft_backend == "pencil":
            from repro.meshcomm.parallel_pencil_pm import ParallelPencilPM

            self.pm = ParallelPencilPM(
                comm,
                tp.pm.mesh_size,
                split=self.split,
                assignment=tp.pm.assignment,
                deconvolve=2 if tp.pm.deconvolve else 0,
                differencing=tp.pm.differencing,
            )
        else:
            self.pm = ParallelPM(
                comm,
                tp.pm.mesh_size,
                split=self.split,
                # the FFT processes must fit inside the relay root group
                n_fft=min(comm.size // config.relay.n_groups, tp.pm.mesh_size),
                n_groups=config.relay.n_groups,
                assignment=tp.pm.assignment,
                deconvolve=2 if tp.pm.deconvolve else 0,
                differencing=tp.pm.differencing,
            )
        self.decomposer = SamplingDecomposer(
            config.domain.divisions,
            sample_rate=config.domain.sample_rate,
            window=config.domain.smoothing_window,
            cost_balance=config.domain.cost_balance,
            seed=config.seed,
        )
        self.decomp: MultisectionDecomposition = MultisectionDecomposition.uniform(
            config.domain.divisions
        )
        self.timing = TimingLedger()
        self.stats = StepStatistics()
        self.steps_taken = 0
        self._pp_cost = 1.0e-6  # last measured PP seconds (for sampling)
        self._pm_acc: Optional[np.ndarray] = None
        self._pp_acc: Optional[np.ndarray] = None

    # -- pipeline pieces ---------------------------------------------------------

    def _domain_update(self) -> None:
        """Sampling method + particle exchange (carrying the PP force)."""
        with self.timing.phase("Domain Decomposition/sampling method"):
            self.decomp = self.decomposer.update(self.comm, self.pos, self._pp_cost)
        with self.timing.phase("Domain Decomposition/particle exchange"):
            payload = {
                "pos": self.pos,
                "mom": self.mom,
                "mass": self.mass,
                "ids": self.ids,
            }
            if self._pp_acc is not None:
                payload["pp_acc"] = self._pp_acc
            out = exchange_particles(self.comm, self.decomp, payload)
        self.pos = out["pos"]
        self.mom = out["mom"]
        self.mass = out["mass"]
        self.ids = out["ids"]
        self._pp_acc = out.get("pp_acc")

    def _pp_force(self) -> np.ndarray:
        """Ghost exchange + local tree + kernel; updates ``_pp_cost``."""
        import time as _time

        t_start = _time.perf_counter()
        self.comm.traffic_phase("pp:ghosts")
        gpos, gmass = exchange_ghosts(
            self.comm,
            self.decomp,
            self.pos,
            self.mass,
            rcut=self.split.cutoff_radius,
            ledger=self.timing,
        )
        all_pos = np.vstack([self.pos, gpos])
        all_mass = np.concatenate([self.mass, gmass])
        mask = np.zeros(len(all_pos), dtype=bool)
        mask[: len(self.pos)] = True
        if len(all_pos) == 0:
            self._pp_cost = 1.0e-6
            return np.zeros((0, 3))
        with self.timing.phase("PP/tree construction"):
            tree = self.tree.build(all_pos, all_mass)
        acc, stats = self.tree.forces(
            all_pos, all_mass, tree=tree, targets_mask=mask, ledger=self.timing
        )
        self.stats.interactions += stats.interactions
        if stats.counter.group_sizes:
            self.stats.group_sizes.append(stats.mean_group_size)
            self.stats.list_lengths.append(stats.mean_list_length)
        self._pp_cost = max(_time.perf_counter() - t_start, 1.0e-9)
        return acc[: len(self.pos)]

    def _pm_force(self) -> np.ndarray:
        lo, hi = self.decomp.domain_bounds(self.comm.rank)
        return self.pm.forces(self.pos, self.mass, lo, hi, timing=self.timing)

    # -- the step -------------------------------------------------------------------

    def initialize_forces(self) -> None:
        """Bootstrap: first decomposition, PP and PM forces."""
        self._domain_update()
        self._pp_acc = self._pp_force()
        self._pm_acc = self._pm_force()

    def step(self, t1: float, t2: float) -> None:
        """One full step: 1 PM cycle + ``pp_subcycles`` PP/DD cycles."""
        if self._pm_acc is None:
            self.initialize_forces()
        st = self.stepper
        tm = 0.5 * (t1 + t2)
        n_sub = self.config.pp_subcycles

        self.mom += self._pm_acc * st.kick_coeff(t1, tm)

        edges = np.linspace(t1, t2, n_sub + 1)
        for s in range(n_sub):
            s1, s2 = float(edges[s]), float(edges[s + 1])
            sm = 0.5 * (s1 + s2)
            if self.steps_taken > 0 or s > 0:
                # the bootstrap already decomposed and computed PP at
                # the very first substep
                self._domain_update()
                if self._pp_acc is None:
                    self._pp_acc = self._pp_force()
            self.mom += self._pp_acc * st.kick_coeff(s1, sm)
            with self.timing.phase("Domain Decomposition/position update"):
                self.pos = wrap_positions(
                    self.pos + self.mom * st.drift_coeff(s1, s2)
                )
            self._pp_acc = self._pp_force()
            self.mom += self._pp_acc * st.kick_coeff(sm, s2)

        self._pm_acc = self._pm_force()
        self.mom += self._pm_acc * st.kick_coeff(tm, t2)
        self.steps_taken += 1

    def run(self, t_start: float, t_end: float, n_steps: int) -> None:
        edges = np.linspace(t_start, t_end, n_steps + 1)
        for t1, t2 in zip(edges[:-1], edges[1:]):
            self.step(float(t1), float(t2))

    # -- output ------------------------------------------------------------------------

    def gather_state(self):
        """Gather (pos, mom, mass) on rank 0, sorted by particle id
        (i.e. the original global ordering); None elsewhere."""
        parts = self.comm.gather((self.pos, self.mom, self.mass, self.ids), root=0)
        if self.comm.rank != 0:
            return None
        pos = np.vstack([p for p, _, _, _ in parts])
        mom = np.vstack([m for _, m, _, _ in parts])
        mass = np.concatenate([w for _, _, w, _ in parts])
        ids = np.concatenate([i for _, _, _, i in parts])
        order = np.argsort(ids)
        return pos[order], mom[order], mass[order]

    def table1_rows(self) -> Dict[str, float]:
        """This rank's accumulated per-phase seconds, Table I naming."""
        return self.timing.as_dict()


def run_parallel_simulation(
    config: SimulationConfig,
    pos: np.ndarray,
    mom: np.ndarray,
    mass: np.ndarray,
    t_start: float,
    t_end: float,
    n_steps: int,
    stepper=None,
    torus_shape=None,
):
    """Convenience driver: scatter global arrays, run, gather results.

    Returns ``(pos, mom, mass, sims, runtime)`` where ``sims`` is the
    list of per-rank :class:`ParallelSimulation` objects (timings,
    statistics) and ``runtime`` exposes the traffic log / network model.
    """
    n_ranks = config.domain.n_domains
    runtime = MPIRuntime(n_ranks, torus_shape=torus_shape)

    def spmd(comm):
        n = len(pos)
        lo = n * comm.rank // comm.size
        hi = n * (comm.rank + 1) // comm.size
        sim = ParallelSimulation(
            comm, config, pos[lo:hi], mom[lo:hi], mass[lo:hi], stepper=stepper
        )
        sim.run(t_start, t_end, n_steps)
        return sim, sim.gather_state()

    results = runtime.run(spmd)
    sims = [r[0] for r in results]
    state = results[0][1]
    return state[0], state[1], state[2], sims, runtime
