"""Wall-clock timers and the per-phase timing ledger.

:class:`TimingLedger` accumulates named phase timings exactly the way the
paper's Table I reports them: hierarchical categories such as
``"PP/force calculation"`` accumulated per step.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, Optional


class Timer:
    """A simple restartable wall-clock timer."""

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def start(self) -> "Timer":
        if self._start is not None:
            raise RuntimeError("timer already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("timer not running")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        self._start = None
        self.elapsed = 0.0

    @property
    def running(self) -> bool:
        return self._start is not None


class TimingLedger:
    """Accumulates hierarchical phase timings.

    Phase names use ``"/"`` as a hierarchy separator, e.g.
    ``"PP/force calculation"``.  Totals for parent categories are the sum
    of their children plus any time recorded directly against the parent.
    """

    def __init__(self) -> None:
        self._acc: "OrderedDict[str, float]" = OrderedDict()

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager timing one phase occurrence."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - t0)

    def add(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to phase ``name``."""
        if seconds < 0:
            raise ValueError("negative duration")
        self._acc[name] = self._acc.get(name, 0.0) + seconds

    def get(self, name: str) -> float:
        """Seconds recorded directly against ``name``."""
        return self._acc.get(name, 0.0)

    def total(self, prefix: str = "") -> float:
        """Total seconds of all phases under ``prefix`` (inclusive)."""
        if not prefix:
            return sum(self._acc.values())
        total = self._acc.get(prefix, 0.0)
        total += sum(
            v for k, v in self._acc.items() if k.startswith(prefix + "/")
        )
        return total

    def as_dict(self) -> Dict[str, float]:
        return dict(self._acc)

    def merge(self, other: "TimingLedger") -> None:
        """Accumulate another ledger into this one."""
        for k, v in other._acc.items():
            self.add(k, v)

    def scaled(self, factor: float) -> "TimingLedger":
        """Return a copy with every entry multiplied by ``factor``."""
        out = TimingLedger()
        for k, v in self._acc.items():
            out.add(k, v * factor)
        return out

    def report(self, title: str = "timing") -> str:
        """Human-readable multi-line report, grouped by top category."""
        lines = [f"== {title} =="]
        roots = []
        for key in self._acc:
            root = key.split("/", 1)[0]
            if root not in roots:
                roots.append(root)
        for root in roots:
            lines.append(f"{root:<28s} {self.total(root):10.4f} s")
            for key, val in self._acc.items():
                if key.startswith(root + "/"):
                    sub = key.split("/", 1)[1]
                    lines.append(f"    {sub:<24s} {val:10.4f} s")
        lines.append(f"{'Total':<28s} {self.total():10.4f} s")
        return "\n".join(lines)


__all__ = ["Timer", "TimingLedger"]
