"""Small shared utilities: periodic geometry helpers, timers, RNG."""

from repro.utils.periodic import (
    minimum_image,
    wrap_positions,
    periodic_distance,
)
from repro.utils.timer import Timer, TimingLedger
from repro.utils.integrity import (
    array_digest,
    digest_arrays,
    fingerprint_particles,
)

__all__ = [
    "minimum_image",
    "wrap_positions",
    "periodic_distance",
    "Timer",
    "TimingLedger",
    "array_digest",
    "digest_arrays",
    "fingerprint_particles",
]
