"""Small shared utilities: periodic geometry helpers, timers, RNG."""

from repro.utils.periodic import (
    minimum_image,
    wrap_positions,
    periodic_distance,
)
from repro.utils.timer import Timer, TimingLedger

__all__ = [
    "minimum_image",
    "wrap_positions",
    "periodic_distance",
    "Timer",
    "TimingLedger",
]
