"""Periodic-box geometry helpers.

All routines assume a cubic box ``[0, box) ** 3`` with periodic wrapping.
Positions are ``(N, 3)`` float64 arrays.
"""

from __future__ import annotations

import numpy as np


def wrap_positions(pos: np.ndarray, box: float = 1.0) -> np.ndarray:
    """Wrap positions into the primary box ``[0, box)``.

    Returns a new array; the input is not modified.
    """
    out = np.mod(pos, box)
    # np.mod can return exactly `box` for tiny negative inputs due to
    # rounding; fold those onto 0.
    out[out >= box] = 0.0
    return out


def minimum_image(
    dx: np.ndarray, box: float = 1.0, out: np.ndarray = None
) -> np.ndarray:
    """Apply the minimum-image convention to displacement vectors.

    This is the single definition of the periodic wrap used by the tree
    traversal, the PP kernel and the quadrupole evaluation, so every
    layer resolves the ``box/2`` tie the same way: ``np.round`` rounds
    half to even, so a displacement of exactly ``+box/2`` stays
    ``+box/2`` while ``3*box/2`` wraps to ``-box/2``.

    ``out`` may alias ``dx`` for an in-place update (the hot-path form);
    the arithmetic is bitwise-identical either way.
    """
    shift = np.round(dx / box)
    shift *= box
    if out is None:
        return dx - shift
    np.subtract(dx, shift, out=out)
    return out


def periodic_distance(a: np.ndarray, b: np.ndarray, box: float = 1.0) -> np.ndarray:
    """Pairwise minimum-image distances between matching rows of a and b."""
    d = minimum_image(np.asarray(a) - np.asarray(b), box)
    return np.sqrt(np.sum(d * d, axis=-1))


__all__ = ["wrap_positions", "minimum_image", "periodic_distance"]
