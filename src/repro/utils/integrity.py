"""Canonical array-integrity helpers shared by checkpointing, buddy
replication and the silent-data-corruption (SDC) auditor.

Three layers historically grew three private copies of "hash an array":
:mod:`repro.sim.io` (snapshots), :mod:`repro.sim.checkpoint`
(distributed checkpoints) and :mod:`repro.mpi.recovery` (buddy
replicas).  They now all call :func:`array_digest` here, so a digest
computed by one layer can be compared against a digest computed by any
other — which is exactly what the SDC two-out-of-three attribution vote
does.

Digests are computed over ``(dtype, shape, bytes)`` after
``np.ascontiguousarray``, so non-C-contiguous views (transposes,
strided slices) and zero-length arrays hash identically to their
contiguous copies.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Mapping

import numpy as np

__all__ = [
    "array_digest",
    "digest_arrays",
    "fingerprint_particles",
]


def array_digest(arr: np.ndarray) -> str:
    """sha256 over an array's dtype, shape and bytes.

    Safe for non-C-contiguous views and zero-length arrays: the input
    is materialised with ``np.ascontiguousarray`` first, so logically
    equal arrays always produce equal digests regardless of memory
    layout.
    """
    arr = np.ascontiguousarray(arr)
    h = hashlib.sha256()
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


def digest_arrays(arrays: Mapping[str, np.ndarray]) -> Dict[str, str]:
    """Per-array digests for a named array bundle (key-sorted order)."""
    return {name: array_digest(arrays[name]) for name in sorted(arrays)}


# Multiplier from splitmix64; any odd constant with good avalanche works.
_FP_MULT = np.uint64(0xBF58476D1CE4E5B9)
_FP_SEED = np.uint64(0x9E3779B97F4A7C15)


def fingerprint_particles(ids: np.ndarray, mass: np.ndarray) -> int:
    """Order- and partition-independent fingerprint of (id, mass) pairs.

    Each particle contributes a 64-bit mix of its id and the raw bits
    of its mass; contributions combine by wrapping summation mod 2**64,
    so the result is invariant under any permutation or re-partitioning
    of the particles across ranks: summing the per-rank fingerprints
    (again mod 2**64) reproduces the global fingerprint no matter how
    the domain decomposition shuffled ownership.  Positions and momenta
    evolve every step, but ids and masses are conserved for the whole
    run, making this the one live-state invariant cheap to audit
    mid-run against a run-start reference.
    """
    ids = np.ascontiguousarray(ids, dtype=np.int64).view(np.uint64)
    bits = np.ascontiguousarray(mass, dtype=np.float64).view(np.uint64)
    if ids.shape != bits.shape:
        raise ValueError("ids and mass must have matching lengths")
    with np.errstate(over="ignore"):
        mixed = (ids + _FP_SEED) * _FP_MULT
        mixed ^= mixed >> np.uint64(31)
        mixed = (mixed ^ bits) * _FP_MULT
        mixed ^= mixed >> np.uint64(29)
        total = np.add.reduce(mixed, dtype=np.uint64) + np.uint64(mixed.size)
    return int(total)
