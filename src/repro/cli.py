"""Command-line runner: simulations from a JSON description.

``python -m repro run config.json`` generates (or loads) initial
conditions, integrates, and writes snapshots — the adoption surface for
users who want the simulator without writing Python.

Config schema (JSON object; every key optional unless noted):

```json
{
  "kind": "cosmological" | "static",
  "n_per_dim": 12,                    // cosmological: particles^(1/3)
  "n_particles": 1000,                // static: random uniform cold start
  "mesh_size": 24,
  "rcut_mesh_units": 3.0,
  "opening_angle": 0.5,
  "group_size": 64,
  "softening": 0.002,
  "pp_subcycles": 2,
  "seed": 1,
  "start": 0.0025,                    // a (cosmological) or t (static)
  "end": 0.03125,
  "n_steps": 24,
  "log_spaced": true,                 // step spacing in the time variable
  "k_fs": 1e6,                        // neutralino cutoff (h/Mpc) or null
  "box_mpc_h": 4e-5,
  "amplitude_boost": 1.0,
  "lpt_order": 1,                     // 1 = Zel'dovich, 2 = 2LPT
  "snapshots": [0.01, 0.03125],       // epochs to write
  "output_dir": "out",                // required when snapshots given
  "validate": "off",                  // off | warn | abort | dump
  "validate_every": 1,                // check sampling interval (steps)
  "energy_tol": 0.25,                 // relative energy-drift tolerance
  "energy_every": 0,                  // energy monitor interval (0 = off)
  "validate_dump_dir": null,          // where "dump" writes diagnostics
  "backend": "serial",                // serial | thread | multiprocess | mpi4py
  "ranks": 1,                         // SPMD ranks (backend != serial)
  "sdc_policy": "off",                // off | warn | heal | abort
  "sdc_audit_every": 1,               // SDC audit interval (steps)
  "sdc_spot_check_groups": 4,         // ABFT groups re-swept per audit
  "sdc_keep_last": 0,                 // checkpoint retention (0 = keep all)
  "health_policy": "off",             // off | monitor | evict | degrade
  "straggler_factor": 3.0,            // straggler = work > factor * median
  "straggler_patience": 3             // consecutive slow steps to confirm
}
```

The ``--validate``/``--validate-every``/``--energy-tol`` flags override
the corresponding config keys (see ``docs/validation.md``),
``--sdc-policy``/``--sdc-audit-every`` override the silent-data-
corruption audit keys (see ``docs/fault_tolerance.md``),
``--health-policy``/``--straggler-factor``/``--straggler-patience``
override the gray-failure health keys (see ``docs/fault_tolerance.md``
section 9), and
``--backend``/``--ranks`` override the communicator selection (see
``docs/parallelism.md``).  Parallel backends run the same schedule via
:func:`repro.sim.parallel.run_parallel_simulation`; snapshots and
``--resume`` (the serial single-file checkpoint) are serial-only —
parallel runs checkpoint through the distributed per-rank format
instead.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List

import numpy as np

from repro.config import (
    DomainConfig,
    HealthConfig,
    PMConfig,
    SdcConfig,
    SimulationConfig,
    TreeConfig,
    TreePMConfig,
    ValidationConfig,
)

__all__ = ["main", "run_from_config"]

_DEFAULTS: Dict[str, Any] = {
    "kind": "cosmological",
    "n_per_dim": 8,
    "n_particles": 512,
    "mesh_size": 16,
    "rcut_mesh_units": 3.0,
    "opening_angle": 0.5,
    "group_size": 64,
    "softening": None,
    "pp_subcycles": 2,
    "seed": 1,
    "start": None,
    "end": None,
    "n_steps": 8,
    "log_spaced": None,
    "k_fs": 1.0e6,
    "box_mpc_h": 4.0e-5,
    "amplitude_boost": 1.0,
    "lpt_order": 1,
    "snapshots": [],
    "output_dir": None,
    "validate": "off",
    "validate_every": 1,
    "energy_tol": 0.25,
    "energy_every": 0,
    "validate_dump_dir": None,
    "backend": "serial",
    "ranks": 1,
    "sdc_policy": "off",
    "sdc_audit_every": 1,
    "sdc_spot_check_groups": 4,
    "sdc_keep_last": 0,
    "health_policy": "off",
    "straggler_factor": 3.0,
    "straggler_patience": 3,
}

_BACKEND_CHOICES = ("serial", "thread", "multiprocess", "mpi4py")


def _divisions_for(n_ranks: int):
    """Near-cubic 3-axis domain division with product ``n_ranks``."""
    divs = [1, 1, 1]
    remaining = n_ranks
    factor = 2
    while factor * factor <= remaining:
        while remaining % factor == 0:
            divs[divs.index(min(divs))] *= factor
            remaining //= factor
        factor += 1
    if remaining > 1:
        divs[divs.index(min(divs))] *= remaining
    return tuple(sorted(divs, reverse=True))


def _build_config(cfg: Dict[str, Any]) -> SimulationConfig:
    softening = cfg["softening"]
    if softening is None:
        n_dim = (
            cfg["n_per_dim"]
            if cfg["kind"] == "cosmological"
            else max(2, round(cfg["n_particles"] ** (1 / 3)))
        )
        softening = 0.02 / n_dim
    return SimulationConfig(
        treepm=TreePMConfig(
            tree=TreeConfig(
                opening_angle=cfg["opening_angle"], group_size=cfg["group_size"]
            ),
            pm=PMConfig(mesh_size=cfg["mesh_size"]),
            rcut_mesh_units=cfg["rcut_mesh_units"],
            softening=softening,
        ),
        pp_subcycles=cfg["pp_subcycles"],
        seed=cfg["seed"],
        validation=ValidationConfig(
            policy=cfg["validate"],
            interval=cfg["validate_every"],
            energy_tol=cfg["energy_tol"],
            energy_interval=cfg["energy_every"],
            dump_dir=cfg["validate_dump_dir"],
        ),
        sdc=SdcConfig(
            policy=cfg["sdc_policy"],
            audit_every=cfg["sdc_audit_every"],
            spot_check_groups=cfg["sdc_spot_check_groups"],
            keep_last=cfg["sdc_keep_last"],
        ),
        health=HealthConfig(
            policy=cfg["health_policy"],
            straggler_factor=cfg["straggler_factor"],
            straggler_patience=cfg["straggler_patience"],
        ),
    )


def _initial_state(cfg: Dict[str, Any], start: float, end: float, log=print):
    """Generate the fresh-run particle state for either config kind."""
    if cfg["kind"] == "cosmological":
        from repro.cosmology.params import WMAP7
        from repro.cosmology.power_spectrum import PowerSpectrum
        from repro.ic.lpt2 import Lpt2IC
        from repro.ic.zeldovich import ZeldovichIC

        ps = PowerSpectrum(WMAP7, k_fs=cfg["k_fs"])
        base = ps.in_box_units(cfg["box_mpc_h"])
        boost = float(cfg["amplitude_boost"])
        if cfg["lpt_order"] not in (1, 2):
            raise ValueError("lpt_order must be 1 or 2")
        ic_cls = ZeldovichIC if cfg["lpt_order"] == 1 else Lpt2IC
        ic = ic_cls(
            WMAP7,
            lambda k, z=0.0: boost**2 * base(k, z),
            n_per_dim=cfg["n_per_dim"],
            mesh_n=max(cfg["mesh_size"], cfg["n_per_dim"]),
            seed=cfg["seed"],
        )
        pos, mom, mass = ic.generate(a_start=start)
        log(
            f"cosmological run: {cfg['n_per_dim']}^3 particles, "
            f"a = {start:.5f} -> {end:.5f}"
        )
        return pos, mom, mass
    rng = np.random.default_rng(cfg["seed"])
    n = cfg["n_particles"]
    log(f"static run: {n} particles, t = {start} -> {end}")
    return rng.random((n, 3)), np.zeros((n, 3)), np.full(n, 1.0 / n)


def _run_parallel_from_config(
    cfg: Dict[str, Any],
    sim_config: SimulationConfig,
    stepper,
    start: float,
    end: float,
    log_spaced: bool,
    log,
    checkpoint_every: int,
    checkpoint_dir,
    resume,
) -> Dict[str, Any]:
    """`repro run` with a parallel communicator backend.

    Runs the same schedule through
    :func:`repro.sim.parallel.run_parallel_simulation` on
    ``cfg["ranks"]`` SPMD ranks.  Serial-only features are rejected
    explicitly: snapshots and ``--resume`` use the serial single-file
    format, and the parallel schedule is linearly spaced.
    """
    if resume is not None:
        raise ValueError(
            "--resume takes a serial checkpoint.npz; parallel runs "
            "resume from distributed checkpoints "
            "(repro.sim.parallel.resume_parallel_simulation)"
        )
    if cfg["snapshots"]:
        raise ValueError(
            "snapshots are serial-only; parallel runs persist state "
            "with --checkpoint-every (distributed checkpoints)"
        )
    if log_spaced:
        raise ValueError(
            "parallel backends step the time variable linearly; set "
            '"log_spaced": false or use the serial backend'
        )
    from repro.sim.parallel import run_parallel_simulation

    ranks = int(cfg["ranks"])
    par_config = sim_config.with_(
        domain=DomainConfig(divisions=_divisions_for(ranks))
    )
    pos, mom, mass = _initial_state(cfg, start, end, log)
    ckpt_dir = (
        Path(checkpoint_dir or cfg["output_dir"]) if checkpoint_every else None
    )
    log(f"backend: {cfg['backend']}, {ranks} rank(s)")
    pos, mom, mass, sims, runtime = run_parallel_simulation(
        par_config, pos, mom, mass, start, end, cfg["n_steps"],
        stepper=stepper,
        checkpoint_every=checkpoint_every or None,
        checkpoint_dir=ckpt_dir,
        backend=cfg["backend"],
    )
    steps = max(int(s.steps_taken) for s in sims)
    summary = {
        "kind": cfg["kind"],
        "backend": cfg["backend"],
        "ranks": ranks,
        "final_time": float(end),
        "steps": steps,
        "snapshots": [],
        "checkpoint": str(ckpt_dir) if ckpt_dir is not None else None,
        "resumed_from": None,
        "per_rank_particles": [
            int(s.n_local) if hasattr(s, "n_local") else len(s.pos)
            for s in sims
        ],
        "timing_rank0": sims[0].table1_rows(),
    }
    log(f"done: {steps} steps on {ranks} {cfg['backend']} rank(s)")
    return summary


def run_from_config(
    config: Dict[str, Any],
    log=print,
    checkpoint_every: int = 0,
    checkpoint_dir=None,
    resume=None,
) -> Dict[str, Any]:
    """Run a simulation described by a config dict.

    ``checkpoint_every`` > 0 writes an atomic rolling checkpoint
    (``checkpoint.npz`` under ``checkpoint_dir``, defaulting to
    ``output_dir``) every that many steps; ``resume`` restarts from
    such a checkpoint, validating that the configuration matches and
    re-entering the same step schedule so the trajectory is unchanged.
    Returns a summary dict (final epoch, snapshot paths, statistics).
    """
    cfg = dict(_DEFAULTS)
    unknown = set(config) - set(cfg)
    if unknown:
        raise ValueError(f"unknown config keys: {sorted(unknown)}")
    cfg.update(config)
    if cfg["kind"] not in ("cosmological", "static"):
        raise ValueError("kind must be 'cosmological' or 'static'")
    if cfg["backend"] not in _BACKEND_CHOICES:
        raise ValueError(
            f"backend must be one of {_BACKEND_CHOICES}, got {cfg['backend']!r}"
        )
    if int(cfg["ranks"]) < 1:
        raise ValueError("ranks must be >= 1")
    if cfg["backend"] == "serial" and int(cfg["ranks"]) != 1:
        raise ValueError(
            "ranks > 1 needs a parallel backend (--backend thread or "
            "multiprocess)"
        )
    if cfg["snapshots"] and not cfg["output_dir"]:
        raise ValueError("snapshots require output_dir")
    if checkpoint_every and not (checkpoint_dir or cfg["output_dir"]):
        raise ValueError("--checkpoint-every requires --checkpoint-dir or output_dir")

    sim_config = _build_config(cfg)

    from repro.sim.serial import SerialSimulation

    if cfg["kind"] == "cosmological":
        from repro.cosmology.params import WMAP7
        from repro.integrate.stepper import CosmoStepper

        start = cfg["start"] if cfg["start"] is not None else 1.0 / 401.0
        end = cfg["end"] if cfg["end"] is not None else 1.0 / 32.0
        log_spaced = cfg["log_spaced"] if cfg["log_spaced"] is not None else True
        stepper = CosmoStepper(WMAP7)
    else:
        start = cfg["start"] if cfg["start"] is not None else 0.0
        end = cfg["end"] if cfg["end"] is not None else 0.5
        log_spaced = cfg["log_spaced"] if cfg["log_spaced"] is not None else False
        stepper = None

    if cfg["backend"] != "serial":
        return _run_parallel_from_config(
            cfg, sim_config, stepper, start, end, log_spaced, log,
            checkpoint_every, checkpoint_dir, resume,
        )

    first_step = 0
    resume_time = None
    if resume is not None:
        sim, hdr = SerialSimulation.from_checkpoint(
            sim_config, resume, stepper=stepper
        )
        first_step = int(hdr.step)
        resume_time = float(hdr.time)
        log(
            f"resumed from {resume}: step {first_step}, "
            f"t = {resume_time:.6g} ({len(sim.pos)} particles)"
        )
    else:
        pos, mom, mass = _initial_state(cfg, start, end, log)
        sim = SerialSimulation(sim_config, pos, mom, mass, stepper=stepper)

    if log_spaced and start <= 0:
        raise ValueError("log-spaced steps need a positive start")
    edges = (
        np.geomspace(start, end, cfg["n_steps"] + 1)
        if log_spaced
        else np.linspace(start, end, cfg["n_steps"] + 1)
    )

    pending = sorted(float(s) for s in cfg["snapshots"])
    for s in pending:
        if not start <= s <= end:
            raise ValueError(f"snapshot epoch {s} outside [{start}, {end}]")
    written: List[str] = []

    def maybe_snapshot(t: float) -> None:
        from repro.sim.io import SnapshotHeader, save_snapshot

        while pending and pending[0] <= t * (1 + 1e-12):
            epoch = pending.pop(0)
            out = Path(cfg["output_dir"])
            out.mkdir(parents=True, exist_ok=True)
            path = out / f"snapshot_{epoch:.6f}.npz"
            save_snapshot(
                path,
                sim.pos,
                sim.mom,
                sim.mass,
                SnapshotHeader(
                    time=t,
                    n_particles=len(sim.pos),
                    cosmological=cfg["kind"] == "cosmological",
                    step=sim.steps_taken,
                    extra={"config": {k: config.get(k) for k in config}},
                ),
            )
            written.append(str(path))
            log(f"  wrote {path}")

    ckpt_path = None
    if checkpoint_every:
        ckpt_path = Path(checkpoint_dir or cfg["output_dir"]) / "checkpoint.npz"
        ckpt_path.parent.mkdir(parents=True, exist_ok=True)

    if resume is not None:
        # Snapshot epochs at or before the resume point were already
        # written by the interrupted run.
        while pending and pending[0] <= resume_time * (1 + 1e-12):
            pending.pop(0)
    else:
        maybe_snapshot(start)
    n_steps = cfg["n_steps"]
    if first_step > n_steps:
        raise ValueError(
            f"checkpoint is at step {first_step} but the schedule has "
            f"only {n_steps} steps"
        )
    for i in range(first_step, n_steps):
        t1, t2 = float(edges[i]), float(edges[i + 1])
        sim.step(t1, t2)
        maybe_snapshot(t2)
        if checkpoint_every and ((i + 1) % checkpoint_every == 0 or i + 1 == n_steps):
            sim.save_checkpoint(ckpt_path, t2)
            log(f"  checkpoint at step {i + 1} -> {ckpt_path}")

    stats = sim.last_stats
    summary = {
        "kind": cfg["kind"],
        "final_time": float(edges[-1]),
        "steps": sim.steps_taken,
        "snapshots": written,
        "checkpoint": str(ckpt_path) if ckpt_path is not None else None,
        "resumed_from": str(resume) if resume is not None else None,
        "interactions_last_pp": int(stats.interactions) if stats else 0,
        "mean_group_size": float(stats.mean_group_size) if stats else 0.0,
        "mean_list_length": float(stats.mean_list_length) if stats else 0.0,
    }
    log(
        f"done: {sim.steps_taken} steps, <Ni> = "
        f"{summary['mean_group_size']:.1f}, <Nj> = "
        f"{summary['mean_list_length']:.1f}"
    )
    return summary


def _describe_manifest(step_dir: Path, manifest: Dict[str, Any], log=print) -> None:
    schedule = manifest.get("schedule", {})
    log(f"checkpoint: {step_dir}")
    log(
        f"  ranks: {manifest['n_ranks']}, particles: "
        f"{manifest.get('total_particles', '?')}, steps taken: "
        f"{manifest['steps_taken']}"
    )
    if "next_step" in schedule:
        log(
            f"  schedule: resume at step {schedule['next_step']}"
            + (
                f" of {schedule['n_steps']} "
                f"(t = {schedule['t_start']} -> {schedule['t_end']})"
                if "n_steps" in schedule
                else ""
            )
        )
    log(f"  config hash: {manifest['config_hash'][:12]}...")


def _ckpt_command(args) -> int:
    """`repro ckpt ...`: operator tooling for the distributed
    checkpoint sets the elastic disk-fallback restores from."""
    from repro.sim import checkpoint as _ckpt
    from repro.sim.checkpoint import CheckpointError

    try:
        if args.ckpt_command == "latest":
            step_dir = _ckpt.latest_checkpoint(args.dir)
            manifest = _ckpt.read_manifest(step_dir)
            _describe_manifest(step_dir, manifest)
            return 0
        if args.ckpt_command == "scrub":
            reports = _ckpt.scrub_checkpoints(args.dir)
            if not reports:
                print(f"INVALID: no checkpoints under '{args.dir}'",
                      file=sys.stderr)
                return 1
            bad = 0
            for rep in reports:
                name = Path(rep["step_dir"]).name
                if rep["ok"]:
                    print(f"OK      {name}")
                else:
                    bad += 1
                    print(f"INVALID {name}: {rep['error']}", file=sys.stderr)
            verdict = f"{bad} failed" if bad else "all clean"
            print(f"scrubbed {len(reports)} epoch(s), {verdict}")
            return 1 if bad else 0
        # validate: accept either a checkpoint root or a bare step dir
        target = Path(args.dir)
        step_dir = (
            target
            if (target / _ckpt.MANIFEST_NAME).exists()
            else _ckpt.latest_checkpoint(target)
        )
        manifest = _ckpt.validate_checkpoint(step_dir)
    except CheckpointError as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    _describe_manifest(step_dir, manifest)
    print(f"OK: {manifest['n_ranks']} rank file(s) verified")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GreeM-style TreePM N-body simulations (SC12 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    run_p = sub.add_parser("run", help="run a simulation from a JSON config")
    run_p.add_argument("config", type=Path, help="path to the JSON config")
    run_p.add_argument(
        "--summary", type=Path, default=None,
        help="also write the run summary as JSON",
    )
    run_p.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="write an atomic rolling checkpoint every N steps",
    )
    run_p.add_argument(
        "--checkpoint-dir", type=Path, default=None,
        help="directory for checkpoint.npz (default: output_dir)",
    )
    run_p.add_argument(
        "--resume", type=Path, default=None,
        help="resume from a checkpoint written by --checkpoint-every",
    )
    run_p.add_argument(
        "--backend", choices=_BACKEND_CHOICES, default=None,
        help="communicator backend: serial (default), thread (in-process "
        "SPMD ranks), multiprocess (supervised OS processes), or mpi4py "
        "(under mpiexec; needs mpi4py installed) — see docs/parallelism.md",
    )
    run_p.add_argument(
        "--ranks", type=int, default=None, metavar="N",
        help="number of SPMD ranks for parallel backends (default 1)",
    )
    run_p.add_argument(
        "--validate", choices=("off", "warn", "abort", "dump"), default=None,
        help="runtime invariant checks: warn, abort on violation, or "
        "dump a diagnostic checkpoint and abort (see docs/validation.md)",
    )
    run_p.add_argument(
        "--validate-every", type=int, default=None, metavar="N",
        help="evaluate invariant checks every N steps (default 1)",
    )
    run_p.add_argument(
        "--energy-tol", type=float, default=None, metavar="TOL",
        help="relative energy-drift tolerance (implies the energy "
        "monitor: sets energy_every to 1 unless configured)",
    )
    run_p.add_argument(
        "--sdc-policy", choices=("off", "warn", "heal", "abort"), default=None,
        help="silent-data-corruption audits: warn, heal in place (buddy "
        "replica or rollback), or abort on detection "
        "(see docs/fault_tolerance.md)",
    )
    run_p.add_argument(
        "--sdc-audit-every", type=int, default=None, metavar="N",
        help="run the SDC audits every N steps (default 1)",
    )
    run_p.add_argument(
        "--health-policy", choices=("off", "monitor", "evict", "degrade"),
        default=None,
        help="gray-failure tolerance: monitor stragglers, proactively "
        "evict them (cooperative drain + elastic shrink), or degrade "
        "gracefully without shrinking (see docs/fault_tolerance.md)",
    )
    run_p.add_argument(
        "--straggler-factor", type=float, default=None, metavar="F",
        help="a rank is suspect when its per-step work time exceeds F "
        "times the fleet median (default 3.0)",
    )
    run_p.add_argument(
        "--straggler-patience", type=int, default=None, metavar="K",
        help="consecutive slow steps before a suspect is confirmed "
        "(default 3)",
    )
    info_p = sub.add_parser("info", help="print version and paper reference")
    ckpt_p = sub.add_parser(
        "ckpt",
        help="inspect distributed checkpoint sets (the elastic-recovery "
        "disk-fallback state)",
    )
    ckpt_sub = ckpt_p.add_subparsers(dest="ckpt_command", required=True)
    ckpt_val = ckpt_sub.add_parser(
        "validate",
        help="verify a checkpoint set: manifest, per-rank files, digests",
    )
    ckpt_val.add_argument(
        "dir", type=Path,
        help="checkpoint directory (or one step_* directory)",
    )
    ckpt_latest = ckpt_sub.add_parser(
        "latest", help="resolve and describe the newest complete checkpoint"
    )
    ckpt_latest.add_argument("dir", type=Path, help="checkpoint directory")
    ckpt_scrub = ckpt_sub.add_parser(
        "scrub",
        help="verify every retained checkpoint epoch against its recorded "
        "digests; non-zero exit if any shows bit-rot",
    )
    ckpt_scrub.add_argument("dir", type=Path, help="checkpoint directory")

    args = parser.parse_args(argv)
    if args.command == "ckpt":
        return _ckpt_command(args)
    if args.command == "info":
        from repro import __version__

        print(f"repro {__version__}")
        print(
            "Reproduction of Ishiyama, Nitadori & Makino (SC12): "
            "'4.45 Pflops Astrophysical N-Body Simulation on K computer'"
        )
        return 0

    config = json.loads(args.config.read_text())
    if args.backend is not None:
        config["backend"] = args.backend
    if args.ranks is not None:
        config["ranks"] = args.ranks
        if args.backend is None:
            config.setdefault("backend", "thread")
    if args.validate is not None:
        config["validate"] = args.validate
    if args.validate_every is not None:
        config["validate_every"] = args.validate_every
    if args.energy_tol is not None:
        config["energy_tol"] = args.energy_tol
        config.setdefault("energy_every", 1)
    if args.sdc_policy is not None:
        config["sdc_policy"] = args.sdc_policy
    if args.sdc_audit_every is not None:
        config["sdc_audit_every"] = args.sdc_audit_every
    if args.health_policy is not None:
        config["health_policy"] = args.health_policy
    if args.straggler_factor is not None:
        config["straggler_factor"] = args.straggler_factor
    if args.straggler_patience is not None:
        config["straggler_patience"] = args.straggler_patience
    summary = run_from_config(
        config,
        checkpoint_every=args.checkpoint_every,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
    )
    if args.summary:
        args.summary.write_text(json.dumps(summary, indent=2) + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
