"""Matter power spectrum measured from particles.

Assigns particles to a mesh, corrects the assignment window, subtracts
Poisson shot noise and bins spherically — the standard estimator used
to verify that simulated structure growth follows linear theory.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.ic.grf import measure_power_spectrum
from repro.mesh.assignment import assign_mass, window_ft
from repro.mesh.greens import kvectors

__all__ = ["particle_power_spectrum"]


def particle_power_spectrum(
    pos: np.ndarray,
    mass: np.ndarray,
    n_mesh: int = 64,
    box: float = 1.0,
    scheme: str = "cic",
    n_bins: int = 16,
    subtract_shot_noise: bool = True,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Measure P(k) of the particle distribution.

    Returns ``(k, P(k), mode_counts)`` with k in radians per length
    unit of ``box``.
    """
    pos = np.asarray(pos, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    mesh = assign_mass(pos, mass, n_mesh, box, scheme=scheme)
    mean = mesh.mean()
    if mean <= 0:
        raise ValueError("empty particle set")
    delta = mesh / mean - 1.0

    # deconvolve the assignment window in k space before binning
    dk = np.fft.rfftn(delta)
    kx, ky, kz = kvectors(n_mesh, box)
    h = box / n_mesh
    w = window_ft(scheme, kx, h) * window_ft(scheme, ky, h) * window_ft(scheme, kz, h)
    dk = dk / w
    delta = np.fft.irfftn(dk, s=delta.shape, axes=(0, 1, 2))

    k, pk, counts = measure_power_spectrum(delta, box=box, n_bins=n_bins)
    if subtract_shot_noise:
        # Poisson noise of N_eff = (sum m)^2 / sum m^2 tracers
        n_eff = mass.sum() ** 2 / np.sum(mass**2)
        pk = pk - box**3 / n_eff
    return k, pk, counts
