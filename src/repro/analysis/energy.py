"""The Layzer-Irvine cosmic energy equation.

For comoving coordinates the total peculiar energy obeys

    d/dt (K + W) = -H (2K + W)       <=>      d/da [a (K + W)] = -K,

with K the peculiar kinetic energy and W the peculiar potential energy
(the comoving-potential energy divided by a).  Integrated between two
epochs:

    [a (K + W)]_1^2 + int_{a1}^{a2} K da = 0.

This is the standard global validation of a cosmological N-body
integrator: it couples the force solver, the expansion factors and the
kick/drift operators, and any systematic inconsistency among them shows
up as a non-zero residual.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

__all__ = ["LayzerIrvineTracker"]


@dataclass
class LayzerIrvineTracker:
    """Accumulates (a, K, W) samples and evaluates the energy equation.

    ``record`` expects the *comoving* potential energy ``W_c`` (what
    the TreePM solver computes from comoving positions); the peculiar
    potential energy is ``W = W_c / a``.
    """

    a: List[float] = field(default_factory=list)
    kinetic: List[float] = field(default_factory=list)
    potential: List[float] = field(default_factory=list)

    def record(self, a: float, kinetic: float, comoving_potential: float) -> None:
        if self.a and a <= self.a[-1]:
            raise ValueError("samples must be recorded at increasing a")
        self.a.append(float(a))
        self.kinetic.append(float(kinetic))
        self.potential.append(float(comoving_potential) / float(a))

    @property
    def n_samples(self) -> int:
        return len(self.a)

    def boundary_term(self) -> float:
        """``[a (K + W)]`` between the first and last sample."""
        if self.n_samples < 2:
            raise ValueError("need at least two samples")
        first = self.a[0] * (self.kinetic[0] + self.potential[0])
        last = self.a[-1] * (self.kinetic[-1] + self.potential[-1])
        return last - first

    def work_integral(self) -> float:
        """``int K da`` over the recorded history (trapezoid rule)."""
        if self.n_samples < 2:
            raise ValueError("need at least two samples")
        return float(np.trapezoid(self.kinetic, self.a))

    def residual(self) -> float:
        """``[a(K+W)] + int K da`` — zero for a perfect integration."""
        return self.boundary_term() + self.work_integral()

    def relative_violation(self) -> float:
        """Residual normalized by the energy scale of the evolution."""
        scale = max(
            abs(self.boundary_term()),
            abs(self.work_integral()),
            self.a[-1] * max(abs(k) + abs(w) for k, w in zip(self.kinetic, self.potential)),
        )
        if scale == 0.0:
            return 0.0
        return abs(self.residual()) / scale
