"""Analysis tools for simulation outputs.

Everything needed to regenerate the paper's science-side artifacts:
density projections (Figure 6's snapshot images and zoom-ins), the
matter power spectrum measured from particles, a friends-of-friends
halo finder for the "smallest dark matter structures", radial profiles
and the annihilation-relevant clumping statistics.
"""

from repro.analysis.projection import density_projection, zoom_projection
from repro.analysis.power import particle_power_spectrum
from repro.analysis.fof import friends_of_friends, halo_catalog
from repro.analysis.profiles import (
    clumping_factor,
    fit_nfw,
    nfw_density,
    radial_profile,
)
from repro.analysis.statistics import halo_mass_function, two_point_correlation
from repro.analysis.energy import LayzerIrvineTracker
from repro.analysis.halo_properties import HaloProperties, halo_properties

__all__ = [
    "LayzerIrvineTracker",
    "HaloProperties",
    "halo_properties",
    "density_projection",
    "zoom_projection",
    "particle_power_spectrum",
    "friends_of_friends",
    "halo_catalog",
    "radial_profile",
    "clumping_factor",
    "fit_nfw",
    "nfw_density",
    "halo_mass_function",
    "two_point_correlation",
]
