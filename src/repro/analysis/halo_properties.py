"""Per-halo structural properties.

The paper's science driver is the *internal structure* of the smallest
dark matter halos ("the central density of the smallest dark matter
structures is very high... the annihilation signals could be observable
as gamma-ray point-sources").  This module measures the quantities that
question turns on: half-mass radii, velocity dispersions, virial
ratios, central densities and NFW concentrations of FoF halos.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.fof import Halo
from repro.analysis.profiles import fit_nfw, radial_profile
from repro.utils.periodic import minimum_image

__all__ = ["HaloProperties", "halo_properties"]


@dataclass(frozen=True)
class HaloProperties:
    """Structural summary of one halo."""

    n_particles: int
    mass: float
    center: np.ndarray
    half_mass_radius: float
    velocity_dispersion: float
    bulk_velocity: np.ndarray
    virial_ratio: float
    central_density: float
    nfw_r_s: Optional[float]
    nfw_rho_s: Optional[float]

    @property
    def concentration(self) -> Optional[float]:
        """Half-mass-radius-based concentration proxy ``r_half / r_s``."""
        if self.nfw_r_s is None:
            return None
        return self.half_mass_radius / self.nfw_r_s


def halo_properties(
    halo: Halo,
    pos: np.ndarray,
    vel: np.ndarray,
    mass: np.ndarray,
    box: float = 1.0,
    G: float = 1.0,
    eps: float = 0.0,
    fit_profile: bool = True,
) -> HaloProperties:
    """Measure the structural properties of one FoF halo.

    ``vel`` are physical/peculiar velocities (for cosmological runs
    convert momenta first: ``v = p / a``).  The virial ratio is
    ``2K / |W|`` with W from direct summation over the members
    (suitable for the small member counts of microhalos).
    """
    idx = halo.members
    if len(idx) < 2:
        raise ValueError("halo needs at least two members")
    p = pos[idx]
    v = vel[idx]
    m = mass[idx]

    d = minimum_image(p - halo.center, box)
    r = np.sqrt(np.einsum("ij,ij->i", d, d))
    order = np.argsort(r)
    cum = np.cumsum(m[order])
    half_idx = int(np.searchsorted(cum, 0.5 * cum[-1]))
    r_half = float(r[order][min(half_idx, len(r) - 1)])

    mtot = float(m.sum())
    vbulk = (m[:, None] * v).sum(axis=0) / mtot
    dv = v - vbulk
    sigma2 = float((m * np.einsum("ij,ij->i", dv, dv)).sum() / mtot)

    kinetic = 0.5 * mtot * sigma2
    from repro.forces.direct import direct_potential_open

    phi = direct_potential_open(d, m, eps=eps, G=G)
    potential = 0.5 * float((m * phi).sum())
    virial = 2.0 * kinetic / abs(potential) if potential != 0 else np.inf

    # central density: mean within r_half / 4 (floored to the innermost
    # few particles' radius so the sphere is never empty)
    rc = max(float(r[order][min(4, len(r) - 1)]), r_half / 4.0)
    inside = r <= rc
    central = float(m[inside].sum() / (4.0 / 3.0 * np.pi * rc**3))

    nfw_r_s = nfw_rho_s = None
    if fit_profile and len(idx) >= 50:
        try:
            r_mid, rho, counts = radial_profile(
                p, m, halo.center, r_min=max(rc / 4, 1e-5),
                r_max=max(2.5 * r_half, rc), n_bins=10, box=box,
            )
            rho_s, r_s, rms = fit_nfw(r_mid, rho, weights=counts)
            if rms < 1.0:
                nfw_r_s, nfw_rho_s = r_s, rho_s
        except ValueError:
            pass

    return HaloProperties(
        n_particles=len(idx),
        mass=mtot,
        center=np.asarray(halo.center),
        half_mass_radius=r_half,
        velocity_dispersion=float(np.sqrt(sigma2)),
        bulk_velocity=vbulk,
        virial_ratio=float(virial),
        central_density=central,
        nfw_r_s=nfw_r_s,
        nfw_rho_s=nfw_rho_s,
    )
