"""Radial density profiles and clumping statistics.

The paper's science target is the inner structure of the smallest
dark-matter halos (their central density sets the annihilation signal,
which scales with the square of the density).  :func:`radial_profile`
measures rho(r) around a center; :func:`clumping_factor` measures
``<rho^2> / <rho>^2``, the boost factor of the annihilation rate.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.mesh.assignment import assign_mass
from repro.utils.periodic import minimum_image

__all__ = ["radial_profile", "clumping_factor", "fit_nfw", "nfw_density"]


def nfw_density(r: np.ndarray, rho_s: float, r_s: float) -> np.ndarray:
    """Navarro-Frenk-White profile ``rho_s / [(r/r_s)(1 + r/r_s)^2]``."""
    x = np.asarray(r, dtype=np.float64) / r_s
    return rho_s / (x * (1.0 + x) ** 2)


def fit_nfw(
    r: np.ndarray,
    rho: np.ndarray,
    weights: np.ndarray | None = None,
):
    """Least-squares NFW fit in log density.

    Returns ``(rho_s, r_s, rms_log_residual)``.  Bins with
    non-positive density are ignored; raises if fewer than three usable
    bins remain (an NFW fit needs to see the slope change).
    """
    from scipy.optimize import least_squares

    r = np.asarray(r, dtype=np.float64)
    rho = np.asarray(rho, dtype=np.float64)
    good = rho > 0
    if weights is not None:
        good &= np.asarray(weights) > 0
    if good.sum() < 3:
        raise ValueError("need at least three usable profile bins")
    rg, dg = r[good], rho[good]
    w = np.ones(good.sum()) if weights is None else np.sqrt(
        np.asarray(weights, dtype=np.float64)[good]
    )

    def residual(p):
        log_rho_s, log_r_s = p
        model = nfw_density(rg, np.exp(log_rho_s), np.exp(log_r_s))
        return w * (np.log(model) - np.log(dg))

    # initial guess: r_s at the geometric mid-radius
    r_s0 = np.sqrt(rg[0] * rg[-1])
    rho_s0 = np.interp(r_s0, rg, dg) * 4.0  # rho(r_s) = rho_s / 4
    sol = least_squares(residual, [np.log(rho_s0), np.log(r_s0)])
    rho_s, r_s = np.exp(sol.x)
    rms = float(np.sqrt(np.mean((residual(sol.x) / np.maximum(w, 1e-30)) ** 2)))
    return float(rho_s), float(r_s), rms


def radial_profile(
    pos: np.ndarray,
    mass: np.ndarray,
    center: np.ndarray,
    r_min: float,
    r_max: float,
    n_bins: int = 16,
    box: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Spherically averaged density profile about ``center``.

    Returns ``(r_mid, rho, counts)`` with logarithmic bins between
    ``r_min`` and ``r_max`` (periodic distances).
    """
    if not 0 < r_min < r_max <= box / 2:
        raise ValueError("need 0 < r_min < r_max <= box/2")
    pos = np.asarray(pos, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    d = minimum_image(pos - np.asarray(center), box)
    r = np.sqrt(np.einsum("ij,ij->i", d, d))
    edges = np.geomspace(r_min, r_max, n_bins + 1)
    idx = np.digitize(r, edges) - 1
    good = (idx >= 0) & (idx < n_bins)
    msum = np.bincount(idx[good], weights=mass[good], minlength=n_bins)
    counts = np.bincount(idx[good], minlength=n_bins)
    shell_vol = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    r_mid = np.sqrt(edges[:-1] * edges[1:])
    return r_mid, msum / shell_vol, counts


def clumping_factor(
    pos: np.ndarray,
    mass: np.ndarray,
    n_mesh: int = 32,
    box: float = 1.0,
    scheme: str = "cic",
) -> float:
    """Annihilation boost ``<rho^2> / <rho>^2`` on a mesh.

    Grows from ~1 (near-uniform initial conditions) as structure forms
    — the quantity behind the paper's gamma-ray motivation.
    """
    mesh = assign_mass(pos, mass, n_mesh, box, scheme=scheme)
    mean = mesh.mean()
    if mean <= 0:
        raise ValueError("empty particle set")
    return float((mesh**2).mean() / mean**2)
