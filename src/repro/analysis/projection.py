"""Density projections: the data behind Figure 6.

The paper's snapshot images are surface-density maps of the full box
(600 comoving parsecs) at z = 400, 70, 40 and 31, with two zoom-ins.
These functions produce the corresponding 2-D arrays.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["density_projection", "zoom_projection"]


def density_projection(
    pos: np.ndarray,
    mass: np.ndarray,
    n_pixels: int = 128,
    axis: int = 2,
    box: float = 1.0,
) -> np.ndarray:
    """Surface density projected along ``axis``.

    Returns an ``(n_pixels, n_pixels)`` array of projected mass per
    pixel area (total mass preserved).
    """
    if n_pixels < 1:
        raise ValueError("n_pixels must be positive")
    if axis not in (0, 1, 2):
        raise ValueError("axis must be 0, 1 or 2")
    pos = np.asarray(pos, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    keep = [d for d in range(3) if d != axis]
    h, _, _ = np.histogram2d(
        pos[:, keep[0]],
        pos[:, keep[1]],
        bins=n_pixels,
        range=[[0, box], [0, box]],
        weights=mass,
    )
    pixel_area = (box / n_pixels) ** 2
    return h / pixel_area


def zoom_projection(
    pos: np.ndarray,
    mass: np.ndarray,
    center: Tuple[float, float],
    width: float,
    n_pixels: int = 128,
    axis: int = 2,
    box: float = 1.0,
) -> np.ndarray:
    """Zoomed surface density around ``center`` (periodic wrapping).

    The paper's bottom-left / bottom-middle panels are zooms of 37.5
    and 150 pc of the 600 pc box — i.e. widths of 1/16 and 1/4 of the
    box.
    """
    if not 0 < width <= box:
        raise ValueError("width must be in (0, box]")
    pos = np.asarray(pos, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    keep = [d for d in range(3) if d != axis]
    u = np.mod(pos[:, keep[0]] - center[0] + width / 2, box)
    v = np.mod(pos[:, keep[1]] - center[1] + width / 2, box)
    sel = (u < width) & (v < width)
    h, _, _ = np.histogram2d(
        u[sel], v[sel], bins=n_pixels, range=[[0, width], [0, width]],
        weights=mass[sel],
    )
    return h / (width / n_pixels) ** 2
