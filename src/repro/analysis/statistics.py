"""Clustering statistics: halo mass function and correlation function.

The science-side quantities large cosmological runs exist to measure:
the abundance of collapsed structures (the paper's smallest dark matter
halos) and the two-point clustering of the particle field.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
from scipy.spatial import cKDTree

from repro.analysis.fof import Halo

__all__ = ["halo_mass_function", "two_point_correlation"]


def halo_mass_function(
    halos: List[Halo],
    n_bins: int = 8,
    box: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Cumulative mass function n(>M): comoving number density of halos
    above each mass threshold.

    Returns ``(mass_thresholds, n_cumulative)``; thresholds are
    log-spaced over the catalog's mass range.
    """
    if not halos:
        raise ValueError("empty halo catalog")
    masses = np.array([h.mass for h in halos])
    lo, hi = masses.min(), masses.max()
    if lo == hi:
        thresholds = np.array([lo])
    else:
        thresholds = np.geomspace(lo, hi, n_bins)
    volume = box**3
    n_cum = np.array([(masses >= t).sum() / volume for t in thresholds])
    return thresholds, n_cum


def two_point_correlation(
    pos: np.ndarray,
    r_edges: np.ndarray,
    box: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Two-point correlation function xi(r) by periodic pair counting.

    Uses the analytic random-pair expectation of a periodic box (no
    random catalog needed): ``xi = DD / RR - 1`` with
    ``RR = N(N-1)/2 * V_shell / V_box``.

    Returns ``(r_mid, xi)``.
    """
    pos = np.asarray(pos, dtype=np.float64)
    r_edges = np.asarray(r_edges, dtype=np.float64)
    if np.any(np.diff(r_edges) <= 0) or r_edges[0] < 0:
        raise ValueError("r_edges must be increasing and non-negative")
    if r_edges[-1] >= box / 2:
        raise ValueError("largest r must be < box/2 (periodic counting)")
    n = len(pos)
    if n < 2:
        raise ValueError("need at least two particles")
    tree = cKDTree(np.mod(pos, box), boxsize=box)
    # cumulative pair counts within each edge
    cum = np.array(
        [tree.count_neighbors(tree, r) for r in r_edges], dtype=np.float64
    )
    # count_neighbors includes self pairs (distance 0) and both
    # orderings: convert to unique pair counts
    dd = (np.diff(cum)) / 2.0
    shell_vol = 4.0 / 3.0 * np.pi * np.diff(r_edges**3)
    rr = n * (n - 1) / 2.0 * shell_vol / box**3
    with np.errstate(divide="ignore", invalid="ignore"):
        xi = np.where(rr > 0, dd / rr - 1.0, 0.0)
    r_mid = np.sqrt(r_edges[:-1] * r_edges[1:])
    return r_mid, xi
