"""Friends-of-friends halo finder.

Links particles within ``b`` times the mean interparticle separation
(periodic metric) and returns connected components — the standard
definition of the paper's "dark matter structures", which it resolves
with >~ 1e5 particles each at full scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np
from scipy.spatial import cKDTree

__all__ = ["friends_of_friends", "halo_catalog", "Halo"]


class _UnionFind:
    def __init__(self, n: int) -> None:
        self.parent = np.arange(n)

    def find(self, i: int) -> int:
        root = i
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[i] != root:  # path compression
            self.parent[i], i = root, self.parent[i]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def friends_of_friends(
    pos: np.ndarray,
    linking_length: float,
    box: float = 1.0,
) -> np.ndarray:
    """Group labels (0..n_groups-1) for every particle.

    ``linking_length`` is the absolute linking distance; for the
    conventional ``b = 0.2`` convention pass
    ``0.2 * box / n_per_dim``.
    """
    pos = np.asarray(pos, dtype=np.float64)
    if linking_length <= 0:
        raise ValueError("linking_length must be positive")
    if linking_length >= box / 2:
        raise ValueError("linking_length must be < box/2")
    tree = cKDTree(np.mod(pos, box), boxsize=box)
    pairs = tree.query_pairs(linking_length, output_type="ndarray")
    uf = _UnionFind(len(pos))
    for a, b in pairs:
        uf.union(int(a), int(b))
    roots = np.array([uf.find(i) for i in range(len(pos))])
    _, labels = np.unique(roots, return_inverse=True)
    return labels


@dataclass(frozen=True)
class Halo:
    """A friends-of-friends group."""

    members: np.ndarray  # particle indices
    mass: float
    center: np.ndarray  # periodic center of mass

    @property
    def n_particles(self) -> int:
        return len(self.members)


def _periodic_com(pos: np.ndarray, mass: np.ndarray, box: float) -> np.ndarray:
    """Center of mass on a torus (circular-mean trick per dimension)."""
    theta = 2.0 * np.pi * pos / box
    w = mass / mass.sum()
    x = (w[:, None] * np.cos(theta)).sum(axis=0)
    y = (w[:, None] * np.sin(theta)).sum(axis=0)
    ang = np.arctan2(y, x)
    return np.mod(ang / (2.0 * np.pi) * box, box)


def halo_catalog(
    pos: np.ndarray,
    mass: np.ndarray,
    linking_length: float,
    box: float = 1.0,
    min_members: int = 20,
) -> List[Halo]:
    """FoF halos with at least ``min_members`` particles, sorted by
    decreasing mass."""
    pos = np.asarray(pos, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    labels = friends_of_friends(pos, linking_length, box)
    halos: List[Halo] = []
    for lbl in range(labels.max() + 1):
        members = np.flatnonzero(labels == lbl)
        if len(members) < min_members:
            continue
        m = mass[members]
        halos.append(
            Halo(
                members=members,
                mass=float(m.sum()),
                center=_periodic_com(pos[members], m, box),
            )
        )
    halos.sort(key=lambda h: -h.mass)
    return halos
