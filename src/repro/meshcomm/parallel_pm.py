"""The distributed PM cycle: GreeM's five steps, both conversion methods.

A :class:`ParallelPM` instance lives on every rank of an SPMD job and
executes the paper's PM procedure:

1. density assignment onto the rank's local (ghosted) mesh,
2. conversion of the 3-D-decomposed density to 1-D FFT slabs
   (straightforward global all-to-all, or the relay mesh method),
3. parallel FFT + convolution with the long-range Green's function
   (COMM_FFT only; other ranks wait, as in the paper),
4. conversion of the slab potential back to local meshes,
5. four-point finite differences and TSC force interpolation.

With ``n_groups = 1`` the relay structure degenerates exactly to the
straightforward method; with ``n_groups > 1`` the global exchange is
replaced by one all-to-all inside each group (COMM_SMALLA2A), a
reduction of partial slabs onto the root group (COMM_REDUCE), and a
broadcast back (steps and communicator names follow the paper, Fig. 5).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.mesh.assignment import assign_mass_local, interpolate_local
from repro.mesh.differentiate import gradient_block
from repro.mesh.greens import build_greens_function
from repro.meshcomm.convert import local_to_slab, slab_to_local
from repro.meshcomm.parallel_fft import SlabFFT
from repro.meshcomm.slab import LocalMeshRegion, SlabDecomposition
from repro.utils.timer import TimingLedger

__all__ = ["ParallelPM"]

#: ghost width of the density mesh (TSC stencil reach = 1, +1 safety)
DENSITY_GHOST = 2
#: ghost width of the potential mesh (4-point differencing needs 2,
#: plus 1 for the interpolation stencil of the force mesh)
POTENTIAL_GHOST = 3


class ParallelPM:
    """Distributed long-range force solver on an SPMD communicator.

    Parameters
    ----------
    comm:
        World communicator of the SPMD job.
    n:
        Global PM mesh size per dimension.
    split:
        Force split shaping the Green's function (``None`` = pure PM).
    n_fft:
        Number of FFT processes (default ``min(size, n)``; the 1-D
        slab limit caps it at ``n``).
    n_groups:
        Relay mesh groups; 1 = the straightforward method.  Every group
        must contain at least ``n_fft`` ranks.
    """

    def __init__(
        self,
        comm,
        n: int,
        box: float = 1.0,
        split=None,
        G: float = 1.0,
        n_fft: Optional[int] = None,
        n_groups: int = 1,
        assignment: str = "tsc",
        deconvolve: Optional[int] = None,
        differencing: str = "four_point",
    ) -> None:
        self.comm = comm
        self.n = int(n)
        self.box = float(box)
        self.split = split
        self.G = float(G)
        self.assignment = assignment
        self.differencing = differencing
        if deconvolve is None:
            deconvolve = 2 if split is not None else 1
        if n_fft is None:
            n_fft = min(comm.size, self.n)
        if not 1 <= n_fft <= min(comm.size, self.n):
            raise ValueError("n_fft must be in [1, min(size, n)]")
        if n_groups < 1 or n_groups * n_fft > comm.size:
            raise ValueError(
                f"need n_groups * n_fft <= comm size "
                f"({n_groups} * {n_fft} > {comm.size})"
            )
        self.n_fft = int(n_fft)
        self.n_groups = int(n_groups)
        self.slabs = SlabDecomposition(self.n, self.n_fft)

        # contiguous group blocks; group 0 (the root group) holds the
        # FFT processes
        base, extra = divmod(comm.size, self.n_groups)
        sizes = [base + (1 if g < extra else 0) for g in range(self.n_groups)]
        starts = np.concatenate([[0], np.cumsum(sizes)])
        rank = comm.rank
        self.group = int(np.searchsorted(starts, rank, side="right") - 1)
        self.rank_in_group = rank - int(starts[self.group])

        # COMM_SMALLA2A: all ranks of one group
        self.comm_small = comm.split(color=self.group)
        # COMM_REDUCE: same slab-holder position across groups (root =
        # the member from group 0, which has the smallest world rank)
        is_holder = self.rank_in_group < self.n_fft
        self.comm_reduce = comm.split(color=self.rank_in_group if is_holder else None)
        # COMM_FFT: the root group's slab holders
        self.comm_fft = comm.split(
            color=0 if (self.group == 0 and is_holder) else None
        )
        self.is_fft_rank = self.comm_fft is not None
        self.is_holder = is_holder

        if self.is_fft_rank:
            self.fft = SlabFFT(self.comm_fft, self.n)
            greens_full = build_greens_function(
                self.n,
                box=self.box,
                split=split,
                G=G,
                assignment=assignment,
                deconvolve=deconvolve,
            )
            self.greens_slab = self.fft.greens_slice(greens_full)
        else:
            self.fft = None
            self.greens_slab = None

    # -- region helpers -----------------------------------------------------------

    def density_region(self, dom_lo, dom_hi) -> LocalMeshRegion:
        """Local density-mesh region for a spatial domain."""
        return LocalMeshRegion.from_domain(
            self.n, dom_lo, dom_hi, self.box, DENSITY_GHOST
        )

    def potential_region(self, dom_lo, dom_hi) -> LocalMeshRegion:
        """Local potential-mesh region for a spatial domain."""
        return LocalMeshRegion.from_domain(
            self.n, dom_lo, dom_hi, self.box, POTENTIAL_GHOST
        )

    # -- the PM cycle ---------------------------------------------------------------

    def solve_potential_slabs(
        self, local_rho: Optional[np.ndarray], region: Optional[LocalMeshRegion]
    ) -> Optional[np.ndarray]:
        """Steps 2-3: density conversion + FFT; returns the potential
        slab on FFT ranks, ``None`` elsewhere.  No timing/backwards
        conversion — building block for tests and the relay benchmark."""
        partial = local_to_slab(self.comm_small, local_rho, region, self.slabs)
        complete = None
        if self.is_holder:
            complete = self.comm_reduce.reduce(partial, op="sum", root=0)
        if self.is_fft_rank:
            return self.fft.convolve(complete, self.greens_slab)
        return None

    def forces(
        self,
        pos: np.ndarray,
        mass: np.ndarray,
        dom_lo,
        dom_hi,
        timing: Optional[TimingLedger] = None,
        validator=None,
    ) -> np.ndarray:
        """The full PM cycle for this rank's particles.

        ``pos``/``mass`` are the particles owned by this rank, all
        inside ``[dom_lo, dom_hi)``.  Returns their long-range
        accelerations.  Phase timings use the paper's Table I row names;
        traffic phases ``pm:*`` are recorded for the network model.

        ``validator`` (a :class:`repro.validate.Validator`) enables mass
        conservation checks through the assignment and the relay/slab
        conversion, plus a finite-field sweep of the returned
        accelerations.  All validator traffic is collective, so every
        rank must pass the same validator (or none).
        """
        timing = timing if timing is not None else TimingLedger()
        rho_region = self.density_region(dom_lo, dom_hi)
        pot_region = self.potential_region(dom_lo, dom_hi)
        cell_vol = (self.box / self.n) ** 3

        # map each particle to its periodic image nearest the domain
        # center: a particle that drifted across the box boundary since
        # the last exchange would otherwise land far outside the local
        # (unwrapped) mesh window
        pos = np.asarray(pos, dtype=np.float64)
        center = 0.5 * (np.asarray(dom_lo) + np.asarray(dom_hi))
        pos = pos - self.box * np.round((pos - center) / self.box)

        with timing.phase("PM/density assignment"):
            local_rho = (
                assign_mass_local(pos, mass, rho_region, self.box, self.assignment)
                / cell_vol
            )

        check_mass = validator is not None and validator.check_enabled(
            "mass_conservation"
        )
        if check_mass:
            from repro.validate.checks import check_mesh_mass

            totals = self.comm.allreduce(
                np.array([local_rho.sum() * cell_vol, mass.sum()]), op="sum"
            )
            validator.handle(
                check_mesh_mass(
                    float(totals[0]),
                    float(totals[1]),
                    stage="mesh/assignment",
                    step=validator.step,
                    rank=self.comm.rank,
                )
            )

        self.comm.traffic_phase("pm:mesh_to_slab")
        with timing.phase("PM/communication"):
            partial = local_to_slab(self.comm_small, local_rho, rho_region, self.slabs)
            complete = None
            if self.is_holder:
                complete = self.comm_reduce.reduce(partial, op="sum", root=0)
        if check_mass:
            # the complete density slabs live on the FFT ranks only; the
            # allreduce shares the verdict so every rank agrees
            slab_sum = (
                float(complete.sum()) * cell_vol if self.is_fft_rank else 0.0
            )
            totals = self.comm.allreduce(np.array([slab_sum]), op="sum")
            validator.handle(
                check_mesh_mass(
                    float(totals[0]),
                    float(self.comm.allreduce(mass.sum(), op="sum")),
                    stage="meshcomm/convert",
                    step=validator.step,
                    rank=self.comm.rank,
                )
            )

        self.comm.traffic_phase("pm:fft")
        with timing.phase("PM/FFT"):
            phi_slab = None
            if self.is_fft_rank:
                phi_slab = self.fft.convolve(complete, self.greens_slab)
            self.comm.barrier()  # non-FFT processes "wait the end of FFT"

        self.comm.traffic_phase("pm:slab_to_mesh")
        with timing.phase("PM/communication"):
            if self.is_holder:
                phi_slab = self.comm_reduce.bcast(phi_slab, root=0)
            local_phi = slab_to_local(
                self.comm_small,
                phi_slab if self.is_holder else None,
                pot_region,
                self.slabs,
            )
        self.comm.traffic_phase("pm:done")

        with timing.phase("PM/acceleration on mesh"):
            grad = gradient_block(
                local_phi,
                self.box / self.n,
                scheme=self.differencing,
                trim=2,
            )

        with timing.phase("PM/force interpolation"):
            acc = -interpolate_local(
                grad, pos, pot_region, self.box, self.assignment, trim=2
            )
        if validator is not None and validator.check_enabled("finite_fields"):
            from repro.validate.checks import check_finite

            validator.handle_collective(
                self.comm,
                check_finite(
                    "pm_acc", acc, stage="treepm/pm",
                    step=validator.step, rank=self.comm.rank,
                ),
            )
        return acc
