"""Distributed PM machinery: mesh conversions, slab FFT, relay mesh.

The parallel FFT supports only a 1-D slab decomposition, while particles
live in a 3-D rectangular domain decomposition optimized for load
balance — so the density mesh must be converted 3-D -> 1-D before the
FFT and the potential 1-D -> 3-D after it (paper Fig. 4).  This package
implements both the straightforward global ``MPI_Alltoallv`` conversion
and the paper's novel *relay mesh method* (Fig. 5), which splits the
global exchange into one all-to-all inside small groups plus one
reduce/broadcast across groups, eliminating the ~p^(2/3)-senders-per-
FFT-process congestion.
"""

from repro.meshcomm.slab import LocalMeshRegion, SlabDecomposition
from repro.meshcomm.convert import (
    local_to_slab,
    slab_to_local,
)
from repro.meshcomm.parallel_fft import SlabFFT
from repro.meshcomm.pencil_fft import PencilFFT
from repro.meshcomm.parallel_pm import ParallelPM
from repro.meshcomm.parallel_pencil_pm import ParallelPencilPM
from repro.meshcomm.regions import redistribute

__all__ = [
    "LocalMeshRegion",
    "SlabDecomposition",
    "local_to_slab",
    "slab_to_local",
    "SlabFFT",
    "PencilFFT",
    "ParallelPM",
    "ParallelPencilPM",
    "redistribute",
]
