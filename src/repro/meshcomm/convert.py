"""Mesh-layout conversions: 3-D local rectangles <-> 1-D slabs.

These are the communication steps 2 and 4 of the paper's PM cycle: the
density assigned on each process's local mesh must reach the FFT
processes as complete x-slabs (receivers *sum* overlapping
contributions), and the slab potential must come back as each process's
local window (receivers *assemble*, every cell having exactly one
owner).

Both directions run over a single ``alltoall`` on the given
communicator, so the same code serves the straightforward global method
(communicator = world) and the within-group stage of the relay mesh
method (communicator = COMM_SMALLA2A).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.meshcomm.slab import LocalMeshRegion, SlabDecomposition

__all__ = ["local_to_slab", "slab_to_local"]


def _x_overlaps(
    lo: int, hi: int, a: int, b: int, n: int
) -> List[Tuple[int, int, int]]:
    """Overlaps of the unwrapped interval [lo, hi) with the slab range
    [a, b) under periodic images; yields (start_unwrapped, stop_unwrapped,
    image_shift) with the overlap being [a+shift, b+shift) ∩ [lo, hi)."""
    out = []
    # wide ghosted regions can span up to three box lengths unwrapped:
    # shifts of up to +-3n cover every case the validation admits
    for t in (-3 * n, -2 * n, -n, 0, n, 2 * n, 3 * n):
        s, e = max(lo, a + t), min(hi, b + t)
        if s < e:
            out.append((s, e, t))
    return out


def local_to_slab(
    comm,
    local: Optional[np.ndarray],
    region: Optional[LocalMeshRegion],
    slabs: SlabDecomposition,
) -> Optional[np.ndarray]:
    """Convert 3-D-decomposed local meshes to summed 1-D slabs.

    Every rank of ``comm`` calls this; ranks ``0 .. slabs.n_slabs - 1``
    receive and return their (complete, within this communicator) slab;
    other ranks return ``None``.  Ranks with no local mesh pass
    ``local=None``.
    """
    n = slabs.n
    sends: List[list] = [[] for _ in range(comm.size)]
    if local is not None:
        if local.shape != region.array_shape:
            raise ValueError("local array does not match its region")
        xlo, xhi = region.unwrapped_range(0)
        y_idx = region.wrapped_indices(1)
        z_idx = region.wrapped_indices(2)
        for dst in range(slabs.n_slabs):
            a, b = slabs.range_of(dst)
            for s, e, t in _x_overlaps(xlo, xhi, a, b, n):
                block = local[s - xlo : e - xlo]
                # x indices inside the destination slab
                meta = (s - t - a, y_idx, z_idx)
                sends[dst].append((meta, block))

    # reliable: transient injected drops/delays are retransmitted
    # instead of failing the PM cycle
    received = comm.alltoall(sends, reliable=True)

    if comm.rank >= slabs.n_slabs:
        return None
    slab = slabs.allocate(comm.rank)
    for messages in received:
        for (x0, y_idx, z_idx), block in messages:
            ix = x0 + np.arange(block.shape[0])
            np.add.at(
                slab,
                (ix[:, None, None], y_idx[None, :, None], z_idx[None, None, :]),
                block,
            )
    return slab


def slab_to_local(
    comm,
    slab: Optional[np.ndarray],
    region: Optional[LocalMeshRegion],
    slabs: SlabDecomposition,
) -> Optional[np.ndarray]:
    """Convert 1-D slabs back to each rank's 3-D local window.

    Slab owners (ranks ``0 .. n_slabs-1``) pass their ``slab``; every
    rank passes its ``region`` (or ``None`` for no local mesh) and gets
    its filled local array back.  All regions must be collectively known
    in advance, so regions are allgathered — matching GreeM, where the
    decomposition geometry is shared.
    """
    n = slabs.n
    all_regions = comm.allgather(region)

    sends: List[list] = [[] for _ in range(comm.size)]
    if comm.rank < slabs.n_slabs:
        if slab is None or slab.shape != slabs.shape_of(comm.rank):
            raise ValueError("slab owner must pass its slab array")
        a, b = slabs.range_of(comm.rank)
        for dst, reg in enumerate(all_regions):
            if reg is None:
                continue
            xlo, xhi = reg.unwrapped_range(0)
            y_idx = reg.wrapped_indices(1)
            z_idx = reg.wrapped_indices(2)
            for s, e, t in _x_overlaps(xlo, xhi, a, b, n):
                ix = np.arange(s - t - a, e - t - a)
                block = slab[ix[:, None, None], y_idx[None, :, None], z_idx[None, None, :]]
                sends[dst].append((s - xlo, block))

    received = comm.alltoall(sends, reliable=True)

    if region is None:
        return None
    out = np.empty(region.array_shape)
    filled = np.zeros(region.array_shape[0], dtype=bool)
    for messages in received:
        for x_off, block in messages:
            out[x_off : x_off + block.shape[0]] = block
            filled[x_off : x_off + block.shape[0]] = True
    if not filled.all():
        raise RuntimeError("slab_to_local: some local x-planes not received")
    return out
