"""2-D (pencil) decomposed parallel FFT — the paper's future work.

"The current bottleneck is FFT ... the combination of our novel relay
mesh method and a 3-D parallel FFT library will significantly improve
the performance and the scalability.  We aim to achieve peak
performance higher than 5 Pflops on the full system."

A pencil decomposition splits the mesh over a 2-D process grid
``(py, pz)``: in real space each rank owns full-x pencils
``(n, ny_i, nz_j)``, so up to ``n^2`` processes can participate —
lifting the 1-D slab FFT's ``n`` cap that pinned the paper's FFT time
constant between 24576 and 82944 nodes.

The transform runs three local 1-D FFTs with two block transposes, each
an alltoall *within one row or column* of the process grid (built with
``Comm_split``, like the relay mesh communicators):

    x-pencils --FFT_x--> (transpose in rows)  --> y-pencils --FFT_y-->
    (transpose in cols) --> z-pencils --FFT_z--> k-space

Complex transforms throughout (simplicity over the rfft memory saving);
the inverse reverses the pipeline.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.meshcomm.slab import SlabDecomposition

__all__ = ["PencilFFT"]


class PencilFFT:
    """Distributed 3-D FFT over a ``py x pz`` process grid.

    Parameters
    ----------
    comm:
        Communicator holding exactly ``py * pz`` ranks; rank
        ``r = i * pz + j`` sits at grid position (i, j).
    n:
        Global mesh points per dimension.
    grid:
        Process grid shape ``(py, pz)``; both must be <= n.
    """

    def __init__(self, comm, n: int, grid: Tuple[int, int]) -> None:
        py, pz = grid
        if py * pz != comm.size:
            raise ValueError("grid must multiply to the communicator size")
        if py > n or pz > n:
            raise ValueError("grid dimensions cannot exceed the mesh size")
        self.comm = comm
        self.n = int(n)
        self.py, self.pz = int(py), int(pz)
        self.row_id = comm.rank // self.pz  # position along y-split
        self.col_id = comm.rank % self.pz  # position along z-split
        self.ydec = SlabDecomposition(n, self.py)
        self.zdec = SlabDecomposition(n, self.pz)
        # x is split over rows during the y-pencil stage, and y over
        # columns during the z-pencil stage
        self.xdec = SlabDecomposition(n, self.py)
        self.y2dec = SlabDecomposition(n, self.pz)
        # row communicator: same col_id varies? rows share row_id
        self.comm_row = comm.split(color=self.col_id, key=self.row_id)
        self.comm_col = comm.split(color=self.row_id, key=self.col_id)

    # -- layout queries ---------------------------------------------------------

    def real_shape(self) -> Tuple[int, int, int]:
        """This rank's x-pencil shape (n, ny_local, nz_local)."""
        ya, yb = self.ydec.range_of(self.row_id)
        za, zb = self.zdec.range_of(self.col_id)
        return (self.n, yb - ya, zb - za)

    def kspace_shape(self) -> Tuple[int, int, int]:
        """This rank's z-pencil (k-space) shape (nx_local, ny_local, n)."""
        xa, xb = self.xdec.range_of(self.row_id)
        ya, yb = self.y2dec.range_of(self.col_id)
        return (xb - xa, yb - ya, self.n)

    def real_ranges(self):
        return (
            (0, self.n),
            self.ydec.range_of(self.row_id),
            self.zdec.range_of(self.col_id),
        )

    def kspace_ranges(self):
        return (
            self.xdec.range_of(self.row_id),
            self.y2dec.range_of(self.col_id),
            (0, self.n),
        )

    # -- transposes ----------------------------------------------------------------

    def _transpose_x_to_y(self, work: np.ndarray) -> np.ndarray:
        """(n, ny, nz) -> (nx, n, nz): alltoall within the row comm
        (ranks sharing col_id), swapping which of x/y is split."""
        sends = []
        for r in range(self.comm_row.size):
            xa, xb = self.xdec.range_of(r)
            sends.append(np.ascontiguousarray(work[xa:xb]))
        received = self.comm_row.alltoallv(sends)
        xa, xb = self.xdec.range_of(self.row_id)
        out = np.empty(
            (xb - xa, self.n, work.shape[2]), dtype=np.complex128
        )
        for r, block in enumerate(received):
            ya, yb = self.ydec.range_of(r)
            out[:, ya:yb, :] = block
        return out

    def _transpose_y_to_x(self, work: np.ndarray) -> np.ndarray:
        sends = []
        for r in range(self.comm_row.size):
            ya, yb = self.ydec.range_of(r)
            sends.append(np.ascontiguousarray(work[:, ya:yb, :]))
        received = self.comm_row.alltoallv(sends)
        ya, yb = self.ydec.range_of(self.row_id)
        out = np.empty((self.n, yb - ya, work.shape[2]), dtype=np.complex128)
        for r, block in enumerate(received):
            xa, xb = self.xdec.range_of(r)
            out[xa:xb] = block
        return out

    def _transpose_y_to_z(self, work: np.ndarray) -> np.ndarray:
        """(nx, n, nz) -> (nx, ny, n): alltoall within the column comm
        (ranks sharing row_id), swapping which of y/z is split."""
        sends = []
        for r in range(self.comm_col.size):
            ya, yb = self.y2dec.range_of(r)
            sends.append(np.ascontiguousarray(work[:, ya:yb, :]))
        received = self.comm_col.alltoallv(sends)
        ya, yb = self.y2dec.range_of(self.col_id)
        out = np.empty((work.shape[0], yb - ya, self.n), dtype=np.complex128)
        for r, block in enumerate(received):
            za, zb = self.zdec.range_of(r)
            out[:, :, za:zb] = block
        return out

    def _transpose_z_to_y(self, work: np.ndarray) -> np.ndarray:
        sends = []
        for r in range(self.comm_col.size):
            za, zb = self.zdec.range_of(r)
            sends.append(np.ascontiguousarray(work[:, :, za:zb]))
        received = self.comm_col.alltoallv(sends)
        za, zb = self.zdec.range_of(self.col_id)
        out = np.empty(
            (work.shape[0], self.n, zb - za), dtype=np.complex128
        )
        for r, block in enumerate(received):
            ya, yb = self.y2dec.range_of(r)
            out[:, ya:yb, :] = block
        return out

    # -- transforms ------------------------------------------------------------------

    def forward(self, pencil: np.ndarray) -> np.ndarray:
        """Real (or complex) x-pencil -> complex z-pencil in k-space."""
        if pencil.shape != self.real_shape():
            raise ValueError("pencil shape mismatch")
        work = np.fft.fft(pencil, axis=0)
        work = self._transpose_x_to_y(work)
        work = np.fft.fft(work, axis=1)
        work = self._transpose_y_to_z(work)
        return np.fft.fft(work, axis=2)

    def inverse(self, kpencil: np.ndarray) -> np.ndarray:
        """Complex z-pencil -> real x-pencil (imaginary parts dropped)."""
        if kpencil.shape != self.kspace_shape():
            raise ValueError("k-pencil shape mismatch")
        work = np.fft.ifft(kpencil, axis=2)
        work = self._transpose_z_to_y(work)
        work = np.fft.ifft(work, axis=1)
        work = self._transpose_y_to_x(work)
        return np.real(np.fft.ifft(work, axis=0))

    # -- convolution -------------------------------------------------------------------

    def greens_slice(self, greens_full: np.ndarray) -> np.ndarray:
        """This rank's k-space window of a full (non-rfft) Green's
        function mesh ``(n, n, n)``."""
        (xa, xb), (ya, yb), _ = self.kspace_ranges()
        return greens_full[xa:xb, ya:yb, :]

    def convolve(self, pencil: np.ndarray, greens_pencil: np.ndarray) -> np.ndarray:
        kdata = self.forward(pencil)
        kdata *= greens_pencil
        return self.inverse(kdata)
