"""1-D slab-decomposed parallel FFT (the FFTW-MPI substitute).

Forward transform of an x-slab-decomposed real mesh:

1. per-slab ``rfft`` along z and ``fft`` along y (local),
2. transpose x-slabs -> y-slabs (one ``alltoallv`` inside COMM_FFT),
3. ``fft`` along x (local; the full x extent is now resident).

The k-space data stays y-slab-decomposed; pointwise convolution with a
Green's function is local.  The inverse reverses the three steps.  Only
the transpose communicates — the same property that pins the paper's
FFT process count to at most ``N_PM^(1/3)`` ranks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.meshcomm.slab import SlabDecomposition

__all__ = ["SlabFFT"]


class SlabFFT:
    """Distributed FFT over the first ``n_slabs`` ranks of ``comm_fft``.

    Parameters
    ----------
    comm_fft:
        Communicator containing exactly the FFT processes (the paper's
        COMM_FFT, built with ``Comm_split`` so that FFT ranks sit close
        together on the physical network).
    n:
        Global mesh size per dimension.

    Notes
    -----
    ``comm_fft.size`` slabs along x for real-space data and along y for
    k-space data; both use the same :class:`SlabDecomposition`.
    """

    def __init__(self, comm_fft, n: int) -> None:
        self.comm = comm_fft
        self.n = int(n)
        self.slabs = SlabDecomposition(n, comm_fft.size)
        self.nz_r = self.n // 2 + 1  # rfft length along z

    # -- layout helpers ----------------------------------------------------------

    @property
    def x_range(self):
        """[start, stop) of x-planes this rank owns in real space."""
        return self.slabs.range_of(self.comm.rank)

    @property
    def y_range(self):
        """[start, stop) of y-planes this rank owns in k space."""
        return self.slabs.range_of(self.comm.rank)

    def kspace_shape(self):
        a, b = self.y_range
        return (self.n, b - a, self.nz_r)

    # -- transforms ---------------------------------------------------------------

    def forward(self, slab: np.ndarray) -> np.ndarray:
        """Real x-slab ``(nx_local, n, n)`` -> complex y-slab
        ``(n, ny_local, n//2+1)``."""
        a, b = self.x_range
        if slab.shape != (b - a, self.n, self.n):
            raise ValueError("slab shape mismatch")
        work = np.fft.rfft(slab, axis=2)
        work = np.fft.fft(work, axis=1)
        work = self._transpose_x_to_y(work)
        return np.fft.fft(work, axis=0)

    def inverse(self, kslab: np.ndarray) -> np.ndarray:
        """Complex y-slab -> real x-slab (inverse of :meth:`forward`)."""
        if kslab.shape != self.kspace_shape():
            raise ValueError("k-slab shape mismatch")
        work = np.fft.ifft(kslab, axis=0)
        work = self._transpose_y_to_x(work)
        work = np.fft.ifft(work, axis=1)
        return np.fft.irfft(work, n=self.n, axis=2)

    # -- transposes ------------------------------------------------------------------

    def _transpose_x_to_y(self, work: np.ndarray) -> np.ndarray:
        """(nx_local, n, nz_r) -> (n, ny_local, nz_r) via alltoallv."""
        sends = []
        for j in range(self.comm.size):
            ya, yb = self.slabs.range_of(j)
            sends.append(np.ascontiguousarray(work[:, ya:yb, :]))
        received = self.comm.alltoallv(sends)
        ya, yb = self.y_range
        out = np.empty((self.n, yb - ya, self.nz_r), dtype=np.complex128)
        for i, block in enumerate(received):
            xa, xb = self.slabs.range_of(i)
            out[xa:xb] = block
        return out

    def _transpose_y_to_x(self, work: np.ndarray) -> np.ndarray:
        """(n, ny_local, nz_r) -> (nx_local, n, nz_r) via alltoallv."""
        sends = []
        for j in range(self.comm.size):
            xa, xb = self.slabs.range_of(j)
            sends.append(np.ascontiguousarray(work[xa:xb, :, :]))
        received = self.comm.alltoallv(sends)
        xa, xb = self.x_range
        out = np.empty((xb - xa, self.n, self.nz_r), dtype=np.complex128)
        for i, block in enumerate(received):
            ya, yb = self.slabs.range_of(i)
            out[:, ya:yb, :] = block
        return out

    # -- convolution -------------------------------------------------------------------

    def greens_slice(self, greens_full: np.ndarray) -> np.ndarray:
        """This rank's y-slab slice of a full rfft Green's function."""
        ya, yb = self.y_range
        return greens_full[:, ya:yb, :]

    def convolve(self, slab: np.ndarray, greens_slab: np.ndarray) -> np.ndarray:
        """Real slab -> real slab convolved with the Green's function."""
        kdata = self.forward(slab)
        kdata *= greens_slab
        return self.inverse(kdata)
